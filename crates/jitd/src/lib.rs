//! # jitd — a multi-tenant JIT service daemon
//!
//! A long-running daemon that accepts jit/invoke requests from many
//! concurrent clients over loopback TCP, speaking the same `WFR1`
//! typed/length-prefixed/checksummed framing as the `dist` backend
//! ([`mpi_sim::transport`]). The robustness contract, under any seeded
//! overload + fault storm:
//!
//! - **Never silent, never unbounded.** Admission is a bounded
//!   worker-pool + queue; anything beyond the bound is rejected with a
//!   typed [`proto::Reply::Shed`] naming the policy
//!   ([`proto::ShedReason`]). Memory use is bounded by construction.
//! - **Deadlines propagate.** Each request carries a wall-clock budget
//!   checked at admission, after queue wait, before translation, while
//!   waiting on a concurrent leader, and before the run; the run itself
//!   is bounded by the deterministic scheduler-round timeout
//!   ([`wootinj::JitCode::set_timeout`]).
//! - **Single-flight translation.** N concurrent clients requesting the
//!   same [`translator::CacheKey`] cause exactly one translation: the
//!   leader translates and publishes the sealed artifact bytes; every
//!   follower decodes them ([`wootinj::WootinJ::code_from_artifact`]).
//! - **Per-tenant artifact quotas.** Each tenant's `DiskStore` lives
//!   under its own directory; a tenant at its byte quota keeps serving
//!   its warm keys but new translations are shed typed (`OverQuota`).
//! - **Faults are counted, not fatal.** Client disconnects mid-request,
//!   truncated frames, and (seeded, injected) translate failures all
//!   land in counters ([`proto::ServiceStats`], extending
//!   [`exec::ResilienceStats`]) — the daemon never panics or hangs.
//! - **Graceful drain.** A `Shutdown` frame stops admission (new work
//!   sheds as `Draining`), in-flight requests flush, and
//!   [`Daemon::serve`] returns the final stats.

#![forbid(unsafe_code)]

pub mod client;
pub mod proto;

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use exec::{FaultConfig, FaultPlan};
use jvm::Value;
use mpi_sim::{read_frame, write_frame, TransportError};
use proto::{
    Arg, JitRequest, Outcome, PassTotals, Reply, Request, ServiceStats, ShedReason, SERVICE_PROTO,
};
use translator::Translated;
use wootinj::{JitCode, JitOptions, WootinJ, Workspace};

/// Admission, quota, deadline, and fault policy for one daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Concurrent in-service requests (worker slots).
    pub workers: usize,
    /// Requests allowed to wait for a slot; beyond this, `QueueFull`.
    pub queue_cap: usize,
    /// Root of the per-tenant artifact stores (`<root>/<tenant>/`).
    pub root: PathBuf,
    /// On-disk byte quota for tenants without an explicit entry.
    pub default_quota: u64,
    /// Per-tenant quota overrides.
    pub quotas: Vec<(String, u64)>,
    /// Seeded service-loop fault injection (`translate_fail` draws one
    /// decision per would-be translation from this plan's stream).
    pub fault: Option<FaultConfig>,
    /// Deadline applied when a request asks for `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Socket read/write timeout — a dead or wedged client can stall a
    /// connection thread at most this long per frame.
    pub io_timeout: Duration,
    /// Deterministic scheduler-round bound for each run.
    pub timeout_rounds: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            workers: 4,
            queue_cap: 8,
            root: std::env::temp_dir().join("wj-jitd"),
            default_quota: u64::MAX,
            quotas: Vec::new(),
            fault: None,
            default_deadline: Duration::from_secs(10),
            io_timeout: Duration::from_secs(10),
            timeout_rounds: 400_000,
        }
    }
}

impl DaemonConfig {
    pub fn quota_for(&self, tenant: &str) -> u64 {
        self.quotas
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(self.default_quota, |(_, q)| *q)
    }
}

// ---------------------------------------------------------------------
// admission gate
// ---------------------------------------------------------------------

struct GateState {
    active: usize,
    queued: usize,
    draining: bool,
}

/// Bounded worker pool + bounded wait queue, deadline-aware. Every exit
/// path from [`Gate::admit`] is typed; a permit holder MUST call
/// [`Gate::release`] exactly once (the connection code pairs them in
/// one function, no early returns between).
struct Gate {
    workers: usize,
    queue_cap: usize,
    m: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn new(workers: usize, queue_cap: usize) -> Self {
        Gate {
            workers: workers.max(1),
            queue_cap,
            m: Mutex::new(GateState {
                active: 0,
                queued: 0,
                draining: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn admit(&self, deadline: Instant) -> Result<(), ShedReason> {
        let mut st = self.m.lock().unwrap();
        if st.draining {
            return Err(ShedReason::Draining);
        }
        if st.active < self.workers {
            st.active += 1;
            return Ok(());
        }
        if st.queued >= self.queue_cap {
            return Err(ShedReason::QueueFull);
        }
        st.queued += 1;
        loop {
            let now = Instant::now();
            if now >= deadline {
                st.queued -= 1;
                return Err(ShedReason::Deadline);
            }
            let (g, _t) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = g;
            if st.draining {
                st.queued -= 1;
                self.cv.notify_all();
                return Err(ShedReason::Draining);
            }
            if st.active < self.workers {
                st.queued -= 1;
                st.active += 1;
                return Ok(());
            }
        }
    }

    fn release(&self) {
        let mut st = self.m.lock().unwrap();
        st.active = st.active.saturating_sub(1);
        self.cv.notify_all();
    }

    fn drain(&self) {
        self.m.lock().unwrap().draining = true;
        self.cv.notify_all();
    }

    fn snapshot(&self) -> (usize, usize, bool) {
        let st = self.m.lock().unwrap();
        (st.active, st.queued, st.draining)
    }
}

// ---------------------------------------------------------------------
// single-flight translation
// ---------------------------------------------------------------------

enum FlightState {
    Running,
    /// The leader's sealed artifact bytes ([`Translated::encode`]).
    Done(Arc<Vec<u8>>),
    /// The leader's typed failure, replayed to every follower.
    Failed(String),
}

struct Flight {
    m: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            m: Mutex::new(FlightState::Running),
            cv: Condvar::new(),
        }
    }
}

// ---------------------------------------------------------------------
// daemon
// ---------------------------------------------------------------------

struct Shared {
    config: DaemonConfig,
    gate: Gate,
    /// In-progress translations, keyed by cache-key fingerprint. An
    /// entry exists only while its leader is translating; completed
    /// flights are removed (later requests warm-start from disk).
    flights: Mutex<HashMap<String, Arc<Flight>>>,
    stats: Mutex<ServiceStats>,
    fault: Option<Mutex<FaultPlan>>,
}

impl Shared {
    fn stats_snapshot(&self) -> ServiceStats {
        let mut s = self.stats.lock().unwrap().clone();
        if let Some(plan) = &self.fault {
            s.resilience.merge(&plan.lock().unwrap().stats);
        }
        s
    }
}

/// A bound-but-not-yet-serving daemon; [`Self::serve`] runs the accept
/// loop until a `Shutdown` drain completes and returns the final stats.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Bind the service socket on loopback (`port` 0 picks an ephemeral
    /// port — read it back with [`Self::port`]).
    pub fn bind(config: DaemonConfig, port: u16) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let fault = config.fault.map(|f| Mutex::new(FaultPlan::new(f)));
        let shared = Arc::new(Shared {
            gate: Gate::new(config.workers, config.queue_cap),
            flights: Mutex::new(HashMap::new()),
            stats: Mutex::new(ServiceStats::default()),
            fault,
            config,
        });
        Ok(Daemon { listener, shared })
    }

    pub fn port(&self) -> u16 {
        self.listener.local_addr().map(|a| a.port()).unwrap_or(0)
    }

    /// Accept and serve connections (one thread each) until a client
    /// sends `Shutdown` and all in-flight work has flushed. Returns the
    /// final counters; the process-level binary exits 0 after this.
    pub fn serve(self) -> ServiceStats {
        // Nonblocking accept with a short poll so the drain flag stops
        // the loop promptly — the daemon's only busy-wait, at ~2ms.
        if self.listener.set_nonblocking(true).is_err() {
            return self.shared.stats_snapshot();
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    // Thread-per-connection: bounded by the OS, while
                    // *requests* are bounded by the admission gate (a
                    // connection beyond capacity gets typed sheds, and
                    // an idle one costs a parked thread, not a slot).
                    let _ = std::thread::Builder::new()
                        .name("wj-jitd-conn".into())
                        .spawn(move || serve_conn(&shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let (active, queued, draining) = self.shared.gate.snapshot();
                    if draining && active == 0 && queued == 0 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        self.shared.stats_snapshot()
    }
}

// ---------------------------------------------------------------------
// connection service
// ---------------------------------------------------------------------

fn shed_reply(reason: ShedReason, message: impl Into<String>) -> Reply {
    Reply::Shed {
        reason,
        message: message.into(),
    }
}

fn err_reply(message: impl std::fmt::Display) -> Reply {
    Reply::Err {
        message: message.to_string(),
    }
}

fn expired(deadline: Instant) -> bool {
    Instant::now() >= deadline
}

/// Keep tenant ids path-safe: anything outside `[A-Za-z0-9._-]` maps to
/// `_`, and a traversal-ish or empty id becomes a literal bucket.
fn tenant_dir(root: &Path, tenant: &str) -> PathBuf {
    let safe: String = tenant
        .chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '.' | '_' | '-' => c,
            _ => '_',
        })
        .collect();
    let safe = safe.trim_matches('.').to_string();
    root.join(if safe.is_empty() {
        "_anon".into()
    } else {
        safe
    })
}

/// Bytes of sealed artifacts currently stored for a tenant.
fn artifact_bytes(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "wjar"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum()
}

fn serve_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));

    let hello = match read_frame(&mut stream).and_then(|b| proto::decode_hello(&b)) {
        Ok(h) => h,
        Err(_) => {
            shared.stats.lock().unwrap().bad_frames += 1;
            return;
        }
    };
    if hello.proto != SERVICE_PROTO {
        let refuse = err_reply(format!(
            "service proto skew: client {}, daemon {SERVICE_PROTO}",
            hello.proto
        ));
        let _ = write_frame(&mut stream, &proto::encode_reply(&refuse));
        return;
    }
    if write_frame(
        &mut stream,
        &proto::encode_reply(&Reply::HelloOk {
            proto: SERVICE_PROTO,
        }),
    )
    .is_err()
    {
        shared.stats.lock().unwrap().disconnects += 1;
        return;
    }

    loop {
        let buf = match read_frame(&mut stream) {
            Ok(b) => b,
            Err(TransportError::Disconnected) => return, // clean close
            Err(_) => {
                // Truncated/corrupt/timed-out framing: the stream can no
                // longer be trusted frame-aligned — count and drop it.
                shared.stats.lock().unwrap().bad_frames += 1;
                return;
            }
        };
        let req = match proto::decode_request(&buf) {
            Ok(q) => q,
            Err(e) => {
                // The frame layer was intact but the payload was not:
                // still replyable, so the client gets a typed error.
                shared.stats.lock().unwrap().bad_frames += 1;
                let _ = write_frame(&mut stream, &proto::encode_reply(&err_reply(e)));
                return;
            }
        };
        let reply = match req {
            Request::Stats => Reply::Stats(Box::new(shared.stats_snapshot())),
            Request::Shutdown => {
                shared.gate.drain();
                let _ = write_frame(&mut stream, &proto::encode_reply(&Reply::Bye));
                return;
            }
            Request::Jit(j) => serve_jit(shared, &hello.tenant, j),
        };
        if write_frame(&mut stream, &proto::encode_reply(&reply)).is_err() {
            // Client died between request and reply: the work is done
            // and accounted; only the delivery failed.
            shared.stats.lock().unwrap().disconnects += 1;
            return;
        }
    }
}

/// One admitted-or-shed request, start to finish. Every path produces
/// exactly one reply and bumps exactly one terminal counter.
fn serve_jit(shared: &Arc<Shared>, tenant: &str, j: JitRequest) -> Reply {
    let budget = if j.deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(j.deadline_ms)
    };
    let deadline = Instant::now() + budget;

    if let Err(reason) = shared.gate.admit(deadline) {
        let mut s = shared.stats.lock().unwrap();
        match reason {
            ShedReason::QueueFull => s.shed_queue_full += 1,
            ShedReason::Draining => s.shed_draining += 1,
            ShedReason::Deadline => s.shed_deadline += 1,
            ShedReason::OverQuota => s.shed_over_quota += 1,
        }
        return shed_reply(reason, format!("admission refused: {reason}"));
    }
    shared.stats.lock().unwrap().admitted += 1;

    let outcome = run_admitted(shared, tenant, &j, deadline);

    // Chaos knob: keep occupying the slot (bounded) before release, so
    // tests and the bench storm can deterministically exhaust capacity.
    if j.hold_ms > 0 {
        std::thread::sleep(Duration::from_millis(j.hold_ms.min(10_000)));
    }
    shared.gate.release();

    let mut s = shared.stats.lock().unwrap();
    match outcome {
        Ok(o) => {
            s.completed += 1;
            Reply::Done(o)
        }
        Err(reply) => {
            match &reply {
                Reply::Shed { reason, .. } => match reason {
                    ShedReason::QueueFull => s.shed_queue_full += 1,
                    ShedReason::Draining => s.shed_draining += 1,
                    ShedReason::Deadline => s.shed_deadline += 1,
                    ShedReason::OverQuota => s.shed_over_quota += 1,
                },
                _ => s.request_errors += 1,
            }
            reply
        }
    }
}

/// The slot-holding body: compile, key, single-flight translate (or
/// follow), run. Returns the outcome or the typed reply to send instead.
fn run_admitted(
    shared: &Arc<Shared>,
    tenant: &str,
    j: &JitRequest,
    deadline: Instant,
) -> Result<Outcome, Reply> {
    let t0 = Instant::now();
    if expired(deadline) {
        return Err(shed_reply(
            ShedReason::Deadline,
            "deadline expired in the admission queue",
        ));
    }

    // Per-request compile + env. The facade is deliberately not shared
    // across threads (it is !Send by design); what *is* shared is the
    // expensive part — the sealed translation artifact. Compiling
    // through a `Workspace` (not a bare table) matters for correctness:
    // its cache keys carry the source fingerprint, so two different
    // programs whose classes happen to share ids can never collide on
    // one artifact — and formatting-only differences still dedup.
    let mut ws = Workspace::new();
    ws.set_source(&j.file, &j.source)
        .map_err(|e| err_reply(format!("compile failed: {e:?}")))?;
    let mut env = ws.env().map_err(err_reply)?;
    let recv = env
        .new_instance(&j.class, &[])
        .map_err(|e| err_reply(format!("instantiating {}: {e}", j.class)))?;
    let args: Vec<Value> = j
        .args
        .iter()
        .map(|a| match a {
            Arg::I32(v) => Value::Int(*v),
            Arg::F32(v) => Value::Float(*v),
            Arg::F32Arr(xs) => env.new_f32_array(xs),
        })
        .collect();

    let dir = tenant_dir(&shared.config.root, tenant);
    let options = JitOptions::wootinj().with_disk_cache(&dir);
    let key = env
        .cache_key(&recv, &j.method, &args, options.config, 0)
        .map_err(err_reply)?;
    let fingerprint = key.fingerprint();

    // Single-flight: first thread in becomes the leader; concurrent
    // requests for the same fingerprint wait for its sealed artifact.
    let (leader, flight) = {
        let mut flights = shared.flights.lock().unwrap();
        match flights.get(&fingerprint) {
            Some(f) => (false, Arc::clone(f)),
            None => {
                let f = Arc::new(Flight::new());
                flights.insert(fingerprint.clone(), Arc::clone(&f));
                (true, f)
            }
        }
    };

    let (mut code, translated, followed) = if leader {
        let led = lead_translate(
            shared, &env, &recv, j, &args, options, tenant, &dir, deadline,
        );
        // Publish before unkeying, so followers of *this* flight get
        // the verdict while later requests start fresh (warm from disk).
        {
            let mut st = flight.m.lock().unwrap();
            *st = match &led {
                Ok(code) => FlightState::Done(Arc::new(code.translated.encode())),
                Err(reply) => FlightState::Failed(match reply {
                    Reply::Shed { reason, message } => format!("leader shed ({reason}): {message}"),
                    Reply::Err { message } => message.clone(),
                    _ => "leader failed".to_string(),
                }),
            };
            flight.cv.notify_all();
        }
        shared.flights.lock().unwrap().remove(&fingerprint);
        let code = led?;
        let translated = env.cache_stats().translations > 0;
        (code, translated, false)
    } else {
        let bytes = follow(&flight, deadline)?;
        let t = Translated::decode(&bytes)
            .map_err(|e| err_reply(format!("decoding shared artifact: {e}")))?;
        shared.stats.lock().unwrap().follower_serves += 1;
        (
            env.code_from_artifact(Arc::new(t), &recv, &args),
            false,
            true,
        )
    };

    let compile_us = t0.elapsed().as_micros() as u64;
    if expired(deadline) {
        return Err(shed_reply(
            ShedReason::Deadline,
            "deadline expired before the run",
        ));
    }
    code.set_timeout(shared.config.timeout_rounds);
    let t_run = Instant::now();
    let report = code
        .invoke(&env)
        .map_err(|e| err_reply(format!("run failed: {e}")))?;
    Ok(Outcome {
        result: report.result,
        translated,
        followed,
        compile_us,
        run_us: t_run.elapsed().as_micros() as u64,
    })
}

/// The leader half of a flight: quota gate, injected-fault draw, then
/// the real `jit` (which itself warm-starts from the tenant store).
#[allow(clippy::too_many_arguments)]
fn lead_translate(
    shared: &Arc<Shared>,
    env: &WootinJ<'_>,
    recv: &Value,
    j: &JitRequest,
    args: &[Value],
    options: JitOptions,
    tenant: &str,
    dir: &Path,
    deadline: Instant,
) -> Result<JitCode, Reply> {
    let key = env
        .cache_key(recv, &j.method, args, options.config, 0)
        .map_err(err_reply)?;
    let artifact = dir.join(format!("{}.wjar", key.fingerprint()));

    // Quota: a warm key (artifact already on disk) always serves; new
    // bytes for a tenant at its quota are refused typed.
    let quota = shared.config.quota_for(tenant);
    if !artifact.is_file() && artifact_bytes(dir) >= quota {
        return Err(shed_reply(
            ShedReason::OverQuota,
            format!("tenant store at quota ({quota} bytes); warm keys still serve"),
        ));
    }

    // Seeded service-loop fault: one stream draw per would-be
    // translation, counted in `ResilienceStats::translate_failures`.
    if !artifact.is_file() {
        if let Some(plan) = &shared.fault {
            if plan.lock().unwrap().translate_fails() {
                return Err(err_reply("injected translate failure"));
            }
        }
    }

    if expired(deadline) {
        return Err(shed_reply(
            ShedReason::Deadline,
            "deadline expired before translation",
        ));
    }

    let code = env
        .jit(recv, &j.method, args, options)
        .map_err(|e| err_reply(format!("translate failed: {e}")))?;

    let cs = env.cache_stats();
    let mut s = shared.stats.lock().unwrap();
    if cs.translations > 0 {
        s.translations += cs.translations;
        for p in &code.stats().passes {
            let idx = match s.passes.iter().position(|t| t.pass == p.pass) {
                Some(i) => i,
                None => {
                    s.passes.push(PassTotals {
                        pass: p.pass.to_string(),
                        ..PassTotals::default()
                    });
                    s.passes.len() - 1
                }
            };
            let entry = &mut s.passes[idx];
            entry.wall_us += p.wall.as_micros() as u64;
            entry.instrs_before += p.instrs_before;
            entry.instrs_after += p.instrs_after;
        }
    }
    if cs.disk_hits > 0 {
        s.warm_hits += 1;
    }
    Ok(code)
}

/// The follower half: deadline-bounded wait for the leader's verdict.
fn follow(flight: &Flight, deadline: Instant) -> Result<Arc<Vec<u8>>, Reply> {
    let mut st = flight.m.lock().unwrap();
    loop {
        match &*st {
            FlightState::Done(bytes) => return Ok(Arc::clone(bytes)),
            FlightState::Failed(message) => {
                return Err(Reply::Err {
                    message: message.clone(),
                })
            }
            FlightState::Running => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(shed_reply(
                        ShedReason::Deadline,
                        "deadline expired waiting for the in-flight translation",
                    ));
                }
                let (g, _t) = flight.cv.wait_timeout(st, deadline - now).unwrap();
                st = g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_within_capacity_and_sheds_typed_beyond_it() {
        let gate = Gate::new(2, 1);
        let deadline = Instant::now() + Duration::from_millis(50);
        assert!(gate.admit(deadline).is_ok());
        assert!(gate.admit(deadline).is_ok());
        // Third waits in the queue until the deadline expires.
        assert_eq!(gate.admit(deadline), Err(ShedReason::Deadline));
        // Queue slot is free again; a second *concurrent* waiter beyond
        // queue_cap is refused immediately.
        let g2 = Arc::new(Gate::new(1, 0));
        let far = Instant::now() + Duration::from_secs(5);
        assert!(g2.admit(far).is_ok());
        assert_eq!(g2.admit(far), Err(ShedReason::QueueFull));
        g2.release();
        assert!(g2.admit(far).is_ok());
    }

    #[test]
    fn draining_gate_refuses_even_queued_waiters() {
        let gate = Arc::new(Gate::new(1, 4));
        let far = Instant::now() + Duration::from_secs(10);
        assert!(gate.admit(far).is_ok());
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(far))
        };
        std::thread::sleep(Duration::from_millis(20));
        gate.drain();
        assert_eq!(waiter.join().unwrap(), Err(ShedReason::Draining));
        assert_eq!(gate.admit(far), Err(ShedReason::Draining));
    }

    #[test]
    fn tenant_dirs_are_path_safe() {
        let root = Path::new("/srv/jitd");
        assert_eq!(tenant_dir(root, "acme"), root.join("acme"));
        assert_eq!(tenant_dir(root, "../../etc"), root.join("_.._etc"));
        assert_eq!(tenant_dir(root, ""), root.join("_anon"));
        assert_eq!(tenant_dir(root, ".."), root.join("_anon"));
    }
}
