//! `wj-jitd` — the multi-tenant JIT service daemon, and its client CLI.
//!
//! ```text
//! wj-jitd serve [--port P] [--workers N] [--queue N] [--root DIR]
//!               [--quota TENANT=BYTES]... [--translate-fail RATE --seed S]
//!     Run the daemon until a client sends `shutdown`; prints the final
//!     counters and exits 0.
//!
//! wj-jitd jit --port P [--tenant T] --file F --class C --method M
//!             [--arg i32:V | f32:V]... [--deadline-ms D] [--hold-ms H]
//!     Compile F, instantiate C, jit+run M, print the typed reply.
//!
//! wj-jitd stats --port P        print the daemon's service counters
//! wj-jitd shutdown --port P     gracefully drain the daemon
//! ```

use jitd::client::Client;
use jitd::proto::{Arg, JitRequest, Reply};
use jitd::{Daemon, DaemonConfig};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("serve") => serve(&args[1..]),
        Some("jit") => jit(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("shutdown") => shutdown(&args[1..]),
        _ => {
            eprintln!("usage: wj-jitd serve|jit|stats|shutdown [options]");
            2
        }
    };
    std::process::exit(code);
}

/// `--key value` lookup; exits with a message on a malformed pair.
fn opt<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == key)
        .map(|i| args.get(i + 1).map(|s| s.as_str()).unwrap_or(""))
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    match opt(args, key) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("wj-jitd: bad value for {key}: {v}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn serve(args: &[String]) -> i32 {
    let mut config = DaemonConfig {
        workers: opt_parse(args, "--workers", 4),
        queue_cap: opt_parse(args, "--queue", 8),
        ..DaemonConfig::default()
    };
    if let Some(root) = opt(args, "--root") {
        config.root = root.into();
    }
    for (i, a) in args.iter().enumerate() {
        if a == "--quota" {
            let spec = args.get(i + 1).map(|s| s.as_str()).unwrap_or("");
            let Some((tenant, bytes)) = spec.split_once('=') else {
                eprintln!("wj-jitd: --quota wants TENANT=BYTES, got `{spec}`");
                return 2;
            };
            let Ok(bytes) = bytes.parse::<u64>() else {
                eprintln!("wj-jitd: --quota bytes must be an integer, got `{spec}`");
                return 2;
            };
            config.quotas.push((tenant.to_string(), bytes));
        }
    }
    let rate: f64 = opt_parse(args, "--translate-fail", 0.0);
    if rate > 0.0 {
        let mut fault = wootinj::FaultConfig::seeded(opt_parse(args, "--seed", 42));
        fault.translate_fail = rate;
        config.fault = Some(fault);
    }
    let port: u16 = opt_parse(args, "--port", 0);

    let daemon = match Daemon::bind(config, port) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("wj-jitd: bind failed: {e}");
            return 1;
        }
    };
    println!("wj-jitd listening on 127.0.0.1:{}", daemon.port());
    let stats = daemon.serve();
    println!(
        "wj-jitd drained: admitted {}, completed {}, translations {}, warm {}, followed {}, \
         sheds {} (queue-full {}, draining {}, over-quota {}, deadline {}), errors {}, \
         disconnects {}, bad frames {}",
        stats.admitted,
        stats.completed,
        stats.translations,
        stats.warm_hits,
        stats.follower_serves,
        stats.sheds(),
        stats.shed_queue_full,
        stats.shed_draining,
        stats.shed_over_quota,
        stats.shed_deadline,
        stats.request_errors,
        stats.disconnects,
        stats.bad_frames,
    );
    println!("wj-jitd resilience: {}", stats.resilience);
    0
}

fn connect(args: &[String]) -> Result<Client, i32> {
    let port: u16 = opt_parse(args, "--port", 0);
    if port == 0 {
        eprintln!("wj-jitd: --port is required");
        return Err(2);
    }
    let tenant = opt(args, "--tenant").unwrap_or("default");
    Client::connect_with_timeout(port, tenant, Duration::from_secs(30)).map_err(|e| {
        eprintln!("wj-jitd: connect failed: {e}");
        1
    })
}

fn jit(args: &[String]) -> i32 {
    let (Some(file), Some(class), Some(method)) = (
        opt(args, "--file"),
        opt(args, "--class"),
        opt(args, "--method"),
    ) else {
        eprintln!("wj-jitd jit: --file, --class, and --method are required");
        return 2;
    };
    let source = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("wj-jitd: reading {file}: {e}");
            return 1;
        }
    };
    let mut jit_args = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--arg" {
            let spec = args.get(i + 1).map(|s| s.as_str()).unwrap_or("");
            let parsed = match spec.split_once(':') {
                Some(("i32", v)) => v.parse().map(Arg::I32).ok(),
                Some(("f32", v)) => v.parse().map(Arg::F32).ok(),
                _ => None,
            };
            let Some(parsed) = parsed else {
                eprintln!("wj-jitd: --arg wants i32:V or f32:V, got `{spec}`");
                return 2;
            };
            jit_args.push(parsed);
        }
    }
    let req = JitRequest {
        file: file.to_string(),
        source,
        class: class.to_string(),
        method: method.to_string(),
        args: jit_args,
        deadline_ms: opt_parse(args, "--deadline-ms", 0),
        hold_ms: opt_parse(args, "--hold-ms", 0),
    };
    let mut client = match connect(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.jit(req) {
        Ok(Reply::Done(o)) => {
            println!(
                "done: result {:?} ({}; compile {}us, run {}us)",
                o.result,
                if o.translated {
                    "translated"
                } else if o.followed {
                    "followed in-flight leader"
                } else {
                    "warm"
                },
                o.compile_us,
                o.run_us
            );
            0
        }
        Ok(Reply::Shed { reason, message }) => {
            println!("shed ({reason}): {message}");
            3
        }
        Ok(Reply::Err { message }) => {
            println!("error: {message}");
            1
        }
        Ok(other) => {
            eprintln!("wj-jitd: unexpected reply {other:?}");
            1
        }
        Err(e) => {
            eprintln!("wj-jitd: {e}");
            1
        }
    }
}

fn stats(args: &[String]) -> i32 {
    let mut client = match connect(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.stats() {
        Ok(s) => {
            println!(
                "admitted {} · completed {} · translations {} · warm {} · followed {}",
                s.admitted, s.completed, s.translations, s.warm_hits, s.follower_serves
            );
            println!(
                "sheds {} (queue-full {}, draining {}, over-quota {}, deadline {}) · \
                 errors {} · disconnects {} · bad frames {}",
                s.sheds(),
                s.shed_queue_full,
                s.shed_draining,
                s.shed_over_quota,
                s.shed_deadline,
                s.request_errors,
                s.disconnects,
                s.bad_frames
            );
            println!("resilience: {}", s.resilience);
            for p in &s.passes {
                println!(
                    "pass {:<24} {:>8}us  instrs {} -> {}",
                    p.pass, p.wall_us, p.instrs_before, p.instrs_after
                );
            }
            0
        }
        Err(e) => {
            eprintln!("wj-jitd: {e}");
            1
        }
    }
}

fn shutdown(args: &[String]) -> i32 {
    let mut client = match connect(args) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.shutdown() {
        Ok(()) => {
            println!("wj-jitd: drain acknowledged");
            0
        }
        Err(e) => {
            eprintln!("wj-jitd: {e}");
            1
        }
    }
}
