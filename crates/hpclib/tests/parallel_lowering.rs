//! Parallel per-function lowering is an execution strategy, not a
//! translation identity: across the example corpus (stencil, matmul,
//! reduce, and a plain table-built app) the artifact bytes produced
//! with `TransConfig::parallel_lowering` must be byte-equal to serial
//! (`encode_semantic()`), and — because the flag is excluded from
//! `TransConfig`'s `Eq`/`Hash` — a warm cache keyed by a serial
//! translate must *hit* when re-jitted with the flag flipped, in both
//! the memory and disk tiers.

use std::sync::Arc;

use hpclib::{
    MatmulApp, MatmulBody, MatmulCalc, MatmulThread, ReduceApp, ReduceOp, ReducePlatform,
    StencilApp, StencilPlatform,
};
use jvm::Value;
use wootinj::{build_table, JitOptions, Val, WootinJ};

const APP: &str = "
    @WootinJ final class Calc {
      Calc() { }
      float run(float[] a) {
        float s = 0f;
        for (int i = 0; i < a.length; i++) { s += a[i] * 2f + 1f; }
        return s;
      }
    }";

fn par_opts() -> JitOptions {
    let mut opts = JitOptions::wootinj();
    opts.config.parallel_lowering = true;
    opts
}

/// The corpus property: serial and parallel lowering of the same
/// workload produce byte-identical semantic artifacts. Each workload
/// is jitted in two *fresh* environments so nothing is shared but the
/// class table.
#[test]
fn parallel_lowering_is_byte_identical_across_the_corpus() {
    // (name, table, compose-and-jit) — compose runs per env, so each
    // closure receives the env and the options to jit with.
    type Jit = Box<dyn Fn(JitOptions) -> Vec<u8>>;
    let corpus: Vec<(&str, Jit)> = vec![
        (
            "stencil-diffusion-mpi",
            Box::new(|opts| {
                let table = hpclib::stencil_table(&[]).unwrap();
                let mut env = WootinJ::new(&table).unwrap();
                let runner = StencilApp::compose(
                    &mut env,
                    StencilPlatform::CpuMpi,
                    StencilApp::default_model(),
                )
                .unwrap();
                let args = [
                    Value::Int(12),
                    Value::Int(12),
                    Value::Int(12),
                    Value::Int(2),
                ];
                let code = env.jit(&runner, "invoke", &args, opts).unwrap();
                code.translated.encode_semantic()
            }),
        ),
        (
            "matmul-fox-mpi",
            Box::new(|opts| {
                let table = hpclib::matmul_table(&[]).unwrap();
                let mut env = WootinJ::new(&table).unwrap();
                let app = MatmulApp::compose(
                    &mut env,
                    MatmulThread::Mpi,
                    MatmulBody::Fox,
                    MatmulCalc::Simple,
                )
                .unwrap();
                let code = env.jit(&app, "start", &[Value::Int(16)], opts).unwrap();
                code.translated.encode_semantic()
            }),
        ),
        (
            "reduce-square-mpi",
            Box::new(|opts| {
                let table = hpclib::reduce_table(&[]).unwrap();
                let mut env = WootinJ::new(&table).unwrap();
                let app =
                    ReduceApp::compose(&mut env, ReducePlatform::Mpi, ReduceOp::Square, 0.125)
                        .unwrap();
                let code = env.jit(&app, "reduce", &[Value::Int(64)], opts).unwrap();
                code.translated.encode_semantic()
            }),
        ),
        (
            "plain-calc",
            Box::new(|opts| {
                let table = build_table(&[("calc.jl", APP)]).unwrap();
                let mut env = WootinJ::new(&table).unwrap();
                let c = env.new_instance("Calc", &[]).unwrap();
                let a = env.new_f32_array(&[1.0, 2.0, 3.0]);
                let code = env.jit(&c, "run", &[a], opts).unwrap();
                code.translated.encode_semantic()
            }),
        ),
    ];
    for (name, jit) in &corpus {
        let serial = jit(JitOptions::wootinj());
        let parallel = jit(par_opts());
        assert_eq!(
            serial, parallel,
            "{name}: parallel lowering changed the semantic artifact bytes"
        );
    }
}

/// Warm-cache key equality, memory tier: a serial translate primes the
/// cache; re-jitting the same graph with `parallel_lowering` flipped
/// must be a pure hit sharing the same translated program — the flag
/// is not part of the key.
#[test]
fn parallel_lowering_hits_the_warm_memory_cache() {
    let table = build_table(&[("calc.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let c = env.new_instance("Calc", &[]).unwrap();
    let a = env.new_f32_array(&[1.0, 2.0, 3.0]);

    let cold = env
        .jit(&c, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    let warm = env
        .jit(&c, "run", std::slice::from_ref(&a), par_opts())
        .unwrap();

    let stats = env.cache_stats();
    assert_eq!(
        (stats.misses, stats.hits, stats.translations),
        (1, 1, 1),
        "flipping parallel_lowering must not change the cache key"
    );
    assert!(
        Arc::ptr_eq(&cold.translated, &warm.translated),
        "warm jit must reuse the serially-translated program"
    );
    assert_eq!(
        warm.invoke(&env).unwrap().result,
        Some(Val::F32(2.0 + 1.0 + 4.0 + 1.0 + 6.0 + 1.0))
    );
}

/// Warm-cache key equality, disk tier: an artifact persisted by a
/// serial env must be served (zero translations) to a fresh env that
/// asks with `parallel_lowering` on — the on-disk fingerprint excludes
/// the flag just like the in-memory key.
#[test]
fn parallel_lowering_hits_the_warm_disk_cache() {
    let tmp = TempDir::new("parallel-lowering");

    let table = build_table(&[("calc.jl", APP)]).unwrap();
    let serial_bytes = {
        let mut env = WootinJ::new(&table).unwrap();
        let c = env.new_instance("Calc", &[]).unwrap();
        let a = env.new_f32_array(&[4.0, 5.0]);
        let code = env
            .jit(
                &c,
                "run",
                &[a],
                JitOptions::wootinj().with_disk_cache(&tmp.0),
            )
            .unwrap();
        assert_eq!(env.cache_stats().translations, 1);
        code.translated.encode_semantic()
    };

    let mut env = WootinJ::new(&table).unwrap();
    let c = env.new_instance("Calc", &[]).unwrap();
    let a = env.new_f32_array(&[4.0, 5.0]);
    let code = env
        .jit(&c, "run", &[a], par_opts().with_disk_cache(&tmp.0))
        .unwrap();
    let stats = env.cache_stats();
    assert_eq!(
        (stats.disk_hits, stats.translations),
        (1, 0),
        "the parallel-lowering env must decode the serial env's artifact"
    );
    assert_eq!(code.translated.encode_semantic(), serial_bytes);
}

/// Scratch dir for the disk-tier test (removed on drop).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "wootinj-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
