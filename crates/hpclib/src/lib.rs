//! # hpclib — the paper's two WootinJ class libraries, plus composition
//! helpers
//!
//! The jlang sources live in [`stencil`] (Figures 1–2: the
//! stencil-computation library) and [`matmul`] (Figure 8: the
//! matrix-multiplication library with the Listing-6 mutual type
//! reference). This Rust layer provides:
//!
//! * [`stencil_table`] / [`matmul_table`] — compiled class tables
//!   (prelude + library),
//! * [`StencilApp`] / [`MatmulApp`] — feature-model composition helpers
//!   that instantiate the chosen components and hand back a ready-to-run
//!   or ready-to-jit application object,
//! * pure-Rust reference implementations used by the test suite to
//!   validate every configuration against ground truth.

#![forbid(unsafe_code)]

pub mod matmul;
pub mod reduce;
pub mod stencil;

pub use matmul::MATMUL_LIB;
pub use reduce::REDUCE_LIB;
pub use stencil::STENCIL_LIB;

use jlang::{ClassTable, DiagResult};
use jvm::Value;
use wootinj::{build_table, WjResult, WootinJ};

/// Compile prelude + stencil library (+ optional extra sources).
pub fn stencil_table(extra: &[(&str, &str)]) -> DiagResult<ClassTable> {
    let mut sources = vec![("stencil.jl", STENCIL_LIB)];
    sources.extend_from_slice(extra);
    build_table(&sources)
}

/// Compile prelude + reduction library (+ optional extra sources).
pub fn reduce_table(extra: &[(&str, &str)]) -> DiagResult<ClassTable> {
    let mut sources = vec![("reduce.jl", REDUCE_LIB)];
    sources.extend_from_slice(extra);
    build_table(&sources)
}

/// Compile prelude + matmul library (+ optional extra sources).
pub fn matmul_table(extra: &[(&str, &str)]) -> DiagResult<ClassTable> {
    let mut sources = vec![("matmul.jl", MATMUL_LIB)];
    sources.extend_from_slice(extra);
    build_table(&sources)
}

/// The parallelism feature of Figure 1: which stencil runner to compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilPlatform {
    Cpu,
    CpuMpi,
    Gpu,
    GpuMpi,
}

impl StencilPlatform {
    pub fn runner_class(self) -> &'static str {
        match self {
            StencilPlatform::Cpu => "StencilCPU3D",
            StencilPlatform::CpuMpi => "StencilCPU3D_MPI",
            StencilPlatform::Gpu => "StencilGPU3D",
            StencilPlatform::GpuMpi => "StencilGPU3D_MPI",
        }
    }

    pub fn uses_gpu(self) -> bool {
        matches!(self, StencilPlatform::Gpu | StencilPlatform::GpuMpi)
    }

    pub fn uses_mpi(self) -> bool {
        matches!(self, StencilPlatform::CpuMpi | StencilPlatform::GpuMpi)
    }
}

/// The physical-model feature: which solver to compose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StencilModel {
    /// `Dif3DSolver(center, neighbor)` — 3D diffusion.
    Diffusion { center: f32, neighbor: f32 },
    /// `DampedSolver(k)` — damped averaging.
    Damped { k: f32 },
}

/// Composition helper for the stencil library (the `main` of Listing 2).
pub struct StencilApp;

impl StencilApp {
    /// Build the composed runner object inside `env`'s heap.
    pub fn compose(
        env: &mut WootinJ<'_>,
        platform: StencilPlatform,
        model: StencilModel,
    ) -> WjResult<Value> {
        let solver = match model {
            StencilModel::Diffusion { center, neighbor } => env.new_instance(
                "Dif3DSolver",
                &[Value::Float(center), Value::Float(neighbor)],
            )?,
            StencilModel::Damped { k } => env.new_instance("DampedSolver", &[Value::Float(k)])?,
        };
        let init = env.new_instance("NoiseInit", &[])?;
        env.new_instance(platform.runner_class(), &[solver, init])
    }

    /// The default diffusion coefficients used throughout the benchmarks
    /// (stable for the 7-point kernel: center + 6*neighbor = 1).
    pub fn default_model() -> StencilModel {
        StencilModel::Diffusion {
            center: 0.4,
            neighbor: 0.1,
        }
    }

    /// Compose the boxed-API CPU runner (Listing-1 style, `ScalarFloat`
    /// values) — the configuration behind Figures 3 and 17.
    pub fn compose_boxed(env: &mut WootinJ<'_>, center: f32, neighbor: f32) -> WjResult<Value> {
        let boxed = env.new_instance(
            "Dif3DSolverBoxed",
            &[Value::Float(center), Value::Float(neighbor)],
        )?;
        let plain = env.new_instance(
            "Dif3DSolver",
            &[Value::Float(center), Value::Float(neighbor)],
        )?;
        let init = env.new_instance("NoiseInit", &[])?;
        env.new_instance("StencilCPU3DBoxed", &[boxed, plain, init])
    }
}

/// Composition helper for the 1-D solver family (the paper's Listings
/// 1–2): generic over the solver's context component.
pub struct Stencil1D;

impl Stencil1D {
    /// `new Stencil1DRunner(new Dif1DSolver(a, b), new EmptyContext(), init)`
    pub fn compose_diffusion(env: &mut WootinJ<'_>, a: f32, b: f32) -> WjResult<Value> {
        let solver = env.new_instance("Dif1DSolver", &[Value::Float(a), Value::Float(b)])?;
        let ctx = env.new_instance("EmptyContext", &[])?;
        let init = env.new_instance("NoiseInit", &[])?;
        env.new_instance("Stencil1DRunner", &[solver, ctx, init])
    }

    /// The damped variant, customizing behavior through the context
    /// component.
    pub fn compose_damped(env: &mut WootinJ<'_>, k: f32) -> WjResult<Value> {
        let solver = env.new_instance("Damped1DSolver", &[])?;
        let ctx = env.new_instance("DampingCtx", &[Value::Float(k)])?;
        let init = env.new_instance("NoiseInit", &[])?;
        env.new_instance("Stencil1DRunner", &[solver, ctx, init])
    }
}

/// Pure-Rust reference for the 1-D diffusion runner.
pub fn reference_diffusion_1d(n: usize, steps: usize, a: f32, b: f32) -> f32 {
    let mut src: Vec<f32> = (0..n).map(|x| noise_init(x as i32, 0, 0)).collect();
    let mut dst = src.clone();
    for _ in 0..steps {
        for x in 1..n - 1 {
            dst[x] = a * (src[x - 1] + src[x + 1]) + b * src[x];
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src.iter().sum()
}

/// The reduction library's map component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReduceOp {
    Identity,
    Square,
    Abs,
    Affine { a: f32, b: f32 },
}

/// The reduction library's runner feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReducePlatform {
    Cpu,
    Mpi,
    Gpu,
}

/// Composition helper for the reduction library.
pub struct ReduceApp;

impl ReduceApp {
    pub fn compose(
        env: &mut WootinJ<'_>,
        platform: ReducePlatform,
        op: ReduceOp,
        ramp_scale: f32,
    ) -> WjResult<Value> {
        let op_obj = match op {
            ReduceOp::Identity => env.new_instance("IdentityOp", &[])?,
            ReduceOp::Square => env.new_instance("SquareOp", &[])?,
            ReduceOp::Abs => env.new_instance("AbsOp", &[])?,
            ReduceOp::Affine { a, b } => {
                env.new_instance("AffineOp", &[Value::Float(a), Value::Float(b)])?
            }
        };
        let gen = env.new_instance("RampGen", &[Value::Float(ramp_scale)])?;
        let class = match platform {
            ReducePlatform::Cpu => "ReduceCPU",
            ReducePlatform::Mpi => "ReduceMPI",
            ReducePlatform::Gpu => "ReduceGPU",
        };
        env.new_instance(class, &[op_obj, gen])
    }
}

/// Pure-Rust reference for the reduction library.
pub fn reference_reduce(n: usize, op: ReduceOp, scale: f32) -> f64 {
    let gen = |i: usize| ((i % 101) as i32 - 50) as f32 * scale;
    let map = |x: f32| -> f32 {
        match op {
            ReduceOp::Identity => x,
            ReduceOp::Square => x * x,
            ReduceOp::Abs => x.abs(),
            ReduceOp::Affine { a, b } => a * x + b,
        }
    };
    (0..n).map(|i| map(gen(i)) as f64).sum()
}

/// Matmul feature selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulThread {
    CpuLoop,
    Mpi,
    Gpu,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulBody {
    Simple,
    Fox,
    /// Fox schedule with device-offloaded block multiplications.
    FoxGpu,
    GpuNaive,
    GpuTiled,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatmulCalc {
    Simple,
    Optimized,
}

/// Composition helper for the matmul library (Figure 8).
pub struct MatmulApp;

impl MatmulApp {
    pub fn compose(
        env: &mut WootinJ<'_>,
        thread: MatmulThread,
        body: MatmulBody,
        calc: MatmulCalc,
    ) -> WjResult<Value> {
        let body_obj = match body {
            MatmulBody::Simple => env.new_instance("SimpleOuterBody", &[])?,
            MatmulBody::Fox => env.new_instance("FoxAlgorithm", &[])?,
            MatmulBody::FoxGpu => env.new_instance("FoxGpuAlgorithm", &[])?,
            MatmulBody::GpuNaive => env.new_instance("GpuOuterBody", &[])?,
            MatmulBody::GpuTiled => env.new_instance("TiledGpuBody", &[])?,
        };
        let calc_obj = match calc {
            MatmulCalc::Simple => env.new_instance("SimpleCalculator", &[])?,
            MatmulCalc::Optimized => env.new_instance("OptimizedCalculator", &[])?,
        };
        let gen_obj = env.new_instance("DefaultGen", &[])?;
        let thread_class = match thread {
            MatmulThread::CpuLoop => "CPULoop",
            MatmulThread::Mpi => "MPIThread",
            MatmulThread::Gpu => "GPUThread",
        };
        env.new_instance(thread_class, &[body_obj, calc_obj, gen_obj])
    }
}

// ---------------------------------------------------------------------
// Pure-Rust reference implementations (ground truth for the test suite).
// ---------------------------------------------------------------------

/// Reference for `NoiseInit.value`.
pub fn noise_init(x: i32, y: i32, z: i32) -> f32 {
    let h = x * 31 + y * 17 + z * 7;
    (h % 97) as f32 * 0.01
}

/// Reference diffusion stencil on the full global grid; returns the
/// checksum after `steps` sweeps. Mirrors the library exactly (ghost z
/// planes, fixed x/y edges).
pub fn reference_diffusion(nx: usize, ny: usize, nz: usize, steps: usize, cc: f32, cn: f32) -> f32 {
    let total = nx * ny * (nz + 2);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut a = vec![0.0f32; total];
    for z in 1..=nz {
        for y in 0..ny {
            for x in 0..nx {
                a[idx(x, y, z)] = noise_init(x as i32, y as i32, z as i32 - 1);
            }
        }
    }
    let mut b = a.clone();
    for _ in 0..steps {
        for z in 1..=nz {
            for y in 1..ny - 1 {
                for x in 1..nx - 1 {
                    let i = idx(x, y, z);
                    b[i] = cc * a[i]
                        + cn * (a[i - 1]
                            + a[i + 1]
                            + a[i - nx]
                            + a[i + nx]
                            + a[i - nx * ny]
                            + a[i + nx * ny]);
                }
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    let mut sum = 0.0f32;
    for z in 1..=nz {
        for y in 0..ny {
            for x in 0..nx {
                sum += a[idx(x, y, z)];
            }
        }
    }
    sum
}

/// Reference for `DefaultGen.value`.
pub fn default_gen(which: i32, r: i32, c: i32, _n: i32) -> f32 {
    let h = r * 13 + c * 7 + which * 101;
    ((h % 19) - 9) as f32 * 0.125
}

/// Reference matmul checksum: sum of C = A·B with the `DefaultGen` inputs.
pub fn reference_matmul(n: usize) -> f32 {
    let a: Vec<f32> = (0..n * n)
        .map(|i| default_gen(0, (i / n) as i32, (i % n) as i32, n as i32))
        .collect();
    let b: Vec<f32> = (0..n * n)
        .map(|i| default_gen(1, (i / n) as i32, (i % n) as i32, n as i32))
        .collect();
    let mut c = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wootinj::{GpuConfig, JitOptions, MpiCostModel, Val};

    fn rel_close(a: f32, b: f32, tol: f32) -> bool {
        let scale = a.abs().max(b.abs()).max(1.0);
        (a - b).abs() <= scale * tol
    }

    fn run_stencil(
        platform: StencilPlatform,
        opts: JitOptions,
        ranks: u32,
        nx: i32,
        ny: i32,
        nz: i32,
        steps: i32,
    ) -> f32 {
        let table = stencil_table(&[]).expect("compile stencil lib");
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose(&mut env, platform, StencilApp::default_model()).unwrap();
        let args = [
            Value::Int(nx),
            Value::Int(ny),
            Value::Int(nz),
            Value::Int(steps),
        ];
        let mut code = env.jit(&runner, "invoke", &args, opts).unwrap();
        if platform.uses_mpi() {
            code.set_mpi(ranks, MpiCostModel::default());
        }
        if platform.uses_gpu() {
            code.set_gpu(GpuConfig::default());
        }
        let report = code.invoke(&env).unwrap();
        match report.result {
            Some(Val::F32(v)) => v,
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn stencil_library_passes_the_coding_rules() {
        let table = stencil_table(&[]).unwrap();
        let report = jrules_check(&table);
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn matmul_library_passes_the_coding_rules() {
        let table = matmul_table(&[]).unwrap();
        let report = jrules_check(&table);
        assert!(report.is_ok(), "{}", report.render());
    }

    fn jrules_check(table: &ClassTable) -> jrules::RulesReport {
        jrules::check_program(table)
    }

    #[test]
    fn cpu_runner_matches_rust_reference() {
        let got = run_stencil(StencilPlatform::Cpu, JitOptions::wootinj(), 1, 10, 10, 8, 3);
        let want = reference_diffusion(10, 10, 8, 3, 0.4, 0.1);
        assert!(rel_close(got, want, 1e-5), "{got} vs {want}");
    }

    #[test]
    fn cpu_runner_matches_interpreter() {
        let table = stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let runner =
            StencilApp::compose(&mut env, StencilPlatform::Cpu, StencilApp::default_model())
                .unwrap();
        let args = [Value::Int(8), Value::Int(8), Value::Int(6), Value::Int(2)];
        let code = env
            .jit(&runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        let translated = code.invoke(&env).unwrap();
        let interpreted = env.run_interpreted(&runner, "invoke", &args).unwrap();
        match (translated.result, interpreted.result) {
            (Some(Val::F32(a)), Value::Float(b)) => assert_eq!(a, b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mpi_runner_matches_cpu_runner() {
        let cpu = run_stencil(StencilPlatform::Cpu, JitOptions::wootinj(), 1, 8, 8, 8, 3);
        for ranks in [1, 2, 4] {
            let mpi = run_stencil(
                StencilPlatform::CpuMpi,
                JitOptions::wootinj(),
                ranks,
                8,
                8,
                8,
                3,
            );
            assert!(rel_close(cpu, mpi, 1e-4), "ranks {ranks}: {cpu} vs {mpi}");
        }
    }

    #[test]
    fn gpu_runner_matches_cpu_runner() {
        let cpu = run_stencil(StencilPlatform::Cpu, JitOptions::wootinj(), 1, 8, 8, 6, 2);
        let gpu = run_stencil(StencilPlatform::Gpu, JitOptions::wootinj(), 1, 8, 8, 6, 2);
        assert!(rel_close(cpu, gpu, 1e-5), "{cpu} vs {gpu}");
    }

    #[test]
    fn gpu_mpi_runner_matches_cpu_runner() {
        let cpu = run_stencil(StencilPlatform::Cpu, JitOptions::wootinj(), 1, 8, 8, 8, 3);
        let gm = run_stencil(
            StencilPlatform::GpuMpi,
            JitOptions::wootinj(),
            2,
            8,
            8,
            8,
            3,
        );
        assert!(rel_close(cpu, gm, 1e-4), "{cpu} vs {gm}");
    }

    #[test]
    fn all_translation_modes_agree_on_cpu_stencil() {
        let full = run_stencil(StencilPlatform::Cpu, JitOptions::wootinj(), 1, 8, 8, 6, 2);
        let tmpl = run_stencil(StencilPlatform::Cpu, JitOptions::template(), 1, 8, 8, 6, 2);
        let tnv = run_stencil(
            StencilPlatform::Cpu,
            JitOptions::template_no_virt(),
            1,
            8,
            8,
            6,
            2,
        );
        let cpp = run_stencil(StencilPlatform::Cpu, JitOptions::cpp(), 1, 8, 8, 6, 2);
        assert_eq!(full, tmpl);
        assert_eq!(full, tnv);
        assert_eq!(full, cpp);
    }

    #[test]
    fn switching_the_solver_component_changes_the_result() {
        let table = stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let diff = StencilApp::compose(
            &mut env,
            StencilPlatform::Cpu,
            StencilModel::Diffusion {
                center: 0.4,
                neighbor: 0.1,
            },
        )
        .unwrap();
        let damp = StencilApp::compose(
            &mut env,
            StencilPlatform::Cpu,
            StencilModel::Damped { k: 0.5 },
        )
        .unwrap();
        let args = [Value::Int(8), Value::Int(8), Value::Int(4), Value::Int(2)];
        let a = env
            .jit(&diff, "invoke", &args, JitOptions::wootinj())
            .unwrap()
            .invoke(&env)
            .unwrap();
        let b = env
            .jit(&damp, "invoke", &args, JitOptions::wootinj())
            .unwrap()
            .invoke(&env)
            .unwrap();
        match (a.result, b.result) {
            (Some(Val::F32(x)), Some(Val::F32(y))) => assert_ne!(x, y),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn run_matmul(
        thread: MatmulThread,
        body: MatmulBody,
        calc: MatmulCalc,
        ranks: u32,
        n: i32,
    ) -> f32 {
        let table = matmul_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let app = MatmulApp::compose(&mut env, thread, body, calc).unwrap();
        let mut code = env
            .jit(&app, "start", &[Value::Int(n)], JitOptions::wootinj())
            .unwrap();
        if thread == MatmulThread::Mpi {
            code.set_mpi(ranks, MpiCostModel::default());
        }
        if matches!(body, MatmulBody::GpuNaive | MatmulBody::GpuTiled) {
            code.set_gpu(GpuConfig::default());
        }
        let report = code.invoke(&env).unwrap();
        match report.result {
            Some(Val::F32(v)) => v,
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn simple_matmul_matches_rust_reference() {
        let got = run_matmul(
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Optimized,
            1,
            12,
        );
        let want = reference_matmul(12);
        assert!(rel_close(got, want, 1e-4), "{got} vs {want}");
    }

    #[test]
    fn both_calculators_agree() {
        let simple = run_matmul(
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Simple,
            1,
            10,
        );
        let opt = run_matmul(
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Optimized,
            1,
            10,
        );
        assert_eq!(simple, opt);
    }

    #[test]
    fn fox_algorithm_matches_simple_body() {
        let seq = run_matmul(
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Optimized,
            1,
            12,
        );
        for ranks in [1u32, 4] {
            let fox = run_matmul(
                MatmulThread::Mpi,
                MatmulBody::Fox,
                MatmulCalc::Optimized,
                ranks,
                12,
            );
            assert!(rel_close(seq, fox, 1e-4), "ranks {ranks}: {seq} vs {fox}");
        }
    }

    #[test]
    fn fox_on_nine_ranks() {
        let seq = run_matmul(
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Optimized,
            1,
            18,
        );
        let fox = run_matmul(
            MatmulThread::Mpi,
            MatmulBody::Fox,
            MatmulCalc::Optimized,
            9,
            18,
        );
        assert!(rel_close(seq, fox, 1e-4), "{seq} vs {fox}");
    }

    #[test]
    fn gpu_matmul_matches_cpu() {
        let seq = run_matmul(
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Optimized,
            1,
            16,
        );
        let gpu = run_matmul(
            MatmulThread::Gpu,
            MatmulBody::GpuNaive,
            MatmulCalc::Optimized,
            1,
            16,
        );
        assert!(rel_close(seq, gpu, 1e-4), "{seq} vs {gpu}");
    }

    #[test]
    fn tiled_gpu_kernel_matches_naive() {
        let naive = run_matmul(
            MatmulThread::Gpu,
            MatmulBody::GpuNaive,
            MatmulCalc::Optimized,
            1,
            16,
        );
        let tiled = run_matmul(
            MatmulThread::Gpu,
            MatmulBody::GpuTiled,
            MatmulCalc::Optimized,
            1,
            16,
        );
        assert!(rel_close(naive, tiled, 1e-4), "{naive} vs {tiled}");
    }

    #[test]
    fn matmul_interpreted_matches_translated() {
        let table = matmul_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Simple,
        )
        .unwrap();
        let code = env
            .jit(&app, "start", &[Value::Int(8)], JitOptions::wootinj())
            .unwrap();
        let t = code.invoke(&env).unwrap();
        let i = env
            .run_interpreted(&app, "start", &[Value::Int(8)])
            .unwrap();
        match (t.result, i.result) {
            (Some(Val::F32(a)), Value::Float(b)) => assert_eq!(a, b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simple_calculator_is_slower_than_optimized_under_cpp_mode() {
        // Through the Matrix abstraction, per-element virtual calls pile
        // up in C++ mode; OptimizedCalculator works on raw arrays.
        let table = matmul_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let mut vtimes = Vec::new();
        for calc in [MatmulCalc::Simple, MatmulCalc::Optimized] {
            let app = MatmulApp::compose(&mut env, MatmulThread::CpuLoop, MatmulBody::Simple, calc)
                .unwrap();
            let code = env
                .jit(&app, "start", &[Value::Int(12)], JitOptions::cpp())
                .unwrap();
            vtimes.push(code.invoke(&env).unwrap().vtime_cycles);
        }
        assert!(
            vtimes[0] > vtimes[1],
            "virtual get/set must cost more: {} vs {}",
            vtimes[0],
            vtimes[1]
        );
    }

    #[test]
    fn listing1_generic_1d_solver_matches_reference() {
        let table = stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let runner = Stencil1D::compose_diffusion(&mut env, 0.1, 0.8).unwrap();
        let args = [Value::Int(64), Value::Int(5)];
        let want = reference_diffusion_1d(64, 5, 0.1, 0.8);
        // All translation modes and the interpreter agree with the
        // reference — including the zero-leaf EmptyContext component.
        for opts in [
            JitOptions::wootinj(),
            JitOptions::template(),
            JitOptions::cpp(),
        ] {
            let code = env.jit(&runner, "invoke", &args, opts).unwrap();
            match code.invoke(&env).unwrap().result {
                Some(Val::F32(v)) => assert_eq!(v, want),
                other => panic!("unexpected {other:?}"),
            }
        }
        let i = env.run_interpreted(&runner, "invoke", &args).unwrap();
        assert_eq!(i.result, Value::Float(want));
    }

    #[test]
    fn context_component_customizes_the_1d_solver() {
        let table = stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let diff = Stencil1D::compose_diffusion(&mut env, 0.1, 0.8).unwrap();
        let damp = Stencil1D::compose_damped(&mut env, 0.3).unwrap();
        let args = [Value::Int(32), Value::Int(3)];
        let a = env
            .jit(&diff, "invoke", &args, JitOptions::wootinj())
            .unwrap()
            .invoke(&env)
            .unwrap();
        let b = env
            .jit(&damp, "invoke", &args, JitOptions::wootinj())
            .unwrap()
            .invoke(&env)
            .unwrap();
        match (a.result, b.result) {
            (Some(Val::F32(x)), Some(Val::F32(y))) => assert_ne!(x, y),
            other => panic!("unexpected {other:?}"),
        }
        // The damped run must match its own Rust reference.
        let mut src: Vec<f32> = (0..32).map(|x| noise_init(x, 0, 0)).collect();
        let mut dst = src.clone();
        for _ in 0..3 {
            for x in 1..31 {
                let avg = (src[x - 1] + src[x + 1]) * 0.5;
                dst[x] = src[x] + 0.3 * (avg - src[x]);
            }
            std::mem::swap(&mut src, &mut dst);
        }
        let want: f32 = src.iter().sum();
        assert_eq!(b.result, Some(Val::F32(want)));
    }

    #[test]
    fn rule4_rejects_bound_as_type_argument_in_1d_library() {
        // Instantiating Stencil1DRunner<SolverCtx> (the bound itself)
        // violates rule 4; a client doing so is rejected.
        let client = "
            @WootinJ final class BadClient {
              BadClient() { }
              float go(OneDSolver<SolverCtx> s, SolverCtx ctx, GridInit i) {
                Stencil1DRunner<SolverCtx> r = new Stencil1DRunner<SolverCtx>(s, ctx, i);
                return r.invoke(8, 1);
              }
            }";
        let table = stencil_table(&[("bad.jl", client)]);
        // Type checking alone accepts it (SolverCtx <= SolverCtx)...
        let table = match table {
            Ok(t) => t,
            Err(ds) => panic!(
                "should typecheck, rules reject later:\n{}",
                jlang::render_diags(&ds)
            ),
        };
        // ...but the rules checker rejects rule 4.
        let report = jrules::check_program(&table);
        assert!(
            report
                .violations
                .iter()
                .any(|d| d.message.contains("rule 4")),
            "{}",
            report.render()
        );
    }

    #[test]
    fn reduce_library_passes_the_coding_rules() {
        let table = reduce_table(&[]).unwrap();
        let report = jrules_check(&table);
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn reduce_cpu_matches_reference_for_every_op() {
        let table = reduce_table(&[]).unwrap();
        for op in [
            ReduceOp::Identity,
            ReduceOp::Square,
            ReduceOp::Abs,
            ReduceOp::Affine { a: 1.5, b: -0.25 },
        ] {
            let mut env = WootinJ::new(&table).unwrap();
            let app = ReduceApp::compose(&mut env, ReducePlatform::Cpu, op, 0.125).unwrap();
            let code = env
                .jit(&app, "reduce", &[Value::Int(300)], JitOptions::wootinj())
                .unwrap();
            let got = match code.invoke(&env).unwrap().result {
                Some(Val::F64(v)) => v,
                other => panic!("unexpected {other:?}"),
            };
            let want = reference_reduce(300, op, 0.125);
            assert!(
                (got - want).abs() < want.abs().max(1.0) * 1e-9,
                "{op:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn reduce_mpi_handles_uneven_division() {
        // n = 301 over 4 ranks: the last rank takes the remainder.
        let table = reduce_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let app =
            ReduceApp::compose(&mut env, ReducePlatform::Mpi, ReduceOp::Square, 0.125).unwrap();
        let mut code = env
            .jit(&app, "reduce", &[Value::Int(301)], JitOptions::wootinj())
            .unwrap();
        code.set_mpi(4, MpiCostModel::default());
        let got = match code.invoke(&env).unwrap().result {
            Some(Val::F64(v)) => v,
            other => panic!("unexpected {other:?}"),
        };
        let want = reference_reduce(301, ReduceOp::Square, 0.125);
        assert!((got - want).abs() < want.abs() * 1e-6, "{got} vs {want}");
    }

    #[test]
    fn reduce_gpu_tree_reduction_matches_cpu() {
        // The shared-memory tree kernel synchronizes inside a loop — the
        // hardest barrier pattern; its result must match the sequential
        // sum (different f32 summation order, so use a tolerance).
        let table = reduce_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let app =
            ReduceApp::compose(&mut env, ReducePlatform::Gpu, ReduceOp::Square, 0.125).unwrap();
        let mut code = env
            .jit(&app, "reduce", &[Value::Int(500)], JitOptions::wootinj())
            .unwrap();
        code.set_gpu(GpuConfig::default());
        let got = match code.invoke(&env).unwrap().result {
            Some(Val::F64(v)) => v,
            other => panic!("unexpected {other:?}"),
        };
        let want = reference_reduce(500, ReduceOp::Square, 0.125);
        assert!((got - want).abs() < want.abs() * 1e-4, "{got} vs {want}");
    }

    #[test]
    fn boxed_runner_matches_plain_runner() {
        let table = stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let plain =
            StencilApp::compose(&mut env, StencilPlatform::Cpu, StencilApp::default_model())
                .unwrap();
        let boxed = StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap();
        let args = [Value::Int(8), Value::Int(8), Value::Int(6), Value::Int(2)];
        let a = env
            .jit(&plain, "invoke", &args, JitOptions::wootinj())
            .unwrap()
            .invoke(&env)
            .unwrap();
        let b = env
            .jit(&boxed, "invoke", &args, JitOptions::wootinj())
            .unwrap()
            .invoke(&env)
            .unwrap();
        match (a.result, b.result) {
            (Some(Val::F32(x)), Some(Val::F32(y))) => assert_eq!(x, y),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boxed_runner_figure3_ordering() {
        // The Figure 3 / Figure 17 shape: with ScalarFloat boxing, the
        // unoptimized C++ baseline pays a heap allocation per read while
        // object inlining erases the boxes: a large multiple, not a few
        // percent. Template (inline+SROA) lands near WootinJ.
        let table = stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let boxed = StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap();
        let args = [Value::Int(8), Value::Int(8), Value::Int(6), Value::Int(2)];
        let mut vtimes = std::collections::HashMap::new();
        for (name, opts) in [
            ("wootinj", JitOptions::wootinj()),
            ("template", JitOptions::template()),
            ("cpp", JitOptions::cpp()),
        ] {
            let code = env.jit(&boxed, "invoke", &args, opts).unwrap();
            vtimes.insert(name, code.invoke(&env).unwrap().vtime_cycles);
        }
        let (w, t, c) = (vtimes["wootinj"], vtimes["template"], vtimes["cpp"]);
        assert!(c > w * 3, "C++ must pay boxing dearly: cpp={c} wootinj={w}");
        assert!(
            t < c / 2,
            "Template value semantics avoid most boxing: tmpl={t} cpp={c}"
        );
    }

    #[test]
    fn weak_scaling_mpi_stencil_efficiency_shape() {
        // Weak scaling: per-rank work constant; vtime grows only by the
        // communication term. The 4-rank run must stay within a modest
        // factor of the 1-rank run (this is Figure 4's shape).
        let t1 = {
            let table = stencil_table(&[]).unwrap();
            let mut env = WootinJ::new(&table).unwrap();
            let runner = StencilApp::compose(
                &mut env,
                StencilPlatform::CpuMpi,
                StencilApp::default_model(),
            )
            .unwrap();
            let args = [Value::Int(8), Value::Int(8), Value::Int(4), Value::Int(2)];
            let mut code = env
                .jit(&runner, "invoke", &args, JitOptions::wootinj())
                .unwrap();
            code.set_mpi(1, MpiCostModel::default());
            code.invoke(&env).unwrap().vtime_cycles
        };
        let t4 = {
            let table = stencil_table(&[]).unwrap();
            let mut env = WootinJ::new(&table).unwrap();
            let runner = StencilApp::compose(
                &mut env,
                StencilPlatform::CpuMpi,
                StencilApp::default_model(),
            )
            .unwrap();
            // 4x the global depth => same per-rank slab.
            let args = [Value::Int(8), Value::Int(8), Value::Int(16), Value::Int(2)];
            let mut code = env
                .jit(&runner, "invoke", &args, JitOptions::wootinj())
                .unwrap();
            code.set_mpi(4, MpiCostModel::default());
            code.invoke(&env).unwrap().vtime_cycles
        };
        assert!(
            t4 < t1 * 3,
            "weak scaling should be sub-linear in ranks: t1={t1} t4={t4}"
        );
        assert!(
            t4 > t1,
            "communication must cost something: t1={t1} t4={t4}"
        );
    }
}
