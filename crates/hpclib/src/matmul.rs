//! The matrix-multiplication class library (paper §4.2, Figure 8).
//!
//! Three component kinds, each behind an interface:
//!
//! * **`OuterThread`** — how to run the kernel computation in parallel:
//!   `CPULoop` (sequential), `MPIThread` (message passing), `GPUThread`
//!   (device offload).
//! * **`OuterThreadBody`** — the parallel algorithm: `SimpleOuterBody`
//!   (one local multiply) and `FoxAlgorithm` (the blocked Fox algorithm on
//!   a √p × √p rank grid). `MPIThread` and `FoxAlgorithm` reference each
//!   other exactly like the paper's Listing 6 — the case C++ templates
//!   could not express without abandoning reuse.
//! * **`Calculator`** — the innermost multiply-accumulate: a naive
//!   `SimpleCalculator` going through the `Matrix` abstraction per element
//!   and an `OptimizedCalculator` on raw arrays.
//!
//! `MatrixGen` seeds deterministic input blocks so every configuration is
//! cross-checkable; `start` returns the checksum of the product.

/// jlang source of the matmul library.
pub const MATMUL_LIB: &str = r#"
// ---- data feature -------------------------------------------------------

@WootinJ interface Matrix {
  float get(int r, int c);
  void set(int r, int c, float v);
  int size();
  float[] data();
}

@WootinJ final class SimpleMatrix implements Matrix {
  float[] d;
  int n;
  SimpleMatrix(float[] d0, int n0) { d = d0; n = n0; }
  float get(int r, int c) { return d[r * n + c]; }
  void set(int r, int c, float v) { d[r * n + c] = v; }
  int size() { return n; }
  float[] data() { return d; }
}

@WootinJ interface MatrixGen {
  // value of element (r, c) of the n x n matrix `which` (0 = A, 1 = B)
  float value(int which, int r, int c, int n);
}

@WootinJ final class DefaultGen implements MatrixGen {
  DefaultGen() { }
  float value(int which, int r, int c, int n) {
    int h = r * 13 + c * 7 + which * 101;
    int m = h % 19;
    return (m - 9) * 0.125f;
  }
}

// ---- calculator feature --------------------------------------------------

@WootinJ interface Calculator {
  void multiplyAdd(Matrix a, Matrix b, Matrix c);
}

// Per-element virtual accessors: the abstraction cost the paper measures.
@WootinJ final class SimpleCalculator implements Calculator {
  SimpleCalculator() { }
  void multiplyAdd(Matrix a, Matrix b, Matrix c) {
    int n = a.size();
    for (int i = 0; i < n; i++) {
      for (int k = 0; k < n; k++) {
        float aik = a.get(i, k);
        for (int j = 0; j < n; j++) {
          c.set(i, j, c.get(i, j) + aik * b.get(k, j));
        }
      }
    }
  }
}

// Raw-array inner loops (the paper's OptimizedCalculator).
@WootinJ final class OptimizedCalculator implements Calculator {
  OptimizedCalculator() { }
  void multiplyAdd(Matrix a, Matrix b, Matrix c) {
    int n = a.size();
    float[] ad = a.data();
    float[] bd = b.data();
    float[] cd = c.data();
    for (int i = 0; i < n; i++) {
      int irow = i * n;
      for (int k = 0; k < n; k++) {
        float aik = ad[irow + k];
        int krow = k * n;
        for (int j = 0; j < n; j++) {
          cd[irow + j] += aik * bd[krow + j];
        }
      }
    }
  }
}

// ---- thread / body features (Listing 6's mutual reference) ---------------

@WootinJ interface OuterThread {
  float start(int n);
}

// Rule 2 forbids non-leaf *return* types, so components travel as
// parameters (which may be non-leaf) — exactly the paper's Listing 6
// shape: `body.run(this, a, ...)`.
@WootinJ interface OuterThreadBody {
  float run(OuterThread thread, Calculator calc, MatrixGen gen, int n);
}

// Sequential driver.
@WootinJ final class CPULoop implements OuterThread {
  OuterThreadBody body;
  Calculator calculator;
  MatrixGen generator;
  CPULoop(OuterThreadBody b, Calculator c, MatrixGen g) {
    body = b; calculator = c; generator = g;
  }
  float start(int n) { return body.run(this, calculator, generator, n); }
}

// Message-passing driver (the paper's MPIThread).
@WootinJ final class MPIThread implements OuterThread {
  OuterThreadBody body;
  Calculator calculator;
  MatrixGen generator;
  MPIThread(OuterThreadBody b, Calculator c, MatrixGen g) {
    body = b; calculator = c; generator = g;
  }
  float start(int n) { return body.run(this, calculator, generator, n); }
}

// One whole local multiply: C = A * B, checksum(C).
@WootinJ final class SimpleOuterBody implements OuterThreadBody {
  SimpleOuterBody() { }
  float run(OuterThread thread, Calculator calc, MatrixGen gen, int n) {
    float[] ad = new float[n * n];
    float[] bd = new float[n * n];
    float[] cd = new float[n * n];
    for (int r = 0; r < n; r++) {
      for (int c = 0; c < n; c++) {
        ad[r * n + c] = gen.value(0, r, c, n);
        bd[r * n + c] = gen.value(1, r, c, n);
      }
    }
    calc.multiplyAdd(
      new SimpleMatrix(ad, n), new SimpleMatrix(bd, n), new SimpleMatrix(cd, n));
    float sum = 0f;
    for (int i = 0; i < n * n; i++) { sum += cd[i]; }
    return sum;
  }
}

// Fox's algorithm on a sqrt(p) x sqrt(p) process grid; n is the GLOBAL
// matrix dimension and must divide evenly into q local blocks.
@WootinJ final class FoxAlgorithm implements OuterThreadBody {
  FoxAlgorithm() { }

  int intSqrt(int p) {
    int q = 0;
    while ((q + 1) * (q + 1) <= p) { q = q + 1; }
    return q;
  }

  float run(OuterThread thread, Calculator calc, MatrixGen gen, int n) {
    int rank = MPI.rank();
    int size = MPI.size();
    int q = intSqrt(size);
    int row = rank / q;
    int col = rank % q;
    int m = n / q;
    int mm = m * m;
    float[] a = new float[mm];
    float[] b = new float[mm];
    float[] c = new float[mm];
    float[] abuf = new float[mm];
    // Global block (row, col): element (r, c) is global (row*m+r, col*m+c).
    for (int r = 0; r < m; r++) {
      for (int cc = 0; cc < m; cc++) {
        a[r * m + cc] = gen.value(0, row * m + r, col * m + cc, n);
        b[r * m + cc] = gen.value(1, row * m + r, col * m + cc, n);
      }
    }
    for (int k = 0; k < q; k++) {
      int rootCol = (row + k) % q;
      if (col == rootCol) {
        WJ.arraycopyF(a, 0, abuf, 0, mm);
        for (int j = 0; j < q; j++) {
          if (j != col) {
            MPI.sendF(abuf, 0, mm, row * q + j, 10 + k);
          }
        }
      } else {
        MPI.recvF(abuf, 0, mm, row * q + rootCol, 10 + k);
      }
      calc.multiplyAdd(
        new SimpleMatrix(abuf, m), new SimpleMatrix(b, m), new SimpleMatrix(c, m));
      // Shift B up the column (with wraparound).
      int up = ((row + q - 1) % q) * q + col;
      int down = ((row + 1) % q) * q + col;
      MPI.sendF(b, 0, mm, up, 100 + k);
      MPI.recvF(b, 0, mm, down, 100 + k);
    }
    float local = 0f;
    for (int i = 0; i < mm; i++) { local += c[i]; }
    return MPI.allreduceSumF(local);
  }
}

// ---- GPU feature ----------------------------------------------------------

// Device offload with a naive one-thread-per-element kernel.
@WootinJ final class GPUThread implements OuterThread {
  OuterThreadBody body;
  Calculator calculator;
  MatrixGen generator;
  GPUThread(OuterThreadBody b, Calculator c, MatrixGen g) {
    body = b; calculator = c; generator = g;
  }
  float start(int n) { return body.run(this, calculator, generator, n); }
}

@WootinJ final class GpuOuterBody implements OuterThreadBody {
  GpuOuterBody() { }
  float run(OuterThread thread, Calculator calc, MatrixGen gen, int n) {
    float[] ad = new float[n * n];
    float[] bd = new float[n * n];
    float[] cd = new float[n * n];
    for (int r = 0; r < n; r++) {
      for (int c = 0; c < n; c++) {
        ad[r * n + c] = gen.value(0, r, c, n);
        bd[r * n + c] = gen.value(1, r, c, n);
      }
    }
    float[] da = CUDA.copyToGPU(ad);
    float[] db = CUDA.copyToGPU(bd);
    float[] dc = CUDA.copyToGPU(cd);
    int threads = 64;
    int blocks = (n * n + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    mmKernel(conf, da, db, dc, n);
    CUDA.copyFromGPU(cd, dc);
    CUDA.free(da);
    CUDA.free(db);
    CUDA.free(dc);
    float sum = 0f;
    for (int i = 0; i < n * n; i++) { sum += cd[i]; }
    return sum;
  }

  @Global void mmKernel(CudaConfig conf, float[] a, float[] b, float[] c, int n) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    if (gid < n * n) {
      int i = gid / n;
      int j = gid % n;
      float acc = 0f;
      for (int k = 0; k < n; k++) {
        acc += a[i * n + k] * b[k * n + j];
      }
      c[gid] = acc;
    }
  }
}

// Fox schedule with the block multiplications offloaded to the GPU
// (the paper's GPU+MPI matmul configuration: "all the computation was
// performed on GPUs and CPUs were used only for inter-node
// communication").
@WootinJ final class FoxGpuAlgorithm implements OuterThreadBody {
  FoxGpuAlgorithm() { }

  int intSqrt(int p) {
    int q = 0;
    while ((q + 1) * (q + 1) <= p) { q = q + 1; }
    return q;
  }

  float run(OuterThread thread, Calculator calc, MatrixGen gen, int n) {
    int rank = MPI.rank();
    int size = MPI.size();
    int q = intSqrt(size);
    int row = rank / q;
    int col = rank % q;
    int m = n / q;
    int mm = m * m;
    float[] a = new float[mm];
    float[] b = new float[mm];
    float[] c = new float[mm];
    float[] abuf = new float[mm];
    for (int r = 0; r < m; r++) {
      for (int cc = 0; cc < m; cc++) {
        a[r * m + cc] = gen.value(0, row * m + r, col * m + cc, n);
        b[r * m + cc] = gen.value(1, row * m + r, col * m + cc, n);
      }
    }
    float[] dA = CUDA.allocF32(mm);
    float[] dB = CUDA.allocF32(mm);
    float[] dC = CUDA.copyToGPU(c);
    int threads = 64;
    int blocks = (mm + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    for (int k = 0; k < q; k++) {
      int rootCol = (row + k) % q;
      if (col == rootCol) {
        WJ.arraycopyF(a, 0, abuf, 0, mm);
        for (int j = 0; j < q; j++) {
          if (j != col) { MPI.sendF(abuf, 0, mm, row * q + j, 10 + k); }
        }
      } else {
        MPI.recvF(abuf, 0, mm, row * q + rootCol, 10 + k);
      }
      CUDA.copyInRange(dA, 0, abuf, 0, mm);
      CUDA.copyInRange(dB, 0, b, 0, mm);
      mmAcc(conf, dA, dB, dC, m);
      int up = ((row + q - 1) % q) * q + col;
      int down = ((row + 1) % q) * q + col;
      MPI.sendF(b, 0, mm, up, 100 + k);
      MPI.recvF(b, 0, mm, down, 100 + k);
    }
    CUDA.copyFromGPU(c, dC);
    CUDA.free(dA);
    CUDA.free(dB);
    CUDA.free(dC);
    float local = 0f;
    for (int i = 0; i < mm; i++) { local += c[i]; }
    return MPI.allreduceSumF(local);
  }

  @Global void mmAcc(CudaConfig conf, float[] a, float[] b, float[] c, int m) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    if (gid < m * m) {
      int i = gid / m;
      int j = gid % m;
      float acc = c[gid];
      for (int k = 0; k < m; k++) {
        acc += a[i * m + k] * b[k * m + j];
      }
      c[gid] = acc;
    }
  }
}

// Extension: a shared-memory tiled kernel (8x8 tiles, __shared__ staging
// with __syncthreads) — the paper's future-work-grade optimization.
// Requires n to be a multiple of 8.
@WootinJ final class TiledGpuBody implements OuterThreadBody {
  TiledGpuBody() { }
  float run(OuterThread thread, Calculator calc, MatrixGen gen, int n) {
    float[] ad = new float[n * n];
    float[] bd = new float[n * n];
    float[] cd = new float[n * n];
    for (int r = 0; r < n; r++) {
      for (int c = 0; c < n; c++) {
        ad[r * n + c] = gen.value(0, r, c, n);
        bd[r * n + c] = gen.value(1, r, c, n);
      }
    }
    float[] da = CUDA.copyToGPU(ad);
    float[] db = CUDA.copyToGPU(bd);
    float[] dc = CUDA.copyToGPU(cd);
    int tiles = n / 8;
    CudaConfig conf = new CudaConfig(new dim3(tiles, tiles, 1), new dim3(8, 8, 1));
    mmTiled(conf, da, db, dc, n);
    CUDA.copyFromGPU(cd, dc);
    CUDA.free(da);
    CUDA.free(db);
    CUDA.free(dc);
    float sum = 0f;
    for (int i = 0; i < n * n; i++) { sum += cd[i]; }
    return sum;
  }

  @Global void mmTiled(CudaConfig conf, float[] a, float[] b, float[] c, int n) {
    float[] ta = CUDA.sharedF32(64);
    float[] tb = CUDA.sharedF32(64);
    int tx = CUDA.threadIdxX();
    int ty = CUDA.threadIdxY();
    int colBase = CUDA.blockIdxX() * 8;
    int rowBase = CUDA.blockIdxY() * 8;
    int row = rowBase + ty;
    int col = colBase + tx;
    float acc = 0f;
    int tiles = n / 8;
    for (int t = 0; t < tiles; t++) {
      ta[ty * 8 + tx] = a[row * n + t * 8 + tx];
      tb[ty * 8 + tx] = b[(t * 8 + ty) * n + col];
      CUDA.sync();
      for (int k = 0; k < 8; k++) {
        acc += ta[ty * 8 + k] * tb[k * 8 + tx];
      }
      CUDA.sync();
    }
    c[row * n + col] = acc;
  }
}
"#;
