//! The stencil-computation class library (paper §2, Figures 1–2).
//!
//! Mirrors the feature model: the *physical model* is a `Solver3D`
//! component, *initialization* a `GridInit` component, the shared kernel
//! a `Stencil3DKernel`, and the *parallelism* feature is selected by
//! choosing a runner class:
//!
//! | runner | paper class | platform |
//! |---|---|---|
//! | `StencilCPU3D`     | `StencilCPU4DblBuffer`  | one CPU, double buffering |
//! | `StencilCPU3D_MPI` | `StencilCPU4DblB_MPI`   | MPI, z-decomposition |
//! | `StencilGPU3D`     | `StencilGPU4DblB`       | one GPU |
//! | `StencilGPU3D_MPI` | `StencilGPU4DblB_MPI`   | GPU per node + MPI halo exchange |
//!
//! All classes obey the WootinJ coding rules; `invoke` returns the grid
//! checksum so every configuration can be validated against every other.
//!
//! The grid is `nx × ny × nz` with one ghost plane below (`z = 0`) and one
//! above (`z = nz + 1`); x/y boundaries are held fixed (Dirichlet).
//! Double buffering swaps *local* array variables — under object inlining
//! objects are value bundles, so field swapping would not propagate; this
//! is the idiom the coding rules induce (see DESIGN.md).

/// jlang source of the stencil library.
pub const STENCIL_LIB: &str = r#"
// ---- physical model feature ------------------------------------------

@WootinJ interface Solver3D {
  float solve(float c, float xm, float xp, float ym, float yp, float zm, float zp);
}

// Three-dimensional diffusion equation (the paper's Dif3DSolver).
@WootinJ final class Dif3DSolver implements Solver3D {
  float cc; float cn;
  Dif3DSolver(float center, float neighbor) { cc = center; cn = neighbor; }
  float solve(float c, float xm, float xp, float ym, float yp, float zm, float zp) {
    return cc * c + cn * (xm + xp + ym + yp + zm + zp);
  }
}

// An alternative damped-averaging kernel (used by tests to check
// that a *different* solver component really changes the computation).
@WootinJ final class DampedSolver implements Solver3D {
  float k;
  DampedSolver(float k0) { k = k0; }
  float solve(float c, float xm, float xp, float ym, float yp, float zm, float zp) {
    float avg = (xm + xp + ym + yp + zm + zp) * 0.16666667f;
    return c + k * (avg - c);
  }
}

// ---- boxed physical-model API (the paper's Listing 1 style) -----------
// Every value travels in a ScalarFloat box. Object inlining erases the
// boxes entirely; the unoptimized baselines pay a heap allocation per
// read — this is the Figure 3 / Figure 17 gap.

@WootinJ final class ScalarFloat {
  float v;
  ScalarFloat(float v0) { v = v0; }
  float val() { return v; }
}

@WootinJ interface BoxedSolver3D {
  ScalarFloat solve(ScalarFloat c, ScalarFloat xm, ScalarFloat xp,
                    ScalarFloat ym, ScalarFloat yp,
                    ScalarFloat zm, ScalarFloat zp);
}

@WootinJ final class Dif3DSolverBoxed implements BoxedSolver3D {
  float cc; float cn;
  Dif3DSolverBoxed(float center, float neighbor) { cc = center; cn = neighbor; }
  ScalarFloat solve(ScalarFloat c, ScalarFloat xm, ScalarFloat xp,
                    ScalarFloat ym, ScalarFloat yp,
                    ScalarFloat zm, ScalarFloat zp) {
    float value = cc * c.val()
      + cn * (xm.val() + xp.val() + ym.val() + yp.val() + zm.val() + zp.val());
    return new ScalarFloat(value);
  }
}

// ---- one-dimensional solver family (the paper's Listing 1/2) -----------
// Exercises generics under rule 4: solvers are generic over a context
// component whose bound's direct subclasses must all be strict-final and
// semi-immutable, and whose instantiations must be proper subclasses.

@WootinJ interface SolverCtx { }

@WootinJ final class EmptyContext implements SolverCtx {
  EmptyContext() { }
}

// A context carrying a damping coefficient.
@WootinJ final class DampingCtx implements SolverCtx {
  float k;
  DampingCtx(float k0) { k = k0; }
  float k() { return k; }
}

@WootinJ interface OneDSolver<C extends SolverCtx> {
  ScalarFloat solve(ScalarFloat left, ScalarFloat right, ScalarFloat self, C context);
}

// Listing 1: the one-dimensional diffusion solver.
@WootinJ final class Dif1DSolver implements OneDSolver<EmptyContext> {
  float a; float b;
  Dif1DSolver(float a0, float b0) { a = a0; b = b0; }
  ScalarFloat solve(ScalarFloat left, ScalarFloat right, ScalarFloat self,
                    EmptyContext context) {
    float value = a * (left.val() + right.val()) + b * self.val();
    return new ScalarFloat(value);
  }
}

// A context-using variant: damped averaging with the coefficient taken
// from the composed DampingCtx component.
@WootinJ final class Damped1DSolver implements OneDSolver<DampingCtx> {
  Damped1DSolver() { }
  ScalarFloat solve(ScalarFloat left, ScalarFloat right, ScalarFloat self,
                    DampingCtx context) {
    float avg = (left.val() + right.val()) * 0.5f;
    float value = self.val() + context.k() * (avg - self.val());
    return new ScalarFloat(value);
  }
}

// The generic 1-D runner (Listing 2's composition target).
@WootinJ final class Stencil1DRunner<C extends SolverCtx> {
  OneDSolver<C> solver;
  C context;
  GridInit init;
  Stencil1DRunner(OneDSolver<C> s, C ctx, GridInit i) {
    solver = s;
    context = ctx;
    init = i;
  }
  float invoke(int n, int steps) {
    float[] a = new float[n];
    float[] b = new float[n];
    for (int x = 0; x < n; x++) { a[x] = init.value(x, 0, 0); }
    WJ.arraycopyF(a, 0, b, 0, n);
    float[] src = a;
    float[] dst = b;
    for (int t = 0; t < steps; t++) {
      for (int x = 1; x < n - 1; x++) {
        ScalarFloat r = solver.solve(
          new ScalarFloat(src[x - 1]),
          new ScalarFloat(src[x + 1]),
          new ScalarFloat(src[x]),
          context);
        dst[x] = r.val();
      }
      float[] tmp = src;
      src = dst;
      dst = tmp;
    }
    float sum = 0f;
    for (int x = 0; x < n; x++) { sum += src[x]; }
    return sum;
  }
}

// ---- initialization feature ------------------------------------------

@WootinJ interface GridInit {
  float value(int x, int y, int z);
}

// Deterministic pseudo-random field.
@WootinJ final class NoiseInit implements GridInit {
  NoiseInit() { }
  float value(int x, int y, int z) {
    int h = x * 31 + y * 17 + z * 7;
    int m = h % 97;
    return m * 0.01f;
  }
}

// A centered Gaussian-ish bump (pure integer arithmetic).
@WootinJ final class BumpInit implements GridInit {
  int cx; int cy; int cz;
  BumpInit(int cx0, int cy0, int cz0) { cx = cx0; cy = cy0; cz = cz0; }
  float value(int x, int y, int z) {
    int dx = x - cx; int dy = y - cy; int dz = z - cz;
    int d2 = dx * dx + dy * dy + dz * dz;
    float v = 100.0f / (1.0f + d2);
    return v;
  }
}

// ---- shared kernel component -------------------------------------------
// One sweep over the interior + checksum; every runner composes this.

@WootinJ final class Stencil3DKernel {
  Solver3D solver;
  Stencil3DKernel(Solver3D s) { solver = s; }

  // src/dst include ghost planes: index (z*ny + y)*nx + x, z in 0..nz+1.
  void step(float[] src, float[] dst, int nx, int ny, int nz) {
    for (int z = 1; z <= nz; z++) {
      for (int y = 1; y < ny - 1; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 1; x < nx - 1; x++) {
          int idx = rowBase + x;
          dst[idx] = solver.solve(
            src[idx],
            src[idx - 1], src[idx + 1],
            src[idx - nx], src[idx + nx],
            src[idx - nx * ny], src[idx + nx * ny]);
        }
      }
    }
  }

  float checksum(float[] grid, int nx, int ny, int nz) {
    float sum = 0f;
    for (int z = 1; z <= nz; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          sum += grid[rowBase + x];
        }
      }
    }
    return sum;
  }

  // Fill the owned region from the init component; ghosts stay zero.
  // zOffset maps local z=1 to the global plane index.
  void fill(float[] grid, GridInit init, int nx, int ny, int nz, int zOffset) {
    for (int z = 1; z <= nz; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          grid[rowBase + x] = init.value(x, y, zOffset + z - 1);
        }
      }
    }
  }
}

// Boxed kernel component: boxes every neighborhood read (Listing 1).
@WootinJ final class BoxedStencil3DKernel {
  BoxedSolver3D solver;
  BoxedStencil3DKernel(BoxedSolver3D s) { solver = s; }

  void step(float[] src, float[] dst, int nx, int ny, int nz) {
    for (int z = 1; z <= nz; z++) {
      for (int y = 1; y < ny - 1; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 1; x < nx - 1; x++) {
          int idx = rowBase + x;
          ScalarFloat r = solver.solve(
            new ScalarFloat(src[idx]),
            new ScalarFloat(src[idx - 1]), new ScalarFloat(src[idx + 1]),
            new ScalarFloat(src[idx - nx]), new ScalarFloat(src[idx + nx]),
            new ScalarFloat(src[idx - nx * ny]), new ScalarFloat(src[idx + nx * ny]));
          dst[idx] = r.val();
        }
      }
    }
  }
}

// ---- parallelism feature: runners --------------------------------------

@WootinJ interface StencilRunner {
  float invoke(int nx, int ny, int nz, int steps);
}

// Sequential CPU using the boxed (Listing-1 style) solver API.
@WootinJ final class StencilCPU3DBoxed implements StencilRunner {
  BoxedStencil3DKernel kernel;
  Stencil3DKernel helper;
  GridInit init;
  StencilCPU3DBoxed(BoxedSolver3D s, Solver3D plain, GridInit i) {
    kernel = new BoxedStencil3DKernel(s);
    helper = new Stencil3DKernel(plain);
    init = i;
  }
  float invoke(int nx, int ny, int nz, int steps) {
    int total = nx * ny * (nz + 2);
    float[] a = new float[total];
    float[] b = new float[total];
    helper.fill(a, init, nx, ny, nz, 0);
    WJ.arraycopyF(a, 0, b, 0, total);
    float[] src = a;
    float[] dst = b;
    for (int t = 0; t < steps; t++) {
      kernel.step(src, dst, nx, ny, nz);
      float[] tmp = src;
      src = dst;
      dst = tmp;
    }
    return helper.checksum(src, nx, ny, nz);
  }
}

// Sequential CPU with double buffering.
@WootinJ final class StencilCPU3D implements StencilRunner {
  Stencil3DKernel kernel;
  GridInit init;
  StencilCPU3D(Solver3D s, GridInit i) {
    kernel = new Stencil3DKernel(s);
    init = i;
  }
  float invoke(int nx, int ny, int nz, int steps) {
    int total = nx * ny * (nz + 2);
    float[] a = new float[total];
    float[] b = new float[total];
    kernel.fill(a, init, nx, ny, nz, 0);
    WJ.arraycopyF(a, 0, b, 0, total);
    float[] src = a;
    float[] dst = b;
    for (int t = 0; t < steps; t++) {
      kernel.step(src, dst, nx, ny, nz);
      float[] tmp = src;
      src = dst;
      dst = tmp;
    }
    return kernel.checksum(src, nx, ny, nz);
  }
}

// MPI runner: nz is the *global* depth, decomposed in equal slabs along z.
@WootinJ final class StencilCPU3D_MPI implements StencilRunner {
  Stencil3DKernel kernel;
  GridInit init;
  StencilCPU3D_MPI(Solver3D s, GridInit i) {
    kernel = new Stencil3DKernel(s);
    init = i;
  }
  float invoke(int nx, int ny, int nz, int steps) {
    int rank = MPI.rank();
    int size = MPI.size();
    int nzl = nz / size;
    int plane = nx * ny;
    int total = plane * (nzl + 2);
    float[] a = new float[total];
    float[] b = new float[total];
    kernel.fill(a, init, nx, ny, nzl, rank * nzl);
    WJ.arraycopyF(a, 0, b, 0, total);
    float[] src = a;
    float[] dst = b;
    for (int t = 0; t < steps; t++) {
      // Halo exchange: first/last owned plane <-> neighbor ghosts.
      if (rank > 0) {
        MPI.sendF(src, plane, plane, rank - 1, 0);
      }
      if (rank < size - 1) {
        MPI.sendF(src, nzl * plane, plane, rank + 1, 1);
      }
      if (rank < size - 1) {
        MPI.recvF(src, (nzl + 1) * plane, plane, rank + 1, 0);
      }
      if (rank > 0) {
        MPI.recvF(src, 0, plane, rank - 1, 1);
      }
      kernel.step(src, dst, nx, ny, nzl);
      // The freshly exchanged ghost planes belong to the *next* source
      // too; carry them over so boundary cells stay consistent.
      WJ.arraycopyF(src, 0, dst, 0, plane);
      WJ.arraycopyF(src, (nzl + 1) * plane, dst, (nzl + 1) * plane, plane);
      float[] tmp = src;
      src = dst;
      dst = tmp;
    }
    float local = kernel.checksum(src, nx, ny, nzl);
    return MPI.allreduceSumF(local);
  }
}

// Single-GPU runner: whole grid on the device, one kernel per step.
@WootinJ final class StencilGPU3D implements StencilRunner {
  Stencil3DKernel kernel;
  GridInit init;
  StencilGPU3D(Solver3D s, GridInit i) {
    kernel = new Stencil3DKernel(s);
    init = i;
  }
  float invoke(int nx, int ny, int nz, int steps) {
    int total = nx * ny * (nz + 2);
    float[] host = new float[total];
    kernel.fill(host, init, nx, ny, nz, 0);
    float[] dSrc = CUDA.copyToGPU(host);
    float[] dDst = CUDA.copyToGPU(host);
    int cells = nx * ny * nz;
    int threads = 64;
    int blocks = (cells + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    for (int t = 0; t < steps; t++) {
      stepGPU(conf, dSrc, dDst, nx, ny, nz);
      float[] tmp = dSrc;
      dSrc = dDst;
      dDst = tmp;
    }
    CUDA.copyFromGPU(host, dSrc);
    CUDA.free(dSrc);
    CUDA.free(dDst);
    return kernel.checksum(host, nx, ny, nz);
  }

  @Global void stepGPU(CudaConfig conf, float[] src, float[] dst, int nx, int ny, int nz) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    int cells = nx * ny * nz;
    if (gid < cells) {
      int x = gid % nx;
      int rest = gid / nx;
      int y = rest % ny;
      int z = rest / ny + 1;
      if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1) {
        int idx = (z * ny + y) * nx + x;
        dst[idx] = kernel.solver.solve(
          src[idx],
          src[idx - 1], src[idx + 1],
          src[idx - nx], src[idx + nx],
          src[idx - nx * ny], src[idx + nx * ny]);
      }
    }
  }
}

// GPU + MPI: slab decomposition; per step the boundary planes travel
// device -> host -> neighbor -> host -> device.
@WootinJ final class StencilGPU3D_MPI implements StencilRunner {
  Stencil3DKernel kernel;
  GridInit init;
  StencilGPU3D_MPI(Solver3D s, GridInit i) {
    kernel = new Stencil3DKernel(s);
    init = i;
  }
  float invoke(int nx, int ny, int nz, int steps) {
    int rank = MPI.rank();
    int size = MPI.size();
    int nzl = nz / size;
    int plane = nx * ny;
    int total = plane * (nzl + 2);
    float[] host = new float[total];
    kernel.fill(host, init, nx, ny, nzl, rank * nzl);
    float[] dSrc = CUDA.copyToGPU(host);
    float[] dDst = CUDA.copyToGPU(host);
    float[] lo = new float[plane];
    float[] hi = new float[plane];
    int cells = plane * nzl;
    int threads = 64;
    int blocks = (cells + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    for (int t = 0; t < steps; t++) {
      // Pull boundary owned planes off the device.
      if (rank > 0) {
        CUDA.copyOutRange(lo, 0, dSrc, plane, plane);
        MPI.sendF(lo, 0, plane, rank - 1, 0);
      }
      if (rank < size - 1) {
        CUDA.copyOutRange(hi, 0, dSrc, nzl * plane, plane);
        MPI.sendF(hi, 0, plane, rank + 1, 1);
      }
      if (rank < size - 1) {
        MPI.recvF(hi, 0, plane, rank + 1, 0);
        CUDA.copyInRange(dSrc, (nzl + 1) * plane, hi, 0, plane);
        CUDA.copyInRange(dDst, (nzl + 1) * plane, hi, 0, plane);
      }
      if (rank > 0) {
        MPI.recvF(lo, 0, plane, rank - 1, 1);
        CUDA.copyInRange(dSrc, 0, lo, 0, plane);
        CUDA.copyInRange(dDst, 0, lo, 0, plane);
      }
      stepGPU(conf, dSrc, dDst, nx, ny, nzl);
      float[] tmp = dSrc;
      dSrc = dDst;
      dDst = tmp;
    }
    CUDA.copyFromGPU(host, dSrc);
    CUDA.free(dSrc);
    CUDA.free(dDst);
    float local = kernel.checksum(host, nx, ny, nzl);
    return MPI.allreduceSumF(local);
  }

  @Global void stepGPU(CudaConfig conf, float[] src, float[] dst, int nx, int ny, int nz) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    int cells = nx * ny * nz;
    if (gid < cells) {
      int x = gid % nx;
      int rest = gid / nx;
      int y = rest % ny;
      int z = rest / ny + 1;
      if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1) {
        int idx = (z * ny + y) * nx + x;
        dst[idx] = kernel.solver.solve(
          src[idx],
          src[idx - 1], src[idx + 1],
          src[idx - nx], src[idx + nx],
          src[idx - nx * ny], src[idx + nx * ny]);
      }
    }
  }
}
"#;
