//! A third WootinJ class library: parallel map-reduce over float arrays.
//!
//! The paper's future work is "to develop larger class libraries in the
//! HPC domain"; this library demonstrates that the coding rules support a
//! different computational pattern than stencils and matmul:
//!
//! * **`MapOp`** — the element transform component (identity, square,
//!   absolute value, affine);
//! * **`DataGen`** — deterministic input generation;
//! * runners: `ReduceCPU` (sequential), `ReduceMPI` (block-distributed +
//!   `allreduce`), and `ReduceGPU` — a classic **shared-memory tree
//!   reduction** whose kernel synchronizes with `__syncthreads` inside a
//!   loop (the hardest pattern for a barrier-correct simulator).

/// jlang source of the reduction library.
pub const REDUCE_LIB: &str = r#"
// ---- element transform feature -----------------------------------------

@WootinJ interface MapOp {
  float map(float x);
}

@WootinJ final class IdentityOp implements MapOp {
  IdentityOp() { }
  float map(float x) { return x; }
}

@WootinJ final class SquareOp implements MapOp {
  SquareOp() { }
  float map(float x) { return x * x; }
}

@WootinJ final class AbsOp implements MapOp {
  AbsOp() { }
  float map(float x) { return Math.absf(x); }
}

@WootinJ final class AffineOp implements MapOp {
  float a; float b;
  AffineOp(float a0, float b0) { a = a0; b = b0; }
  float map(float x) { return a * x + b; }
}

// ---- input feature -------------------------------------------------------

@WootinJ interface DataGen {
  float value(int i);
}

@WootinJ final class RampGen implements DataGen {
  float scale;
  RampGen(float s) { scale = s; }
  float value(int i) { return (i % 101 - 50) * scale; }
}

// ---- runners ---------------------------------------------------------------

@WootinJ interface ReduceRunner {
  double reduce(int n);
}

@WootinJ final class ReduceCPU implements ReduceRunner {
  MapOp op;
  DataGen gen;
  ReduceCPU(MapOp o, DataGen g) { op = o; gen = g; }
  double reduce(int n) {
    double acc = 0.0;
    for (int i = 0; i < n; i++) {
      acc = acc + op.map(gen.value(i));
    }
    return acc;
  }
}

// Block distribution: rank r owns [r*n/size, (r+1)*n/size).
@WootinJ final class ReduceMPI implements ReduceRunner {
  MapOp op;
  DataGen gen;
  ReduceMPI(MapOp o, DataGen g) { op = o; gen = g; }
  double reduce(int n) {
    int rank = MPI.rank();
    int size = MPI.size();
    int chunk = n / size;
    int lo = rank * chunk;
    int hi = lo + chunk;
    if (rank == size - 1) { hi = n; }
    double acc = 0.0;
    for (int i = lo; i < hi; i++) {
      acc = acc + op.map(gen.value(i));
    }
    return MPI.allreduceSumD(acc);
  }
}

// GPU tree reduction: map on load, then a strided shared-memory
// reduction with a barrier inside the loop; one partial per block,
// summed on the host.
@WootinJ final class ReduceGPU implements ReduceRunner {
  MapOp op;
  DataGen gen;
  ReduceGPU(MapOp o, DataGen g) { op = o; gen = g; }

  double reduce(int n) {
    float[] host = new float[n];
    for (int i = 0; i < n; i++) { host[i] = gen.value(i); }
    int threads = 64;
    int blocks = (n + threads - 1) / threads;
    float[] dIn = CUDA.copyToGPU(host);
    float[] partials = new float[blocks];
    float[] dOut = CUDA.copyToGPU(partials);
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    treeReduce(conf, dIn, dOut, n);
    CUDA.copyFromGPU(partials, dOut);
    CUDA.free(dIn);
    CUDA.free(dOut);
    double acc = 0.0;
    for (int b = 0; b < blocks; b++) { acc = acc + partials[b]; }
    return acc;
  }

  @Global void treeReduce(CudaConfig conf, float[] in, float[] out, int n) {
    float[] sh = CUDA.sharedF32(64);
    int tid = CUDA.threadIdxX();
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    float v = 0f;
    if (gid < n) { v = op.map(in[gid]); }
    sh[tid] = v;
    CUDA.sync();
    int stride = 32;
    while (stride > 0) {
      if (tid < stride) {
        sh[tid] = sh[tid] + sh[tid + stride];
      }
      CUDA.sync();
      stride = stride / 2;
    }
    if (tid == 0) {
      out[CUDA.blockIdxX()] = sh[0];
    }
  }
}
"#;
