//! Process-mode conformance for the `dist` backend: real OS rank
//! processes (the `wj-dist-worker` binary) over loopback TCP must be
//! bit-identical to the in-process `mpi-sim` backend at 2, 4, and 8
//! ranks, and a killed rank process must recover through the
//! collective-boundary checkpoint chain with a typed outcome — no
//! panic, no hang (every wire wait is deadline-bounded).

use dist::{warm_program_path, DistWorld, Launch, WARM_DIGEST_SEED};
use jlang::ast::BinOp;
use jlang::types::PrimKind;
use mpi_sim::{SimError, World};
use nir::{ElemTy, FuncBuilder, FuncId, FuncKind, Instr, IntrinOp, Program, Ty};
use std::path::PathBuf;

/// A fresh scratch directory under the system temp root, removed on
/// drop so repeated test runs never see stale warm images.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wj-dist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn worker_launch() -> Launch {
    Launch::Processes {
        exe: PathBuf::from(env!("CARGO_BIN_EXE_wj-dist-worker")),
        args: vec![],
    }
}

/// The reference workload: each step, every rank passes its buffer
/// around the ring, halves what it received, and contributes the first
/// element to a global allreduce — one collective boundary per step
/// (checkpoint cut points), plus enough point-to-point traffic to
/// exercise the message path.
fn ring_step_reduce(n: i32, steps: i32) -> (Program, FuncId) {
    let mut fb = FuncBuilder::new("ring_step_reduce", vec![], Some(Ty::F32), FuncKind::Host);
    let rank = fb.reg(Ty::I32);
    let size = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let zero = fb.reg(Ty::I32);
    let nn = fb.reg(Ty::I32);
    let nsteps = fb.reg(Ty::I32);
    let tag = fb.reg(Ty::I32);
    let sbuf = fb.reg(Ty::Arr(ElemTy::F32));
    let rbuf = fb.reg(Ty::Arr(ElemTy::F32));
    let dest = fb.reg(Ty::I32);
    let src = fb.reg(Ty::I32);
    let i = fb.reg(Ty::I32);
    let s = fb.reg(Ty::I32);
    let cond = fb.reg(Ty::Bool);
    let base = fb.reg(Ty::I32);
    let iv = fb.reg(Ty::I32);
    let fv = fb.reg(Ty::F32);
    let half = fb.reg(Ty::F32);
    let first = fb.reg(Ty::F32);
    let global = fb.reg(Ty::F32);
    let acc = fb.reg(Ty::F32);

    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRank,
        args: vec![],
        dst: Some(rank),
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSize,
        args: vec![],
        dst: Some(size),
    });
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(nn, n));
    fb.emit(Instr::ConstI32(nsteps, steps));
    fb.emit(Instr::ConstI32(tag, 7));
    fb.emit(Instr::ConstF32(half, 0.5));
    fb.emit(Instr::ConstF32(acc, 0.0));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: nn,
        dst: sbuf,
    });
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: nn,
        dst: rbuf,
    });

    // sbuf[i] = rank * n + i
    fb.emit(Instr::Bin {
        op: BinOp::Mul,
        kind: PrimKind::Int,
        dst: base,
        lhs: rank,
        rhs: nn,
    });
    fb.emit(Instr::ConstI32(i, 0));
    let fill_head = fb.label();
    let fill_body = fb.label();
    let fill_done = fb.label();
    fb.bind(fill_head);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: i,
        rhs: nn,
    });
    fb.br(cond, fill_body, fill_done);
    fb.bind(fill_body);
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: iv,
        lhs: base,
        rhs: i,
    });
    fb.emit(Instr::Cast {
        to: PrimKind::Float,
        from: PrimKind::Int,
        dst: fv,
        src: iv,
    });
    fb.emit(Instr::StArr {
        arr: sbuf,
        idx: i,
        src: fv,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: i,
        lhs: i,
        rhs: one,
    });
    fb.jmp(fill_head);
    fb.bind(fill_done);

    // dest = (rank + 1) % size; src = (rank + size - 1) % size
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: dest,
        lhs: rank,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: dest,
        lhs: dest,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: src,
        lhs: rank,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Sub,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: size,
    });

    // step loop
    fb.emit(Instr::ConstI32(s, 0));
    let step_head = fb.label();
    let step_body = fb.label();
    let step_done = fb.label();
    fb.bind(step_head);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: s,
        rhs: nsteps,
    });
    fb.br(cond, step_body, step_done);
    fb.bind(step_body);
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendRecvF32,
        args: vec![sbuf, zero, nn, dest, rbuf, zero, src, tag],
        dst: None,
    });
    // sbuf[i] = rbuf[i] * 0.5
    fb.emit(Instr::ConstI32(i, 0));
    let scale_head = fb.label();
    let scale_body = fb.label();
    let scale_done = fb.label();
    fb.bind(scale_head);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: i,
        rhs: nn,
    });
    fb.br(cond, scale_body, scale_done);
    fb.bind(scale_body);
    fb.emit(Instr::LdArr {
        arr: rbuf,
        idx: i,
        dst: fv,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Mul,
        kind: PrimKind::Float,
        dst: fv,
        lhs: fv,
        rhs: half,
    });
    fb.emit(Instr::StArr {
        arr: sbuf,
        idx: i,
        src: fv,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: i,
        lhs: i,
        rhs: one,
    });
    fb.jmp(scale_head);
    fb.bind(scale_done);
    // acc += allreduceSum(sbuf[0])
    fb.emit(Instr::LdArr {
        arr: sbuf,
        idx: zero,
        dst: first,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiAllreduceSumF32,
        args: vec![first],
        dst: Some(global),
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Float,
        dst: acc,
        lhs: acc,
        rhs: global,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: s,
        lhs: s,
        rhs: one,
    });
    fb.jmp(step_head);
    fb.bind(step_done);
    fb.emit(Instr::Ret(Some(acc)));

    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

/// Full-run equality: results, clocks, cycle accounting, and output —
/// everything the scheduler and the pool produce.
fn assert_runs_identical(a: &mpi_sim::WorldRun, b: &mpi_sim::WorldRun, what: &str) {
    assert_eq!(a.vtime, b.vtime, "{what}: vtime diverged");
    assert_eq!(
        a.total_cycles, b.total_cycles,
        "{what}: total cycles diverged"
    );
    assert_eq!(a.ranks.len(), b.ranks.len(), "{what}: world size diverged");
    for (r, (x, y)) in a.ranks.iter().zip(&b.ranks).enumerate() {
        assert_eq!(
            format!("{:?}", x.result),
            format!("{:?}", y.result),
            "{what}: rank {r} result diverged"
        );
        assert_eq!(x.vclock, y.vclock, "{what}: rank {r} vclock diverged");
        assert_eq!(
            x.compute_cycles, y.compute_cycles,
            "{what}: rank {r} compute cycles diverged"
        );
        assert_eq!(
            x.comm_cycles, y.comm_cycles,
            "{what}: rank {r} comm cycles diverged"
        );
        assert_eq!(x.output, y.output, "{what}: rank {r} output diverged");
    }
}

#[test]
fn process_ranks_are_bit_identical_to_mpi_sim_at_2_4_and_8() {
    let (p, entry) = ring_step_reduce(8, 6);
    for size in [2u32, 4, 8] {
        let local = World::new(&p, size).run(entry, |_, _| Ok(vec![])).unwrap();
        let remote = DistWorld::new(&p, size)
            .with_launch(worker_launch())
            .run(entry, |_, _| Ok(vec![]))
            .unwrap();
        assert_runs_identical(&local, &remote, &format!("size {size}"));
    }
}

#[test]
fn thread_workers_speak_the_same_wire_protocol() {
    // Launch::Threads runs the identical framed protocol over real
    // loopback sockets — same INIT program bytes, same restores.
    let (p, entry) = ring_step_reduce(4, 3);
    let local = World::new(&p, 4).run(entry, |_, _| Ok(vec![])).unwrap();
    let remote = DistWorld::new(&p, 4).run(entry, |_, _| Ok(vec![])).unwrap();
    assert_runs_identical(&local, &remote, "threads");
}

#[test]
fn warm_dir_workers_are_bit_identical_and_persist_the_program_once() {
    let scratch = ScratchDir::new("warm");
    let (p, entry) = ring_step_reduce(8, 4);
    let local = World::new(&p, 4).run(entry, |_, _| Ok(vec![])).unwrap();
    let world = DistWorld::new(&p, 4)
        .with_launch(worker_launch())
        .with_warm_dir(&scratch.0);
    let first = world.run(entry, |_, _| Ok(vec![])).unwrap();
    assert_runs_identical(&local, &first, "warm first boot");

    // Exactly one content-addressed image on disk, digest-verifiable.
    let images: Vec<_> = std::fs::read_dir(&scratch.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "wprog"))
        .collect();
    assert_eq!(images.len(), 1, "one warm image expected: {images:?}");
    let bytes = std::fs::read(&images[0]).unwrap();
    let digest = nir::digest64(&bytes, WARM_DIGEST_SEED);
    assert_eq!(
        images[0],
        warm_program_path(&scratch.0, digest),
        "warm image path is addressed by its own digest"
    );

    // A second world over the same directory boots warm — no re-publish
    // (mtime untouched) and still bit-identical results.
    let stamp = std::fs::metadata(&images[0]).unwrap().modified().unwrap();
    let second = DistWorld::new(&p, 4)
        .with_launch(worker_launch())
        .with_warm_dir(&scratch.0)
        .run(entry, |_, _| Ok(vec![]))
        .unwrap();
    assert_runs_identical(&local, &second, "warm restart");
    assert_eq!(
        std::fs::metadata(&images[0]).unwrap().modified().unwrap(),
        stamp,
        "warm restart must reuse the published image, not rewrite it"
    );
}

#[test]
fn a_corrupt_warm_image_falls_back_to_inline_init() {
    let scratch = ScratchDir::new("warm-corrupt");
    let (p, entry) = ring_step_reduce(6, 3);
    let local = World::new(&p, 4).run(entry, |_, _| Ok(vec![])).unwrap();

    // Publish the warm image with a clean probe run, then overwrite it
    // with garbage at the exact path the coordinator will advertise:
    // workers digest-verify, answer a typed Err, and the coordinator
    // must re-Init inline — the run still completes bit-identically.
    let probe = DistWorld::new(&p, 4).with_warm_dir(&scratch.0);
    let good = probe.run(entry, |_, _| Ok(vec![])).unwrap();
    assert_runs_identical(&local, &good, "probe run");
    let images: Vec<_> = std::fs::read_dir(&scratch.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "wprog"))
        .collect();
    assert_eq!(images.len(), 1);
    std::fs::write(&images[0], b"not a program image").unwrap();

    let run = DistWorld::new(&p, 4)
        .with_launch(worker_launch())
        .with_warm_dir(&scratch.0)
        .run(entry, |_, _| Ok(vec![]))
        .unwrap();
    assert_runs_identical(&local, &run, "corrupt warm image fallback");
}

#[test]
fn connect_retry_is_bounded_seeded_and_survives_a_late_listener() {
    use dist::worker::{connect_with_retry, retry_backoff_ms, MAX_CONNECT_ATTEMPTS};
    use std::net::TcpListener;

    // The schedule is a pure function of (seed, attempt): deterministic,
    // exponential with a cap, jitter strictly below one extra base.
    for attempt in 1..=MAX_CONNECT_ATTEMPTS {
        let base = 2u64 << (attempt - 1).min(6);
        let a = retry_backoff_ms(0xFEED, attempt);
        let b = retry_backoff_ms(0xFEED, attempt);
        assert_eq!(a, b, "backoff must be deterministic");
        assert!((base..2 * base).contains(&a), "attempt {attempt}: {a}ms");
    }
    assert_ne!(
        retry_backoff_ms(1, 3),
        retry_backoff_ms(2, 3),
        "different seeds must decorrelate the jitter"
    );

    // A dead port fails typed after a bounded number of re-dials.
    let dead = {
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap().port()
        // listener dropped: the port refuses connections
    };
    let (dial, retries) = connect_with_retry(dead, 7);
    assert!(dial.is_err(), "a dead port must surface the connect error");
    assert_eq!(retries, u64::from(MAX_CONNECT_ATTEMPTS) - 1);

    // A listener that appears while redialing is eventually reached.
    let port = {
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap().port()
    };
    let binder = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(30));
        let l = TcpListener::bind(("127.0.0.1", port)).unwrap();
        l.accept().ok();
    });
    let (dial, retries) = connect_with_retry(port, 7);
    binder.join().unwrap();
    assert!(dial.is_ok(), "late listener must be reachable via retries");
    assert!(
        retries > 0,
        "the late bind must have cost at least one re-dial"
    );
}

#[test]
fn a_killed_rank_process_fails_typed_without_checkpoints() {
    let (p, entry) = ring_step_reduce(8, 6);
    let err = DistWorld::new(&p, 4)
        .with_launch(worker_launch())
        .kill_rank_after(2, 5)
        .run(entry, |_, _| Ok(vec![]))
        .unwrap_err();
    match err {
        SimError::Crash { rank, .. } => assert_eq!(rank, 2, "the killed rank is attributed"),
        other => panic!("expected a typed Crash for the killed worker, got: {other}"),
    }
}

#[test]
fn a_killed_rank_process_recovers_through_the_checkpoint_chain() {
    let (p, entry) = ring_step_reduce(8, 6);
    let clean = World::new(&p, 4).run(entry, |_, _| Ok(vec![])).unwrap();

    let policy = mpi_sim::CheckpointPolicy::every(1);
    let run = DistWorld::new(&p, 4)
        .with_launch(worker_launch())
        .kill_rank_after(1, 6)
        .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
        .unwrap();
    assert!(
        run.restart.restarts >= 1,
        "the kill must actually force a restart (restarts = {})",
        run.restart.restarts
    );
    assert!(run.restart.checkpoints_taken >= 1, "no checkpoints taken");
    // Recovery lands on the fault-free answer, bit for bit.
    for (r, (x, y)) in clean.ranks.iter().zip(&run.ranks).enumerate() {
        assert_eq!(
            format!("{:?}", x.result),
            format!("{:?}", y.result),
            "rank {r} result diverged after recovery"
        );
    }
}
