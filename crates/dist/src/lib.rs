//! # dist — the socket-backed distributed backend
//!
//! One OS process per rank over loopback TCP, driven by the *same*
//! transport-agnostic rank runtime ([`mpi_sim::runtime`]) that powers
//! the in-process `mpi-sim` backend. The coordinator (rank-0 side) is
//! the rendezvous point and spawner: it binds an ephemeral loopback
//! port, launches one worker per rank, seeds each worker's initial
//! state from its own argument builder (so initialization is
//! byte-identical to `mpi-sim`'s), and then drives the shared step
//! loop, reaching each rank through a typed, length-prefixed,
//! checksummed frame protocol ([`proto`]).
//!
//! Because every scheduling, cost-model, and fault-stream decision is
//! made in the shared runtime on the coordinator side, and the worker
//! executes rank code through the identical [`LocalPool`] engine, a
//! `dist` world is bit-identical to an `mpi-sim` world of the same
//! size on every workload — the conformance suite holds it to that.
//!
//! Crash recovery is inherited whole: a worker process that dies
//! mid-protocol surfaces as a typed [`SimError::Crash`] for its rank,
//! and `run_with_restart` rolls every rank back to the last
//! collective-boundary delta checkpoint, respawns the dead process,
//! and resumes.
//!
//! [`LocalPool`]: mpi_sim::LocalPool

#![forbid(unsafe_code)]

pub mod proto;
pub mod worker;

use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use exec::ckpt::{self, CkptError};
use exec::{FaultConfig, MsgFault, ResilienceStats, TransportFault, Val};
use gpu_sim::GpuConfig;
use mpi_sim::{
    read_frame, run_world, run_world_with_restart, write_frame, ArgBuilder, CheckpointPolicy,
    CostModel, DeviceOutcome, InMemTransport, RankCtl, RankOutcome, RankPool, RankSnapshot,
    RankYield, RunCfg, Schedule, SimError, TransportError, WorldRun, DEFAULT_FAULT_TIMEOUT_ROUNDS,
};
use nir::codec::{write_program, Reader, Writer};
use nir::{FuncId, Program};

use proto::{Request, Resp, WarmProgram, PROTO_VERSION};

/// Digest seed for warm program images (`.wprog` files) — namespaced
/// away from the artifact-seal and frame-checksum digests so a file of
/// one kind never verifies as another.
pub const WARM_DIGEST_SEED: u64 = 0x5750_5247; // "WPRG"

/// Where a program image with `digest` lives inside a warm directory.
pub fn warm_program_path(dir: &Path, digest: u64) -> PathBuf {
    dir.join(format!("{digest:016x}.wprog"))
}

/// How a [`RemotePool`] brings its rank workers into existence.
#[derive(Debug, Clone)]
pub enum Launch {
    /// Each rank is a thread of this process that dials the rendezvous
    /// port and runs the full worker protocol (program bytes and all)
    /// over real loopback TCP. Default: full wire fidelity without
    /// needing a worker executable on disk.
    Threads,
    /// Each rank is a spawned OS process running `exe args...`, which
    /// must call [`worker::run_if_spawned`] before doing anything else.
    Processes { exe: PathBuf, args: Vec<String> },
}

/// Wall-clock bound for the rendezvous: every spawned worker must dial
/// in and complete its `Hello` within this window.
const ACCEPT_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-response read bound on the coordinator side: no worker reply
/// within this window means the rank is treated as dead (typed
/// [`SimError::Crash`]), never a hang.
const RPC_TIMEOUT: Duration = Duration::from_secs(30);

/// Process-unique rendezvous token source (pid-salted so tokens differ
/// across concurrently testing processes too).
static TOKEN_SEQ: AtomicU64 = AtomicU64::new(1);

fn fresh_token() -> u64 {
    let seq = TOKEN_SEQ.fetch_add(1, Ordering::Relaxed);
    (u64::from(std::process::id()) << 32) ^ (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

struct Worker {
    stream: TcpStream,
    /// The rank's OS process under `Launch::Processes` (threads detach).
    child: Option<Child>,
}

impl Worker {
    fn rpc(&mut self, req: &Request) -> Result<Resp, TransportError> {
        write_frame(&mut self.stream, &proto::encode_req(req))?;
        proto::decode_resp(&read_frame(&mut self.stream)?)
    }

    fn dispose(mut self) {
        // Best-effort: ask nicely, then make sure the process is gone.
        let _ = self.rpc(&Request::Shutdown);
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// The distributed rank pool: the coordinator-side half of the
/// [`RankPool`] seam. Owns the rendezvous listener, the worker
/// connections, and the chaos knobs.
pub struct RemotePool<'p, 'a> {
    program: &'p Program,
    program_bytes: Vec<u8>,
    size: u32,
    entry: FuncId,
    make_args: ArgBuilder<'a>,
    gpu: Option<GpuConfig>,
    fault: Option<FaultConfig>,
    launch: Launch,
    listener: TcpListener,
    port: u16,
    token: u64,
    workers: Vec<Option<Worker>>,
    /// Kill the given rank's worker after it has served this many run
    /// slices — consumed once (respawned workers never inherit it), so
    /// recovery is observable instead of an infinite kill loop.
    kill_rank_after: Option<(u32, u64)>,
    /// Warm program store: when set, the program bytes are persisted
    /// once as `<dir>/<digest:016x>.wprog` and every `Init` ships a
    /// 16-byte digest reference instead of the program (workers verify
    /// the digest; any failure falls back to inline bytes, typed).
    warm_dir: Option<PathBuf>,
    /// Digest of `program_bytes` under [`WARM_DIGEST_SEED`].
    program_digest: u64,
    /// Coordinator-side count of overlapped RPC fan-out rounds (see
    /// [`Self::rpc_fanout`]); drained into rank 0's
    /// [`ResilienceStats`] reply so the restart loop's per-attempt
    /// stats reads never double-count it.
    overlapped_rounds: u64,
}

fn world_err(message: impl Into<String>) -> SimError {
    SimError::World {
        message: message.into(),
    }
}

impl<'p, 'a> RemotePool<'p, 'a> {
    #[allow(clippy::too_many_arguments)] // mirrors LocalPool::new plus the launch/chaos knobs
    pub fn new(
        program: &'p Program,
        size: u32,
        entry: FuncId,
        make_args: ArgBuilder<'a>,
        gpu: Option<GpuConfig>,
        fault: Option<FaultConfig>,
        launch: Launch,
        kill_rank_after: Option<(u32, u64)>,
        warm_dir: Option<PathBuf>,
    ) -> Result<Self, SimError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| world_err(format!("dist: binding rendezvous port: {e}")))?;
        let port = listener
            .local_addr()
            .map_err(|e| world_err(format!("dist: rendezvous address: {e}")))?
            .port();
        let mut w = Writer::new();
        write_program(&mut w, program);
        let program_bytes = w.into_bytes();
        let program_digest = nir::digest64(&program_bytes, WARM_DIGEST_SEED);
        Ok(RemotePool {
            program,
            program_bytes,
            size,
            entry,
            make_args,
            gpu,
            fault,
            launch,
            listener,
            port,
            token: fresh_token(),
            workers: (0..size).map(|_| None).collect(),
            kill_rank_after,
            warm_dir,
            program_digest,
            overlapped_rounds: 0,
        })
    }

    /// Persist the program image into the warm directory (idempotent:
    /// the file is content-addressed by digest, written temp-then-rename
    /// so concurrent coordinators sharing the directory never tear it).
    /// Returns the warm reference to ship, or `None` when persistence
    /// failed — the caller then ships the program inline, untyped
    /// I/O trouble degrades, it never breaks the world.
    fn publish_warm_program(&self) -> Option<WarmProgram> {
        let dir = self.warm_dir.as_deref()?;
        let path = warm_program_path(dir, self.program_digest);
        let warm = WarmProgram {
            dir: dir.to_string_lossy().into_owned(),
            digest: self.program_digest,
        };
        if path.is_file() {
            return Some(warm);
        }
        std::fs::create_dir_all(dir).ok()?;
        let tmp = dir.join(format!(
            ".tmp-{}-{:016x}.wprog",
            std::process::id(),
            self.program_digest
        ));
        if std::fs::write(&tmp, &self.program_bytes).is_ok() && std::fs::rename(&tmp, &path).is_ok()
        {
            Some(warm)
        } else {
            let _ = std::fs::remove_file(&tmp);
            None
        }
    }

    /// Spawn + rendezvous + `Init` every rank that has no live worker.
    fn ensure_workers(&mut self) -> Result<(), SimError> {
        let missing: Vec<u32> = (0..self.size)
            .filter(|&r| self.workers[r as usize].is_none())
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        let mut children: Vec<Option<Child>> = Vec::new();
        for &r in &missing {
            children.push(self.spawn(r)?);
        }
        self.rendezvous(&missing, &mut children)?;
        let warm = self.publish_warm_program();
        let kills: Vec<Option<u64>> = missing
            .iter()
            .map(|&r| match self.kill_rank_after {
                Some((kr, n)) if kr == r => {
                    self.kill_rank_after = None;
                    Some(n)
                }
                _ => None,
            })
            .collect();
        // Warm path first: ship a digest reference instead of the
        // program image. A worker that cannot resolve it (missing
        // file, digest mismatch) answers a typed Err and keeps its
        // Init loop open, so that rank is retried with the bytes
        // inline. Both rounds fan out overlapped: every Init frame is
        // written before any reply is awaited, so a cold start pays
        // one round-trip latency instead of one per rank.
        let init_req = |pool: &Self, kill: Option<u64>, warm: Option<WarmProgram>| {
            let inline = warm.is_none();
            Request::Init {
                size: pool.size,
                entry: pool.entry.0,
                program: if inline {
                    pool.program_bytes.clone()
                } else {
                    Vec::new()
                },
                fault: pool.fault.map(Box::new),
                gpu: pool.gpu,
                kill_after_runs: kill,
                warm,
            }
        };
        let first: Vec<(u32, Request)> = missing
            .iter()
            .zip(&kills)
            .map(|(&r, &kill)| (r, init_req(self, kill, warm.clone())))
            .collect();
        let mut retry: Vec<(u32, Request)> = Vec::new();
        for ((r, resp), &kill) in self.rpc_fanout(&first)?.into_iter().zip(&kills) {
            match resp {
                Resp::Ok => {}
                Resp::Err(e) => {
                    if warm.is_some() {
                        // Warm miss: queue the inline retry.
                        retry.push((r, init_req(self, kill, None)));
                    } else {
                        return Err(e);
                    }
                }
                other => {
                    return Err(world_err(format!(
                        "dist: rank {r} answered Init with {other:?}"
                    )))
                }
            }
        }
        if !retry.is_empty() {
            for (r, resp) in self.rpc_fanout(&retry)? {
                match resp {
                    Resp::Ok => {}
                    Resp::Err(e) => return Err(e),
                    other => {
                        return Err(world_err(format!(
                            "dist: rank {r} answered Init with {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    fn spawn(&self, r: u32) -> Result<Option<Child>, SimError> {
        match &self.launch {
            Launch::Threads => {
                let port = self.port;
                let token = self.token;
                std::thread::Builder::new()
                    .name(format!("wj-dist-rank{r}"))
                    .spawn(move || {
                        let (dial, retries) =
                            worker::connect_with_retry(port, token ^ u64::from(r));
                        if let Ok(stream) = dial {
                            let _ = worker::serve_on(stream, r, token, retries);
                        }
                    })
                    .map_err(|e| world_err(format!("dist: spawning rank {r} thread: {e}")))?;
                Ok(None)
            }
            Launch::Processes { exe, args } => {
                let child = Command::new(exe)
                    .args(args)
                    .env(worker::ENV_RANK, r.to_string())
                    .env(worker::ENV_PORT, self.port.to_string())
                    .env(worker::ENV_TOKEN, self.token.to_string())
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|e| world_err(format!("dist: spawning rank {r} process: {e}")))?;
                Ok(Some(child))
            }
        }
    }

    /// Accept `Hello`s until every rank in `want` has connected (they
    /// arrive in arbitrary order), within a wall-clock bound.
    fn rendezvous(&mut self, want: &[u32], children: &mut [Option<Child>]) -> Result<(), SimError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| world_err(format!("dist: rendezvous listener: {e}")))?;
        let deadline = Instant::now() + ACCEPT_TIMEOUT;
        let mut connected = 0usize;
        while connected < want.len() {
            if Instant::now() > deadline {
                return Err(world_err(format!(
                    "dist: rendezvous timed out with {connected}/{} workers connected",
                    want.len()
                )));
            }
            let mut stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                    continue;
                }
                Err(e) => return Err(world_err(format!("dist: accept: {e}"))),
            };
            let _ = stream.set_nodelay(true);
            if stream.set_read_timeout(Some(RPC_TIMEOUT)).is_err() {
                continue;
            }
            let hello = match read_frame(&mut stream).and_then(|b| proto::decode_hello(&b)) {
                Ok(h) => h,
                Err(_) => continue, // stray dialer: drop it, keep waiting
            };
            if hello.token != self.token
                || hello.proto != PROTO_VERSION
                || !want.contains(&hello.rank)
                || self.workers[hello.rank as usize].is_some()
            {
                // Wrong token/version/rank: refuse before any state moves.
                let _ = write_frame(
                    &mut stream,
                    &proto::encode_resp(&Resp::Err(world_err(format!(
                        "dist: rendezvous refused (proto {}, expected {PROTO_VERSION})",
                        hello.proto
                    )))),
                );
                continue;
            }
            write_frame(&mut stream, &proto::encode_resp(&Resp::Ok))
                .map_err(|e| world_err(format!("dist: acking rank {}: {e}", hello.rank)))?;
            let child = want
                .iter()
                .position(|&r| r == hello.rank)
                .and_then(|i| children[i].take());
            self.workers[hello.rank as usize] = Some(Worker { stream, child });
            connected += 1;
        }
        Ok(())
    }

    /// Tear down rank `r`'s worker after a wire failure and type it as
    /// a *recoverable* crash — the restart machinery respawns it.
    fn bury(&mut self, r: u32, e: TransportError) -> SimError {
        if let Some(w) = self.workers[r as usize].take() {
            if let Some(mut child) = { w }.child {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        SimError::Crash {
            rank: r,
            step: 0,
            post_mortem: format!("dist: worker for rank {r} died mid-protocol: {e}"),
        }
    }

    /// Write one request frame to rank `r` without awaiting the reply.
    fn worker_write(&mut self, r: u32, req: &Request) -> Result<(), SimError> {
        let res = {
            let worker = self
                .workers
                .get_mut(r as usize)
                .and_then(Option::as_mut)
                .ok_or_else(|| world_err(format!("dist: rank {r} has no live worker")))?;
            write_frame(&mut worker.stream, &proto::encode_req(req))
        };
        res.map_err(|e| self.bury(r, e))
    }

    /// Await the one pending reply from rank `r`.
    fn worker_read(&mut self, r: u32) -> Result<Resp, SimError> {
        let res = {
            let worker = self
                .workers
                .get_mut(r as usize)
                .and_then(Option::as_mut)
                .ok_or_else(|| world_err(format!("dist: rank {r} has no live worker")))?;
            read_frame(&mut worker.stream).and_then(|b| proto::decode_resp(&b))
        };
        res.map_err(|e| self.bury(r, e))
    }

    /// One request/response round to rank `r`'s worker. A wire failure
    /// buries the worker and surfaces as a typed, *recoverable* crash
    /// for that rank — the restart machinery respawns it.
    fn rpc(&mut self, r: u32, req: &Request) -> Result<Resp, SimError> {
        self.worker_write(r, req)?;
        self.worker_read(r)
    }

    /// Overlapped fan-out: write *every* request frame back to back,
    /// then await the replies in the same rank order — the whole world
    /// pays one round-trip latency instead of one per rank. A wire
    /// failure buries its rank exactly as [`Self::rpc`] does, but the
    /// remaining replies are still drained first so surviving workers
    /// stay in strict lockstep (no stale reply can desynchronize a
    /// later request); the first failure surfaces after the drain.
    fn rpc_fanout(&mut self, reqs: &[(u32, Request)]) -> Result<Vec<(u32, Resp)>, SimError> {
        if reqs.len() > 1 {
            self.overlapped_rounds += 1;
        }
        let mut first_err: Option<SimError> = None;
        let mut written: Vec<u32> = Vec::with_capacity(reqs.len());
        for (r, req) in reqs {
            match self.worker_write(*r, req) {
                Ok(()) => written.push(*r),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        let mut out = Vec::with_capacity(written.len());
        for r in written {
            match self.worker_read(r) {
                Ok(resp) => out.push((r, resp)),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(out),
            Some(e) => Err(e),
        }
    }

    /// Unwrap a worker reply that should be `Ok`.
    fn expect_ok(&mut self, r: u32, req: &Request) -> Result<(), SimError> {
        match self.rpc(r, req)? {
            Resp::Ok => Ok(()),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} sent mismatched reply {other:?}"
            ))),
        }
    }
}

impl RankPool for RemotePool<'_, '_> {
    fn reinit(&mut self) -> Result<(), SimError> {
        self.ensure_workers()?;
        // Build the pristine rank states with the *in-process* engine —
        // same argument builder, same fault derivation, same machine
        // layout — and ship them over as restores. A dist cold start is
        // therefore byte-identical to an mpi-sim cold start.
        let mut seed = mpi_sim::LocalPool::new(
            self.program,
            self.size,
            self.entry,
            &mut *self.make_args,
            self.gpu,
            self.fault,
            None,
        );
        seed.reinit()?;
        let snaps: Vec<RankSnapshot> = (0..self.size)
            .map(|r| seed.capture_rank(r))
            .collect::<Result<_, _>>()?;
        drop(seed);
        let reqs: Vec<(u32, Request)> = (0..self.size)
            .zip(snaps)
            .map(|(r, snap)| {
                let n_arrays = snap.sections.len() - 2 - usize::from(snap.has_gpu);
                let req = Request::Restore {
                    last_cycles: snap.last_cycles,
                    has_gpu: snap.has_gpu,
                    n_arrays: n_arrays as u64,
                    sections: snap.sections,
                };
                (r, req)
            })
            .collect();
        for (r, resp) in self.rpc_fanout(&reqs)? {
            match resp {
                Resp::Ok => {}
                Resp::CkptErr(e) => return Err(world_err(format!("dist: seeding rank {r}: {e}"))),
                Resp::Err(e) => return Err(e),
                other => {
                    return Err(world_err(format!(
                        "dist: rank {r} answered Restore with {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn prepare_resume(&mut self) -> Result<(), SimError> {
        self.ensure_workers()
    }

    fn run_slice(&mut self, r: u32, slice: u64) -> Result<(RankYield, u64), SimError> {
        match self.rpc(r, &Request::Run { slice })? {
            Resp::Yielded { y, delta } => Ok((y, delta)),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered Run with {other:?}"
            ))),
        }
    }

    fn resume(&mut self, r: u32, v: Val) -> Result<(), SimError> {
        self.expect_ok(r, &Request::Resume { v })
    }

    fn service_device(&mut self, r: u32) -> Result<DeviceOutcome, SimError> {
        match self.rpc(r, &Request::ServiceDevice)? {
            Resp::Device(outcome) => Ok(outcome),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered ServiceDevice with {other:?}"
            ))),
        }
    }

    fn service_host(&mut self, r: u32) -> Result<u64, SimError> {
        match self.rpc(r, &Request::ServiceHost)? {
            Resp::U64(backoff) => Ok(backoff),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered ServiceHost with {other:?}"
            ))),
        }
    }

    fn read_floats(
        &mut self,
        r: u32,
        buf: u32,
        off: usize,
        count: usize,
    ) -> Result<Vec<f32>, SimError> {
        match self.rpc(
            r,
            &Request::ReadFloats {
                buf,
                off: off as u64,
                count: count as u64,
            },
        )? {
            Resp::Floats(fs) => Ok(fs),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered ReadFloats with {other:?}"
            ))),
        }
    }

    fn write_floats(
        &mut self,
        r: u32,
        buf: u32,
        off: usize,
        payload: &[f32],
    ) -> Result<(), SimError> {
        self.expect_ok(
            r,
            &Request::WriteFloats {
                buf,
                off: off as u64,
                payload: payload.to_vec(),
            },
        )
    }

    fn location(&mut self, r: u32) -> Option<(String, u32)> {
        match self.rpc(r, &Request::Location) {
            Ok(Resp::Loc(loc)) => loc,
            _ => None,
        }
    }

    fn has_fault_plan(&self, r: u32) -> bool {
        let _ = r;
        self.fault.is_some()
    }

    fn message_fault(&mut self, r: u32) -> Result<MsgFault, SimError> {
        match self.rpc(r, &Request::MessageFault)? {
            Resp::Msg(f) => Ok(f),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered MessageFault with {other:?}"
            ))),
        }
    }

    fn collective_fault(&mut self, r: u32) -> Result<MsgFault, SimError> {
        match self.rpc(r, &Request::CollectiveFault)? {
            Resp::Msg(f) => Ok(f),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered CollectiveFault with {other:?}"
            ))),
        }
    }

    fn transport_fault(&mut self, r: u32) -> Result<TransportFault, SimError> {
        match self.rpc(r, &Request::TransportFaultDraw)? {
            Resp::Transport(f) => Ok(f),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered TransportFaultDraw with {other:?}"
            ))),
        }
    }

    fn connect_delay(&mut self, r: u32) -> Result<u64, SimError> {
        match self.rpc(r, &Request::ConnectDelay)? {
            Resp::U64(total) => Ok(total),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered ConnectDelay with {other:?}"
            ))),
        }
    }

    fn ckpt_write_fails(&mut self, r: u32) -> Result<bool, SimError> {
        match self.rpc(r, &Request::CkptWriteFails)? {
            Resp::Bool(fails) => Ok(fails),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered CkptWriteFails with {other:?}"
            ))),
        }
    }

    fn capture_rank(&mut self, r: u32) -> Result<RankSnapshot, SimError> {
        match self.rpc(r, &Request::Capture)? {
            Resp::Snapshot(snap) => Ok(snap),
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered Capture with {other:?}"
            ))),
        }
    }

    fn restore_rank(
        &mut self,
        r: u32,
        last_cycles: u64,
        has_gpu: bool,
        n_arrays: usize,
        sections: &[Vec<u8>],
    ) -> Result<(), CkptError> {
        let req = Request::Restore {
            last_cycles,
            has_gpu,
            n_arrays: n_arrays as u64,
            sections: sections.to_vec(),
        };
        match self.rpc(r, &req) {
            Ok(Resp::Ok) => Ok(()),
            Ok(Resp::CkptErr(e)) => Err(e),
            Ok(other) => Err(CkptError::Corrupt {
                offset: 0,
                message: format!("dist: rank {r} answered Restore with {other:?}"),
            }),
            // A dead worker degrades the chain link like a corrupt one:
            // the restart loop falls back to a deeper ancestor (or a
            // cold start) after prepare_resume has respawned the rank.
            Err(e) => Err(CkptError::Corrupt {
                offset: 0,
                message: format!("dist: restoring rank {r}: {e}"),
            }),
        }
    }

    fn reseed(&mut self, r: u32, attempt: u64) -> Result<(), SimError> {
        self.expect_ok(r, &Request::Reseed { attempt })
    }

    fn stats(&mut self, r: u32) -> Result<ResilienceStats, SimError> {
        match self.rpc(r, &Request::Stats)? {
            Resp::Stats(mut s) => {
                if r == 0 {
                    // The coordinator's fan-out counter rides on rank
                    // 0's reply, drained so the restart loop's
                    // per-attempt reads never double-count it.
                    s.overlapped_rounds += self.overlapped_rounds;
                    self.overlapped_rounds = 0;
                }
                Ok(s)
            }
            Resp::Err(e) => Err(e),
            other => Err(world_err(format!(
                "dist: rank {r} answered Stats with {other:?}"
            ))),
        }
    }

    fn finish(&mut self, ctls: &[RankCtl]) -> Result<Vec<RankOutcome>, SimError> {
        let reqs: Vec<(u32, Request)> = ctls
            .iter()
            .enumerate()
            .map(|(r, ctl)| {
                let req = Request::Finish {
                    done: ctl.done.flatten(),
                    vclock: ctl.vclock,
                    compute_cycles: ctl.compute_cycles,
                    comm_cycles: ctl.comm_cycles,
                };
                (r as u32, req)
            })
            .collect();
        let mut out = Vec::with_capacity(ctls.len());
        for ((r, resp), ctl) in self.rpc_fanout(&reqs)?.into_iter().zip(ctls) {
            match resp {
                Resp::Outcome {
                    output,
                    gpu_time,
                    machine,
                } => {
                    let machine = ckpt::read_machine(&mut Reader::new(&machine))
                        .map_err(|e| world_err(format!("dist: rank {r} final machine: {e}")))?;
                    out.push(RankOutcome {
                        result: ctl.done.flatten(),
                        vclock: ctl.vclock,
                        compute_cycles: ctl.compute_cycles,
                        comm_cycles: ctl.comm_cycles,
                        output,
                        gpu_time,
                        machine,
                    });
                }
                Resp::Err(e) => return Err(e),
                other => {
                    return Err(world_err(format!(
                        "dist: rank {r} answered Finish with {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

impl Drop for RemotePool<'_, '_> {
    fn drop(&mut self) {
        for worker in self.workers.iter_mut().filter_map(Option::take) {
            worker.dispose();
        }
    }
}

/// A distributed world: the `dist` analogue of [`mpi_sim::World`],
/// mirroring its builder surface (no host FFI — foreign function
/// pointers cannot cross a process boundary).
pub struct DistWorld<'p> {
    pub program: &'p Program,
    pub size: u32,
    pub cost: CostModel,
    pub gpu: Option<GpuConfig>,
    pub slice: u64,
    pub fault: Option<FaultConfig>,
    pub timeout_rounds: Option<u64>,
    pub schedule: Schedule,
    pub ckpt_salt: u64,
    launch: Launch,
    kill_rank_after: Option<(u32, u64)>,
    warm_dir: Option<PathBuf>,
}

impl<'p> DistWorld<'p> {
    pub fn new(program: &'p Program, size: u32) -> Self {
        DistWorld {
            program,
            size,
            cost: CostModel::default(),
            gpu: None,
            slice: 4_000_000,
            fault: None,
            timeout_rounds: None,
            schedule: Schedule::RankOrder,
            ckpt_salt: 0,
            launch: Launch::Threads,
            kill_rank_after: None,
            warm_dir: None,
        }
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Enable deterministic fault injection — same semantics as
    /// [`mpi_sim::World::with_faults`], including the timeout backstop.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self.timeout_rounds
            .get_or_insert(DEFAULT_FAULT_TIMEOUT_ROUNDS);
        self
    }

    pub fn with_timeout(mut self, rounds: u64) -> Self {
        self.timeout_rounds = Some(rounds);
        self
    }

    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Stamp checkpoints with a platform namespace salt (see
    /// [`mpi_sim::World::with_ckpt_salt`]).
    pub fn with_ckpt_salt(mut self, salt: u64) -> Self {
        self.ckpt_salt = salt;
        self
    }

    /// Choose how rank workers are launched (default:
    /// [`Launch::Threads`]).
    pub fn with_launch(mut self, launch: Launch) -> Self {
        self.launch = launch;
        self
    }

    /// Share the program image with spawned workers through `dir`
    /// instead of streaming it inline over the Init frame: the
    /// coordinator persists it once (content-addressed by digest,
    /// temp-then-rename) and every worker — including respawns after a
    /// crash — loads and digest-verifies it from disk. A worker that
    /// cannot resolve the warm reference answers a typed error and the
    /// coordinator falls back to the inline image automatically.
    pub fn with_warm_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.warm_dir = Some(dir.into());
        self
    }

    /// Chaos knob: kill `rank`'s worker after it has served
    /// `run_slices` slices. Consumed by the first spawn only, so the
    /// respawned worker survives and recovery completes.
    pub fn kill_rank_after(mut self, rank: u32, run_slices: u64) -> Self {
        self.kill_rank_after = Some((rank, run_slices));
        self
    }

    fn run_cfg(&self) -> RunCfg {
        RunCfg {
            size: self.size,
            cost: self.cost,
            slice: self.slice,
            timeout_rounds: self.timeout_rounds,
            schedule: self.schedule,
            ckpt_salt: self.ckpt_salt,
        }
    }

    fn pool<'a>(&self, make_args: ArgBuilder<'a>) -> Result<RemotePool<'p, 'a>, SimError> {
        RemotePool::new(
            self.program,
            self.size,
            FuncId(0), // overwritten below; entry is per-run
            make_args,
            self.gpu,
            self.fault,
            self.launch.clone(),
            self.kill_rank_after,
            self.warm_dir.clone(),
        )
    }

    /// Run `entry` on every rank — the distributed analogue of
    /// [`mpi_sim::World::run`], bit-identical to it by construction.
    pub fn run(
        &self,
        entry: FuncId,
        mut make_args: impl FnMut(u32, &mut exec::Machine) -> Result<Vec<Val>, String>,
    ) -> Result<WorldRun, SimError> {
        let mut pool = self.pool(&mut make_args)?;
        pool.entry = entry;
        let mut transport = InMemTransport::new();
        run_world(&self.run_cfg(), &mut pool, &mut transport)
    }

    /// Run with collective-boundary checkpoints and crash recovery —
    /// the distributed analogue of [`mpi_sim::World::run_with_restart`].
    /// A worker process that dies mid-run is respawned and rolled back
    /// with everyone else.
    pub fn run_with_restart(
        &self,
        entry: FuncId,
        mut make_args: impl FnMut(u32, &mut exec::Machine) -> Result<Vec<Val>, String>,
        policy: &CheckpointPolicy,
        max_restarts: u32,
    ) -> Result<WorldRun, SimError> {
        let mut pool = self.pool(&mut make_args)?;
        pool.entry = entry;
        let mut transport = InMemTransport::new();
        run_world_with_restart(
            &self.run_cfg(),
            &mut pool,
            &mut transport,
            policy,
            max_restarts,
        )
    }
}
