//! # worker — one rank in its own OS process (or thread)
//!
//! A worker dials the coordinator's loopback rendezvous port,
//! identifies itself with a token-bearing `Hello`, receives the program
//! and world configuration in `Init`, and then answers one
//! [`RankPool`]-shaped request at a time. The execution engine is the
//! *same* [`LocalPool`] the in-process `mpi-sim` backend uses, holding
//! exactly one live rank — so every instruction, fault draw, cost
//! charge, and checkpoint byte is produced by the identical code path
//! on both sides of the process boundary. Bit-identity with `mpi-sim`
//! is by construction, not by test luck.
//!
//! [`RankPool`]: mpi_sim::RankPool

use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

use exec::{FaultRng, Machine, Val};
use mpi_sim::{read_frame, write_frame, LocalPool, RankCtl, RankPool, SimError, TransportError};
use nir::codec::{read_program, Reader};
use nir::FuncId;

use crate::proto::{self, Hello, Request, Resp, WarmProgram, PROTO_VERSION};

/// Environment variables a spawned worker process reads its identity
/// from (see [`run_if_spawned`]).
pub const ENV_RANK: &str = "WJ_DIST_RANK";
pub const ENV_PORT: &str = "WJ_DIST_PORT";
pub const ENV_TOKEN: &str = "WJ_DIST_TOKEN";

/// How long a worker waits for the next request before concluding the
/// coordinator is gone and exiting — the orphan backstop that keeps a
/// killed coordinator from leaking rank processes.
const IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Dial attempts before a worker gives up on the rendezvous port. With
/// the backoff schedule below the whole budget is well under a second —
/// enough to ride out a coordinator that is still binding its listener
/// (or an injected refusal), small enough that a truly absent
/// coordinator still fails fast and typed.
pub const MAX_CONNECT_ATTEMPTS: u32 = 8;

/// Wall-clock backoff before re-dial number `attempt` (1-based):
/// exponential base (2 ms doubling, capped at 128 ms) plus a seeded
/// jitter draw in `[0, base)` so simultaneously-refused workers do not
/// re-dial in lockstep. Pure in `(seed, attempt)` — the schedule is a
/// reproducible function of the spawn identity, and it never touches
/// the [`exec::FaultPlan`] streams, so legacy fault seeds stay
/// bit-identical.
pub fn retry_backoff_ms(seed: u64, attempt: u32) -> u64 {
    let base = 2u64 << attempt.saturating_sub(1).min(6);
    let jitter = FaultRng::new(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .next_u64()
        % base;
    base + jitter
}

/// Dial the coordinator with bounded, seeded backoff-and-jitter retries.
/// Returns the stream (or the last connect error, typed by the caller)
/// plus how many re-dials were needed — the count lands in
/// [`exec::ResilienceStats::connect_retries`] via the `Stats` reply.
pub fn connect_with_retry(port: u16, seed: u64) -> (std::io::Result<TcpStream>, u64) {
    let mut retries = 0u64;
    loop {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(stream) => return (Ok(stream), retries),
            Err(e) => {
                let attempt = retries as u32 + 1;
                if attempt >= MAX_CONNECT_ATTEMPTS {
                    return (Err(e), retries);
                }
                std::thread::sleep(Duration::from_millis(retry_backoff_ms(seed, attempt)));
                retries += 1;
            }
        }
    }
}

fn corrupt(message: impl Into<String>) -> TransportError {
    TransportError::Corrupt {
        message: message.into(),
    }
}

/// Entry guard for re-executed binaries: if the spawn environment
/// ([`ENV_RANK`]/[`ENV_PORT`]/[`ENV_TOKEN`]) is set, serve as a rank
/// worker and return `true` (the caller should exit immediately —
/// it is a worker, not whatever the binary normally does). Returns
/// `false` untouched when the environment is absent.
pub fn run_if_spawned() -> bool {
    let (Ok(rank), Ok(port), Ok(token)) = (
        std::env::var(ENV_RANK),
        std::env::var(ENV_PORT),
        std::env::var(ENV_TOKEN),
    ) else {
        return false;
    };
    let parsed = (|| -> Option<(u32, u16, u64)> {
        Some((rank.parse().ok()?, port.parse().ok()?, token.parse().ok()?))
    })();
    let Some((rank, port, token)) = parsed else {
        eprintln!("wj-dist-worker: malformed spawn environment");
        return true;
    };
    let (dial, retries) = connect_with_retry(port, token ^ u64::from(rank));
    match dial {
        Ok(stream) => {
            if let Err(e) = serve_on(stream, rank, token, retries) {
                eprintln!("wj-dist-worker rank {rank}: {e}");
            }
        }
        Err(e) => eprintln!(
            "wj-dist-worker rank {rank}: connect after {} attempts: {e}",
            retries + 1
        ),
    }
    true
}

/// Resolve an `Init`'s program bytes: inline bytes win; an empty program
/// with a [`WarmProgram`] reference loads `<dir>/<digest:016x>.wprog`
/// and verifies the digest before trusting a byte of it. Every failure
/// is a typed message — the coordinator falls back to inline bytes.
fn resolve_program_bytes(program: Vec<u8>, warm: Option<WarmProgram>) -> Result<Vec<u8>, String> {
    if !program.is_empty() {
        return Ok(program);
    }
    let Some(warm) = warm else {
        return Err("Init carried neither program bytes nor a warm reference".into());
    };
    let path = crate::warm_program_path(Path::new(&warm.dir), warm.digest);
    let bytes =
        std::fs::read(&path).map_err(|e| format!("warm program {}: {e}", path.display()))?;
    let found = nir::digest64(&bytes, crate::WARM_DIGEST_SEED);
    if found != warm.digest {
        return Err(format!(
            "warm program {}: digest mismatch (stored {:#018x}, computed {found:#018x})",
            path.display(),
            warm.digest
        ));
    }
    Ok(bytes)
}

/// Serve one rank over an established coordinator connection until
/// `Shutdown`, a simulated kill, coordinator disappearance, or a wire
/// error. Used by spawned processes ([`run_if_spawned`]) and by the
/// in-process `Launch::Threads` mode — the same full protocol (program
/// bytes and all) runs either way. `connect_retries` is how many
/// re-dials [`connect_with_retry`] spent reaching the coordinator; it
/// is folded into every `Stats` reply.
pub fn serve_on(
    mut stream: TcpStream,
    rank: u32,
    token: u64,
    connect_retries: u64,
) -> Result<(), TransportError> {
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(IDLE_TIMEOUT))
        .map_err(|e| corrupt(format!("set_read_timeout: {e}")))?;
    write_frame(
        &mut stream,
        &proto::encode_hello(&Hello {
            token,
            rank,
            proto: PROTO_VERSION,
        }),
    )?;
    match proto::decode_resp(&read_frame(&mut stream)?)? {
        Resp::Ok => {}
        other => return Err(corrupt(format!("rendezvous rejected: {other:?}"))),
    }
    // A warm-reference Init that fails to resolve (missing/corrupt
    // `.wprog`) is answered with a typed error; the coordinator then
    // re-sends Init with the program inline, so the loop admits a
    // second attempt — never a split-brain, never a hang.
    let mut init = proto::decode_req(&read_frame(&mut stream)?)?;
    let (size, entry, program_bytes, fault, gpu, kill_after_runs) = loop {
        let Request::Init {
            size,
            entry,
            program,
            fault,
            gpu,
            kill_after_runs,
            warm,
        } = init
        else {
            return Err(corrupt("first request after Hello must be Init"));
        };
        match resolve_program_bytes(program, warm) {
            Ok(bytes) => break (size, entry, bytes, fault, gpu, kill_after_runs),
            Err(message) => {
                write_frame(
                    &mut stream,
                    &proto::encode_resp(&Resp::Err(SimError::World {
                        message: format!("dist worker rank {rank}: {message}"),
                    })),
                )?;
                init = proto::decode_req(&read_frame(&mut stream)?)?;
            }
        }
    };
    let program = read_program(&mut Reader::new(&program_bytes))
        .map_err(|e| corrupt(format!("decoding program: {e}")))?;
    // Entry arguments never originate here: the coordinator seeds every
    // rank with a Restore built from its own arg-builder, so worker and
    // in-process ranks start from byte-identical state.
    let mut no_args = |_: u32, _: &mut Machine| -> Result<Vec<Val>, String> {
        Err("dist worker: rank state is seeded by the coordinator".into())
    };
    let mut pool = LocalPool::new(
        &program,
        size,
        FuncId(entry),
        &mut no_args,
        gpu,
        fault.map(|b| *b),
        None,
    );
    // Ack Init: the coordinator blocks on this before seeding state.
    write_frame(&mut stream, &proto::encode_resp(&Resp::Ok))?;
    serve_pool(
        &mut stream,
        rank,
        &mut pool,
        kill_after_runs,
        connect_retries,
    )
}

fn serve_pool(
    stream: &mut TcpStream,
    rank: u32,
    pool: &mut LocalPool<'_, '_>,
    mut kill_after_runs: Option<u64>,
    connect_retries: u64,
) -> Result<(), TransportError> {
    loop {
        let req = proto::decode_req(&read_frame(stream)?)?;
        let resp = match req {
            Request::Init { .. } => Resp::Err(SimError::World {
                message: format!("dist worker rank {rank}: duplicate Init"),
            }),
            Request::Run { slice } => {
                if let Some(left) = kill_after_runs.as_mut() {
                    if *left == 0 {
                        // The chaos knob: die mid-protocol, request
                        // unanswered — exactly what a SIGKILLed rank
                        // looks like from the coordinator.
                        return Ok(());
                    }
                    *left -= 1;
                }
                match pool.run_slice(rank, slice) {
                    Ok((y, delta)) => Resp::Yielded { y, delta },
                    Err(e) => Resp::Err(e),
                }
            }
            Request::Resume { v } => reply(pool.resume(rank, v).map(|()| Resp::Ok)),
            Request::ServiceDevice => reply(pool.service_device(rank).map(Resp::Device)),
            Request::ServiceHost => reply(pool.service_host(rank).map(Resp::U64)),
            Request::ReadFloats { buf, off, count } => reply(
                pool.read_floats(rank, buf, off as usize, count as usize)
                    .map(Resp::Floats),
            ),
            Request::WriteFloats { buf, off, payload } => reply(
                pool.write_floats(rank, buf, off as usize, &payload)
                    .map(|()| Resp::Ok),
            ),
            Request::Location => Resp::Loc(pool.location(rank)),
            Request::MessageFault => reply(pool.message_fault(rank).map(Resp::Msg)),
            Request::CollectiveFault => reply(pool.collective_fault(rank).map(Resp::Msg)),
            Request::TransportFaultDraw => reply(pool.transport_fault(rank).map(Resp::Transport)),
            Request::ConnectDelay => reply(pool.connect_delay(rank).map(Resp::U64)),
            Request::CkptWriteFails => reply(pool.ckpt_write_fails(rank).map(Resp::Bool)),
            Request::Capture => reply(pool.capture_rank(rank).map(Resp::Snapshot)),
            Request::Restore {
                last_cycles,
                has_gpu,
                n_arrays,
                sections,
            } => {
                match pool.restore_rank(rank, last_cycles, has_gpu, n_arrays as usize, &sections) {
                    Ok(()) => Resp::Ok,
                    Err(e) => Resp::CkptErr(e),
                }
            }
            Request::Reseed { attempt } => reply(pool.reseed(rank, attempt).map(|()| Resp::Ok)),
            Request::Stats => reply(pool.stats(rank).map(|mut s| {
                s.connect_retries += connect_retries;
                Resp::Stats(s)
            })),
            Request::Finish {
                done,
                vclock,
                compute_cycles,
                comm_cycles,
            } => {
                let ctl = RankCtl {
                    vclock,
                    compute_cycles,
                    comm_cycles,
                    done: Some(done),
                    ..RankCtl::default()
                };
                match pool.finish_rank(rank, &ctl) {
                    Ok(outcome) => {
                        let mut w = nir::codec::Writer::new();
                        exec::ckpt::write_machine(&mut w, &outcome.machine);
                        Resp::Outcome {
                            output: outcome.output,
                            gpu_time: outcome.gpu_time,
                            machine: w.into_bytes(),
                        }
                    }
                    Err(e) => Resp::Err(e),
                }
            }
            Request::Shutdown => {
                let _ = write_frame(stream, &proto::encode_resp(&Resp::Ok));
                return Ok(());
            }
        };
        write_frame(stream, &proto::encode_resp(&resp))?;
    }
}

fn reply(r: Result<Resp, SimError>) -> Resp {
    r.unwrap_or_else(Resp::Err)
}
