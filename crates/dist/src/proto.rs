//! # proto — the coordinator <-> worker wire protocol
//!
//! One request/response pair per [`RankPool`] method, carried as typed
//! payloads inside the length-prefixed, checksummed frames of
//! [`mpi_sim::transport`]. The payload codec reuses the versioned
//! [`nir::codec`] Writer/Reader idiom end to end, so every decode
//! failure is a typed [`TransportError`] — never a panic, never a hang.
//!
//! The protocol is strict lockstep: the coordinator sends one request
//! frame and blocks (with a read timeout) on exactly one response
//! frame. Workers never speak unprompted after their `Hello`.
//!
//! [`RankPool`]: mpi_sim::RankPool

use exec::ckpt::{self, CkptError};
use exec::{FaultConfig, MsgFault, ResilienceStats, TransportFault, Val};
use gpu_sim::GpuConfig;
use mpi_sim::{DeviceOutcome, RankSnapshot, RankYield, SimError, TransportError};
use nir::codec::{intrin_of, intrin_tag, CodecError, Reader, Writer};

/// Version of the request/response payload layout (independent of the
/// frame-level [`mpi_sim::WIRE_VERSION`]). Carried in the `Hello`
/// handshake; a skew refuses the worker before any state moves.
///
/// v2: `Init` gained the warm-program reference ([`WarmProgram`]), the
/// fault-config codec gained `translate_fail`, and the resilience codec
/// gained `connect_retries` / `translate_failures`.
///
/// v3: the resilience codec gained `overlapped_rounds`.
pub const PROTO_VERSION: u32 = 3;

/// A reference to program bytes persisted in a warm artifact directory
/// shared between coordinator and workers (same host — the spawn is
/// loopback-local by construction). The worker loads
/// `<dir>/<digest:016x>.wprog` and verifies the digest before trusting
/// it; any failure is a typed `Resp::Err` and the coordinator falls
/// back to re-sending the program inline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmProgram {
    pub dir: String,
    pub digest: u64,
}

/// The first frame on a fresh worker connection: identify the rank and
/// prove the worker was spawned by *this* coordinator (the token is
/// process-private).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    pub token: u64,
    pub rank: u32,
    pub proto: u32,
}

/// A coordinator -> worker request. Rank identity is implicit: each
/// worker owns exactly one rank, fixed at `Hello`.
#[derive(Debug)]
pub enum Request {
    /// Program + per-world configuration. Sent once per connection,
    /// before anything else; `kill_after_runs` is the chaos knob that
    /// makes the worker die mid-protocol after that many `Run`s. When
    /// `warm` is set the program bytes may be empty: the worker loads
    /// them from the warm directory instead (digest-verified), so warm
    /// restarts ship a 16-byte reference instead of the whole program.
    Init {
        size: u32,
        entry: u32,
        program: Vec<u8>,
        fault: Option<Box<FaultConfig>>,
        gpu: Option<GpuConfig>,
        kill_after_runs: Option<u64>,
        warm: Option<WarmProgram>,
    },
    Run {
        slice: u64,
    },
    Resume {
        v: Val,
    },
    ServiceDevice,
    ServiceHost,
    ReadFloats {
        buf: u32,
        off: u64,
        count: u64,
    },
    WriteFloats {
        buf: u32,
        off: u64,
        payload: Vec<f32>,
    },
    Location,
    MessageFault,
    CollectiveFault,
    TransportFaultDraw,
    ConnectDelay,
    CkptWriteFails,
    Capture,
    Restore {
        last_cycles: u64,
        has_gpu: bool,
        n_arrays: u64,
        sections: Vec<Vec<u8>>,
    },
    Reseed {
        attempt: u64,
    },
    Stats,
    /// Drain the rank into its final outcome; the scheduler-side
    /// control fields ride along so the worker can run the same
    /// `finish_rank` code path as the in-process pool.
    Finish {
        done: Option<Val>,
        vclock: u64,
        compute_cycles: u64,
        comm_cycles: u64,
    },
    Shutdown,
}

/// A worker -> coordinator response.
#[derive(Debug)]
pub enum Resp {
    Ok,
    Yielded {
        y: RankYield,
        delta: u64,
    },
    Device(DeviceOutcome),
    U64(u64),
    Floats(Vec<f32>),
    Loc(Option<(String, u32)>),
    Msg(MsgFault),
    Transport(TransportFault),
    Bool(bool),
    Snapshot(RankSnapshot),
    Stats(ResilienceStats),
    /// `Finish` result: the rank's print output, device time, and its
    /// full machine (an [`exec::ckpt`] machine payload).
    Outcome {
        output: Vec<String>,
        gpu_time: u64,
        machine: Vec<u8>,
    },
    Err(SimError),
    CkptErr(CkptError),
}

fn corrupt(message: impl Into<String>) -> TransportError {
    TransportError::Corrupt {
        message: message.into(),
    }
}

fn from_codec(e: CodecError) -> TransportError {
    corrupt(format!("payload codec: {e}"))
}

fn from_ckpt(e: CkptError) -> TransportError {
    corrupt(format!("payload codec: {e}"))
}

// ---- leaf codecs --------------------------------------------------------

fn write_opt_val(w: &mut Writer, v: &Option<Val>) {
    match v {
        Some(v) => {
            w.bool(true);
            ckpt::write_val(w, *v);
        }
        None => w.bool(false),
    }
}

fn read_opt_val(r: &mut Reader) -> Result<Option<Val>, TransportError> {
    Ok(if r.bool().map_err(from_codec)? {
        Some(ckpt::read_val(r).map_err(from_ckpt)?)
    } else {
        None
    })
}

fn write_fault_config(w: &mut Writer, c: &FaultConfig) {
    w.u64(c.seed);
    w.f64(c.crash);
    w.f64(c.fuel_exhaust);
    w.f64(c.host_transient);
    w.f64(c.msg_drop);
    w.f64(c.msg_corrupt);
    w.f64(c.msg_delay);
    w.f64(c.ckpt_write_fail);
    w.f64(c.connect_refuse);
    w.f64(c.frame_truncate);
    w.f64(c.ack_delay);
    w.f64(c.translate_fail);
    w.u64(c.delay_cycles);
    w.u64(c.ack_delay_cycles);
    w.u32(c.max_host_retries);
    w.u64(c.retry_backoff_cycles);
}

fn read_fault_config(r: &mut Reader) -> Result<FaultConfig, TransportError> {
    let mut c = FaultConfig::seeded(r.u64().map_err(from_codec)?);
    c.crash = r.f64().map_err(from_codec)?;
    c.fuel_exhaust = r.f64().map_err(from_codec)?;
    c.host_transient = r.f64().map_err(from_codec)?;
    c.msg_drop = r.f64().map_err(from_codec)?;
    c.msg_corrupt = r.f64().map_err(from_codec)?;
    c.msg_delay = r.f64().map_err(from_codec)?;
    c.ckpt_write_fail = r.f64().map_err(from_codec)?;
    c.connect_refuse = r.f64().map_err(from_codec)?;
    c.frame_truncate = r.f64().map_err(from_codec)?;
    c.ack_delay = r.f64().map_err(from_codec)?;
    c.translate_fail = r.f64().map_err(from_codec)?;
    c.delay_cycles = r.u64().map_err(from_codec)?;
    c.ack_delay_cycles = r.u64().map_err(from_codec)?;
    c.max_host_retries = r.u32().map_err(from_codec)?;
    c.retry_backoff_cycles = r.u64().map_err(from_codec)?;
    Ok(c)
}

fn write_gpu_config(w: &mut Writer, c: &GpuConfig) {
    w.u32(c.n_sms);
    w.u32(c.lanes_per_sm);
    w.u64(c.launch_overhead);
    w.f64(c.copy_bytes_per_cycle);
    w.u64(c.copy_latency);
}

fn read_gpu_config(r: &mut Reader) -> Result<GpuConfig, TransportError> {
    Ok(GpuConfig {
        n_sms: r.u32().map_err(from_codec)?,
        lanes_per_sm: r.u32().map_err(from_codec)?,
        launch_overhead: r.u64().map_err(from_codec)?,
        copy_bytes_per_cycle: r.f64().map_err(from_codec)?,
        copy_latency: r.u64().map_err(from_codec)?,
    })
}

fn write_sim_error(w: &mut Writer, e: &SimError) {
    match e {
        SimError::Rank { rank, message } => {
            w.u8(0);
            w.u32(*rank);
            w.str(message);
        }
        SimError::Crash {
            rank,
            step,
            post_mortem,
        } => {
            w.u8(1);
            w.u32(*rank);
            w.u64(*step);
            w.str(post_mortem);
        }
        SimError::Timeout {
            rank,
            waited_rounds,
            report,
        } => {
            w.u8(2);
            w.u32(*rank);
            w.u64(*waited_rounds);
            w.str(report);
        }
        SimError::Deadlock { report } => {
            w.u8(3);
            w.str(report);
        }
        SimError::CheckpointScope { expected, found } => {
            w.u8(4);
            w.u64(*expected);
            w.u64(*found);
        }
        SimError::World { message } => {
            w.u8(5);
            w.str(message);
        }
    }
}

fn read_sim_error(r: &mut Reader) -> Result<SimError, TransportError> {
    Ok(match r.u8().map_err(from_codec)? {
        0 => SimError::Rank {
            rank: r.u32().map_err(from_codec)?,
            message: r.str().map_err(from_codec)?,
        },
        1 => SimError::Crash {
            rank: r.u32().map_err(from_codec)?,
            step: r.u64().map_err(from_codec)?,
            post_mortem: r.str().map_err(from_codec)?,
        },
        2 => SimError::Timeout {
            rank: r.u32().map_err(from_codec)?,
            waited_rounds: r.u64().map_err(from_codec)?,
            report: r.str().map_err(from_codec)?,
        },
        3 => SimError::Deadlock {
            report: r.str().map_err(from_codec)?,
        },
        4 => SimError::CheckpointScope {
            expected: r.u64().map_err(from_codec)?,
            found: r.u64().map_err(from_codec)?,
        },
        5 => SimError::World {
            message: r.str().map_err(from_codec)?,
        },
        other => return Err(corrupt(format!("SimError tag {other}"))),
    })
}

fn write_ckpt_error(w: &mut Writer, e: &CkptError) {
    match e {
        CkptError::Truncated { offset } => {
            w.u8(0);
            w.u64(*offset as u64);
        }
        CkptError::BadMagic => w.u8(1),
        CkptError::VersionSkew { found, expected } => {
            w.u8(2);
            w.u8(*found);
            w.u8(*expected);
        }
        CkptError::Corrupt { offset, message } => {
            w.u8(3);
            w.u64(*offset as u64);
            w.str(message);
        }
        CkptError::ChainBroken { seq, message } => {
            w.u8(4);
            w.u64(*seq);
            w.str(message);
        }
        CkptError::ScopeMismatch { expected, found } => {
            w.u8(5);
            w.u64(*expected);
            w.u64(*found);
        }
    }
}

fn read_ckpt_error(r: &mut Reader) -> Result<CkptError, TransportError> {
    Ok(match r.u8().map_err(from_codec)? {
        0 => CkptError::Truncated {
            offset: r.u64().map_err(from_codec)? as usize,
        },
        1 => CkptError::BadMagic,
        2 => CkptError::VersionSkew {
            found: r.u8().map_err(from_codec)?,
            expected: r.u8().map_err(from_codec)?,
        },
        3 => CkptError::Corrupt {
            offset: r.u64().map_err(from_codec)? as usize,
            message: r.str().map_err(from_codec)?,
        },
        4 => CkptError::ChainBroken {
            seq: r.u64().map_err(from_codec)?,
            message: r.str().map_err(from_codec)?,
        },
        5 => CkptError::ScopeMismatch {
            expected: r.u64().map_err(from_codec)?,
            found: r.u64().map_err(from_codec)?,
        },
        other => return Err(corrupt(format!("CkptError tag {other}"))),
    })
}

fn write_msg_fault(w: &mut Writer, f: MsgFault) {
    match f {
        MsgFault::None => w.u8(0),
        MsgFault::Drop => w.u8(1),
        MsgFault::Corrupt => w.u8(2),
        MsgFault::Delay(cycles) => {
            w.u8(3);
            w.u64(cycles);
        }
    }
}

fn read_msg_fault(r: &mut Reader) -> Result<MsgFault, TransportError> {
    Ok(match r.u8().map_err(from_codec)? {
        0 => MsgFault::None,
        1 => MsgFault::Drop,
        2 => MsgFault::Corrupt,
        3 => MsgFault::Delay(r.u64().map_err(from_codec)?),
        other => return Err(corrupt(format!("MsgFault tag {other}"))),
    })
}

fn write_transport_fault(w: &mut Writer, f: TransportFault) {
    match f {
        TransportFault::None => w.u8(0),
        TransportFault::Truncate => w.u8(1),
        TransportFault::DelayAck(cycles) => {
            w.u8(2);
            w.u64(cycles);
        }
    }
}

fn read_transport_fault(r: &mut Reader) -> Result<TransportFault, TransportError> {
    Ok(match r.u8().map_err(from_codec)? {
        0 => TransportFault::None,
        1 => TransportFault::Truncate,
        2 => TransportFault::DelayAck(r.u64().map_err(from_codec)?),
        other => return Err(corrupt(format!("TransportFault tag {other}"))),
    })
}

fn write_rank_yield(w: &mut Writer, y: &RankYield) {
    match y {
        RankYield::Done(v) => {
            w.u8(0);
            write_opt_val(w, v);
        }
        RankYield::OutOfFuel => w.u8(1),
        RankYield::Crashed { step } => {
            w.u8(2);
            w.u64(*step);
        }
        RankYield::Misplaced => w.u8(3),
        RankYield::Device => w.u8(4),
        RankYield::HostCall => w.u8(5),
        RankYield::Mpi { op, args } => {
            w.u8(6);
            let (tag, axis) = intrin_tag(*op);
            w.u8(tag);
            w.u8(axis);
            w.len(args.len());
            for &a in args {
                ckpt::write_val(w, a);
            }
        }
    }
}

fn read_rank_yield(r: &mut Reader) -> Result<RankYield, TransportError> {
    Ok(match r.u8().map_err(from_codec)? {
        0 => RankYield::Done(read_opt_val(r)?),
        1 => RankYield::OutOfFuel,
        2 => RankYield::Crashed {
            step: r.u64().map_err(from_codec)?,
        },
        3 => RankYield::Misplaced,
        4 => RankYield::Device,
        5 => RankYield::HostCall,
        6 => {
            let tag = r.u8().map_err(from_codec)?;
            let axis = r.u8().map_err(from_codec)?;
            let op = intrin_of(tag, axis, r).map_err(from_codec)?;
            let n = r.len().map_err(from_codec)?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(ckpt::read_val(r).map_err(from_ckpt)?);
            }
            RankYield::Mpi { op, args }
        }
        other => return Err(corrupt(format!("RankYield tag {other}"))),
    })
}

fn write_sections(w: &mut Writer, sections: &[Vec<u8>]) {
    w.len(sections.len());
    for s in sections {
        w.len(s.len());
        w.bytes(s);
    }
}

fn read_sections(r: &mut Reader) -> Result<Vec<Vec<u8>>, TransportError> {
    let n = r.len().map_err(from_codec)?;
    let mut sections = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.len().map_err(from_codec)?;
        sections.push(r.bytes(len).map_err(from_codec)?.to_vec());
    }
    Ok(sections)
}

fn write_resilience(w: &mut Writer, s: &ResilienceStats) {
    w.u64(s.crashes);
    w.u64(s.fuel_exhaustions);
    w.u64(s.host_transients);
    w.u64(s.host_retries);
    w.u64(s.dropped_messages);
    w.u64(s.corrupted_messages);
    w.u64(s.delayed_messages);
    w.u64(s.ckpt_write_failures);
    w.u64(s.connect_refusals);
    w.u64(s.truncated_frames);
    w.u64(s.delayed_acks);
    w.u64(s.connect_retries);
    w.u64(s.translate_failures);
    w.u64(s.timeouts);
    w.u64(s.degraded_jits);
    w.u64(s.checkpoints_taken);
    w.u64(s.restarts);
    w.u64(s.overlapped_rounds);
}

fn read_resilience(r: &mut Reader) -> Result<ResilienceStats, TransportError> {
    let mut u = || r.u64().map_err(from_codec);
    Ok(ResilienceStats {
        crashes: u()?,
        fuel_exhaustions: u()?,
        host_transients: u()?,
        host_retries: u()?,
        dropped_messages: u()?,
        corrupted_messages: u()?,
        delayed_messages: u()?,
        ckpt_write_failures: u()?,
        connect_refusals: u()?,
        truncated_frames: u()?,
        delayed_acks: u()?,
        connect_retries: u()?,
        translate_failures: u()?,
        timeouts: u()?,
        degraded_jits: u()?,
        checkpoints_taken: u()?,
        restarts: u()?,
        overlapped_rounds: u()?,
    })
}

// ---- top-level payloads -------------------------------------------------

pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(h.token);
    w.u32(h.rank);
    w.u32(h.proto);
    w.into_bytes()
}

pub fn decode_hello(bytes: &[u8]) -> Result<Hello, TransportError> {
    let mut r = Reader::new(bytes);
    let h = Hello {
        token: r.u64().map_err(from_codec)?,
        rank: r.u32().map_err(from_codec)?,
        proto: r.u32().map_err(from_codec)?,
    };
    if !r.is_at_end() {
        return Err(corrupt("trailing bytes after Hello"));
    }
    Ok(h)
}

pub fn encode_req(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match req {
        Request::Init {
            size,
            entry,
            program,
            fault,
            gpu,
            kill_after_runs,
            warm,
        } => {
            w.u8(1);
            w.u32(*size);
            w.u32(*entry);
            w.len(program.len());
            w.bytes(program);
            match fault {
                Some(f) => {
                    w.bool(true);
                    write_fault_config(&mut w, f);
                }
                None => w.bool(false),
            }
            match gpu {
                Some(g) => {
                    w.bool(true);
                    write_gpu_config(&mut w, g);
                }
                None => w.bool(false),
            }
            match kill_after_runs {
                Some(n) => {
                    w.bool(true);
                    w.u64(*n);
                }
                None => w.bool(false),
            }
            match warm {
                Some(wp) => {
                    w.bool(true);
                    w.str(&wp.dir);
                    w.u64(wp.digest);
                }
                None => w.bool(false),
            }
        }
        Request::Run { slice } => {
            w.u8(2);
            w.u64(*slice);
        }
        Request::Resume { v } => {
            w.u8(3);
            ckpt::write_val(&mut w, *v);
        }
        Request::ServiceDevice => w.u8(4),
        Request::ServiceHost => w.u8(5),
        Request::ReadFloats { buf, off, count } => {
            w.u8(6);
            w.u32(*buf);
            w.u64(*off);
            w.u64(*count);
        }
        Request::WriteFloats { buf, off, payload } => {
            w.u8(7);
            w.u32(*buf);
            w.u64(*off);
            w.len(payload.len());
            for &f in payload {
                w.f32(f);
            }
        }
        Request::Location => w.u8(8),
        Request::MessageFault => w.u8(9),
        Request::CollectiveFault => w.u8(10),
        Request::TransportFaultDraw => w.u8(11),
        Request::ConnectDelay => w.u8(12),
        Request::CkptWriteFails => w.u8(13),
        Request::Capture => w.u8(14),
        Request::Restore {
            last_cycles,
            has_gpu,
            n_arrays,
            sections,
        } => {
            w.u8(15);
            w.u64(*last_cycles);
            w.bool(*has_gpu);
            w.u64(*n_arrays);
            write_sections(&mut w, sections);
        }
        Request::Reseed { attempt } => {
            w.u8(16);
            w.u64(*attempt);
        }
        Request::Stats => w.u8(17),
        Request::Finish {
            done,
            vclock,
            compute_cycles,
            comm_cycles,
        } => {
            w.u8(18);
            write_opt_val(&mut w, done);
            w.u64(*vclock);
            w.u64(*compute_cycles);
            w.u64(*comm_cycles);
        }
        Request::Shutdown => w.u8(19),
    }
    w.into_bytes()
}

pub fn decode_req(bytes: &[u8]) -> Result<Request, TransportError> {
    let mut r = Reader::new(bytes);
    let req = match r.u8().map_err(from_codec)? {
        1 => {
            let size = r.u32().map_err(from_codec)?;
            let entry = r.u32().map_err(from_codec)?;
            let plen = r.len().map_err(from_codec)?;
            let program = r.bytes(plen).map_err(from_codec)?.to_vec();
            let fault = if r.bool().map_err(from_codec)? {
                Some(Box::new(read_fault_config(&mut r)?))
            } else {
                None
            };
            let gpu = if r.bool().map_err(from_codec)? {
                Some(read_gpu_config(&mut r)?)
            } else {
                None
            };
            let kill_after_runs = if r.bool().map_err(from_codec)? {
                Some(r.u64().map_err(from_codec)?)
            } else {
                None
            };
            let warm = if r.bool().map_err(from_codec)? {
                Some(WarmProgram {
                    dir: r.str().map_err(from_codec)?,
                    digest: r.u64().map_err(from_codec)?,
                })
            } else {
                None
            };
            Request::Init {
                size,
                entry,
                program,
                fault,
                gpu,
                kill_after_runs,
                warm,
            }
        }
        2 => Request::Run {
            slice: r.u64().map_err(from_codec)?,
        },
        3 => Request::Resume {
            v: ckpt::read_val(&mut r).map_err(from_ckpt)?,
        },
        4 => Request::ServiceDevice,
        5 => Request::ServiceHost,
        6 => Request::ReadFloats {
            buf: r.u32().map_err(from_codec)?,
            off: r.u64().map_err(from_codec)?,
            count: r.u64().map_err(from_codec)?,
        },
        7 => {
            let buf = r.u32().map_err(from_codec)?;
            let off = r.u64().map_err(from_codec)?;
            let n = r.len().map_err(from_codec)?;
            let mut payload = Vec::with_capacity(n);
            for _ in 0..n {
                payload.push(r.f32().map_err(from_codec)?);
            }
            Request::WriteFloats { buf, off, payload }
        }
        8 => Request::Location,
        9 => Request::MessageFault,
        10 => Request::CollectiveFault,
        11 => Request::TransportFaultDraw,
        12 => Request::ConnectDelay,
        13 => Request::CkptWriteFails,
        14 => Request::Capture,
        15 => Request::Restore {
            last_cycles: r.u64().map_err(from_codec)?,
            has_gpu: r.bool().map_err(from_codec)?,
            n_arrays: r.u64().map_err(from_codec)?,
            sections: read_sections(&mut r)?,
        },
        16 => Request::Reseed {
            attempt: r.u64().map_err(from_codec)?,
        },
        17 => Request::Stats,
        18 => Request::Finish {
            done: read_opt_val(&mut r)?,
            vclock: r.u64().map_err(from_codec)?,
            compute_cycles: r.u64().map_err(from_codec)?,
            comm_cycles: r.u64().map_err(from_codec)?,
        },
        19 => Request::Shutdown,
        other => return Err(corrupt(format!("Request tag {other}"))),
    };
    if !r.is_at_end() {
        return Err(corrupt("trailing bytes after request"));
    }
    Ok(req)
}

pub fn encode_resp(resp: &Resp) -> Vec<u8> {
    let mut w = Writer::new();
    match resp {
        Resp::Ok => w.u8(1),
        Resp::Yielded { y, delta } => {
            w.u8(2);
            write_rank_yield(&mut w, y);
            w.u64(*delta);
        }
        Resp::Device(outcome) => {
            w.u8(3);
            match outcome {
                DeviceOutcome::Advance(cycles) => {
                    w.u8(0);
                    w.u64(*cycles);
                }
                DeviceOutcome::Crashed(step) => {
                    w.u8(1);
                    w.u64(*step);
                }
            }
        }
        Resp::U64(v) => {
            w.u8(4);
            w.u64(*v);
        }
        Resp::Floats(fs) => {
            w.u8(5);
            w.len(fs.len());
            for &f in fs {
                w.f32(f);
            }
        }
        Resp::Loc(loc) => {
            w.u8(6);
            match loc {
                Some((func, pc)) => {
                    w.bool(true);
                    w.str(func);
                    w.u32(*pc);
                }
                None => w.bool(false),
            }
        }
        Resp::Msg(f) => {
            w.u8(7);
            write_msg_fault(&mut w, *f);
        }
        Resp::Transport(f) => {
            w.u8(8);
            write_transport_fault(&mut w, *f);
        }
        Resp::Bool(b) => {
            w.u8(9);
            w.bool(*b);
        }
        Resp::Snapshot(snap) => {
            w.u8(10);
            w.u64(snap.last_cycles);
            w.bool(snap.has_gpu);
            write_sections(&mut w, &snap.sections);
        }
        Resp::Stats(s) => {
            w.u8(11);
            write_resilience(&mut w, s);
        }
        Resp::Outcome {
            output,
            gpu_time,
            machine,
        } => {
            w.u8(12);
            w.len(output.len());
            for line in output {
                w.str(line);
            }
            w.u64(*gpu_time);
            w.len(machine.len());
            w.bytes(machine);
        }
        Resp::Err(e) => {
            w.u8(13);
            write_sim_error(&mut w, e);
        }
        Resp::CkptErr(e) => {
            w.u8(14);
            write_ckpt_error(&mut w, e);
        }
    }
    w.into_bytes()
}

pub fn decode_resp(bytes: &[u8]) -> Result<Resp, TransportError> {
    let mut r = Reader::new(bytes);
    let resp = match r.u8().map_err(from_codec)? {
        1 => Resp::Ok,
        2 => Resp::Yielded {
            y: read_rank_yield(&mut r)?,
            delta: r.u64().map_err(from_codec)?,
        },
        3 => Resp::Device(match r.u8().map_err(from_codec)? {
            0 => DeviceOutcome::Advance(r.u64().map_err(from_codec)?),
            1 => DeviceOutcome::Crashed(r.u64().map_err(from_codec)?),
            other => return Err(corrupt(format!("DeviceOutcome tag {other}"))),
        }),
        4 => Resp::U64(r.u64().map_err(from_codec)?),
        5 => {
            let n = r.len().map_err(from_codec)?;
            let mut fs = Vec::with_capacity(n);
            for _ in 0..n {
                fs.push(r.f32().map_err(from_codec)?);
            }
            Resp::Floats(fs)
        }
        6 => Resp::Loc(if r.bool().map_err(from_codec)? {
            Some((r.str().map_err(from_codec)?, r.u32().map_err(from_codec)?))
        } else {
            None
        }),
        7 => Resp::Msg(read_msg_fault(&mut r)?),
        8 => Resp::Transport(read_transport_fault(&mut r)?),
        9 => Resp::Bool(r.bool().map_err(from_codec)?),
        10 => Resp::Snapshot(RankSnapshot {
            last_cycles: r.u64().map_err(from_codec)?,
            has_gpu: r.bool().map_err(from_codec)?,
            sections: read_sections(&mut r)?,
        }),
        11 => Resp::Stats(read_resilience(&mut r)?),
        12 => {
            let n = r.len().map_err(from_codec)?;
            let mut output = Vec::with_capacity(n);
            for _ in 0..n {
                output.push(r.str().map_err(from_codec)?);
            }
            let gpu_time = r.u64().map_err(from_codec)?;
            let mlen = r.len().map_err(from_codec)?;
            let machine = r.bytes(mlen).map_err(from_codec)?.to_vec();
            Resp::Outcome {
                output,
                gpu_time,
                machine,
            }
        }
        13 => Resp::Err(read_sim_error(&mut r)?),
        14 => Resp::CkptErr(read_ckpt_error(&mut r)?),
        other => return Err(corrupt(format!("Resp tag {other}"))),
    };
    if !r.is_at_end() {
        return Err(corrupt("trailing bytes after response"));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nir::IntrinOp;

    #[test]
    fn hello_and_request_payloads_round_trip() {
        let h = Hello {
            token: 0xFEED_F00D,
            rank: 3,
            proto: PROTO_VERSION,
        };
        assert_eq!(decode_hello(&encode_hello(&h)).unwrap(), h);

        let mut cfg = FaultConfig::seeded(42);
        cfg.crash = 0.25;
        cfg.frame_truncate = 0.5;
        cfg.translate_fail = 0.1;
        let reqs = [
            Request::Init {
                size: 4,
                entry: 7,
                program: vec![1, 2, 3],
                fault: Some(Box::new(cfg)),
                gpu: Some(GpuConfig::default()),
                kill_after_runs: Some(9),
                warm: None,
            },
            Request::Init {
                size: 2,
                entry: 0,
                program: vec![],
                fault: None,
                gpu: None,
                kill_after_runs: None,
                warm: Some(WarmProgram {
                    dir: "/tmp/warm".into(),
                    digest: 0xDEAD_BEEF,
                }),
            },
            Request::Run { slice: 4_000_000 },
            Request::Resume { v: Val::F32(1.5) },
            Request::ReadFloats {
                buf: 2,
                off: 8,
                count: 16,
            },
            Request::WriteFloats {
                buf: 1,
                off: 0,
                payload: vec![0.5, -2.0],
            },
            Request::Restore {
                last_cycles: 99,
                has_gpu: false,
                n_arrays: 2,
                sections: vec![vec![1], vec![2, 3]],
            },
            Request::Finish {
                done: Some(Val::I64(-4)),
                vclock: 10,
                compute_cycles: 7,
                comm_cycles: 3,
            },
        ];
        for req in &reqs {
            let decoded = decode_req(&encode_req(req)).unwrap();
            assert_eq!(format!("{decoded:?}"), format!("{req:?}"));
        }
    }

    #[test]
    fn response_payloads_round_trip() {
        let resps = [
            Resp::Ok,
            Resp::Yielded {
                y: RankYield::Mpi {
                    op: IntrinOp::MpiBarrier,
                    args: vec![Val::I32(3), Val::Unit],
                },
                delta: 1234,
            },
            Resp::Device(DeviceOutcome::Advance(500)),
            Resp::Loc(Some(("ring".into(), 17))),
            Resp::Msg(MsgFault::Delay(2000)),
            Resp::Transport(TransportFault::DelayAck(64)),
            Resp::Snapshot(RankSnapshot {
                last_cycles: 7,
                has_gpu: true,
                sections: vec![vec![9, 9], vec![]],
            }),
            Resp::Stats(ResilienceStats {
                crashes: 1,
                truncated_frames: 2,
                delayed_acks: 3,
                connect_retries: 4,
                translate_failures: 5,
                ..ResilienceStats::default()
            }),
            Resp::Err(SimError::Crash {
                rank: 2,
                step: 77,
                post_mortem: "boom".into(),
            }),
            Resp::CkptErr(CkptError::ScopeMismatch {
                expected: 1,
                found: 2,
            }),
        ];
        for resp in &resps {
            let decoded = decode_resp(&encode_resp(resp)).unwrap();
            assert_eq!(format!("{decoded:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn corrupt_payloads_decode_to_typed_errors_never_panic() {
        // Unknown tags, truncation mid-field, and trailing garbage all
        // surface as TransportError::Corrupt.
        assert!(matches!(
            decode_req(&[200]),
            Err(TransportError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_resp(&[0]),
            Err(TransportError::Corrupt { .. })
        ));
        let mut good = encode_req(&Request::Run { slice: 1 });
        good.push(0xAB);
        assert!(matches!(
            decode_req(&good),
            Err(TransportError::Corrupt { .. })
        ));
        let short = &encode_resp(&Resp::U64(7))[..4];
        assert!(matches!(
            decode_resp(short),
            Err(TransportError::Corrupt { .. })
        ));
        assert!(decode_hello(&[1, 2, 3]).is_err());
    }
}
