//! Standalone rank-worker executable for the `dist` backend's own
//! process-mode tests. Real applications re-execute themselves instead:
//! call [`dist::worker::run_if_spawned`] first thing in `main`.

fn main() {
    if !dist::worker::run_if_spawned() {
        eprintln!(
            "wj-dist-worker: not spawned by a dist coordinator \
             (WJ_DIST_RANK/WJ_DIST_PORT/WJ_DIST_TOKEN unset)"
        );
        std::process::exit(2);
    }
}
