//! # jrules — the WootinJ coding-rule checker
//!
//! Implements the two properties from §3.2 of the paper and the eight
//! coding rules that translated code must satisfy.
//!
//! **strict-final** — a type is strict-final if it is a primitive, an array
//! of a strict-final element type, or a *leaf* class (final or without any
//! declared subclasses) all of whose fields (including inherited ones) are
//! strict-final.
//!
//! **semi-immutable** — a type is semi-immutable if it is a primitive, an
//! array of a semi-immutable *and* strict-final element type, or a class
//! where (a) all fields are of semi-immutable types, (b) all superclasses
//! are semi-immutable, (c) non-array fields are constants after
//! construction (subclass constructors may overwrite superclass fields),
//! (d) constructors contain no conditionals, no method calls, and no use
//! of `this` as a value, and (e) the type is not recursive.
//!
//! The eight **coding rules** (checked per `@WootinJ` class):
//! 1. every type appearing in the code is semi-immutable;
//! 2. every type is also strict-final, except method-parameter and field
//!    types (locals, returns, casts must be strict-final);
//! 3. method parameters are never assigned;
//! 4. a type parameter's bound `S` must have only strict-final +
//!    semi-immutable direct subclasses, and type arguments must be proper
//!    subclasses of `S` (no wildcards — the grammar has none);
//! 5. static fields are final and not of array type;
//! 6. no recursive calls (checked over a conservative call graph);
//! 7. no ternary operator and no reference equality;
//! 8. no `instanceof`, no `null` literals (exceptions, reflection,
//!    threads, and `.class` do not exist in jlang at all).

#![forbid(unsafe_code)]

use std::collections::HashMap;

use jlang::span::{Diagnostic, Span};
use jlang::table::ClassTable;
use jlang::tast::{TBlock, TExpr, TExprKind, TStmt};
use jlang::types::{ClassId, Type, OBJECT};

/// Outcome of a rules check.
#[derive(Debug, Default)]
pub struct RulesReport {
    pub violations: Vec<Diagnostic>,
    /// Classes that were subject to the rules (`@WootinJ`).
    pub checked: Vec<ClassId>,
}

impl RulesReport {
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        jlang::render_diags(&self.violations)
    }
}

/// Tri-state memo for the recursive type analyses.
#[derive(Clone, Copy, PartialEq)]
enum Memo {
    InProgress,
    Yes,
    No,
}

/// The strict-final / semi-immutable analysis engine with memoization.
pub struct Analysis<'t> {
    table: &'t ClassTable,
    strict_final: HashMap<ClassId, Memo>,
    semi_immutable: HashMap<ClassId, Memo>,
    /// (owner class, own field index) -> write sites outside constructors.
    illegal_field_writes: HashMap<(ClassId, u32), Vec<Span>>,
}

impl<'t> Analysis<'t> {
    pub fn new(table: &'t ClassTable) -> Self {
        let mut a = Analysis {
            table,
            strict_final: HashMap::new(),
            semi_immutable: HashMap::new(),
            illegal_field_writes: HashMap::new(),
        };
        a.scan_field_writes();
        a
    }

    /// Whole-program scan: record every write to a non-array instance field
    /// that happens outside a constructor of the declaring class or one of
    /// its subclasses. Needed by semi-immutable precondition (c).
    fn scan_field_writes(&mut self) {
        let record = |table: &ClassTable,
                      illegal: &mut HashMap<(ClassId, u32), Vec<Span>>,
                      ctx_class: ClassId,
                      in_ctor: bool,
                      body: &TBlock| {
            body.walk_stmts(&mut |s| {
                if let TStmt::AssignField { field, span, .. } = s {
                    let owner = field.owner;
                    let own_index = field.slot - table.class(owner).field_base;
                    let finfo = &table.class(owner).fields[own_index as usize];
                    if matches!(finfo.ty, Type::Array(_)) {
                        return; // array fields are freely reassignable
                    }
                    let allowed = in_ctor && table.is_subclass_of(ctx_class, owner);
                    if !allowed {
                        illegal.entry((owner, own_index)).or_default().push(*span);
                    }
                }
            });
        };
        for info in self.table.iter() {
            for m in &info.methods {
                if let Some(body) = &m.body {
                    record(
                        self.table,
                        &mut self.illegal_field_writes,
                        info.id,
                        false,
                        body,
                    );
                }
            }
            if let Some(ctor) = &info.ctor {
                if let Some(body) = &ctor.body {
                    record(
                        self.table,
                        &mut self.illegal_field_writes,
                        info.id,
                        true,
                        body,
                    );
                }
            }
        }
    }

    /// Is `ty` strict-final?
    pub fn is_strict_final(&mut self, ty: &Type) -> bool {
        match ty {
            Type::Int | Type::Long | Type::Float | Type::Double | Type::Boolean => true,
            Type::Array(e) => self.is_strict_final(e),
            Type::Object(id, _) => self.class_strict_final(*id),
            // A type variable stands for a to-be-given strict-final class
            // (rule 4 validates the instantiation); treat as strict-final
            // in code positions.
            Type::Var(_) => true,
            Type::Void | Type::Null | Type::Str => false,
        }
    }

    fn class_strict_final(&mut self, id: ClassId) -> bool {
        match self.strict_final.get(&id) {
            Some(Memo::Yes) => return true,
            Some(Memo::No) => return false,
            // Inductive reading: a recursive chain is not strict-final.
            Some(Memo::InProgress) => return false,
            None => {}
        }
        self.strict_final.insert(id, Memo::InProgress);
        let info = self.table.class(id);
        let leaf = !info.is_interface && (info.is_final || self.table.is_leaf(id));
        let mut ok = leaf;
        if ok {
            // All fields of the class and its superclasses.
            for (cid, args) in self.table.super_chain(id) {
                for f in &self.table.class(cid).fields {
                    let ty = f.ty.subst(&args);
                    if !self.is_strict_final(&ty) {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    break;
                }
            }
        }
        self.strict_final
            .insert(id, if ok { Memo::Yes } else { Memo::No });
        ok
    }

    /// Is `ty` semi-immutable?
    pub fn is_semi_immutable(&mut self, ty: &Type) -> bool {
        match ty {
            Type::Int | Type::Long | Type::Float | Type::Double | Type::Boolean => true,
            Type::Array(e) => self.is_semi_immutable(e) && self.is_strict_final(e),
            Type::Object(id, _) => self.class_semi_immutable(*id),
            Type::Var(_) => true, // validated at instantiation by rule 4
            Type::Void | Type::Null | Type::Str => false,
        }
    }

    fn class_semi_immutable(&mut self, id: ClassId) -> bool {
        if id == OBJECT {
            return true; // "The Object class is a semi-immutable type."
        }
        match self.semi_immutable.get(&id) {
            Some(Memo::Yes) => return true,
            Some(Memo::No) => return false,
            // Precondition (e): recursive types are not semi-immutable.
            Some(Memo::InProgress) => return false,
            None => {}
        }
        self.semi_immutable.insert(id, Memo::InProgress);
        let ok = self.class_semi_immutable_inner(id);
        self.semi_immutable
            .insert(id, if ok { Memo::Yes } else { Memo::No });
        ok
    }

    fn class_semi_immutable_inner(&mut self, id: ClassId) -> bool {
        let info = self.table.class(id).clone();
        // Interfaces declare no state and no constructors; they are
        // semi-immutable carriers for their implementors.
        if info.is_interface {
            return true;
        }
        // (b) superclasses semi-immutable.
        if let Some((sid, _)) = &info.superclass {
            if !self.class_semi_immutable(*sid) {
                return false;
            }
        }
        // (a) + (e): field types semi-immutable; recursion detected via the
        // InProgress memo when a field type chain loops back to `id`.
        for f in &info.fields {
            if !self.is_semi_immutable(&f.ty) {
                return false;
            }
        }
        // (c) non-array fields constant after construction.
        for (i, f) in info.fields.iter().enumerate() {
            if matches!(f.ty, Type::Array(_)) {
                continue;
            }
            if self.illegal_field_writes.contains_key(&(id, i as u32)) {
                return false;
            }
        }
        // (d) constructor restrictions.
        if let Some(ctor) = &info.ctor {
            if !ctor_body_clean(ctor.body.as_ref(), &ctor.super_args) {
                return false;
            }
        }
        for f in &info.fields {
            if let Some(init) = &f.init {
                if !init_expr_clean(init) {
                    return false;
                }
            }
        }
        true
    }

    /// Detailed diagnostics explaining why a class fails semi-immutability.
    pub fn explain_semi_immutable(&mut self, id: ClassId) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let info = self.table.class(id).clone();
        if info.is_interface {
            return out;
        }
        if let Some((sid, _)) = &info.superclass {
            if !self.class_semi_immutable(*sid) {
                out.push(Diagnostic::error(
                    "rules",
                    info.span,
                    format!(
                        "superclass `{}` of `{}` is not semi-immutable",
                        self.table.name(*sid),
                        info.name
                    ),
                ));
            }
        }
        for f in &info.fields {
            if !self.is_semi_immutable(&f.ty) {
                out.push(Diagnostic::error(
                    "rules",
                    f.span,
                    format!(
                        "field `{}.{}` has non-semi-immutable type {}",
                        info.name,
                        f.name,
                        self.table.show_type(&f.ty)
                    ),
                ));
            }
        }
        for (i, f) in info.fields.iter().enumerate() {
            if matches!(f.ty, Type::Array(_)) {
                continue;
            }
            if let Some(spans) = self.illegal_field_writes.get(&(id, i as u32)) {
                for s in spans {
                    out.push(Diagnostic::error(
                        "rules",
                        *s,
                        format!(
                            "non-array field `{}.{}` is written outside a constructor",
                            info.name, f.name
                        ),
                    ));
                }
            }
        }
        if let Some(ctor) = &info.ctor {
            out.extend(ctor_violations(
                &info.name,
                ctor.body.as_ref(),
                &ctor.super_args,
            ));
        }
        for f in &info.fields {
            if let Some(init) = &f.init {
                if !init_expr_clean(init) {
                    out.push(Diagnostic::error(
                        "rules",
                        init.span,
                        format!(
                            "initializer of `{}.{}` contains a method call, conditional, or `this`",
                            info.name, f.name
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Is a constructor body free of conditionals, calls, and `this`-as-value?
fn ctor_body_clean(body: Option<&TBlock>, super_args: &[TExpr]) -> bool {
    let Some(body) = body else { return true };
    let mut probe = Vec::new();
    for a in super_args {
        expr_violations(a, "ctor", &mut probe);
    }
    let mut out = Vec::new();
    out.extend(probe);
    out.extend(ctor_violations("ctor", Some(body), &[]));
    out.is_empty()
}

/// Diagnostics for semi-immutable precondition (d) on a constructor body.
fn ctor_violations(
    class_name: &str,
    body: Option<&TBlock>,
    super_args: &[TExpr],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in super_args {
        expr_violations(a, class_name, &mut out);
    }
    let Some(body) = body else { return out };
    body.walk_stmts(&mut |s| match s {
        TStmt::If { span, .. } | TStmt::While { span, .. } | TStmt::For { span, .. } => {
            out.push(Diagnostic::error(
                "rules",
                *span,
                format!("constructor of `{class_name}` contains a conditional or loop"),
            ));
        }
        TStmt::AssignField { obj, value, .. } => {
            // The implicit `this.` receiver of a field write is fine.
            if !matches!(obj.kind, TExprKind::This) {
                expr_violations(obj, class_name, &mut out);
            }
            expr_violations(value, class_name, &mut out);
        }
        other => other.for_each_expr(&mut |e| {
            expr_violations(e, class_name, &mut out);
        }),
    });
    out
}

/// Report calls, ternaries, and `this`-as-value within a constructor
/// expression. Field reads through `this` are allowed (they are analyzable
/// because earlier assignments fixed their abstract values).
fn expr_violations(e: &TExpr, class_name: &str, out: &mut Vec<Diagnostic>) {
    match &e.kind {
        TExprKind::GetField { obj, .. } if matches!(obj.kind, TExprKind::This) => return,
        TExprKind::This => {
            out.push(Diagnostic::error(
                "rules",
                e.span,
                format!("constructor of `{class_name}` uses `this` as a value"),
            ));
            return;
        }
        TExprKind::Call { .. } | TExprKind::DirectCall { .. } | TExprKind::StaticCall { .. } => {
            out.push(Diagnostic::error(
                "rules",
                e.span,
                format!("constructor of `{class_name}` calls a method"),
            ));
        }
        TExprKind::Ternary { .. } => {
            out.push(Diagnostic::error(
                "rules",
                e.span,
                format!("constructor of `{class_name}` contains a conditional operator"),
            ));
        }
        _ => {}
    }
    // Recurse manually so the GetField(this) exemption applies at any depth.
    match &e.kind {
        TExprKind::GetField { obj, .. } => expr_violations(obj, class_name, out),
        TExprKind::Call { recv, args, .. } | TExprKind::DirectCall { recv, args, .. } => {
            expr_violations(recv, class_name, out);
            for a in args {
                expr_violations(a, class_name, out);
            }
        }
        TExprKind::StaticCall { args, .. } | TExprKind::New { args, .. } => {
            for a in args {
                expr_violations(a, class_name, out);
            }
        }
        TExprKind::NewArray { len, .. } => expr_violations(len, class_name, out),
        TExprKind::Index { arr, idx } => {
            expr_violations(arr, class_name, out);
            expr_violations(idx, class_name, out);
        }
        TExprKind::ArrayLen(x)
        | TExprKind::Unary { expr: x, .. }
        | TExprKind::NumCast { expr: x, .. }
        | TExprKind::RefCast { expr: x, .. }
        | TExprKind::Convert { expr: x, .. }
        | TExprKind::InstanceOf { expr: x, .. } => expr_violations(x, class_name, out),
        TExprKind::Binary { lhs, rhs, .. } | TExprKind::RefEq { lhs, rhs, .. } => {
            expr_violations(lhs, class_name, out);
            expr_violations(rhs, class_name, out);
        }
        TExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            expr_violations(cond, class_name, out);
            expr_violations(then_val, class_name, out);
            expr_violations(else_val, class_name, out);
        }
        _ => {}
    }
}

/// Is a field initializer expression free of calls/conditionals/`this`?
/// (`new`, literals, and reads of other fields are allowed.)
fn init_expr_clean(e: &TExpr) -> bool {
    let mut out = Vec::new();
    expr_violations(e, "init", &mut out);
    out.is_empty()
}

/// Check a whole program: every `@WootinJ` class is validated against the
/// eight coding rules. Non-annotated classes are ignored (the paper: "the
/// rest of the program does not have to follow the rules").
pub fn check_program(table: &ClassTable) -> RulesReport {
    let ids: Vec<ClassId> = table
        .iter()
        .filter(|c| c.has_annotation("WootinJ"))
        .map(|c| c.id)
        .collect();
    check_classes(table, &ids)
}

/// Check an explicit set of classes against the coding rules.
pub fn check_classes(table: &ClassTable, ids: &[ClassId]) -> RulesReport {
    let mut analysis = Analysis::new(table);
    let mut report = RulesReport::default();
    for &id in ids {
        report.checked.push(id);
        check_class(table, &mut analysis, id, &mut report.violations);
    }
    // Rule 6 (no recursion) is a whole-program property over the checked set.
    check_no_recursion(table, ids, &mut report.violations);
    report
}

fn check_class(
    table: &ClassTable,
    analysis: &mut Analysis<'_>,
    id: ClassId,
    out: &mut Vec<Diagnostic>,
) {
    let info = table.class(id).clone();

    // Rule 1: the class itself must be semi-immutable.
    if !analysis.class_semi_immutable(id) {
        let why = analysis.explain_semi_immutable(id);
        if why.is_empty() {
            out.push(Diagnostic::error(
                "rules",
                info.span,
                format!("`{}` is not semi-immutable", info.name),
            ));
        } else {
            out.extend(why);
        }
    }

    // Rule 4: type-parameter bounds.
    for tp in &info.type_params {
        if let Type::Object(bid, _) = &tp.bound {
            for &sub in &table.class(*bid).subclasses {
                if !analysis.class_strict_final(sub) || !analysis.class_semi_immutable(sub) {
                    out.push(Diagnostic::error(
                        "rules",
                        tp.span,
                        format!(
                            "bound `{}` of type parameter `{}` has direct subclass `{}` that is not strict-final and semi-immutable (rule 4)",
                            table.name(*bid),
                            tp.name,
                            table.name(sub)
                        ),
                    ));
                }
            }
        }
    }

    // Rule 5: static fields final, not arrays.
    for f in &info.statics {
        if !f.is_final {
            out.push(Diagnostic::error(
                "rules",
                f.span,
                format!(
                    "static field `{}.{}` must be final (rule 5)",
                    info.name, f.name
                ),
            ));
        }
        if matches!(f.ty, Type::Array(_)) {
            out.push(Diagnostic::error(
                "rules",
                f.span,
                format!(
                    "static field `{}.{}` must not be an array (rule 5)",
                    info.name, f.name
                ),
            ));
        }
    }

    // Rule 1 on field types (semi-immutable); field types may be non-leaf.
    for f in &info.fields {
        if !analysis.is_semi_immutable(&f.ty) {
            out.push(Diagnostic::error(
                "rules",
                f.span,
                format!(
                    "field `{}.{}` has non-semi-immutable type {} (rule 1)",
                    info.name,
                    f.name,
                    table.show_type(&f.ty)
                ),
            ));
        }
    }

    for m in &info.methods {
        // Rule 1 + 2 on signature types.
        for p in &m.params {
            if !analysis.is_semi_immutable(&p.ty) {
                out.push(Diagnostic::error(
                    "rules",
                    p.span,
                    format!(
                        "parameter `{}` of `{}::{}` has non-semi-immutable type {} (rule 1)",
                        p.name,
                        info.name,
                        m.name,
                        table.show_type(&p.ty)
                    ),
                ));
            }
        }
        if m.ret != Type::Void && !analysis.is_strict_final(&m.ret) {
            out.push(Diagnostic::error(
                "rules",
                m.span,
                format!(
                    "return type of `{}::{}` must be strict-final, found {} (rule 2)",
                    info.name,
                    m.name,
                    table.show_type(&m.ret)
                ),
            ));
        }
        if m.ret != Type::Void && !analysis.is_semi_immutable(&m.ret) {
            out.push(Diagnostic::error(
                "rules",
                m.span,
                format!(
                    "return type of `{}::{}` must be semi-immutable (rule 1)",
                    info.name, m.name
                ),
            ));
        }
        let Some(body) = &m.body else { continue };
        check_body(
            table,
            analysis,
            &info.name,
            &m.name,
            m.params.len() as u32,
            body,
            out,
        );
    }
}

/// Per-body checks: rules 2 (strict-final locals/casts), 3 (constant
/// parameters), 7 (ternary / reference equality), 8 (`instanceof`, `null`),
/// and rule-4 instantiation checks on `new` expressions.
fn check_body(
    table: &ClassTable,
    analysis: &mut Analysis<'_>,
    class_name: &str,
    method_name: &str,
    param_count: u32,
    body: &TBlock,
    out: &mut Vec<Diagnostic>,
) {
    let ctx = |msg: String| format!("in `{class_name}::{method_name}`: {msg}");
    body.walk_stmts(&mut |s| match s {
        TStmt::Local { ty, span, .. } => {
            if !analysis.is_strict_final(ty) {
                out.push(Diagnostic::error(
                    "rules",
                    *span,
                    ctx(format!(
                        "local variable type {} is not strict-final (rule 2)",
                        table.show_type(ty)
                    )),
                ));
            }
            if !analysis.is_semi_immutable(ty) {
                out.push(Diagnostic::error(
                    "rules",
                    *span,
                    ctx(format!(
                        "local variable type {} is not semi-immutable (rule 1)",
                        table.show_type(ty)
                    )),
                ));
            }
        }
        TStmt::AssignLocal { slot, span, .. } if *slot < param_count => {
            out.push(Diagnostic::error(
                "rules",
                *span,
                ctx("method parameters are constant and cannot be assigned (rule 3)".into()),
            ));
        }
        _ => {}
    });
    body.walk_exprs(&mut |e| match &e.kind {
        TExprKind::Ternary { .. } => out.push(Diagnostic::error(
            "rules",
            e.span,
            ctx("the conditional operator `?:` is not allowed (rule 7)".into()),
        )),
        TExprKind::RefEq { .. } => out.push(Diagnostic::error(
            "rules",
            e.span,
            ctx("reference equality `==`/`!=` is not allowed (rule 7)".into()),
        )),
        TExprKind::InstanceOf { .. } => out.push(Diagnostic::error(
            "rules",
            e.span,
            ctx("`instanceof` is not allowed (rule 8)".into()),
        )),
        TExprKind::Null => out.push(Diagnostic::error(
            "rules",
            e.span,
            ctx("`null` literals are not allowed (rule 8)".into()),
        )),
        TExprKind::RefCast { to, .. }
            if !analysis.is_strict_final(to) => {
                out.push(Diagnostic::error(
                    "rules",
                    e.span,
                    ctx(format!(
                        "cast target {} is not strict-final (rule 2)",
                        table.show_type(to)
                    )),
                ));
            }
        TExprKind::New { class, targs, .. } => {
            // Rule 4: type arguments must be proper strict-final subclasses
            // of the parameter's bound.
            let cinfo = table.class(*class);
            for (tp, ta) in cinfo.type_params.iter().zip(targs) {
                if let Type::Object(aid, _) = ta {
                    if let Type::Object(bid, _) = &tp.bound {
                        if aid == bid {
                            out.push(Diagnostic::error(
                                "rules",
                                e.span,
                                ctx(format!(
                                    "type argument for `{}` must be a proper subclass of its bound `{}`, not the bound itself (rule 4)",
                                    tp.name,
                                    table.name(*bid)
                                )),
                            ));
                        }
                    }
                    if !analysis.class_strict_final(*aid) {
                        out.push(Diagnostic::error(
                            "rules",
                            e.span,
                            ctx(format!(
                                "type argument `{}` is not strict-final (rule 4)",
                                table.name(*aid)
                            )),
                        ));
                    }
                }
            }
        }
        _ => {}
    });
}

/// Rule 6: reject recursion over a conservative call graph. A virtual call
/// may land on any override declared at or below the statically resolved
/// class, so edges are added to all of them.
fn check_no_recursion(table: &ClassTable, ids: &[ClassId], out: &mut Vec<Diagnostic>) {
    type Node = (ClassId, u32);
    let mut edges: HashMap<Node, Vec<Node>> = HashMap::new();

    let add_body_edges = |from: Node, body: &TBlock, edges: &mut HashMap<Node, Vec<Node>>| {
        body.walk_exprs(&mut |e| {
            let targets: Vec<Node> = match &e.kind {
                TExprKind::Call { method, .. } => {
                    // All implementations reachable from decl_class downward.
                    let name = &table.method(method.decl_class, method.index).name;
                    let mut t = Vec::new();
                    let mut stack = vec![method.decl_class];
                    let mut seen = Vec::new();
                    while let Some(c) = stack.pop() {
                        if seen.contains(&c) {
                            continue;
                        }
                        seen.push(c);
                        if let Some((ic, im)) = table.resolve_impl(c, name) {
                            if !t.contains(&(ic, im)) {
                                t.push((ic, im));
                            }
                        }
                        stack.extend(table.class(c).subclasses.iter().copied());
                    }
                    t
                }
                TExprKind::DirectCall { method, .. } => vec![(method.decl_class, method.index)],
                TExprKind::StaticCall { class, index, .. } => vec![(*class, *index)],
                _ => Vec::new(),
            };
            edges.entry(from).or_default().extend(targets);
        });
    };

    for &id in ids {
        let info = table.class(id);
        for (mi, m) in info.methods.iter().enumerate() {
            if let Some(body) = &m.body {
                add_body_edges((id, mi as u32), body, &mut edges);
            }
        }
    }

    // DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }

    fn dfs(
        n: (ClassId, u32),
        edges: &HashMap<(ClassId, u32), Vec<(ClassId, u32)>>,
        color: &mut HashMap<(ClassId, u32), Color>,
        cycle: &mut Vec<(ClassId, u32)>,
    ) -> bool {
        match color.get(&n).copied().unwrap_or(Color::White) {
            Color::Gray => {
                cycle.push(n);
                return true;
            }
            Color::Black => return false,
            Color::White => {}
        }
        color.insert(n, Color::Gray);
        if let Some(succs) = edges.get(&n) {
            for &s in succs {
                if dfs(s, edges, color, cycle) {
                    if cycle.len() == 1 || cycle.first() != cycle.last() {
                        cycle.push(n);
                    }
                    return true;
                }
            }
        }
        color.insert(n, Color::Black);
        false
    }

    let mut color: HashMap<Node, Color> = HashMap::new();
    let nodes: Vec<Node> = edges.keys().copied().collect();
    for n in nodes {
        let mut cycle = Vec::new();
        if dfs(n, &edges, &mut color, &mut cycle) {
            let names: Vec<String> = cycle
                .iter()
                .rev()
                .map(|(c, m)| format!("{}::{}", table.name(*c), table.method(*c, *m).name))
                .collect();
            let (c, m) = cycle[0];
            out.push(Diagnostic::error(
                "rules",
                table.method(c, m).span,
                format!(
                    "recursive call chain is not allowed (rule 6): {}",
                    names.join(" -> ")
                ),
            ));
            return; // one cycle report is enough
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jlang::compile_str;

    fn report(src: &str) -> RulesReport {
        let table = compile_str(src).expect("compile");
        check_program(&table)
    }

    fn assert_violation(src: &str, needle: &str) {
        let r = report(src);
        assert!(
            r.violations.iter().any(|d| d.message.contains(needle)),
            "expected violation containing {needle:?}, got:\n{}",
            r.render()
        );
    }

    #[test]
    fn clean_library_passes() {
        let r = report(
            "@WootinJ interface Solver { float solve(float self, int index); } \
             @WootinJ final class PhysSolver implements Solver { \
               float a; \
               PhysSolver(float a0) { a = a0; } \
               float solve(float self, int index) { return a * self + index; } } \
             @WootinJ final class Stencil { \
               Solver solver; \
               Stencil(Solver s) { solver = s; } \
               void run(float[] data, int n) { \
                 for (int i = 0; i < n; i++) { data[i] = solver.solve(data[i], i); } } }",
        );
        assert!(r.is_ok(), "unexpected violations:\n{}", r.render());
        assert_eq!(r.checked.len(), 3);
    }

    #[test]
    fn unannotated_classes_are_ignored() {
        // This class violates several rules but is not @WootinJ.
        let r = report(
            "class Free { int x; void bump() { x = x + 1; } int f(int n) { if (n == 0) { return 1; } return n * f(n - 1); } }",
        );
        assert!(r.is_ok());
        assert!(r.checked.is_empty());
    }

    #[test]
    fn strict_final_analysis_on_types() {
        let table = compile_str(
            "final class Leaf { float v; Leaf(float v0) { v = v0; } } \
             class Base { } class Derived extends Base { } \
             final class HasNonLeafField { Base b; HasNonLeafField(Base b0) { b = b0; } }",
        )
        .unwrap();
        let mut a = Analysis::new(&table);
        let leaf = Type::object(table.by_name("Leaf").unwrap());
        let base = Type::object(table.by_name("Base").unwrap());
        let derived = Type::object(table.by_name("Derived").unwrap());
        let hnlf = Type::object(table.by_name("HasNonLeafField").unwrap());
        assert!(a.is_strict_final(&leaf));
        assert!(!a.is_strict_final(&base), "Base has a subclass");
        assert!(a.is_strict_final(&derived), "Derived is a leaf");
        assert!(!a.is_strict_final(&hnlf), "field of non-leaf type");
        assert!(a.is_strict_final(&Type::array(Type::Float)));
        assert!(a.is_strict_final(&Type::array(leaf)));
        assert!(!a.is_strict_final(&Type::array(base)));
    }

    #[test]
    fn recursive_type_is_not_semi_immutable() {
        let table =
            compile_str("final class Node { Node next; Node(Node n) { next = n; } }").unwrap();
        let mut a = Analysis::new(&table);
        let node = Type::object(table.by_name("Node").unwrap());
        assert!(!a.is_semi_immutable(&node));
        // The in-progress memo also makes recursive chains non-strict-final
        // — the conservative (inductive) choice.
        assert!(!a.is_strict_final(&node));
    }

    #[test]
    fn field_write_outside_ctor_breaks_semi_immutability() {
        assert_violation(
            "@WootinJ final class Counter { int n; Counter() { n = 0; } \
             void bump() { n = n + 1; } }",
            "written outside a constructor",
        );
    }

    #[test]
    fn array_fields_may_be_reassigned() {
        let r = report(
            "@WootinJ final class Buf { float[] data; Buf(float[] d) { data = d; } \
             void swap(float[] next) { data = next; } }",
        );
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn ctor_with_branch_rejected() {
        assert_violation(
            "@WootinJ final class A { int x; A(int v) { if (v > 0) { x = v; } else { x = 0; } } }",
            "conditional",
        );
    }

    #[test]
    fn ctor_with_method_call_rejected() {
        assert_violation(
            "@WootinJ final class A { int x; A() { x = helper(); } static int helper() { return 1; } }",
            "calls a method",
        );
    }

    #[test]
    fn ctor_passing_this_rejected() {
        assert_violation(
            "@WootinJ final class B { Object o; B(Object x) { o = x; } } \
             @WootinJ final class A { B b; A() { b = new B(this); } }",
            "`this`",
        );
    }

    #[test]
    fn ctor_reading_own_field_allowed() {
        let r = report("@WootinJ final class A { int x; int y; A(int v) { x = v; y = x + 1; } }");
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn param_assignment_rejected() {
        assert_violation(
            "@WootinJ final class A { A() { } void m(int x) { x = 3; } }",
            "rule 3",
        );
    }

    #[test]
    fn local_assignment_allowed() {
        let r = report(
            "@WootinJ final class A { A() { } int m(int x) { int y = x; y = y + 1; return y; } }",
        );
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn ternary_rejected() {
        assert_violation(
            "@WootinJ final class A { A() { } int m(boolean b) { int r = 0; r = b ? 1 : 0; return r; } }",
            "rule 7",
        );
    }

    #[test]
    fn ref_equality_rejected() {
        assert_violation(
            "@WootinJ final class A { A() { } boolean m(Object x, Object y) { return x == y; } }",
            "rule 7",
        );
    }

    #[test]
    fn instanceof_and_null_rejected() {
        assert_violation(
            "@WootinJ final class A { A() { } boolean m(Object x) { return x instanceof A; } }",
            "rule 8",
        );
        assert_violation(
            "@WootinJ final class A { A() { } Object m() { return null; } }",
            "rule 8",
        );
    }

    #[test]
    fn non_strict_final_local_rejected() {
        assert_violation(
            "class Base { } final class Sub extends Base { } \
             @WootinJ final class A { A() { } void m() { Base b = new Sub(); } }",
            "rule 2",
        );
    }

    #[test]
    fn non_leaf_param_type_allowed() {
        // Rule 2 exempts parameter and field types.
        let r = report(
            "interface Solver { float solve(float x); } \
             final class Impl implements Solver { Impl() { } float solve(float x) { return x; } } \
             @WootinJ final class A { Solver s; A(Solver s0) { s = s0; } \
               float m(Solver param) { return param.solve(1f); } }",
        );
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn recursion_rejected() {
        assert_violation(
            "@WootinJ final class A { A() { } int fact(int n) { \
               if (n <= 1) { return 1; } return n * fact(n - 1); } }",
            "rule 6",
        );
    }

    #[test]
    fn mutual_recursion_rejected() {
        assert_violation(
            "@WootinJ final class A { A() { } \
               int even(int n) { if (n == 0) { return 1; } return odd(n - 1); } \
               int odd(int n) { if (n == 0) { return 0; } return even(n - 1); } }",
            "rule 6",
        );
    }

    #[test]
    fn virtual_recursion_through_override_rejected() {
        // b.m() may dispatch back into the same method via an override.
        assert_violation(
            "@WootinJ class Base { Base() { } int m(int n) { return n; } } \
             @WootinJ final class Sub extends Base { Sub() { } \
               int m(int n) { if (n == 0) { return 0; } Base b = new Sub(); return b.m(n - 1); } }",
            "rule 6",
        );
    }

    #[test]
    fn mutable_static_rejected() {
        assert_violation(
            "@WootinJ final class A { static int counter = 0; A() { } }",
            "rule 5",
        );
        assert_violation(
            "@WootinJ final class A { static final float[] table = new float[4]; A() { } }",
            "rule 5",
        );
    }

    #[test]
    fn rule4_bound_subclasses_must_be_strict_final() {
        // NonLeaf is a direct subclass of the bound and itself has a subclass.
        assert_violation(
            "interface Ctx { } class NonLeaf implements Ctx { } final class Leaf2 extends NonLeaf { } \
             @WootinJ final class Holder<T extends Ctx> { T ctx; Holder(T c) { ctx = c; } }",
            "rule 4",
        );
    }

    #[test]
    fn rule4_type_argument_must_be_proper_subclass() {
        assert_violation(
            "interface Ctx { } final class MyCtx implements Ctx { MyCtx() { } } \
             @WootinJ final class Holder<T extends Ctx> { T ctx; Holder(T c) { ctx = c; } } \
             @WootinJ final class Main { Main() { } void m(Ctx c) { \
               Holder<Ctx> h = new Holder<Ctx>(c); } }",
            "not the bound itself",
        );
    }

    #[test]
    fn rule4_clean_instantiation_passes() {
        let r = report(
            "interface Ctx { } final class MyCtx implements Ctx { MyCtx() { } } \
             @WootinJ final class Holder<T extends Ctx> { T ctx; Holder(T c) { ctx = c; } } \
             @WootinJ final class Main { Main() { } void m(MyCtx c) { \
               Holder<MyCtx> h = new Holder<MyCtx>(c); } }",
        );
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn subclass_ctor_may_overwrite_super_field() {
        // Explicitly allowed by the paper's semi-immutable definition.
        let r = report(
            "@WootinJ class Conf { int n; Conf(int n0) { n = n0; } } \
             @WootinJ final class BigConf extends Conf { BigConf() { super(1); n = 64; } }",
        );
        assert!(r.is_ok(), "{}", r.render());
    }

    #[test]
    fn paper_listing3_style_program_passes() {
        let r = report(
            "@WootinJ interface Generator { float[] make(int length, int seed); } \
             @WootinJ interface Solver { float solve(float self, int index); } \
             @WootinJ final class PhysDataGen implements Generator { \
               PhysDataGen() { } \
               float[] make(int length, int seed) { \
                 float[] a = new float[length]; \
                 for (int i = 0; i < length; i++) { a[i] = i + seed; } \
                 return a; } } \
             @WootinJ final class PhysSolver implements Solver { \
               PhysSolver() { } \
               float solve(float self, int index) { return self * 0.5f + index; } } \
             @WootinJ final class StencilApp { \
               Generator generator; Solver solver; \
               StencilApp(Generator g, Solver s) { generator = g; solver = s; } \
               float run(int length, int updateCnt) { \
                 float[] array = generator.make(length, 0); \
                 for (int t = 0; t < updateCnt; t++) { \
                   for (int i = 0; i < length; i++) { array[i] = solver.solve(array[i], i); } } \
                 return array[0]; } }",
        );
        assert!(r.is_ok(), "{}", r.render());
    }
}
