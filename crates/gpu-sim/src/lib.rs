//! # gpu-sim — a deterministic CUDA-like device
//!
//! Models what the paper's evaluation needs from an NVIDIA M2050:
//!
//! * a **separate device memory space** with explicit `cudaMemcpy`-style
//!   transfers (the paper: "the translated code is executed in a separate
//!   memory space ... arguments are deeply copied"),
//! * `<<<grid, block>>>` **kernel launches** with `threadIdx` /
//!   `blockIdx` / `blockDim` / `gridDim` registers,
//! * per-block `__shared__` arrays and a **barrier-correct
//!   `__syncthreads`**: all threads of a block run to the barrier before
//!   any proceeds (lockstep phases over resumable `exec::Thread`s),
//! * a **virtual-time model**: kernel time = launch overhead + executed
//!   cycles spread over `lanes_per_sm × n_sms` lanes; copies cost
//!   bytes / bandwidth. All deterministic — the scalability figures are
//!   reproducible bit for bit.
//!
//! Data races between CUDA threads are resolved deterministically (threads
//! are serialized in (block, thread) order within a phase); real CUDA
//! leaves them undefined, so any program whose result depends on this is
//! out of spec anyway.

#![forbid(unsafe_code)]

use exec::{
    run, ArrStore, ExecError, FaultConfig, FaultPlan, Machine, ResilienceStats, Thread, Val, Yield,
};
use nir::{FuncId, IntrinOp, Program};
use std::collections::HashMap;

/// Device model parameters (defaults shaped after the paper's M2050).
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub n_sms: u32,
    /// Parallel lanes per SM (warp width).
    pub lanes_per_sm: u32,
    /// Fixed kernel-launch overhead (cycles).
    pub launch_overhead: u64,
    /// Host<->device copy bandwidth (bytes per cycle).
    pub copy_bytes_per_cycle: f64,
    /// Copy latency (cycles per transfer).
    pub copy_latency: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            n_sms: 14,
            lanes_per_sm: 32,
            launch_overhead: 5_000,
            copy_bytes_per_cycle: 8.0,
            copy_latency: 2_000,
        }
    }
}

/// Statistics of one kernel launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchStats {
    pub blocks: u64,
    pub threads: u64,
    /// Total cycles executed by all kernel threads.
    pub executed_cycles: u64,
    /// Modeled wall time of the launch (cycles).
    pub kernel_time: u64,
}

/// Classification of a device error: fatal programming/configuration
/// errors vs. injected faults that the checkpoint/restart path above the
/// MPI layer can recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpuErrorKind {
    /// Programming or configuration error; not recoverable.
    #[default]
    Fatal,
    /// A per-SM fault stream killed a kernel thread. The MPI layer
    /// converts this into a rank crash, which a checkpointed world rolls
    /// back and resumes.
    InjectedCrash { step: u64, sm: u32 },
}

/// Simulation error.
#[derive(Debug)]
pub struct GpuError {
    pub message: String,
    pub kind: GpuErrorKind,
}

impl GpuError {
    /// Was this failure injected by a device fault stream (and therefore
    /// recoverable), as opposed to a programming error?
    pub fn is_injected(&self) -> bool {
        matches!(self.kind, GpuErrorKind::InjectedCrash { .. })
    }
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu-sim error: {}", self.message)
    }
}

impl std::error::Error for GpuError {}

impl From<ExecError> for GpuError {
    fn from(e: ExecError) -> Self {
        GpuError {
            message: e.to_string(),
            kind: GpuErrorKind::Fatal,
        }
    }
}

fn err(message: impl Into<String>) -> GpuError {
    GpuError {
        message: message.into(),
        kind: GpuErrorKind::Fatal,
    }
}

/// The simulated device: its own [`Machine`] (memory space + counters)
/// plus the accumulated busy time.
pub struct Gpu {
    pub config: GpuConfig,
    pub machine: Machine,
    /// Device-busy virtual time (cycles): launches + copies.
    pub vtime: u64,
    /// Total bytes ever allocated on the device (for memory accounting).
    pub allocated_bytes: u64,
    /// Per-SM fault decision streams (empty = no injection). Blocks are
    /// scheduled round-robin over SMs, so each block draws from the
    /// stream of the SM it lands on — decorrelated per SM, deterministic
    /// per (config, launch order).
    sm_plans: Vec<FaultPlan>,
}

impl Gpu {
    pub fn new(config: GpuConfig) -> Self {
        Gpu {
            config,
            machine: Machine::new(),
            vtime: 0,
            allocated_bytes: 0,
            sm_plans: Vec::new(),
        }
    }

    /// Arm one decorrelated fault stream per SM — the device side of the
    /// failure model. Kernel threads running on an armed device draw
    /// crash checks at every yield point; an injected hit fails the
    /// launch with [`GpuErrorKind::InjectedCrash`].
    pub fn set_fault(&mut self, config: FaultConfig) {
        self.sm_plans = (0..self.config.n_sms.max(1))
            .map(|sm| FaultPlan::for_rank(config, sm))
            .collect();
    }

    /// Merged fault counters across all SM streams.
    pub fn fault_stats(&self) -> ResilienceStats {
        let mut stats = ResilienceStats::default();
        for plan in &self.sm_plans {
            stats.merge(&plan.stats);
        }
        stats
    }

    /// Perturb every SM stream past its consumed cursor and zero its
    /// counters — the rollback path, where pre-restart counters have
    /// already been folded into the world's carried totals.
    pub fn reseed_faults(&mut self, salt: u64) {
        for plan in self.sm_plans.iter_mut() {
            plan.stats = ResilienceStats::default();
            plan.reseed(salt);
        }
    }

    fn copy_cost(&self, bytes: u64) -> u64 {
        self.config.copy_latency + (bytes as f64 / self.config.copy_bytes_per_cycle) as u64
    }

    /// Allocate a zeroed f32 array on the device.
    pub fn alloc_f32(&mut self, len: usize) -> u32 {
        self.allocated_bytes += (len * 4) as u64;
        self.machine.mem.alloc(ArrStore::F32(vec![0.0; len]))
    }

    /// Copy a host array to a fresh device array (`cudaMemcpyHostToDevice`).
    pub fn copy_in(&mut self, host: &ArrStore) -> Result<u32, GpuError> {
        let bytes = store_bytes(host)?;
        self.vtime += self.copy_cost(bytes);
        self.allocated_bytes += bytes;
        Ok(self.machine.mem.alloc(host.clone()))
    }

    /// Copy a device array back over a host array
    /// (`cudaMemcpyDeviceToHost`); lengths must match.
    pub fn copy_out(&mut self, dev: u32, host: &mut ArrStore) -> Result<(), GpuError> {
        let src = self.machine.mem.arr(dev)?.clone();
        let bytes = store_bytes(&src)?;
        if src.len()? != host.len()? {
            return Err(err("copyFromGPU length mismatch"));
        }
        self.vtime += self.copy_cost(bytes);
        *host = src;
        Ok(())
    }

    pub fn free(&mut self, h: u32) -> Result<(), GpuError> {
        self.machine.mem.free(h).map_err(GpuError::from)
    }

    /// Read a float range from device memory (partial DtoH copy).
    pub fn read_range(&mut self, dev: u32, off: usize, len: usize) -> Result<Vec<f32>, GpuError> {
        self.vtime += self.copy_cost((len * 4) as u64);
        match self.machine.mem.arr(dev)? {
            ArrStore::F32(v) => v
                .get(off..off + len)
                .map(|s| s.to_vec())
                .ok_or_else(|| err("device range read out of bounds")),
            other => Err(err(format!("range read on non-f32 device array {other:?}"))),
        }
    }

    /// Write a float range into device memory (partial HtoD copy).
    pub fn write_range(&mut self, dev: u32, off: usize, data: &[f32]) -> Result<(), GpuError> {
        self.vtime += self.copy_cost((data.len() * 4) as u64);
        match self.machine.mem.arr_mut(dev)? {
            ArrStore::F32(v) => {
                let n = v.len();
                let tgt = v
                    .get_mut(off..off + data.len())
                    .ok_or_else(|| err(format!("device range write out of bounds (len {n})")))?;
                tgt.copy_from_slice(data);
                Ok(())
            }
            other => Err(err(format!(
                "range write on non-f32 device array {other:?}"
            ))),
        }
    }

    /// Execute `kernel<<<grid, block>>>(args)` with barrier-correct
    /// semantics and return the launch statistics.
    pub fn launch(
        &mut self,
        program: &Program,
        kernel: FuncId,
        grid: [u32; 3],
        block: [u32; 3],
        args: Vec<Val>,
    ) -> Result<LaunchStats, GpuError> {
        let threads_per_block = (block[0] * block[1] * block[2]) as u64;
        let n_blocks = (grid[0] * grid[1] * grid[2]) as u64;
        if threads_per_block == 0 || n_blocks == 0 {
            return Err(err("empty launch configuration"));
        }
        if threads_per_block > 1024 {
            return Err(err(format!(
                "block of {threads_per_block} threads exceeds the 1024-thread limit"
            )));
        }
        let start_cycles = self.machine.counters.cycles;

        let mut linear: u64 = 0;
        for bz in 0..grid[2] {
            for by in 0..grid[1] {
                for bx in 0..grid[0] {
                    // Round-robin block-to-SM assignment; the block's
                    // threads draw fault decisions from that SM's stream
                    // (installed as the machine's plan for the duration).
                    let sm = (linear % self.sm_plans.len().max(1) as u64) as usize;
                    let armed = !self.sm_plans.is_empty();
                    let saved = self.machine.fault.take();
                    if armed {
                        self.machine.fault = Some(self.sm_plans[sm].clone());
                    }
                    let res = self.run_block(
                        program,
                        kernel,
                        grid,
                        block,
                        [bx, by, bz],
                        &args,
                        sm as u32,
                    );
                    if armed {
                        if let Some(plan) = self.machine.fault.take() {
                            self.sm_plans[sm] = plan;
                        }
                    }
                    self.machine.fault = saved;
                    res?;
                    linear += 1;
                }
            }
        }

        let executed = self.machine.counters.cycles - start_cycles;
        let lanes = (self.config.n_sms * self.config.lanes_per_sm) as u64;
        let kernel_time = self.config.launch_overhead + executed / lanes.max(1);
        self.vtime += kernel_time;
        Ok(LaunchStats {
            blocks: n_blocks,
            threads: n_blocks * threads_per_block,
            executed_cycles: executed,
            kernel_time,
        })
    }

    /// Run one block's threads in lockstep phases separated by
    /// `__syncthreads`.
    #[allow(clippy::too_many_arguments)]
    fn run_block(
        &mut self,
        program: &Program,
        kernel: FuncId,
        grid: [u32; 3],
        block: [u32; 3],
        block_idx: [u32; 3],
        args: &[Val],
        sm: u32,
    ) -> Result<(), GpuError> {
        #[derive(PartialEq)]
        enum St {
            Runnable,
            AtBarrier,
            Done,
        }
        struct Ctx {
            thread: Thread,
            idx: [u32; 3],
            st: St,
        }
        let mut threads = Vec::new();
        for tz in 0..block[2] {
            for ty in 0..block[1] {
                for tx in 0..block[0] {
                    threads.push(Ctx {
                        thread: Thread::new(program, kernel, args.to_vec())?,
                        idx: [tx, ty, tz],
                        st: St::Runnable,
                    });
                }
            }
        }
        // Per-block shared arrays, keyed by allocation site (pc).
        let mut shared: HashMap<u32, u32> = HashMap::new();

        loop {
            let mut any_progress = false;
            for ctx in threads.iter_mut() {
                if ctx.st != St::Runnable {
                    continue;
                }
                any_progress = true;
                // Run this thread until it blocks at a barrier or finishes.
                loop {
                    match run(&mut ctx.thread, program, &mut self.machine, u64::MAX)? {
                        Yield::Done(_) => {
                            ctx.st = St::Done;
                            break;
                        }
                        Yield::Sync => {
                            ctx.st = St::AtBarrier;
                            break;
                        }
                        Yield::SharedAlloc { elem, len, pc } => {
                            let h = *shared.entry(pc).or_insert_with(|| {
                                self.machine.mem.alloc(ArrStore::new(elem, len))
                            });
                            ctx.thread.resume_with(Val::Arr(h));
                        }
                        Yield::GpuMem { op, .. } => {
                            // CUDA thread-coordinate registers.
                            let v = match op {
                                IntrinOp::ThreadIdx(a) => ctx.idx[a as usize] as i32,
                                IntrinOp::BlockIdx(a) => block_idx[a as usize] as i32,
                                IntrinOp::BlockDim(a) => block[a as usize] as i32,
                                IntrinOp::GridDim(a) => grid[a as usize] as i32,
                                other => {
                                    return Err(err(format!(
                                        "kernel performed host-only operation {other:?}"
                                    )))
                                }
                            };
                            ctx.thread.resume_with(Val::I32(v));
                        }
                        Yield::Mpi { .. } => {
                            return Err(err("kernel attempted an MPI operation"));
                        }
                        Yield::Launch { .. } => {
                            return Err(err("nested kernel launch is not supported"));
                        }
                        Yield::Host { .. } => {
                            return Err(err("kernels cannot call host (foreign) functions"));
                        }
                        Yield::OutOfFuel => {}
                        Yield::Crashed { step } => {
                            return Err(GpuError {
                                message: format!(
                                    "injected fault crashed a kernel thread on SM {sm} at step {step}"
                                ),
                                kind: GpuErrorKind::InjectedCrash { step, sm },
                            });
                        }
                    }
                }
            }
            let done = threads.iter().filter(|t| t.st == St::Done).count();
            let at_barrier = threads.iter().filter(|t| t.st == St::AtBarrier).count();
            if done == threads.len() {
                return Ok(());
            }
            if at_barrier > 0 {
                // Release the barrier: every non-done thread has arrived
                // (guaranteed by the loop above); threads that already
                // returned are treated as arrived (the common hardware
                // behavior for exited threads).
                for ctx in threads.iter_mut() {
                    if ctx.st == St::AtBarrier {
                        ctx.st = St::Runnable;
                    }
                }
                // Barrier cost: one sweep of the block.
                self.machine.counters.cycles += threads.len() as u64;
                continue;
            }
            if !any_progress {
                return Err(err("kernel block made no progress (internal error)"));
            }
        }
    }
}

/// Size in bytes of an array store.
fn store_bytes(s: &ArrStore) -> Result<u64, GpuError> {
    let n = s.len()? as u64;
    Ok(match s {
        ArrStore::I32(_) | ArrStore::F32(_) => n * 4,
        ArrStore::I64(_) | ArrStore::F64(_) => n * 8,
        ArrStore::Bool(_) => n,
        ArrStore::Freed => 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jlang::ast::BinOp;
    use jlang::types::PrimKind;
    use nir::{ElemTy, FuncBuilder, FuncKind, Instr, Ty};

    /// Build a kernel: a[global_id] = a[global_id] * 2
    fn scale_kernel(p: &mut Program) -> FuncId {
        let mut kb = FuncBuilder::new("scale", vec![Ty::Arr(ElemTy::F32)], None, FuncKind::Kernel);
        let tid = kb.reg(Ty::I32);
        let bid = kb.reg(Ty::I32);
        let bdim = kb.reg(Ty::I32);
        let gid = kb.reg(Ty::I32);
        let tmp = kb.reg(Ty::I32);
        let len = kb.reg(Ty::I32);
        let inb = kb.reg(Ty::Bool);
        let v = kb.reg(Ty::F32);
        let two = kb.reg(Ty::F32);
        let body = kb.label();
        let done = kb.label();
        kb.emit(Instr::Intrin {
            op: IntrinOp::ThreadIdx(0),
            args: vec![],
            dst: Some(tid),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::BlockIdx(0),
            args: vec![],
            dst: Some(bid),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::BlockDim(0),
            args: vec![],
            dst: Some(bdim),
        });
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: tmp,
            lhs: bid,
            rhs: bdim,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: gid,
            lhs: tmp,
            rhs: tid,
        });
        kb.emit(Instr::ArrLen { arr: 0, dst: len });
        kb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: inb,
            lhs: gid,
            rhs: len,
        });
        kb.br(inb, body, done);
        kb.bind(body);
        kb.emit(Instr::LdArr {
            arr: 0,
            idx: gid,
            dst: v,
        });
        kb.emit(Instr::ConstF32(two, 2.0));
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Float,
            dst: v,
            lhs: v,
            rhs: two,
        });
        kb.emit(Instr::StArr {
            arr: 0,
            idx: gid,
            src: v,
        });
        kb.jmp(done);
        kb.bind(done);
        kb.emit(Instr::Ret(None));
        p.add_func(kb.finish().unwrap())
    }

    #[test]
    fn memcpy_roundtrip_is_a_deep_copy() {
        let mut gpu = Gpu::new(GpuConfig::default());
        let host = ArrStore::F32(vec![1.0, 2.0, 3.0]);
        let dev = gpu.copy_in(&host).unwrap();
        gpu.machine
            .mem
            .arr_mut(dev)
            .unwrap()
            .set(0, Val::F32(9.0))
            .unwrap();
        let mut back = ArrStore::F32(vec![0.0; 3]);
        gpu.copy_out(dev, &mut back).unwrap();
        assert_eq!(back, ArrStore::F32(vec![9.0, 2.0, 3.0]));
        // The original host store is unaffected (separate memory space).
        assert_eq!(host, ArrStore::F32(vec![1.0, 2.0, 3.0]));
        assert!(gpu.vtime > 0, "copies must cost virtual time");
    }

    #[test]
    fn kernel_scales_array_across_blocks() {
        let mut p = Program::default();
        let k = scale_kernel(&mut p);
        p.validate().unwrap();
        let mut gpu = Gpu::new(GpuConfig::default());
        let dev = gpu
            .copy_in(&ArrStore::F32((0..10).map(|i| i as f32).collect()))
            .unwrap();
        let stats = gpu
            .launch(&p, k, [3, 1, 1], [4, 1, 1], vec![Val::Arr(dev)])
            .unwrap();
        assert_eq!(stats.blocks, 3);
        assert_eq!(stats.threads, 12);
        let mut out = ArrStore::F32(vec![0.0; 10]);
        gpu.copy_out(dev, &mut out).unwrap();
        assert_eq!(
            out,
            ArrStore::F32((0..10).map(|i| 2.0 * i as f32).collect())
        );
    }

    /// Kernel with a shared-memory reversal: t writes s[t], barrier,
    /// t reads s[blockDim-1-t]. Fails without a correct barrier.
    fn reverse_kernel(p: &mut Program) -> FuncId {
        let mut kb = FuncBuilder::new("rev", vec![Ty::Arr(ElemTy::F32)], None, FuncKind::Kernel);
        let tid = kb.reg(Ty::I32);
        let bdim = kb.reg(Ty::I32);
        let sh = kb.reg(Ty::Arr(ElemTy::F32));
        let v = kb.reg(Ty::F32);
        let one = kb.reg(Ty::I32);
        let ridx = kb.reg(Ty::I32);
        kb.emit(Instr::Intrin {
            op: IntrinOp::ThreadIdx(0),
            args: vec![],
            dst: Some(tid),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::BlockDim(0),
            args: vec![],
            dst: Some(bdim),
        });
        kb.emit(Instr::SharedAlloc {
            elem: ElemTy::F32,
            len: bdim,
            dst: sh,
        });
        kb.emit(Instr::LdArr {
            arr: 0,
            idx: tid,
            dst: v,
        });
        kb.emit(Instr::StArr {
            arr: sh,
            idx: tid,
            src: v,
        });
        kb.emit(Instr::Sync);
        kb.emit(Instr::ConstI32(one, 1));
        kb.emit(Instr::Bin {
            op: BinOp::Sub,
            kind: PrimKind::Int,
            dst: ridx,
            lhs: bdim,
            rhs: one,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Sub,
            kind: PrimKind::Int,
            dst: ridx,
            lhs: ridx,
            rhs: tid,
        });
        kb.emit(Instr::LdArr {
            arr: sh,
            idx: ridx,
            dst: v,
        });
        kb.emit(Instr::StArr {
            arr: 0,
            idx: tid,
            src: v,
        });
        kb.emit(Instr::Ret(None));
        p.add_func(kb.finish().unwrap())
    }

    #[test]
    fn syncthreads_is_barrier_correct() {
        let mut p = Program::default();
        let k = reverse_kernel(&mut p);
        p.validate().unwrap();
        let mut gpu = Gpu::new(GpuConfig::default());
        let dev = gpu
            .copy_in(&ArrStore::F32(vec![1.0, 2.0, 3.0, 4.0, 5.0]))
            .unwrap();
        gpu.launch(&p, k, [1, 1, 1], [5, 1, 1], vec![Val::Arr(dev)])
            .unwrap();
        let mut out = ArrStore::F32(vec![0.0; 5]);
        gpu.copy_out(dev, &mut out).unwrap();
        // A sequential run-to-completion would read stale zeros for
        // indices written by later threads; the barrier makes it correct.
        assert_eq!(out, ArrStore::F32(vec![5.0, 4.0, 3.0, 2.0, 1.0]));
    }

    #[test]
    fn shared_memory_is_per_block() {
        // Two blocks run the reversal over the same 3 elements; reversing
        // twice restores the original order. Requires per-block shared
        // arrays (a shared global would corrupt the second pass).
        let mut p = Program::default();
        let k = reverse_kernel(&mut p);
        let mut gpu = Gpu::new(GpuConfig::default());
        let dev = gpu.copy_in(&ArrStore::F32(vec![1.0, 2.0, 3.0])).unwrap();
        gpu.launch(&p, k, [2, 1, 1], [3, 1, 1], vec![Val::Arr(dev)])
            .unwrap();
        let mut out = ArrStore::F32(vec![0.0; 3]);
        gpu.copy_out(dev, &mut out).unwrap();
        assert_eq!(out, ArrStore::F32(vec![1.0, 2.0, 3.0]));
    }

    #[test]
    fn launch_time_scales_with_work() {
        let mut p = Program::default();
        let k = scale_kernel(&mut p);
        let mut gpu = Gpu::new(GpuConfig::default());
        let small = gpu.copy_in(&ArrStore::F32(vec![0.0; 64])).unwrap();
        let s1 = gpu
            .launch(&p, k, [2, 1, 1], [32, 1, 1], vec![Val::Arr(small)])
            .unwrap();
        let big = gpu.copy_in(&ArrStore::F32(vec![0.0; 4096])).unwrap();
        let s2 = gpu
            .launch(&p, k, [128, 1, 1], [32, 1, 1], vec![Val::Arr(big)])
            .unwrap();
        assert!(s2.executed_cycles > s1.executed_cycles);
        assert!(s2.kernel_time > s1.kernel_time);
        // More SMs => faster kernels for the same work.
        let mut fat = Gpu::new(GpuConfig {
            n_sms: 28,
            ..GpuConfig::default()
        });
        let big2 = fat.copy_in(&ArrStore::F32(vec![0.0; 4096])).unwrap();
        let s3 = fat
            .launch(&p, k, [128, 1, 1], [32, 1, 1], vec![Val::Arr(big2)])
            .unwrap();
        assert!(s3.kernel_time < s2.kernel_time);
    }

    #[test]
    fn oversized_block_rejected() {
        let mut p = Program::default();
        let k = scale_kernel(&mut p);
        let mut gpu = Gpu::new(GpuConfig::default());
        let dev = gpu.copy_in(&ArrStore::F32(vec![0.0; 4])).unwrap();
        let e = gpu
            .launch(&p, k, [1, 1, 1], [2048, 1, 1], vec![Val::Arr(dev)])
            .unwrap_err();
        assert!(e.message.contains("1024"), "{e}");
    }

    #[test]
    fn injected_device_crash_is_typed_and_deterministic() {
        let mut p = Program::default();
        let k = scale_kernel(&mut p);
        p.validate().unwrap();
        let run_once = || {
            let mut gpu = Gpu::new(GpuConfig::default());
            gpu.set_fault(FaultConfig {
                crash: 1.0,
                ..FaultConfig::seeded(77)
            });
            let dev = gpu.copy_in(&ArrStore::F32(vec![1.0; 16])).unwrap();
            let e = gpu
                .launch(&p, k, [2, 1, 1], [8, 1, 1], vec![Val::Arr(dev)])
                .unwrap_err();
            assert!(e.is_injected(), "{e}");
            assert!(gpu.fault_stats().crashes >= 1);
            let GpuErrorKind::InjectedCrash { step, sm } = e.kind else {
                panic!("expected InjectedCrash, got {:?}", e.kind);
            };
            (step, sm)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn zero_rate_device_plans_change_nothing() {
        let mut p = Program::default();
        let k = scale_kernel(&mut p);
        p.validate().unwrap();
        let mut armed = Gpu::new(GpuConfig::default());
        armed.set_fault(FaultConfig::seeded(5));
        let dev = armed
            .copy_in(&ArrStore::F32((0..10).map(|i| i as f32).collect()))
            .unwrap();
        armed
            .launch(&p, k, [3, 1, 1], [4, 1, 1], vec![Val::Arr(dev)])
            .unwrap();
        let mut out = ArrStore::F32(vec![0.0; 10]);
        armed.copy_out(dev, &mut out).unwrap();
        assert_eq!(
            out,
            ArrStore::F32((0..10).map(|i| 2.0 * i as f32).collect())
        );
        assert_eq!(armed.fault_stats(), ResilienceStats::default());
    }

    #[test]
    fn determinism_across_runs() {
        let mut p = Program::default();
        let k = scale_kernel(&mut p);
        let run_once = || {
            let mut gpu = Gpu::new(GpuConfig::default());
            let dev = gpu.copy_in(&ArrStore::F32(vec![1.0; 100])).unwrap();
            let stats = gpu
                .launch(&p, k, [4, 1, 1], [32, 1, 1], vec![Val::Arr(dev)])
                .unwrap();
            (stats.executed_cycles, stats.kernel_time, gpu.vtime)
        };
        assert_eq!(run_once(), run_once());
    }
}

#[cfg(test)]
mod tests_3d {
    use super::*;
    use jlang::ast::BinOp;
    use jlang::types::PrimKind;
    use nir::{ElemTy, FuncBuilder, FuncKind, Instr, Reg, Ty};

    /// Kernel writing a[linear(gid3)] = bx*100 + by*10 + bz + tz*0.5 over a
    /// 3-D grid of 3-D blocks, exercising the y/z coordinate registers.
    #[test]
    fn three_dimensional_launch_coordinates() {
        let mut kb = FuncBuilder::new("k3", vec![Ty::Arr(ElemTy::F32)], None, FuncKind::Kernel);
        let bx = kb.reg(Ty::I32);
        let by = kb.reg(Ty::I32);
        let bz = kb.reg(Ty::I32);
        let tz = kb.reg(Ty::I32);
        let gy = kb.reg(Ty::I32);
        let gz = kb.reg(Ty::I32);
        let idx = kb.reg(Ty::I32);
        let tmp = kb.reg(Ty::I32);
        let v = kb.reg(Ty::F32);
        kb.emit(Instr::Intrin {
            op: IntrinOp::BlockIdx(0),
            args: vec![],
            dst: Some(bx),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::BlockIdx(1),
            args: vec![],
            dst: Some(by),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::BlockIdx(2),
            args: vec![],
            dst: Some(bz),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::ThreadIdx(2),
            args: vec![],
            dst: Some(tz),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::GridDim(1),
            args: vec![],
            dst: Some(gy),
        });
        kb.emit(Instr::Intrin {
            op: IntrinOp::GridDim(2),
            args: vec![],
            dst: Some(gz),
        });
        // idx = ((bx * gridDim.y + by) * gridDim.z + bz) * 2 + tz
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: idx,
            lhs: bx,
            rhs: gy,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: idx,
            lhs: idx,
            rhs: by,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: idx,
            lhs: idx,
            rhs: gz,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: idx,
            lhs: idx,
            rhs: bz,
        });
        kb.emit(Instr::ConstI32(tmp, 2));
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: idx,
            lhs: idx,
            rhs: tmp,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: idx,
            lhs: idx,
            rhs: tz,
        });
        // value = bx*100 + by*10 + bz + tz (v is an f32 reg reserved above
        // and unused by the integer accumulation).
        let _reserved: Reg = v;
        let _ = _reserved;
        let acc = kb.reg(Ty::I32);
        let t2 = kb.reg(Ty::I32);
        kb.emit(Instr::ConstI32(tmp, 100));
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: acc,
            lhs: bx,
            rhs: tmp,
        });
        kb.emit(Instr::ConstI32(tmp, 10));
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: t2,
            lhs: by,
            rhs: tmp,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: acc,
            lhs: acc,
            rhs: t2,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: acc,
            lhs: acc,
            rhs: bz,
        });
        kb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: acc,
            lhs: acc,
            rhs: tz,
        });
        let vf = kb.reg(Ty::F32);
        kb.emit(Instr::Cast {
            to: PrimKind::Float,
            from: PrimKind::Int,
            dst: vf,
            src: acc,
        });
        kb.emit(Instr::StArr {
            arr: 0,
            idx,
            src: vf,
        });
        kb.emit(Instr::Ret(None));
        let mut p = Program::default();
        let k = p.add_func(kb.finish().unwrap());
        p.validate().unwrap();

        let mut gpu = Gpu::new(GpuConfig::default());
        // grid 2x3x2, block 1x1x2 -> 24 cells
        let dev = gpu.copy_in(&ArrStore::F32(vec![-1.0; 24])).unwrap();
        gpu.launch(&p, k, [2, 3, 2], [1, 1, 2], vec![Val::Arr(dev)])
            .unwrap();
        let mut out = ArrStore::F32(vec![0.0; 24]);
        gpu.copy_out(dev, &mut out).unwrap();
        let ArrStore::F32(o) = out else { panic!() };
        // Check a few coordinates: (bx,by,bz,tz)=(1,2,1,1):
        // idx = ((1*3+2)*2+1)*2+1 = 23; value = 100+20+1+1 = 122.
        assert_eq!(o[23], 122.0);
        // (0,0,0,0) -> idx 0, value 0.
        assert_eq!(o[0], 0.0);
        // Every cell written (no -1 left).
        assert!(o.iter().all(|v| *v >= 0.0), "{o:?}");
    }
}
