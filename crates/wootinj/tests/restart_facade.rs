//! End-to-end checkpoint/restart through the facade: the ISSUE acceptance
//! property at the `JitOptions::with_checkpointing` layer. A seeded
//! crash-rate configuration that fails typed today must complete under
//! checkpointing with the fault-free answer bit-for-bit, and with a disk
//! cache attached the world checkpoint must persist next to the sealed
//! artifacts as `<fingerprint>.wckpt`.

use jvm::Value;
use wootinj::{
    build_table, CheckpointPolicy, FaultConfig, JitOptions, MpiCostModel, RunReport, SharedCache,
    SimError, Val, WjError, WootinJ,
};

/// Ring sendrecv + one allreduce per step: every step ends at a
/// collective, so checkpoints can land mid-run.
const APP: &str = r#"
    @WootinJ final class RingStepReduce {
      RingStepReduce() { }
      float run(int n, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        float[] sbuf = new float[n];
        float[] rbuf = new float[n];
        for (int i = 0; i < n; i++) { sbuf[i] = rank * n + i; }
        int dest = (rank + 1) % size;
        int src = (rank + size - 1) % size;
        float acc = 0f;
        for (int s = 0; s < steps; s++) {
          MPI.sendrecvF(sbuf, 0, n, dest, rbuf, 0, src, 7);
          for (int i = 0; i < n; i++) { sbuf[i] = rbuf[i] * 0.5f; }
          acc += MPI.allreduceSumF(sbuf[0]);
        }
        return acc;
      }
    }
"#;

const SIZE: u32 = 4;
const N: i32 = 16;
const STEPS: i32 = 12;

fn run(seed: Option<u64>, options: JitOptions) -> Result<RunReport, WjError> {
    let table = build_table(&[("ring_step_reduce.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let app = env.new_instance("RingStepReduce", &[]).unwrap();
    let mut code = env
        .jit(&app, "run", &[Value::Int(N), Value::Int(STEPS)], options)
        .unwrap();
    code.set_mpi(SIZE, MpiCostModel::default());
    if let Some(seed) = seed {
        let mut cfg = FaultConfig::seeded(seed);
        cfg.crash = 0.02;
        code.set_faults(cfg);
    }
    code.set_timeout(50_000);
    code.invoke(&env)
}

fn f32_bits(report: &RunReport) -> u32 {
    match report.result {
        Some(Val::F32(v)) => v.to_bits(),
        other => panic!("expected f32 result, got {other:?}"),
    }
}

/// Find a seed whose plain (uncheckpointed) run fails with a typed crash.
fn crashing_seed() -> u64 {
    for s in 0..64u64 {
        let seed = 0xFACA_DE00 + s;
        match run(Some(seed), JitOptions::wootinj()) {
            Err(WjError::Sim(SimError::Crash { .. })) => return seed,
            Ok(_) | Err(_) => continue,
        }
    }
    panic!("no crashing seed in the sweep — the fixture lost its teeth");
}

#[test]
fn checkpointing_recovers_a_crashed_world_through_the_facade() {
    let clean = run(None, JitOptions::wootinj()).expect("fault-free control");
    let seed = crashing_seed();

    let opts = JitOptions::wootinj().with_checkpointing(CheckpointPolicy::every(1));
    let report = run(Some(seed), opts).expect("checkpointed run must complete");

    assert_eq!(
        f32_bits(&report),
        f32_bits(&clean),
        "recovered run must match the fault-free answer bit-for-bit"
    );
    assert!(report.restart.restarts >= 1, "no restart happened: vacuous");
    assert_eq!(report.resilience.restarts, report.restart.restarts);
    assert!(report.restart.checkpoints_taken >= 1);
    assert!(report.resilience.crashes >= 1, "no crash was ever injected");
}

/// `CheckpointPolicy::adaptive(16)` must beat fixed cadence-16 on the
/// crash sweep: starting sparse and halving after every restart loses
/// strictly less virtual time than staying sparse, summed over seeds,
/// while both recover the fault-free answer bit-for-bit.
#[test]
fn adaptive_cadence_beats_fixed_16_on_the_crash_sweep() {
    let clean = run(None, JitOptions::wootinj()).expect("fault-free control");
    let clean_bits = f32_bits(&clean);

    let mut fixed_lost = 0u64;
    let mut adaptive_lost = 0u64;
    let mut multi_restart_seeds = 0u64;
    for s in 0..12u64 {
        let seed = 0xADA9_7000 + s;
        let fixed = run(
            Some(seed),
            JitOptions::wootinj().with_checkpointing(CheckpointPolicy::every(16)),
        )
        .expect("fixed-cadence run must complete");
        let adaptive = run(
            Some(seed),
            JitOptions::wootinj().with_checkpointing(CheckpointPolicy::adaptive(16)),
        )
        .expect("adaptive-cadence run must complete");

        assert_eq!(
            f32_bits(&fixed),
            clean_bits,
            "seed {seed:#x}: fixed diverged"
        );
        assert_eq!(
            f32_bits(&adaptive),
            clean_bits,
            "seed {seed:#x}: adaptive diverged"
        );
        fixed_lost += fixed.restart.virtual_time_lost;
        adaptive_lost += adaptive.restart.virtual_time_lost;
        if fixed.restart.restarts >= 2 {
            multi_restart_seeds += 1;
        }
    }
    assert!(
        multi_restart_seeds >= 1,
        "sweep never restarted twice — the comparison is vacuous"
    );
    assert!(
        adaptive_lost < fixed_lost,
        "adaptive cadence must lose less virtual time than fixed-16 \
         (adaptive {adaptive_lost} vs fixed {fixed_lost})"
    );
}

/// The warm-restart satellite: with the `SharedCache` persisted beside
/// the `.wckpt`, a fresh process resumes *fully warm* — no rank anywhere
/// translates (the broadcast artifact reloads from disk), the world
/// checkpoint is already in place, and the resumed run still lands on
/// the fault-free answer bit-for-bit.
#[test]
fn persistent_shared_cache_makes_a_process_warm_restart_fully_warm() {
    let dir = std::env::temp_dir().join(format!("wj-warm-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let clean_bits = f32_bits(&run(None, JitOptions::wootinj()).expect("control"));
    let seed = crashing_seed();

    let table = build_table(&[("ring_step_reduce.jl", APP)]).unwrap();
    let opts = || {
        JitOptions::wootinj()
            .with_disk_cache(&dir)
            .with_checkpointing(CheckpointPolicy::every(1))
    };
    let run4mpi = |env: &WootinJ<'_>, app: &Value, shared: &mut SharedCache| {
        let mut code = env
            .jit4mpi(
                app,
                "run",
                &[Value::Int(N), Value::Int(STEPS)],
                opts(),
                SIZE,
                shared,
            )
            .unwrap();
        code.set_mpi(SIZE, MpiCostModel::default());
        let mut cfg = FaultConfig::seeded(seed);
        cfg.crash = 0.02;
        code.set_faults(cfg);
        code.set_timeout(50_000);
        code.invoke(env).expect("checkpointed run must complete")
    };

    // "Process" 1: cold translate, publish beside the artifacts, crash
    // and recover (persisting the world checkpoint as it goes).
    {
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("RingStepReduce", &[]).unwrap();
        let mut shared = SharedCache::persistent(&dir).unwrap();
        let report = run4mpi(&env, &app, &mut shared);
        assert_eq!(f32_bits(&report), clean_bits);
        assert_eq!(
            env.cache_stats().translations,
            1,
            "exactly one cold translate"
        );
        assert!(
            report.restart.restarts >= 1,
            "seed must crash: vacuous otherwise"
        );
    }
    let has = |ext: &str| {
        std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .any(|e| e.path().extension().and_then(|x| x.to_str()) == Some(ext))
    };
    assert!(has("wjar"), "broadcast artifact must persist beside…");
    assert!(has("wckpt"), "…the world checkpoint");

    // "Process" 2: fresh env, fresh persistent shared cache — fully
    // warm. Zero translator work anywhere; the artifact reloads from
    // disk and the persisted checkpoint warm-starts the world.
    {
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("RingStepReduce", &[]).unwrap();
        let mut shared = SharedCache::persistent(&dir).unwrap();
        let report = run4mpi(&env, &app, &mut shared);
        assert_eq!(f32_bits(&report), clean_bits);
        assert_eq!(
            env.cache_stats().translations,
            0,
            "warm restart must do zero translator work"
        );
        let stats = shared.stats();
        assert_eq!(
            stats.disk_loads, 1,
            "artifact must reload from the persist dir"
        );
        assert_eq!(stats.translations, 0, "no rank translates on warm restart");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_cache_persists_the_world_checkpoint_beside_the_artifacts() {
    let dir = std::env::temp_dir().join(format!("wj-facade-ckpt-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let seed = crashing_seed();

    let opts = JitOptions::wootinj()
        .with_disk_cache(&dir)
        .with_checkpointing(CheckpointPolicy::every(1));
    run(Some(seed), opts).expect("checkpointed run must complete");

    let wckpts: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir must exist")
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("wckpt"))
        .collect();
    assert_eq!(
        wckpts.len(),
        1,
        "exactly one persisted world checkpoint, got {wckpts:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
