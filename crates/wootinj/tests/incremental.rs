//! Incremental recompilation through `Workspace`: invalidation
//! granularity, early cutoff, and the determinism contract.
//!
//! The counters are deterministic (no wall-clock assertions here — the
//! enforced ≥10× latency bound lives in `bench repro incremental`):
//!
//! * a value-only body edit re-typechecks exactly the edited body and
//!   replays every untouched function memo;
//! * a whitespace/comment edit early-cutoffs at the item tree — zero
//!   typeck, zero lowering, same source fingerprint;
//! * a signature edit (new method on a class) invalidates exactly the
//!   edited class's bodies plus bodies that reference it — callers —
//!   and nothing else;
//! * appending a new class keeps existing class ids (and so item
//!   fingerprints) stable, reusing every existing typeck memo;
//! * a seeded property test applies random edit scripts and asserts the
//!   incremental artifact is bit-identical (`encode_semantic`) to a
//!   from-scratch build of the same sources at every step.

use jvm::Value;
use wootinj::{JitOptions, QueryStats, Val, Workspace};

const OPS: &str = "
    @WootinJ final class Scale {
      float k;
      Scale(float k0) { k = k0; }
      float f(float x) { return k * x; }
    }
    @WootinJ final class Square {
      Square() { }
      float g(float x) { return x * x; }
    }";

const APP: &str = "
    @WootinJ final class App {
      Scale s; Square q;
      App(Scale s0, Square q0) { s = s0; q = q0; }
      float run(float[] data) {
        float acc = 0f;
        for (int i = 0; i < data.length; i++) {
          acc += s.f(data[i]) + q.g(data[i]);
        }
        return acc;
      }
    }";

/// Build a workspace holding `sources` (applied in order).
fn workspace(sources: &[(&str, &str)]) -> Workspace {
    let mut ws = Workspace::new();
    for (name, text) in sources {
        ws.set_source(name, text).unwrap();
    }
    ws
}

/// JIT `App.run([1, 2, 3])` in a fresh env over `ws` and return the
/// result value plus the semantic artifact bytes and the per-jit query
/// delta.
fn jit_app(ws: &Workspace) -> (Option<Val>, Vec<u8>, QueryStats) {
    let mut env = ws.env().unwrap();
    let s = env.new_instance("Scale", &[Value::Float(3.0)]).unwrap();
    let q = env.new_instance("Square", &[]).unwrap();
    let app = env.new_instance("App", &[s, q]).unwrap();
    let data = env.new_f32_array(&[1.0, 2.0, 3.0]);
    let code = env
        .jit(&app, "run", &[data], JitOptions::wootinj())
        .unwrap();
    let result = code.invoke(&env).unwrap().result;
    (
        result,
        code.translated.encode_semantic(),
        code.query_stats(),
    )
}

/// From-scratch reference: a brand-new workspace over the same sources.
fn scratch_artifact(sources: &[(&str, &str)]) -> Vec<u8> {
    let ws = workspace(sources);
    jit_app(&ws).1
}

#[test]
fn value_edit_retypechecks_only_the_edited_body() {
    let mut ws = workspace(&[("ops.jl", OPS), ("app.jl", APP)]);
    let (cold, _, _) = jit_app(&ws);
    assert_eq!(cold, Some(Val::F32(3.0 + 1.0 + 6.0 + 4.0 + 9.0 + 9.0)));

    // Change only the *body* of Square.g; the item tree is untouched.
    let edited = OPS.replace("return x * x;", "return x * x + 0.5f;");
    let before = ws.query_stats();
    ws.edit("ops.jl", &edited).unwrap();
    let delta = ws.query_stats().since(&before);

    assert_eq!(delta.parse_executed, 1, "only ops.jl re-parsed");
    assert_eq!(
        delta.typeck_executed, 1,
        "exactly the edited body (Square.g) re-typechecks"
    );
    assert!(
        delta.typeck_reused >= 3,
        "Scale.f, Scale ctor and Square ctor replay their memos: {delta:?}"
    );

    // The re-jit replays every function memo except Square.g (and its
    // caller App.run, whose callee edge changed).
    let (warm, warm_bytes, jit_delta) = jit_app(&ws);
    assert_eq!(warm, Some(Val::F32(3.0 + 1.5 + 6.0 + 4.5 + 9.0 + 9.5)));
    assert!(
        jit_delta.lower_reused > 0,
        "untouched functions replay from memos: {jit_delta:?}"
    );
    assert!(
        jit_delta.lower_executed < jit_delta.lower_executed + jit_delta.lower_reused,
        "not everything re-lowers"
    );

    // Determinism contract: bit-identical to a from-scratch build.
    let scratch = scratch_artifact(&[("ops.jl", &edited), ("app.jl", APP)]);
    assert_eq!(warm_bytes, scratch, "incremental artifact diverged");
}

#[test]
fn whitespace_edit_early_cutoffs_everything_downstream() {
    let mut ws = workspace(&[("ops.jl", OPS), ("app.jl", APP)]);
    let (_, cold_bytes, _) = jit_app(&ws);
    let fp = ws.db().source_fingerprint();

    let before = ws.query_stats();
    let commented = format!("{APP}\n// a trailing comment, spans shift\n");
    ws.edit("app.jl", &commented).unwrap();
    let delta = ws.query_stats().since(&before);

    assert_eq!(delta.parse_executed, 1, "the edited file re-parses");
    assert_eq!(delta.typeck_executed, 0, "nothing re-typechecks");
    assert!(
        delta.early_cutoffs >= 1,
        "cutoff at the item tree: {delta:?}"
    );
    assert_eq!(
        ws.db().source_fingerprint(),
        fp,
        "semantic fingerprint is whitespace-insensitive"
    );

    // Re-jit: pure replay — zero fresh lowering, one program query.
    let (_, warm_bytes, jit_delta) = jit_app(&ws);
    assert_eq!(jit_delta.typeck_executed, 0);
    assert_eq!(
        jit_delta.lower_executed, 0,
        "all memos replayed: {jit_delta:?}"
    );
    assert_eq!(jit_delta.translates, 1);
    assert_eq!(warm_bytes, cold_bytes, "artifact unchanged by whitespace");
}

#[test]
fn signature_edit_invalidates_exactly_the_callers() {
    let mut ws = workspace(&[("ops.jl", OPS), ("app.jl", APP)]);
    jit_app(&ws);

    // Add a method to Scale: its item fingerprint changes, so Scale's
    // own bodies (ctor, f, h) and every body referencing Scale (App's
    // ctor and run) re-typecheck. Square's bodies never mention Scale
    // and must replay their memos untouched.
    let edited = OPS.replace(
        "float f(float x) { return k * x; }",
        "float f(float x) { return k * x; }\n      float h(float x) { return x; }",
    );
    let before = ws.query_stats();
    ws.edit("ops.jl", &edited).unwrap();
    let delta = ws.query_stats().since(&before);

    assert_eq!(
        delta.typeck_executed, 5,
        "Scale {{ctor, f, h}} + App {{ctor, run}} re-typecheck, nothing else: {delta:?}"
    );
    assert!(
        delta.typeck_reused >= 2,
        "Square's ctor and g replay their memos: {delta:?}"
    );

    let (_, warm_bytes, _) = jit_app(&ws);
    let scratch = scratch_artifact(&[("ops.jl", &edited), ("app.jl", APP)]);
    assert_eq!(warm_bytes, scratch, "incremental artifact diverged");
}

#[test]
fn new_class_append_keeps_existing_memos() {
    let mut ws = workspace(&[("ops.jl", OPS), ("app.jl", APP)]);
    jit_app(&ws);

    // A new class in a new trailing file: existing class ids (assigned
    // in declaration order across files) are stable, so every existing
    // item fingerprint — and with it every typeck memo — stays valid.
    let extra = "@WootinJ final class Extra { Extra() { } float e(float x) { return x + 1f; } }";
    let before = ws.query_stats();
    ws.set_source("extra.jl", extra).unwrap();
    let delta = ws.query_stats().since(&before);

    assert_eq!(
        delta.typeck_executed, 2,
        "only the new class's ctor and e typecheck: {delta:?}"
    );
    assert!(
        delta.typeck_reused >= 6,
        "existing bodies replay: {delta:?}"
    );

    let (warm, warm_bytes, _) = jit_app(&ws);
    assert_eq!(warm, Some(Val::F32(3.0 + 1.0 + 6.0 + 4.0 + 9.0 + 9.0)));
    let scratch = scratch_artifact(&[("ops.jl", OPS), ("app.jl", APP), ("extra.jl", extra)]);
    assert_eq!(warm_bytes, scratch, "incremental artifact diverged");
}

/// xorshift64* — deterministic, dependency-free PRNG for the edit
/// scripts (same idiom as `tests/property_tests.rs`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

#[test]
fn seeded_edit_scripts_stay_bit_identical_to_scratch() {
    for seed in [0x5eed_0001_u64, 0xdead_beef, 0x0bad_cafe] {
        let mut rng = Rng(seed);
        // Mutable source model mirrored into the incremental workspace.
        // Insertion order matters: class ids are assigned in file order,
        // so the scratch reference must replay the same order.
        let mut sources: Vec<(String, String)> =
            vec![("ops.jl".into(), OPS.into()), ("app.jl".into(), APP.into())];
        let upsert = |sources: &mut Vec<(String, String)>, name: &str, text: &str| match sources
            .iter_mut()
            .find(|(n, _)| n == name)
        {
            Some((_, t)) => *t = text.to_string(),
            None => sources.push((name.to_string(), text.to_string())),
        };
        let mut ws = Workspace::new();
        for (name, text) in &sources {
            ws.set_source(name, text).unwrap();
        }
        let mut extras = 0u32;

        for step in 0..6 {
            let before = ws.query_stats();
            match rng.below(4) {
                // Value edit: retune Square.g's constant offset.
                0 => {
                    let c = rng.below(9);
                    let text = OPS.replace("return x * x;", &format!("return x * x + {c}f;"));
                    upsert(&mut sources, "ops.jl", &text);
                    ws.edit("ops.jl", &text).unwrap();
                }
                // Body edit: restructure App.run's accumulation.
                1 => {
                    let c = rng.below(5);
                    let text = APP.replace(
                        "acc += s.f(data[i]) + q.g(data[i]);",
                        &format!("acc += q.g(data[i]) + s.f(data[i]) * {c}f;"),
                    );
                    upsert(&mut sources, "app.jl", &text);
                    ws.edit("app.jl", &text).unwrap();
                }
                // Whitespace edit: append a comment to app.jl. Must be
                // a pure early cutoff regardless of history.
                2 => {
                    let cur = sources
                        .iter()
                        .find(|(n, _)| n == "app.jl")
                        .unwrap()
                        .1
                        .clone();
                    let text = format!("{cur}\n// step {step}\n");
                    upsert(&mut sources, "app.jl", &text);
                    ws.edit("app.jl", &text).unwrap();
                    let delta = ws.query_stats().since(&before);
                    assert_eq!(
                        delta.typeck_executed, 0,
                        "seed {seed:#x} step {step}: whitespace re-typechecked"
                    );
                }
                // New-class append: a fresh trailing file.
                _ => {
                    extras += 1;
                    let name = format!("extra{extras}.jl");
                    let text = format!(
                        "@WootinJ final class Extra{extras} {{ Extra{extras}() {{ }} \
                         float e(float x) {{ return x + {extras}f; }} }}"
                    );
                    upsert(&mut sources, &name, &text);
                    ws.set_source(&name, &text).unwrap();
                }
            }

            // Determinism contract, every step: the incremental artifact
            // is bit-identical to a from-scratch build of the same
            // sources at this revision.
            let (incr_result, incr_bytes, _) = jit_app(&ws);
            let pairs: Vec<(&str, &str)> = sources
                .iter()
                .map(|(n, t)| (n.as_str(), t.as_str()))
                .collect();
            let scratch_ws = workspace(&pairs);
            let (scratch_result, scratch_bytes, _) = jit_app(&scratch_ws);
            assert_eq!(
                incr_bytes, scratch_bytes,
                "seed {seed:#x} step {step}: artifact diverged from scratch"
            );
            assert_eq!(incr_result, scratch_result, "seed {seed:#x} step {step}");
        }
    }
}
