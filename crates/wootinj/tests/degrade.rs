//! Graceful degradation end-to-end: a graph that violates the coding
//! rules is still served — in Virtual (C++-baseline) mode with a populated
//! `DegradeReport` — and the cache only ever holds successful rungs.
//! Also: bounded retry of transient host-FFI faults at the facade level.

use jvm::Value;
use wootinj::{build_table, FaultConfig, JitOptions, Mode, SimError, Val, WjError, WootinJ};

/// `knob` is a non-final static: a rule-5 violation, so Full and Devirt
/// translation (check_rules=true) refuse the whole program — but the
/// virtual-dispatch rung compiles it fine.
const WOBBLY: &str = "
    @WootinJ final class Wobbly {
      static int knob = 3;
      Wobbly() { }
      float run(float x) { return x * knob; }
    }";

#[test]
fn rule_violation_without_degradation_is_a_hard_error_and_never_cached() {
    let table = build_table(&[("w.jl", WOBBLY)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let w = env.new_instance("Wobbly", &[]).unwrap();
    let err = match env.jit(&w, "run", &[Value::Float(2.0)], JitOptions::wootinj()) {
        Err(e) => e,
        Ok(_) => panic!("a rule-violating graph must not translate in Full mode"),
    };
    assert!(
        err.to_string().contains("rule"),
        "the error names the rule check: {err}"
    );
    assert_eq!(
        env.cache_len(),
        0,
        "failed translations never populate the cache"
    );
}

#[test]
fn rule_violation_degrades_full_devirt_virtual_and_runs() {
    let table = build_table(&[("w.jl", WOBBLY)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let w = env.new_instance("Wobbly", &[]).unwrap();
    let code = env
        .jit(
            &w,
            "run",
            &[Value::Float(2.0)],
            JitOptions::wootinj().with_degradation(),
        )
        .unwrap();

    assert_eq!(code.mode(), Mode::Virtual, "served on the last rung");
    let report = code.degrade.as_ref().expect("degrade report populated");
    assert_eq!(report.served, Mode::Virtual);
    assert_eq!(
        report.attempts.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
        vec![Mode::Full, Mode::Devirt],
        "both checked rungs were attempted first"
    );
    for (_, why) in &report.attempts {
        assert!(
            why.contains("rule"),
            "each attempt records its failure: {why}"
        );
    }

    // The degraded code still runs and computes the right answer.
    let run = code.invoke(&env).unwrap();
    assert_eq!(run.result, Some(Val::F32(6.0)));
    assert_eq!(
        run.resilience.degraded_jits, 1,
        "the degradation is folded into the run's resilience stats"
    );
}

#[test]
fn degraded_entry_is_cached_under_its_served_rung_only() {
    let table = build_table(&[("w.jl", WOBBLY)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let w = env.new_instance("Wobbly", &[]).unwrap();
    env.jit(
        &w,
        "run",
        &[Value::Float(1.0)],
        JitOptions::wootinj().with_degradation(),
    )
    .unwrap();
    assert_eq!(
        env.cache_len(),
        1,
        "only the successful Virtual rung was inserted"
    );

    // The last rung *is* the C++-baseline config: a direct cpp() jit of the
    // same graph must be a pure cache hit.
    let hits_before = env.cache_stats().hits;
    let code = env
        .jit(&w, "run", &[Value::Float(4.0)], JitOptions::cpp())
        .unwrap();
    assert_eq!(env.cache_stats().hits, hits_before + 1);
    assert_eq!(code.invoke(&env).unwrap().result, Some(Val::F32(12.0)));
}

#[test]
fn clean_graph_with_degradation_enabled_stays_on_full_mode() {
    const CLEAN: &str = "
        @WootinJ final class Fine {
          Fine() { }
          float run(float x) { return x + 1f; }
        }";
    let table = build_table(&[("f.jl", CLEAN)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let f = env.new_instance("Fine", &[]).unwrap();
    let code = env
        .jit(
            &f,
            "run",
            &[Value::Float(41.0)],
            JitOptions::wootinj().with_degradation(),
        )
        .unwrap();
    assert_eq!(code.mode(), Mode::Full, "no failure, no degradation");
    assert!(code.degrade.is_none(), "no report when nothing degraded");
    let run = code.invoke(&env).unwrap();
    assert_eq!(run.result, Some(Val::F32(42.0)));
    assert_eq!(run.resilience.degraded_jits, 0);
}

const HOSTY: &str = "
    @WootinJ final class Hosty {
      Hosty() { }
      @Native(\"ext.id\") static double idn(double x);
      double run(int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) { s += idn(1.5); }
        return s;
      }
    }";

#[test]
fn transient_host_ffi_faults_are_retried_to_success() {
    let table = build_table(&[("h.jl", HOSTY)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    env.register_scalar_fn("ext.id", |x| x);
    let h = env.new_instance("Hosty", &[]).unwrap();
    let mut code = env
        .jit(&h, "run", &[Value::Int(40)], JitOptions::wootinj())
        .unwrap();
    let mut cfg = FaultConfig::seeded(0xB0B);
    cfg.host_transient = 0.2;
    code.set_faults(cfg);

    let run = code.invoke(&env).unwrap();
    assert_eq!(
        run.result,
        Some(Val::F64(60.0)),
        "retries preserve the result"
    );
    assert!(
        run.resilience.host_transients > 0,
        "the seed injects transients over 40 calls: {:?}",
        run.resilience
    );
    assert!(run.resilience.host_retries > 0);

    // Facade-level determinism: the same plan replays bit-identically.
    let again = code.invoke(&env).unwrap();
    assert_eq!(run.resilience, again.resilience);
    assert_eq!(run.vtime_cycles, again.vtime_cycles);
}

#[test]
fn persistent_host_ffi_faults_exhaust_the_retry_budget_typed() {
    let table = build_table(&[("h.jl", HOSTY)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    env.register_scalar_fn("ext.id", |x| x);
    let h = env.new_instance("Hosty", &[]).unwrap();
    let mut code = env
        .jit(&h, "run", &[Value::Int(3)], JitOptions::wootinj())
        .unwrap();
    let mut cfg = FaultConfig::seeded(9);
    cfg.host_transient = 1.0;
    code.set_faults(cfg);

    match code.invoke(&env) {
        Err(WjError::Sim(SimError::Rank { rank, message })) => {
            assert_eq!(rank, 0);
            assert!(
                message.contains("retry budget exhausted"),
                "typed rank error names the budget: {message}"
            );
            assert!(message.contains("ext.id"), "and the function: {message}");
            assert!(
                message.contains("at pc"),
                "the error keeps its func/pc context: {message}"
            );
        }
        Err(other) => panic!("expected a typed rank error, got {other}"),
        Ok(_) => panic!("a certain host fault must not succeed"),
    }
}
