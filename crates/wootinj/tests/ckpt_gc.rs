//! Persisted-checkpoint garbage collection: `.wckpt` files live beside
//! the sealed artifacts but are transient restart state, so the
//! `DiskStore` ages them out under their own byte budget. A long-lived
//! cache directory must stay bounded no matter how many distinct
//! checkpointed workloads churn through it.

use std::path::Path;

use wootinj::cache::{CacheBackend, DiskStore, MemoryLru, Tiered, DEFAULT_CKPT_BUDGET};
use wootinj::{build_table, CheckpointPolicy, JitOptions, WootinJ};

use jvm::Value;

fn ckpt_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("wckpt"))
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum()
}

fn write_ckpt(dir: &Path, name: &str, len: usize) {
    std::fs::write(dir.join(format!("{name}.wckpt")), vec![0xCCu8; len]).unwrap();
}

#[test]
fn opening_a_store_sweeps_stale_checkpoints_to_the_budget() {
    let dir = std::env::temp_dir().join(format!("wj-ckpt-gc-open-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // A long-lived directory accumulated checkpoint debris…
    for i in 0..16 {
        write_ckpt(&dir, &format!("wj01-stale-{i}"), 1024);
    }
    assert_eq!(ckpt_bytes(&dir), 16 * 1024);

    // …and merely *opening* a store bounded at 4 KiB sweeps it down.
    let store = DiskStore::open(&dir).unwrap().with_ckpt_budget(4 * 1024);
    assert!(
        ckpt_bytes(&dir) <= 4 * 1024,
        "open + budget must bound the checkpoint bytes"
    );
    assert!(store.stats().ckpt_evictions >= 12);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn long_lived_cache_dir_stays_bounded_under_checkpoint_churn() {
    let dir = std::env::temp_dir().join(format!("wj-ckpt-gc-churn-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    const BUDGET: u64 = 8 * 1024;
    let table = build_table(&[(
        "probe.jl",
        "@WootinJ final class Probe { Probe() { } int run(int x) { return x + 1; } }",
    )])
    .unwrap();

    // Simulate a job mix: every round some restart machinery drops a
    // fresh checkpoint (distinct fingerprints — distinct workloads), and
    // a JIT insert lands. The insert is the GC hook: after each one, the
    // checkpoint bytes must be back under budget.
    for round in 0..12u32 {
        for k in 0..4u32 {
            write_ckpt(&dir, &format!("wj01-churn-{round}-{k}"), 1024);
        }
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("Probe", &[]).unwrap();
        let store = DiskStore::open(&dir).unwrap().with_ckpt_budget(BUDGET);
        env.set_cache_backend(Box::new(Tiered::new(MemoryLru::default(), store)));
        env.jit(
            &app,
            "run",
            &[Value::Int(round as i32)],
            JitOptions::wootinj(),
        )
        .unwrap();
        assert!(
            ckpt_bytes(&dir) <= BUDGET,
            "round {round}: checkpoint bytes exceeded the budget"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chains_are_evicted_wholesale_never_orphaning_deltas() {
    let dir = std::env::temp_dir().join(format!("wj-ckpt-gc-chain-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    // Three delta chains of different ages, each base + two deltas. The
    // budget forces eviction; a delta whose base is gone is unreadable,
    // so the sweep must take (or keep) each chain as a unit.
    for (age, stem) in ["old", "mid", "new"].iter().enumerate() {
        write_ckpt(&dir, &format!("wj01-{stem}"), 1024);
        write_ckpt(&dir, &format!("wj01-{stem}.d1"), 256);
        write_ckpt(&dir, &format!("wj01-{stem}.d2"), 256);
        // Order recency via mtime: rewrite the newest chain's newest
        // member last after a beat so mtimes are distinguishable.
        std::thread::sleep(std::time::Duration::from_millis(20 * (age as u64 + 1)));
    }

    // Budget fits two chains (2 * 1536 = 3072) but not three.
    let _store = DiskStore::open(&dir).unwrap().with_ckpt_budget(3 * 1024);
    assert!(ckpt_bytes(&dir) <= 3 * 1024);

    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .filter(|n| n.ends_with(".wckpt"))
        .collect();
    // Wholesale invariant: any surviving delta implies its base survived,
    // and any surviving base kept all of its deltas.
    for stem in ["old", "mid", "new"] {
        let base = names.iter().any(|n| n == &format!("wj01-{stem}.wckpt"));
        let d1 = names.iter().any(|n| n == &format!("wj01-{stem}.d1.wckpt"));
        let d2 = names.iter().any(|n| n == &format!("wj01-{stem}.d2.wckpt"));
        assert_eq!(base, d1, "chain {stem} split: base={base} d1={d1}");
        assert_eq!(base, d2, "chain {stem} split: base={base} d2={d2}");
    }
    // At least one chain was evicted, and at least one survived.
    let bases = names.iter().filter(|n| !n.contains(".d")).count();
    assert!(
        (1..=2).contains(&bases),
        "expected 1–2 surviving chains, got {bases}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn facade_checkpoints_stay_within_the_default_budget_and_artifacts_survive() {
    // End-to-end: a checkpointed facade run persists a `.wckpt`; the
    // sweep must not touch it (it is far under the default budget), and
    // must never count `.wjar` artifacts against the checkpoint budget.
    let dir = std::env::temp_dir().join(format!("wj-ckpt-gc-facade-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let table = build_table(&[(
        "probe.jl",
        "@WootinJ final class Probe { Probe() { } int run(int x) { return x * 2; } }",
    )])
    .unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let app = env.new_instance("Probe", &[]).unwrap();
    let opts = JitOptions::wootinj()
        .with_disk_cache(&dir)
        .with_checkpointing(CheckpointPolicy::every(1));
    let code = env.jit(&app, "run", &[Value::Int(21)], opts).unwrap();
    code.invoke(&env).unwrap();

    assert!(
        ckpt_bytes(&dir) <= DEFAULT_CKPT_BUDGET,
        "a single run's checkpoint must sit far under the default budget"
    );
    let exts: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter_map(|e| {
            e.path()
                .extension()
                .and_then(|x| x.to_str())
                .map(str::to_string)
        })
        .collect();
    assert!(exts.iter().any(|e| e == "wjar"), "artifact must persist");

    std::fs::remove_dir_all(&dir).ok();
}
