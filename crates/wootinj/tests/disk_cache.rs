//! Two-tier artifact-store acceptance: a fresh env against a populated
//! `DiskStore` performs zero translator/NIR work and is ≥10× faster than
//! a cold translate; corrupted / truncated / version-skewed artifacts
//! degrade to a cold translate (never panic); memory fronts disk
//! (promotion); the disk tier is size-bounded; and a shared-cache
//! `jit4mpi` world translates each key exactly once regardless of size.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jvm::Value;
use wootinj::cache::{DiskStore, MemoryLru, Tiered};
use wootinj::{build_table, JitOptions, MpiCostModel, SharedCache, Val, WootinJ};

const APP: &str = "
    @WootinJ interface Op { float f(float x); }
    @WootinJ final class Dbl implements Op { Dbl() { } float f(float x) { return x * 2f; } }
    @WootinJ final class Sqr implements Op { Sqr() { } float f(float x) { return x * x; } }
    @WootinJ final class Runner {
      Op op; float bias;
      Runner(Op o, float b) { op = o; bias = b; }
      float run(float[] data) {
        float s = bias;
        for (int i = 0; i < data.length; i++) { s += op.f(data[i]); }
        return s;
      }
    }";

/// A heavier pipeline for the warm-start timing test: under `Mode::Full`
/// every `stage` call inlines four `Op` bodies, so the cold translate
/// pays for inlining plus fixed-point fold/dce/sroa over the expanded
/// program, while the warm path only decodes the sealed artifact.
const BIG_APP: &str = "
    @WootinJ interface Op { float f(float x); }
    @WootinJ final class Scale implements Op {
      Scale() { } float f(float x) { return x * 2f + 1f; }
    }
    @WootinJ final class Square implements Op {
      Square() { } float f(float x) { return x * x - x * 0.25f; }
    }
    @WootinJ final class Mix implements Op {
      Mix() { } float f(float x) { return x * 0.5f + x * x * 0.125f + 3f; }
    }
    @WootinJ final class Shift implements Op {
      Shift() { } float f(float x) { return x + 7f - x * 0.0625f; }
    }
    @WootinJ final class Pipe {
      Op a; Op b; Op c; Op d;
      Pipe(Op a0, Op b0, Op c0, Op d0) { a = a0; b = b0; c = c0; d = d0; }
      float stage(float x) { return a.f(b.f(c.f(d.f(x)))); }
      float stage2(float x) { return stage(stage(x)); }
      float stage4(float x) { return stage2(stage2(x)); }
      float stage8(float x) { return stage4(stage4(x)); }
      float run(float[] data) {
        float s = 0f;
        for (int i = 0; i < data.length; i++) {
          float x = data[i];
          float y = stage(x) + stage(x * 0.5f) + stage(x + 1f);
          s += y + stage(y);
        }
        s += stage8(1f) + stage8(2f) + stage8(3f) + stage8(4f);
        s += stage8(5f) + stage8(6f) + stage8(7f) + stage8(8f);
        s += stage8(9f) + stage8(10f) + stage8(11f) + stage8(12f);
        s += stage8(13f) + stage8(14f) + stage8(15f) + stage8(16f);
        return s;
      }
    }";

/// A unique temp dir per test (plain std — no tempfile dep), removed on
/// drop so failed runs do not leak across invocations.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "wootinj-disk-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn artifact_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("wjar"))
        .collect();
    v.sort();
    v
}

/// Build the `BIG_APP` receiver graph inside `env` and return
/// `(receiver, data)` handles valid for that env.
fn big_pipe(env: &mut WootinJ) -> (Value, Value) {
    let a = env.new_instance("Scale", &[]).unwrap();
    let b = env.new_instance("Square", &[]).unwrap();
    let c = env.new_instance("Mix", &[]).unwrap();
    let d = env.new_instance("Shift", &[]).unwrap();
    let pipe = env.new_instance("Pipe", &[a, b, c, d]).unwrap();
    let data = env.new_f32_array(&[0.5, 1.0, 1.5, 2.0]);
    (pipe, data)
}

#[test]
fn fresh_env_warm_starts_from_disk_with_zero_translator_work() {
    let table = build_table(&[("app.jl", BIG_APP)]).unwrap();
    let tmp = TempDir::new("warm-start");
    let opts = || JitOptions::wootinj().with_disk_cache(tmp.path());

    // Baseline: median cold translate across fresh envs with no disk
    // tier, so every probe pays the full translator + optimizer cost.
    let mut cold_walls: Vec<Duration> = (0..5)
        .map(|_| {
            let mut env = WootinJ::new(&table).unwrap();
            let (pipe, data) = big_pipe(&mut env);
            let t0 = Instant::now();
            env.jit(&pipe, "run", &[data], JitOptions::wootinj())
                .unwrap();
            let w = t0.elapsed();
            assert_eq!(env.cache_stats().translations, 1);
            w
        })
        .collect();
    cold_walls.sort();
    let cold_wall = cold_walls[cold_walls.len() / 2];

    // Process 1: cold translate with the disk tier enabled — persists
    // the artifact.
    let cold_result = {
        let mut env = WootinJ::new(&table).unwrap();
        let (pipe, data) = big_pipe(&mut env);
        let code = env.jit(&pipe, "run", &[data], opts()).unwrap();
        let stats = env.cache_stats();
        assert_eq!(stats.translations, 1, "cold env translates once");
        assert_eq!(stats.disk_hits, 0);
        assert_eq!(artifact_files(tmp.path()).len(), 1, "artifact persisted");
        code.invoke(&env).unwrap().result
    };

    // Processes 2..n (brand-new envs over the same directory): decode
    // only. Median of several warm-start probes (each through a fresh
    // env, so the memory tier never helps) — robust against scheduler
    // noise.
    let mut warm_walls: Vec<Duration> = (0..9)
        .map(|_| {
            let mut fresh = WootinJ::new(&table).unwrap();
            let (pipe, data) = big_pipe(&mut fresh);
            let t0 = Instant::now();
            fresh.jit(&pipe, "run", &[data], opts()).unwrap();
            let w = t0.elapsed();
            let s = fresh.cache_stats();
            assert_eq!(s.translations, 0, "warm start must not translate");
            assert_eq!(s.disk_hits, 1, "served from the disk tier");
            assert_eq!(s.decode_failures, 0);
            w
        })
        .collect();
    warm_walls.sort();
    let warm_wall = warm_walls[warm_walls.len() / 2];
    assert!(
        cold_wall >= warm_wall * 10,
        "disk warm start must be >= 10x faster than cold translate: \
         cold {cold_wall:?}, warm {warm_wall:?}"
    );

    // And the decoded artifact computes the same result.
    let mut env = WootinJ::new(&table).unwrap();
    let (pipe, data) = big_pipe(&mut env);
    let code = env.jit(&pipe, "run", &[data], opts()).unwrap();
    assert_eq!(env.cache_stats().translations, 0);
    let warm_result = code.invoke(&env).unwrap().result;
    // Bit-level comparison: the deep pipeline overflows f32 by design,
    // and NaN != NaN under `==`.
    match (cold_result, warm_result) {
        (Some(Val::F32(c)), Some(Val::F32(w))) => {
            assert_eq!(c.to_bits(), w.to_bits(), "decoded artifact diverged")
        }
        other => panic!("expected F32 results, got {other:?}"),
    }
}

#[test]
fn corrupted_artifacts_degrade_to_cold_translate_never_panic() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let tmp = TempDir::new("corrupt");
    let opts = || JitOptions::wootinj().with_disk_cache(tmp.path());

    // Populate, then vandalize the artifact three ways.
    {
        let mut env = WootinJ::new(&table).unwrap();
        let d = env.new_instance("Dbl", &[]).unwrap();
        let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
        let a = env.new_f32_array(&[1.0]);
        env.jit(&r, "run", &[a], opts()).unwrap();
    }
    let original = std::fs::read(&artifact_files(tmp.path())[0]).unwrap();

    fn truncate(b: &[u8]) -> Vec<u8> {
        b[..b.len() / 2].to_vec()
    }
    fn bit_flip(b: &[u8]) -> Vec<u8> {
        let mut v = b.to_vec();
        let mid = v.len() / 2;
        v[mid] ^= 0x20;
        v
    }
    fn version_skew(b: &[u8]) -> Vec<u8> {
        let mut v = b.to_vec();
        v[4] = v[4].wrapping_add(1);
        v
    }
    type Damage = fn(&[u8]) -> Vec<u8>;
    let vandalize: [(&str, Damage); 3] = [
        ("truncated", truncate),
        ("bit-flipped", bit_flip),
        ("version-skewed", version_skew),
    ];

    for (what, damage) in &vandalize {
        let path = artifact_files(tmp.path())
            .into_iter()
            .next()
            .unwrap_or_else(|| tmp.path().join("regenerated.wjar"));
        std::fs::write(&path, damage(&original)).unwrap();

        // A fresh env must fall back to a cold translate — no panic, no
        // error — and repair the store by re-persisting a good artifact.
        let mut env = WootinJ::new(&table).unwrap();
        let d = env.new_instance("Dbl", &[]).unwrap();
        let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
        let a = env.new_f32_array(&[2.0]);
        let code = env
            .jit(&r, "run", &[a], opts())
            .unwrap_or_else(|e| panic!("{what} artifact must degrade, got error: {e}"));
        let stats = env.cache_stats();
        assert_eq!(stats.translations, 1, "{what}: cold translate happened");
        assert_eq!(stats.disk_hits, 0, "{what}: vandalized artifact not served");
        assert!(
            stats.decode_failures >= 1,
            "{what}: rejection counted ({stats:?})"
        );
        assert_eq!(
            code.invoke(&env).unwrap().result,
            Some(Val::F32(4.0)),
            "{what}: fallback artifact still computes correctly"
        );
        // The bad file was replaced by the fresh translation's artifact.
        // (Not byte-identical to `original` — pass-profile timings vary —
        // but it must decode cleanly again.)
        let files = artifact_files(tmp.path());
        assert_eq!(files.len(), 1, "{what}: store holds one artifact again");
        let repaired = std::fs::read(&files[0]).unwrap();
        assert_ne!(repaired, damage(&original), "{what}: bad bytes replaced");
        assert!(
            translator::Translated::decode(&repaired).is_ok(),
            "{what}: store repaired with a decodable artifact"
        );
    }
}

#[test]
fn disk_hits_promote_into_the_memory_tier() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let tmp = TempDir::new("promotion");
    let opts = || JitOptions::wootinj().with_disk_cache(tmp.path());

    {
        let mut env = WootinJ::new(&table).unwrap();
        let d = env.new_instance("Dbl", &[]).unwrap();
        let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
        let a = env.new_f32_array(&[1.0]);
        env.jit(&r, "run", &[a], opts()).unwrap();
    }

    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);
    let first = env
        .jit(&r, "run", std::slice::from_ref(&a), opts())
        .unwrap();
    let second = env.jit(&r, "run", &[a], opts()).unwrap();
    let stats = env.cache_stats();
    assert_eq!(stats.disk_hits, 1, "disk read exactly once");
    assert_eq!(stats.promotions, 1, "decoded artifact promoted to memory");
    assert_eq!(stats.hits, 1, "second jit served by the memory tier");
    assert_eq!(stats.translations, 0);
    assert!(
        Arc::ptr_eq(&first.translated, &second.translated),
        "promotion shares the decoded program via Arc"
    );
}

#[test]
fn disk_store_evicts_oldest_artifacts_beyond_the_byte_budget() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let tmp = TempDir::new("eviction");

    let mut env = WootinJ::new(&table).unwrap();
    // Budget fits roughly one artifact (the Runner artifact encodes to
    // well under 1 KiB), so inserting a second key must evict the first.
    let disk = DiskStore::open(tmp.path()).unwrap().with_max_bytes(1_000);
    env.set_cache_backend(Box::new(Tiered::new(MemoryLru::default(), disk)));
    let d = env.new_instance("Dbl", &[]).unwrap();
    let rd = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let s = env.new_instance("Sqr", &[]).unwrap();
    let rs = env.new_instance("Runner", &[s, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);

    env.jit(&rd, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    let after_first = artifact_files(tmp.path());
    assert_eq!(after_first.len(), 1);
    // Ensure a strictly older mtime for the first artifact even on
    // coarse-grained filesystems.
    std::thread::sleep(Duration::from_millis(20));
    env.jit(&rs, "run", &[a], JitOptions::wootinj()).unwrap();

    let remaining = artifact_files(tmp.path());
    assert_eq!(
        remaining.len(),
        1,
        "byte budget keeps one artifact resident"
    );
    assert_ne!(
        remaining[0], after_first[0],
        "the older artifact was the eviction victim"
    );
    assert!(env.cache_stats().disk_evictions >= 1);
}

#[test]
fn shared_cache_world_translates_each_key_exactly_once() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut shared = SharedCache::new();

    // World 1: 4 ranks, fresh job-wide cache. Rank 0 translates, ranks
    // 1..4 decode the broadcast.
    let result4 = {
        let mut env = WootinJ::new(&table).unwrap();
        let d = env.new_instance("Dbl", &[]).unwrap();
        let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
        let a = env.new_f32_array(&[1.0, 2.0]);
        let mut code = env
            .jit4mpi(&r, "run", &[a], JitOptions::wootinj(), 4, &mut shared)
            .unwrap();
        code.set_mpi(4, MpiCostModel::default());
        let report = code.invoke(&env).unwrap();
        assert_eq!(report.worlds.shared_jit.translations, 1);
        assert_eq!(report.worlds.shared_jit.broadcast_decodes, 3);
        assert!(report.worlds.shared_jit.broadcast_bytes > 0);
        assert_eq!(report.results.len(), 4);
        report.result
    };

    // World 2: a *different env* (independently composed object graph,
    // identical specialization key) at a different size. No rank
    // translates — all 8 decode.
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0, 2.0]);
    let mut code = env
        .jit4mpi(&r, "run", &[a], JitOptions::wootinj(), 8, &mut shared)
        .unwrap();
    code.set_mpi(8, MpiCostModel::default());
    let report = code.invoke(&env).unwrap();
    let stats = report.worlds.shared_jit;
    assert_eq!(
        stats.translations, 1,
        "one translation across both worlds, regardless of world size"
    );
    assert_eq!(stats.broadcast_decodes, 3 + 8);
    assert_eq!(
        env.cache_stats().translations,
        0,
        "the second world's env never ran the translator"
    );
    assert_eq!(
        report.result, result4,
        "broadcast artifact computes the same"
    );

    // A *different* key (other receiver graph) translates once more.
    let s = env.new_instance("Sqr", &[]).unwrap();
    let rs = env.new_instance("Runner", &[s, Value::Float(0.0)]).unwrap();
    let a2 = env.new_f32_array(&[3.0]);
    env.jit4mpi(&rs, "run", &[a2], JitOptions::wootinj(), 8, &mut shared)
        .unwrap();
    assert_eq!(shared.stats().translations, 2);
    assert_eq!(shared.len(), 2);
}

#[test]
fn jit4mpi_composes_with_a_disk_cache() {
    // The two tiers of sharing compose: job-wide broadcast (SharedCache)
    // over process-lifetime persistence (DiskStore).
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let tmp = TempDir::new("mpi-disk");
    let opts = || JitOptions::wootinj().with_disk_cache(tmp.path());

    {
        let mut shared = SharedCache::new();
        let mut env = WootinJ::new(&table).unwrap();
        let d = env.new_instance("Dbl", &[]).unwrap();
        let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
        let a = env.new_f32_array(&[1.0]);
        env.jit4mpi(&r, "run", &[a], opts(), 4, &mut shared)
            .unwrap();
        assert_eq!(shared.stats().translations, 1);
        assert_eq!(artifact_files(tmp.path()).len(), 1);
    }

    // A fresh job (new SharedCache, new env) warm-starts from disk: the
    // "rank 0 translate" is itself served by the disk tier, so the whole
    // job does zero translator work.
    let mut shared = SharedCache::new();
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);
    env.jit4mpi(&r, "run", &[a], opts(), 6, &mut shared)
        .unwrap();
    let stats = env.cache_stats();
    assert_eq!(
        stats.translations, 0,
        "served from disk, not the translator"
    );
    assert_eq!(stats.disk_hits, 1);
}
