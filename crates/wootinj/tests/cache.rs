//! JIT code-cache semantics: what must hit, what must miss, how the LRU
//! bound evicts, and how the counters surface through `TransStats`.
//!
//! The correctness hinge (ISSUE 1): the key incorporates everything
//! translation reads. Two live object graphs differing only in field
//! *values* share a cache entry; graphs differing in exact types, array
//! shapes, `OptConfig`/`Mode`, rule-check mode, or the host-FFI registry
//! do not.

use std::sync::Arc;
use std::time::{Duration, Instant};

use jvm::Value;
use wootinj::{build_table, JitOptions, OptConfig, Val, WootinJ, Workspace};

const APP: &str = "
    @WootinJ interface Op { float f(float x); }
    @WootinJ final class Dbl implements Op { Dbl() { } float f(float x) { return x * 2f; } }
    @WootinJ final class Sqr implements Op { Sqr() { } float f(float x) { return x * x; } }
    @WootinJ final class Runner {
      Op op; float bias;
      Runner(Op o, float b) { op = o; bias = b; }
      float run(float[] data) {
        float s = bias;
        for (int i = 0; i < data.length; i++) { s += op.f(data[i]); }
        return s;
      }
    }";

#[test]
fn value_only_changes_share_a_cache_entry() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    // Two graphs with identical exact-type structure but different field
    // values and different array contents (same length is not required —
    // shapes track element type, not length).
    let d1 = env.new_instance("Dbl", &[]).unwrap();
    let r1 = env
        .new_instance("Runner", &[d1, Value::Float(1.0)])
        .unwrap();
    let a1 = env.new_f32_array(&[1.0, 2.0]);
    let d2 = env.new_instance("Dbl", &[]).unwrap();
    let r2 = env
        .new_instance("Runner", &[d2, Value::Float(-7.5)])
        .unwrap();
    let a2 = env.new_f32_array(&[10.0, 20.0, 30.0]);

    let c1 = env.jit(&r1, "run", &[a1], JitOptions::wootinj()).unwrap();
    let c2 = env.jit(&r2, "run", &[a2], JitOptions::wootinj()).unwrap();

    assert_eq!(env.cache_stats().misses, 1, "first jit translates");
    assert_eq!(env.cache_stats().hits, 1, "second jit is a pure cache hit");
    assert!(
        Arc::ptr_eq(&c1.translated, &c2.translated),
        "both codes share one translated program"
    );

    // The shared program still computes per-invocation results: the
    // bias/data are bound at invoke time, not baked into the code.
    assert_eq!(
        c1.invoke(&env).unwrap().result,
        Some(Val::F32(1.0 + 2.0 + 4.0))
    );
    assert_eq!(
        c2.invoke(&env).unwrap().result,
        Some(Val::F32(-7.5 + 20.0 + 40.0 + 60.0))
    );
}

#[test]
fn type_changes_miss() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let rd = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let s = env.new_instance("Sqr", &[]).unwrap();
    let rs = env.new_instance("Runner", &[s, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[3.0]);

    let cd = env
        .jit(&rd, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    let cs = env.jit(&rs, "run", &[a], JitOptions::wootinj()).unwrap();
    assert_eq!(
        env.cache_stats().misses,
        2,
        "different exact field types are different keys"
    );
    assert_eq!(env.cache_stats().hits, 0);
    assert_eq!(cd.invoke(&env).unwrap().result, Some(Val::F32(6.0)));
    assert_eq!(cs.invoke(&env).unwrap().result, Some(Val::F32(9.0)));
}

#[test]
fn array_shape_changes_miss() {
    const A: &str = "
        @WootinJ final class Sum {
          Sum() { }
          float runF(float[] a) { float s = 0f; for (int i = 0; i < a.length; i++) { s += a[i]; } return s; }
        }";
    let table = build_table(&[("a.jl", A)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let sum = env.new_instance("Sum", &[]).unwrap();
    let f = env.new_f32_array(&[1.0, 2.0]);
    env.jit(
        &sum,
        "runF",
        std::slice::from_ref(&f),
        JitOptions::wootinj(),
    )
    .unwrap();
    // Same element type, different length: same shape, must hit.
    let f2 = env.new_f32_array(&[5.0, 6.0, 7.0]);
    env.jit(&sum, "runF", &[f2], JitOptions::wootinj()).unwrap();
    assert_eq!(
        env.cache_stats().hits,
        1,
        "array length is not part of the shape"
    );
    assert_eq!(env.cache_stats().misses, 1);
}

#[test]
fn opt_config_and_mode_changes_miss() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);

    env.jit(&r, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    env.jit(
        &r,
        "run",
        std::slice::from_ref(&a),
        JitOptions::wootinj().with_opt(OptConfig::aggressive()),
    )
    .unwrap();
    env.jit(&r, "run", std::slice::from_ref(&a), JitOptions::template())
        .unwrap();
    env.jit(&r, "run", std::slice::from_ref(&a), JitOptions::cpp())
        .unwrap();
    // Same graph, same method — but every config difference is a distinct key.
    assert_eq!(env.cache_stats().misses, 4);
    assert_eq!(env.cache_stats().hits, 0);
    // And re-running the first config is a hit again.
    env.jit(&r, "run", &[a], JitOptions::wootinj()).unwrap();
    assert_eq!(env.cache_stats().hits, 1);
}

#[test]
fn rule_check_mode_changes_miss() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);
    env.jit(&r, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    env.jit(&r, "run", &[a], JitOptions::wootinj().unchecked())
        .unwrap();
    assert_eq!(
        env.cache_stats().misses,
        2,
        "check_rules is part of the key"
    );
}

#[test]
fn host_registry_changes_miss() {
    const FFI: &str = "
        @WootinJ final class H {
          H() { }
          @Native(\"ext.id\") static double idNative(double x);
          double run(double x) { return idNative(x); }
        }";
    let table = build_table(&[("h.jl", FFI)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    env.register_scalar_fn("ext.id", |x| x);
    let h = env.new_instance("H", &[]).unwrap();
    let code = env
        .jit(&h, "run", &[Value::Double(2.5)], JitOptions::wootinj())
        .unwrap();
    assert_eq!(code.invoke(&env).unwrap().result, Some(Val::F64(2.5)));
    assert_eq!(env.cache_stats().misses, 1);

    // Registering another FFI function changes the registry fingerprint:
    // the old entry no longer matches.
    env.register_scalar_fn("ext.other", |x| x + 1.0);
    env.jit(&h, "run", &[Value::Double(2.5)], JitOptions::wootinj())
        .unwrap();
    assert_eq!(
        env.cache_stats().misses,
        2,
        "registry contents are part of the key"
    );
    assert_eq!(env.cache_stats().hits, 0);
}

#[test]
fn failed_translation_creates_no_cache_entry() {
    // `knob` is a non-final static (rule-5 violation): every checked
    // translation of this table refuses, and none of those failures may
    // leave a cache entry behind.
    const BAD: &str = "
        @WootinJ final class Calc {
          static int knob = 2;
          Calc() { }
          float run(float x) { return x * knob; }
        }";
    let table = build_table(&[("calc.jl", BAD)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let c = env.new_instance("Calc", &[]).unwrap();
    for _ in 0..3 {
        assert!(env
            .jit(&c, "run", &[Value::Float(1.0)], JitOptions::wootinj())
            .is_err());
    }
    assert_eq!(env.cache_len(), 0, "failures never populate the cache");
    assert_eq!(env.cache_stats().hits, 0, "and can never be hit later");

    // The corrected program — same class name, same method, same key shape
    // (one float receiver field path, one float arg) — translates cleanly
    // in a fresh env: a genuine miss first, then a pure hit.
    const GOOD: &str = "
        @WootinJ final class Calc {
          static final int knob = 2;
          Calc() { }
          float run(float x) { return x * knob; }
        }";
    let table = build_table(&[("calc.jl", GOOD)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let c = env.new_instance("Calc", &[]).unwrap();
    let code = env
        .jit(&c, "run", &[Value::Float(3.0)], JitOptions::wootinj())
        .unwrap();
    assert_eq!(
        env.cache_stats().misses,
        1,
        "corrected graph translates once"
    );
    assert_eq!(code.invoke(&env).unwrap().result, Some(Val::F32(6.0)));
    env.jit(&c, "run", &[Value::Float(3.0)], JitOptions::wootinj())
        .unwrap();
    assert_eq!(env.cache_stats().hits, 1, "and is a cache hit afterwards");
    assert_eq!(env.cache_len(), 1);
}

#[test]
fn lru_evicts_least_recently_used_first() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    env.set_cache_capacity(2);
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);

    let full = JitOptions::wootinj(); // key A
    let aggr = JitOptions::wootinj().with_opt(OptConfig::aggressive()); // key B
    let cpp = JitOptions::cpp(); // key C

    env.jit(&r, "run", std::slice::from_ref(&a), full.clone())
        .unwrap(); // insert A
    env.jit(&r, "run", std::slice::from_ref(&a), aggr.clone())
        .unwrap(); // insert B (cache: A, B)
    env.jit(&r, "run", std::slice::from_ref(&a), full.clone())
        .unwrap(); // hit A (B is now LRU)
    env.jit(&r, "run", std::slice::from_ref(&a), cpp.clone())
        .unwrap(); // insert C -> evicts B
    assert_eq!(env.cache_stats().evictions, 1);
    assert_eq!(env.cache_len(), 2);

    // A must still be resident (it was more recently used than B)...
    env.jit(&r, "run", std::slice::from_ref(&a), full.clone())
        .unwrap();
    assert_eq!(env.cache_stats().hits, 2);
    // ...while B was evicted and re-translates.
    let misses_before = env.cache_stats().misses;
    env.jit(&r, "run", &[a], aggr).unwrap();
    assert_eq!(
        env.cache_stats().misses,
        misses_before + 1,
        "LRU victim was B"
    );
}

#[test]
fn capacity_zero_disables_caching() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    env.set_cache_capacity(0);
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);
    env.jit(&r, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    env.jit(&r, "run", &[a], JitOptions::wootinj()).unwrap();
    assert_eq!(env.cache_stats().hits, 0, "capacity 0 never hits");
    assert_eq!(env.cache_stats().misses, 2);
    assert_eq!(env.cache_len(), 0);
}

#[test]
fn trans_stats_carry_cache_counters_and_pass_profiles() {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0]);

    let cold = env
        .jit(&r, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    assert_eq!(cold.stats().cache_hits, 0);
    assert_eq!(cold.stats().cache_misses, 1);
    // Standard config runs fold + dce: the optimizer profile is recorded
    // per pass with before/after instruction counts.
    let passes = &cold.stats().passes;
    assert!(!passes.is_empty(), "pass profiles recorded: {passes:?}");
    for p in passes {
        assert!(
            p.instrs_after <= p.instrs_before,
            "{}: optimizer must not add work",
            p.pass
        );
    }

    let warm = env.jit(&r, "run", &[a], JitOptions::wootinj()).unwrap();
    assert_eq!(warm.stats().cache_hits, 1);
    assert_eq!(warm.stats().cache_misses, 1);
    // The shared translated program's own stats are identical.
    assert_eq!(warm.translated.stats, cold.translated.stats);
}

#[test]
fn warm_jit_does_zero_translation_work_and_is_much_faster() {
    // Build a deliberately wide object graph so cold translation has
    // real work to do.
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Dbl", &[]).unwrap();
    let r = env.new_instance("Runner", &[d, Value::Float(0.0)]).unwrap();
    let a = env.new_f32_array(&[1.0; 64]);

    let t0 = Instant::now();
    let cold = env
        .jit(&r, "run", std::slice::from_ref(&a), JitOptions::wootinj())
        .unwrap();
    let cold_wall = t0.elapsed();

    // Median of several warm calls (robust against scheduler noise).
    let mut warm_walls: Vec<Duration> = (0..15)
        .map(|_| {
            let t = Instant::now();
            env.jit(&r, "run", std::slice::from_ref(&a), JitOptions::wootinj())
                .unwrap();
            t.elapsed()
        })
        .collect();
    warm_walls.sort();
    let warm_wall = warm_walls[warm_walls.len() / 2];

    assert_eq!(env.cache_stats().hits, 15, "every warm call hit");
    assert_eq!(env.cache_stats().misses, 1);
    assert!(
        cold_wall >= warm_wall * 10,
        "warm jit must be >= 10x faster: cold {cold_wall:?}, warm {warm_wall:?}"
    );
    // The warm code is the same program object — zero translator/NIR work.
    let warm = env.jit(&r, "run", &[a], JitOptions::wootinj()).unwrap();
    assert!(Arc::ptr_eq(&cold.translated, &warm.translated));
}

/// Scratch dir for the disk-tier tests (removed on drop).
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "wootinj-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Database-backed cache keys must be stable across a process restart:
/// the key's source fingerprint is derived from query fingerprints of
/// the source text (not table addresses or revision numbers), so a
/// brand-new `Workspace` over the same sources finds the artifact a
/// previous "process" persisted to the disk tier — and a whitespace
/// edit, which leaves every query fingerprint unchanged, keeps hitting
/// it, while a semantic edit moves to a fresh key namespace.
#[test]
fn db_backed_disk_artifacts_survive_restart_and_whitespace_edits() {
    const SRC: &str = "@WootinJ final class Calc {
          float k; Calc(float k0) { k = k0; }
          float run(float x) { return k * x + 1f; }
        }";
    let tmp = TempDir::new("db-restart");
    let opts = || JitOptions::wootinj().with_disk_cache(&tmp.0);
    let jit = |ws: &Workspace, expect_translations: u64, expect_disk_hits: u64| {
        let mut env = ws.env().unwrap();
        let c = env.new_instance("Calc", &[Value::Float(3.0)]).unwrap();
        let code = env.jit(&c, "run", &[Value::Float(2.0)], opts()).unwrap();
        let stats = env.cache_stats();
        assert_eq!(stats.translations, expect_translations);
        assert_eq!(stats.disk_hits, expect_disk_hits);
        code.invoke(&env).unwrap().result
    };

    // "Process" 1: cold translate, artifact persisted.
    let mut ws1 = Workspace::new();
    ws1.set_source("calc.jl", SRC).unwrap();
    let cold = jit(&ws1, 1, 0);
    assert_eq!(cold, Some(Val::F32(7.0)));

    // "Process" 2: a brand-new workspace over the same sources decodes
    // the persisted artifact — zero translator work after the restart.
    let mut ws2 = Workspace::new();
    ws2.set_source("calc.jl", SRC).unwrap();
    assert_eq!(
        ws2.db().source_fingerprint(),
        ws1.db().source_fingerprint(),
        "source fingerprint must be process-independent"
    );
    assert_eq!(jit(&ws2, 0, 1), cold);

    // A whitespace edit keeps every fingerprint — still a disk hit.
    ws2.edit("calc.jl", &format!("{SRC}\n// formatting only\n"))
        .unwrap();
    assert_eq!(jit(&ws2, 0, 1), cold);

    // A semantic edit changes the source fingerprint: new namespace,
    // cold translate, and the old artifact stays behind for rollbacks.
    ws2.edit("calc.jl", &SRC.replace("+ 1f", "+ 2f")).unwrap();
    assert_eq!(jit(&ws2, 1, 0), Some(Val::F32(8.0)));
    let artifacts = std::fs::read_dir(&tmp.0)
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("wjar"))
        .count();
    assert_eq!(artifacts, 2, "edit writes beside the old artifact");

    // Rolling the edit back returns to the original namespace: the
    // first artifact is still served without retranslation.
    ws2.edit("calc.jl", SRC).unwrap();
    assert_eq!(jit(&ws2, 0, 1), cold);
}

/// Legacy (table-built) envs and database-backed envs must not collide
/// in the artifact store: the legacy path keys with source fingerprint
/// 0, the db path with the real query fingerprint.
#[test]
fn db_and_legacy_envs_use_disjoint_key_namespaces() {
    const SRC: &str = "@WootinJ final class Calc {
          Calc() { }
          float run(float x) { return x + 41f; }
        }";
    let tmp = TempDir::new("db-namespaces");
    let opts = || JitOptions::wootinj().with_disk_cache(&tmp.0);

    let table = build_table(&[("calc.jl", SRC)]).unwrap();
    let mut legacy = WootinJ::new(&table).unwrap();
    let c = legacy.new_instance("Calc", &[]).unwrap();
    let legacy_code = legacy.jit(&c, "run", &[Value::Float(1.0)], opts()).unwrap();
    assert_eq!(legacy.cache_stats().translations, 1);

    let mut ws = Workspace::new();
    ws.set_source("calc.jl", SRC).unwrap();
    let mut env = ws.env().unwrap();
    let c = env.new_instance("Calc", &[]).unwrap();
    let db_code = env.jit(&c, "run", &[Value::Float(1.0)], opts()).unwrap();
    let stats = env.cache_stats();
    assert_eq!(
        (stats.translations, stats.disk_hits),
        (1, 0),
        "db-backed env must not decode the legacy artifact"
    );

    // Different namespaces, identical semantics.
    assert_eq!(
        legacy_code.translated.encode_semantic(),
        db_code.translated.encode_semantic()
    );
    assert_eq!(
        legacy_code.invoke(&legacy).unwrap().result,
        db_code.invoke(&env).unwrap().result
    );
}
