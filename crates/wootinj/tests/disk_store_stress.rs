//! Concurrent-writer stress for the on-disk artifact store: many threads
//! inserting, looking up, and evicting against ONE directory. The
//! temp-then-rename discipline must hold up — no torn reads (every
//! observed artifact decodes), no panics, and the byte budget is enforced
//! once the dust settles.
//!
//! `DiskStore` itself is single-threaded state (counters, temp-file
//! sequence); the shared resource is the *directory*. Each thread opens
//! its own store over the same path — exactly the multi-process layout
//! the store is documented to survive.

use std::sync::Arc;

use jvm::Value;
use translator::{CacheKey, EntrySpec, TransConfig, Translated};
use wootinj::cache::{CacheBackend, DiskStore};
use wootinj::{build_table, JitOptions, WootinJ};

const APP: &str = "
    @WootinJ final class Doubler {
      Doubler() { }
      float run(float x) { return x * 2f; }
    }";

/// A real sealed artifact to shuttle through the store (the store never
/// inspects which key an artifact belongs to, so one payload serves all).
fn artifact_bytes() -> Vec<u8> {
    let table = build_table(&[("app.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let d = env.new_instance("Doubler", &[]).unwrap();
    let code = env
        .jit(&d, "run", &[Value::Float(1.0)], JitOptions::wootinj())
        .unwrap();
    code.translated.encode()
}

/// Distinct, stable fingerprints without a jvm: Virtual-mode keys are
/// (class, method, arity) — no shape analysis involved.
fn key(id: u32) -> CacheKey {
    CacheKey::new(
        EntrySpec::Opaque {
            class: jlang::types::ClassId(id),
            method: 0,
            arity: 1,
        },
        TransConfig::virtual_dispatch(),
        vec![],
    )
}

#[test]
fn many_writers_one_directory_no_torn_reads_and_budget_holds() {
    let dir = std::env::temp_dir().join(format!("wj-stress-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let bytes = Arc::new(artifact_bytes());
    let artifact_len = bytes.len() as u64;
    // Budget fits ~6 artifacts; 24 contended keys force constant eviction.
    let budget = artifact_len * 6;
    const THREADS: u32 = 8;
    const ITERS: u32 = 60;
    const KEYS: u32 = 24;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let dir = dir.clone();
            let bytes = Arc::clone(&bytes);
            std::thread::spawn(move || {
                let translated =
                    Arc::new(Translated::decode(&bytes).expect("seed artifact must decode"));
                let mut store = DiskStore::open(&dir).unwrap().with_max_bytes(budget);
                for i in 0..ITERS {
                    let k = key((t.wrapping_mul(7).wrapping_add(i * 5)) % KEYS);
                    if (t + i) % 3 == 0 {
                        // A hit must be a complete artifact (decode already
                        // verified by lookup); a miss is fine — an evictor
                        // or a not-yet-writer got there first.
                        let _ = store.lookup(&k);
                    } else {
                        store.insert(&k, &translated);
                    }
                }
                store.stats()
            })
        })
        .collect();

    let mut decode_failures = 0;
    let mut disk_hits = 0;
    for h in handles {
        let stats = h.join().expect("no panics under contention");
        decode_failures += stats.decode_failures;
        disk_hits += stats.disk_hits;
    }
    // Torn or half-renamed files would surface as decode failures.
    assert_eq!(decode_failures, 0, "observed torn/corrupt artifacts");
    assert!(
        disk_hits > 0,
        "contention sweep never hit — test is vacuous"
    );

    // Quiesced: every surviving artifact decodes, and one more insert
    // sweeps the directory back under the byte budget.
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("wjar") {
            let on_disk = std::fs::read(&path).unwrap();
            assert!(
                Translated::decode(&on_disk).is_ok(),
                "torn artifact survived at {path:?}"
            );
        }
        assert!(
            !path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(".tmp-")),
            "leaked temp file {path:?}"
        );
    }
    let mut store = DiskStore::open(&dir).unwrap().with_max_bytes(budget);
    let translated = Arc::new(Translated::decode(&bytes).unwrap());
    store.insert(&key(KEYS), &translated);
    let total: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("wjar"))
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    assert!(
        total <= budget,
        "eviction bound violated: {total} > {budget}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
