//! The two-tier, specialization-keyed JIT artifact store.
//!
//! `WootinJ::jit` memoizes translation end-to-end behind the
//! [`CacheBackend`] trait. The key ([`CacheKey`], defined in `translator`)
//! canonicalizes *everything the translation pipeline reads* — the exact
//! dynamic type tuple of the live receiver/argument object graph
//! ([`EntrySpec`](translator::EntrySpec), the same analysis that drives
//! devirtualization), the full translator configuration, and the
//! (sorted) host-FFI registry key set.
//!
//! Three backends:
//!
//! * [`MemoryLru`] — the classic in-process LRU memo table. Hits are
//!   `Arc` clones: zero translator/NIR work. Capacity 0 disables caching
//!   (the "uncached" series of `repro tab3-amortized`).
//! * [`DiskStore`] — a directory of sealed artifacts, one
//!   `<fingerprint>.wjar` file per key, written temp-then-rename so
//!   readers never observe a half-written artifact. Size-bounded with
//!   LRU-by-mtime eviction (hits refresh the file's mtime). Artifacts
//!   that fail to decode — truncated, corrupted, version-skewed — count
//!   as misses, are deleted, and the caller falls back to a cold
//!   translate; decode never panics.
//! * [`Tiered`] — memory in front of disk. A disk hit is decoded once and
//!   *promoted* into the memory tier, so the decode cost is paid at most
//!   once per process. This is what `JitOptions::with_disk_cache` wires
//!   up, and what makes a second process warm-start.
//!
//! Failed translations never populate any tier: the facade only inserts
//! after `translate` returns `Ok`.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use translator::Translated;

pub use translator::CacheKey;

/// Cumulative counters across both tiers. The memory-tier triple
/// (`hits`/`misses`/`evictions`) keeps its historical meaning; the
/// `disk_*` counters, `promotions`, `decode_failures`, and
/// `translations` were added with the persistent store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Memory-tier hits (an `Arc` clone; zero translator/NIR work).
    pub hits: u64,
    /// Memory-tier misses.
    pub misses: u64,
    /// Memory-tier LRU evictions.
    pub evictions: u64,
    /// Disk-tier hits (artifact decoded from a `.wjar` file).
    pub disk_hits: u64,
    /// Disk-tier misses (no artifact file for the fingerprint).
    pub disk_misses: u64,
    /// Artifact files removed by the size-bounded LRU-by-mtime sweep.
    pub disk_evictions: u64,
    /// Disk hits promoted into the memory tier (decode paid once).
    pub promotions: u64,
    /// Artifacts rejected at decode time (corrupt/truncated/version-skew)
    /// — each one degraded to a cold translate instead of panicking.
    pub decode_failures: u64,
    /// Actual `translate` runs this environment performed (the
    /// zero-translator-work assertions key off this).
    pub translations: u64,
    /// Persisted world checkpoints (`.wckpt`) removed by the
    /// checkpoint-budget sweep — aged out oldest-mtime-first so a
    /// long-lived cache directory stays bounded.
    pub ckpt_evictions: u64,
}

/// Where `WootinJ::jit` keeps translated artifacts. Object-safe so the
/// facade can swap backends at runtime (`with_disk_cache`).
pub trait CacheBackend {
    /// Probe for `key`, updating recency and counters.
    fn lookup(&mut self, key: &CacheKey) -> Option<Arc<Translated>>;

    /// Store a *successful* translation under `key`. Backends may drop it
    /// (capacity 0) or evict others to make room.
    fn insert(&mut self, key: &CacheKey, translated: &Arc<Translated>);

    /// Cumulative counters (merged across tiers for [`Tiered`]).
    fn stats(&self) -> CacheStats;

    /// Entries currently resident (memory entries for tiered backends).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory-tier LRU bound.
    fn capacity(&self) -> usize;

    /// Rebound the memory-tier LRU, evicting down immediately. Capacity 0
    /// drops every entry and disables memory caching (counters are kept).
    fn set_capacity(&mut self, cap: usize);

    /// The disk directory this backend persists to, if any — the facade
    /// uses it to recognize an already-configured `with_disk_cache` path.
    fn disk_path(&self) -> Option<&Path> {
        None
    }

    /// Record that the facade ran a real (cold) translation.
    fn record_translation(&mut self);
}

/// Default memory-tier LRU bound: enough for every (figure × mode ×
/// shape) tuple the bench harness cycles through, small enough to bound
/// memory.
pub const DEFAULT_CAPACITY: usize = 64;

/// An LRU-bounded in-memory memo table from [`CacheKey`] to translated
/// programs. Entries are `Arc`-shared, so a hit is a pointer clone — no
/// translator or NIR work. This is the seed repo's `JitCache`, refactored
/// onto [`CacheBackend`].
pub struct MemoryLru {
    map: HashMap<CacheKey, Arc<Translated>>,
    /// Keys in recency order: least recently used first.
    order: Vec<CacheKey>,
    cap: usize,
    stats: CacheStats,
}

impl Default for MemoryLru {
    fn default() -> Self {
        MemoryLru::new(DEFAULT_CAPACITY)
    }
}

impl MemoryLru {
    pub fn new(cap: usize) -> Self {
        MemoryLru {
            map: HashMap::new(),
            order: Vec::new(),
            cap,
            stats: CacheStats::default(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Keys in recency order, least recently used first (test hook).
    pub fn lru_order(&self) -> &[CacheKey] {
        &self.order
    }
}

impl CacheBackend for MemoryLru {
    fn lookup(&mut self, key: &CacheKey) -> Option<Arc<Translated>> {
        match self.map.get(key) {
            Some(hit) => {
                let hit = Arc::clone(hit);
                self.stats.hits += 1;
                if let Some(i) = self.order.iter().position(|k| k == key) {
                    let k = self.order.remove(i);
                    self.order.push(k);
                }
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: &CacheKey, translated: &Arc<Translated>) {
        if self.cap == 0 {
            return;
        }
        if self
            .map
            .insert(key.clone(), Arc::clone(translated))
            .is_none()
        {
            while self.order.len() + 1 > self.cap {
                let victim = self.order.remove(0);
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
            self.order.push(key.clone());
        } else if let Some(i) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(i);
            self.order.push(k);
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.cap
    }

    fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
        while self.order.len() > self.cap {
            let victim = self.order.remove(0);
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    fn record_translation(&mut self) {
        self.stats.translations += 1;
    }
}

/// Default disk budget: generous for translated NIR artifacts (the golden
/// fixture is under 1 KiB; real figures run a few KiB each).
pub const DEFAULT_DISK_BUDGET: u64 = 256 * 1024 * 1024;

/// Default byte budget for persisted world checkpoints (`.wckpt`) living
/// beside the artifacts. Checkpoints are transient restart state, not
/// cached work product, so they get their own (smaller) budget and are
/// aged out oldest-first rather than accumulating forever.
pub const DEFAULT_CKPT_BUDGET: u64 = 64 * 1024 * 1024;

/// A directory of sealed `.wjar` artifacts, one per key fingerprint.
///
/// Writes go to a `.tmp` sibling first and are renamed into place, so a
/// concurrent reader — another process warm-starting from the same
/// directory, or another store instance in this process — never sees a
/// torn artifact: at worst it sees the previous complete one or none.
/// Temp names are uniquified by pid *and* a process-wide counter, so two
/// same-process stores writing the same fingerprint concurrently cannot
/// collide on the staging file. The store is size-bounded: after every
/// insert, oldest-mtime artifacts are removed until the directory fits
/// the budget; a hit refreshes the artifact's mtime, making eviction LRU.
pub struct DiskStore {
    dir: PathBuf,
    max_bytes: u64,
    ckpt_budget: u64,
    stats: CacheStats,
}

/// Process-wide temp-file uniquifier (see [`DiskStore`] docs).
static TMP_UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl DiskStore {
    /// Open (creating if needed) an artifact directory. Opening sweeps
    /// stale `.wckpt` checkpoints down to the checkpoint budget, so a
    /// long-lived cache directory stays bounded even across processes
    /// that only ever read it.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut store = DiskStore {
            dir,
            max_bytes: DEFAULT_DISK_BUDGET,
            ckpt_budget: DEFAULT_CKPT_BUDGET,
            stats: CacheStats::default(),
        };
        store.evict_ckpts_to_budget();
        Ok(store)
    }

    /// Rebound the byte budget (evicts down on the next insert).
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Rebound the persisted-checkpoint (`.wckpt`) byte budget, sweeping
    /// immediately.
    pub fn with_ckpt_budget(mut self, max_bytes: u64) -> Self {
        self.ckpt_budget = max_bytes;
        self.evict_ckpts_to_budget();
        self
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn artifact_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.wjar", key.fingerprint()))
    }

    /// All resident files with `ext` as `(path, len, mtime)`, ignoring
    /// temp files and unreadable entries (a concurrent evictor may race
    /// us).
    fn files_with_ext(&self, ext: &str) -> Vec<(PathBuf, u64, SystemTime)> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ext) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            out.push((path, meta.len(), mtime));
        }
        out
    }

    /// All resident artifacts as `(path, len, mtime)`.
    fn artifacts(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        self.files_with_ext("wjar")
    }

    /// Remove oldest-mtime files until their total fits `budget`.
    /// Returns the number of files removed.
    fn sweep(files: Vec<(PathBuf, u64, SystemTime)>, budget: u64) -> u64 {
        let mut files = files;
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        if total <= budget {
            return 0;
        }
        files.sort_by_key(|(_, _, mtime)| *mtime);
        let mut removed = 0;
        for (path, len, _) in files {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                removed += 1;
            }
        }
        removed
    }

    /// Remove oldest-mtime artifacts until the directory fits the budget.
    fn evict_to_budget(&mut self) {
        self.stats.disk_evictions += Self::sweep(self.artifacts(), self.max_bytes);
    }

    /// Age out persisted world checkpoints (`.wckpt`) beyond their own
    /// byte budget. Runs at open and after every insert, so checkpoint
    /// turnover cannot grow the directory without bound even though
    /// checkpoints are written by the restart machinery, not through
    /// this store.
    ///
    /// Checkpoints form delta chains (`name.wckpt` + `name.dN.wckpt`),
    /// so eviction is *chain-aware*: files are grouped by chain and whole
    /// chains are evicted coldest-first (by newest member's mtime) —
    /// never a base out from under live deltas, never orphaned deltas.
    fn evict_ckpts_to_budget(&mut self) {
        self.stats.ckpt_evictions +=
            Self::sweep_chains(self.files_with_ext("wckpt"), self.ckpt_budget);
    }

    /// The chain a checkpoint file belongs to: `x.wckpt` and
    /// `x.d3.wckpt` both map to `x`.
    fn chain_stem(path: &Path) -> String {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let stem = name.strip_suffix(".wckpt").unwrap_or(name);
        match stem.rsplit_once(".d") {
            Some((base, seq)) if !seq.is_empty() && seq.bytes().all(|b| b.is_ascii_digit()) => {
                base.to_string()
            }
            _ => stem.to_string(),
        }
    }

    /// Remove whole checkpoint chains, coldest first, until their total
    /// fits `budget`. Returns the number of files removed.
    fn sweep_chains(files: Vec<(PathBuf, u64, SystemTime)>, budget: u64) -> u64 {
        let mut total: u64 = files.iter().map(|(_, len, _)| len).sum();
        if total <= budget {
            return 0;
        }
        let mut chains: HashMap<String, (u64, SystemTime, Vec<PathBuf>)> = HashMap::new();
        for (path, len, mtime) in files {
            let entry = chains.entry(Self::chain_stem(&path)).or_insert((
                0,
                SystemTime::UNIX_EPOCH,
                Vec::new(),
            ));
            entry.0 += len;
            entry.1 = entry.1.max(mtime);
            entry.2.push(path);
        }
        // Coldest chain = the one whose *newest* member is oldest; the
        // stem tiebreak keeps eviction order deterministic.
        let mut chains: Vec<_> = chains.into_iter().collect();
        chains.sort_by(|a, b| (a.1 .1, &a.0).cmp(&(b.1 .1, &b.0)));
        let mut removed = 0;
        for (_, (len, _, paths)) in chains {
            if total <= budget {
                break;
            }
            for path in paths {
                if std::fs::remove_file(&path).is_ok() {
                    removed += 1;
                }
            }
            total = total.saturating_sub(len);
        }
        removed
    }

    /// Mark an artifact as recently used for the LRU-by-mtime sweep.
    fn touch(path: &Path) {
        if let Ok(f) = std::fs::File::options().write(true).open(path) {
            let _ = f.set_modified(SystemTime::now());
        }
    }
}

impl CacheBackend for DiskStore {
    /// Probe the directory. A decode failure (truncated / bit-flipped /
    /// version-skewed artifact) is counted, the bad file is removed, and
    /// the probe reports a miss — the caller translates cold. Never
    /// panics on hostile files.
    fn lookup(&mut self, key: &CacheKey) -> Option<Arc<Translated>> {
        let path = self.artifact_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.stats.disk_misses += 1;
                return None;
            }
        };
        match Translated::decode(&bytes) {
            Ok(t) => {
                self.stats.disk_hits += 1;
                Self::touch(&path);
                Some(Arc::new(t))
            }
            Err(_) => {
                self.stats.decode_failures += 1;
                self.stats.disk_misses += 1;
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn insert(&mut self, key: &CacheKey, translated: &Arc<Translated>) {
        if self.max_bytes == 0 {
            return;
        }
        let path = self.artifact_path(key);
        let uniq = TMP_UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            uniq,
            path.file_name().and_then(|n| n.to_str()).unwrap_or("wjar")
        ));
        let bytes = translated.encode();
        // Best-effort persistence: a full disk or permission error must
        // not break the jit path — the artifact simply is not cached.
        if std::fs::write(&tmp, &bytes).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.evict_to_budget();
            self.evict_ckpts_to_budget();
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }

    fn len(&self) -> usize {
        self.artifacts().len()
    }

    /// The disk tier is byte-bounded, not entry-bounded.
    fn capacity(&self) -> usize {
        usize::MAX
    }

    /// Entry-count bounds do not apply to the disk tier; use
    /// [`DiskStore::with_max_bytes`] to change the byte budget.
    fn set_capacity(&mut self, _cap: usize) {}

    fn disk_path(&self) -> Option<&Path> {
        Some(&self.dir)
    }

    fn record_translation(&mut self) {
        self.stats.translations += 1;
    }
}

/// Memory in front of disk: probes hit the [`MemoryLru`] first; a miss
/// falls through to the [`DiskStore`], and a disk hit is decoded once
/// then *promoted* into memory so this process never decodes it again.
/// Inserts populate both tiers.
pub struct Tiered {
    mem: MemoryLru,
    disk: DiskStore,
    promotions: u64,
    translations: u64,
}

impl Tiered {
    pub fn new(mem: MemoryLru, disk: DiskStore) -> Self {
        Tiered {
            mem,
            disk,
            promotions: 0,
            translations: 0,
        }
    }

    /// Convenience: default memory LRU over a store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Ok(Tiered::new(MemoryLru::default(), DiskStore::open(dir)?))
    }
}

impl CacheBackend for Tiered {
    fn lookup(&mut self, key: &CacheKey) -> Option<Arc<Translated>> {
        if let Some(hit) = self.mem.lookup(key) {
            return Some(hit);
        }
        let from_disk = self.disk.lookup(key)?;
        self.promotions += 1;
        self.mem.insert(key, &from_disk);
        Some(from_disk)
    }

    fn insert(&mut self, key: &CacheKey, translated: &Arc<Translated>) {
        self.mem.insert(key, translated);
        self.disk.insert(key, translated);
    }

    fn stats(&self) -> CacheStats {
        let m = self.mem.stats();
        let d = self.disk.stats();
        CacheStats {
            hits: m.hits,
            misses: m.misses,
            evictions: m.evictions,
            disk_hits: d.disk_hits,
            disk_misses: d.disk_misses,
            disk_evictions: d.disk_evictions,
            promotions: self.promotions,
            decode_failures: d.decode_failures,
            translations: self.translations,
            ckpt_evictions: d.ckpt_evictions,
        }
    }

    fn len(&self) -> usize {
        self.mem.len()
    }

    fn capacity(&self) -> usize {
        self.mem.capacity()
    }

    fn set_capacity(&mut self, cap: usize) {
        self.mem.set_capacity(cap);
    }

    fn disk_path(&self) -> Option<&Path> {
        self.disk.disk_path()
    }

    fn record_translation(&mut self) {
        self.translations += 1;
    }
}
