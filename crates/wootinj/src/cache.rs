//! Specialization-keyed JIT code cache.
//!
//! `WootinJ::jit` memoizes translation end-to-end: the key canonicalizes
//! *everything the translation pipeline reads* — the exact dynamic type
//! tuple of the live receiver/argument object graph ([`EntrySpec`], the
//! same analysis that drives devirtualization), the full translator
//! configuration (mode, optimizer config, rule-check flag), and a
//! fingerprint of the host-FFI registry (translated programs resolve
//! `@Native` keys against it). Two object graphs differing only in field
//! *values* share an entry; differing in any exact type, array element
//! type, `OptConfig`, or registered FFI key do not.
//!
//! The cache is LRU-bounded. Capacity 0 disables caching entirely (every
//! call translates — the "uncached" series of `repro tab3-amortized`).

use std::collections::HashMap;
use std::sync::Arc;

use translator::{EntrySpec, TransConfig, Translated};

/// The canonical cache key (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub spec: EntrySpec,
    pub config: TransConfig,
    /// Ordered list of registered host-FFI keys at translation time.
    pub hosts: Vec<String>,
}

/// Cumulative cache counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

/// An LRU-bounded memo table from [`CacheKey`] to translated programs.
/// Entries are `Arc`-shared, so a hit is a pointer clone — no translator
/// or NIR work.
pub struct JitCache {
    map: HashMap<CacheKey, Arc<Translated>>,
    /// Keys in recency order: least recently used first.
    order: Vec<CacheKey>,
    cap: usize,
    stats: CacheStats,
}

/// Default LRU bound: enough for every (figure × mode × shape) tuple the
/// bench harness cycles through, small enough to bound memory.
pub const DEFAULT_CAPACITY: usize = 64;

impl Default for JitCache {
    fn default() -> Self {
        JitCache::new(DEFAULT_CAPACITY)
    }
}

impl JitCache {
    pub fn new(cap: usize) -> Self {
        JitCache {
            map: HashMap::new(),
            order: Vec::new(),
            cap,
            stats: CacheStats::default(),
        }
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<Arc<Translated>> {
        match self.map.get(key) {
            Some(hit) => {
                let hit = Arc::clone(hit);
                self.stats.hits += 1;
                if let Some(i) = self.order.iter().position(|k| k == key) {
                    let k = self.order.remove(i);
                    self.order.push(k);
                }
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly translated program, evicting the least recently
    /// used entry if the bound is reached. No-op when capacity is 0.
    pub fn insert(&mut self, key: CacheKey, translated: Arc<Translated>) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(key.clone(), translated).is_none() {
            while self.order.len() + 1 > self.cap {
                let victim = self.order.remove(0);
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
            self.order.push(key);
        } else if let Some(i) = self.order.iter().position(|k| *k == key) {
            let k = self.order.remove(i);
            self.order.push(k);
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Resize the LRU bound, evicting down to it immediately. Capacity 0
    /// drops every entry and disables caching (counters are kept).
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap;
        while self.order.len() > self.cap {
            let victim = self.order.remove(0);
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Keys in recency order, least recently used first (test hook).
    pub fn lru_order(&self) -> &[CacheKey] {
        &self.order
    }
}
