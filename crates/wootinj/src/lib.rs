//! # wootinj — the framework facade
//!
//! The public API mirroring the paper's client view (Listing 3):
//!
//! ```text
//! Java (paper)                          this crate
//! ------------------------------------  ------------------------------------
//! javac + class loading                 build_table(&[source, ...])
//! new StencilOnGpuAndMPI(gen, solver)   env.new_instance("StencilOnGpuAndMPI", &[gen, solver])
//! WootinJ.jit4mpi(stencil, "run", ...)  env.jit(&stencil, "run", &args, JitOptions::wootinj())
//! code.set4MPI(128, "./nodeList")       code.set_mpi(128, CostModel::default())
//! code.invoke()                         code.invoke(&env)
//! ```
//!
//! `invoke` drives the translated program on the `exec` engine through the
//! `mpi-sim` world (which also hosts single-rank and GPU runs), and
//! returns a [`RunReport`] with both wall-clock and deterministic
//! virtual-time metrics. `run_interpreted` runs the same composed
//! application on the `jvm` interpreter — the paper's *Java* series.

#![forbid(unsafe_code)]

pub mod cache;
pub mod prelude;

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cache::{CacheBackend, CacheKey, MemoryLru, Tiered};
use jlang::{ClassTable, DiagResult, SourceSet};
use jvm::{Jvm, JvmError, Value};
use mpi_sim::CostModel;
use translator::{bind_entry_args, entry_spec, translate, TransConfig, TransError, Translated};

pub use cache::CacheStats;
pub use exec::{CkptError, ExecMode, ExecutorCfg, FaultConfig, ResilienceStats, Val};
pub use gpu_sim::GpuConfig;
pub use mpi_sim::CostModel as MpiCostModel;
pub use mpi_sim::SimError;
pub use mpi_sim::{probe_chain, ChainProbe, CheckpointPolicy, RestartStats, Schedule};
pub use mpi_sim::{SharedCache, SharedCacheStats};
pub use nir::OptConfig;
pub use platform::{
    by_id as platform_by_id, registry as platform_registry, Caps, DistPlatform, GpuSimPlatform,
    HostMtPlatform, InterpPlatform, MpiSimPlatform, Needs, Platform, PlatformError, RunOutcome,
    RunRequest,
};
pub use querydb::{Database, QueryStats};
pub use translator::{Binding, EntrySpec, Mode, TransStats};

/// Compile prelude + user sources into a typed class table.
///
/// ```
/// use wootinj::{build_table, WootinJ, JitOptions, Val};
/// use jvm::Value;
///
/// let src = "@WootinJ final class Doubler {
///              Doubler() { }
///              int run(int x) { return x * 2; }
///            }";
/// let table = build_table(&[("doubler.jl", src)]).unwrap();
/// let mut env = WootinJ::new(&table).unwrap();
/// let d = env.new_instance("Doubler", &[]).unwrap();
/// let code = env.jit(&d, "run", &[Value::Int(21)], JitOptions::wootinj()).unwrap();
/// let report = code.invoke(&env).unwrap();
/// assert_eq!(report.result, Some(Val::I32(42)));
/// ```
pub fn build_table(sources: &[(&str, &str)]) -> DiagResult<ClassTable> {
    let mut set = SourceSet::new().with("<prelude>", prelude::PRELUDE);
    for (name, src) in sources {
        set.add(*name, *src);
    }
    jlang::compile(&set)
}

/// An editable WootinJ program: the incremental-compilation entry point.
///
/// Owns a [`Database`] of memoized queries (pre-seeded with the prelude,
/// mirroring [`build_table`]) and hands out environments borrowing the
/// current revision's table. [`Self::set_source`] / [`Self::edit`] bump
/// the revision; a subsequent [`Self::env`] + `jit` re-translates
/// incrementally, re-executing only the queries the edit invalidated —
/// and produces an artifact bit-identical to a from-scratch build.
///
/// ```
/// use wootinj::{JitOptions, Workspace};
/// use jvm::Value;
///
/// let mut ws = Workspace::new();
/// ws.set_source("d.jl", "@WootinJ final class D { D() { } int run(int x) { return x * 2; } }")
///     .unwrap();
/// {
///     let mut env = ws.env().unwrap();
///     let d = env.new_instance("D", &[]).unwrap();
///     let code = env.jit(&d, "run", &[Value::Int(21)], JitOptions::wootinj()).unwrap();
///     assert_eq!(code.invoke(&env).unwrap().result, Some(wootinj::Val::I32(42)));
/// } // drop the env (it borrows the revision's table) before editing
/// ws.edit("d.jl", "@WootinJ final class D { D() { } int run(int x) { return x * 3; } }")
///     .unwrap();
/// let mut env = ws.env().unwrap();
/// let d = env.new_instance("D", &[]).unwrap();
/// let code = env.jit(&d, "run", &[Value::Int(21)], JitOptions::wootinj()).unwrap();
/// assert_eq!(code.invoke(&env).unwrap().result, Some(wootinj::Val::I32(63)));
/// ```
#[derive(Default)]
pub struct Workspace {
    db: Database,
}

impl Workspace {
    /// Empty workspace: the prelude is added lazily with the first
    /// user source, so a fresh workspace has revision 0 and no snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or add) a source file and recompile incrementally. The first
    /// call also seeds the prelude (as file 0, matching [`build_table`]'s
    /// class-id assignment). Returns the new revision.
    pub fn set_source(&mut self, name: &str, text: &str) -> DiagResult<u64> {
        if self.db.revision() == 0 {
            self.db.set_source("<prelude>", prelude::PRELUDE)?;
        }
        self.db.set_source(name, text)
    }

    /// Edit an existing source file (see [`Database::edit`]).
    pub fn edit(&mut self, name: &str, text: &str) -> DiagResult<u64> {
        self.db.edit(name, text)
    }

    pub fn revision(&self) -> u64 {
        self.db.revision()
    }

    /// Cumulative query counters (see [`Database::stats`]).
    pub fn query_stats(&self) -> QueryStats {
        self.db.stats()
    }

    /// Direct access to the query database (e.g. for
    /// [`Database::source_fingerprint`]).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Build an environment at the current revision. The env borrows the
    /// workspace, so the borrow checker forces all envs (and their
    /// heaps) to be dropped before the next [`Self::edit`].
    pub fn env(&self) -> WjResult<WootinJ<'_>> {
        WootinJ::from_db(&self.db)
    }
}

/// Framework error: anything from composition to translation to execution.
/// The `Sim` variant carries the typed [`mpi_sim::SimError`], so callers
/// can distinguish crashes, timeouts, and deadlocks without string
/// matching (the bench fault matrix classifies outcomes this way).
#[derive(Debug)]
pub enum WjError {
    Jvm(JvmError),
    Translate(TransError),
    Sim(SimError),
    /// Artifact-store configuration failure (e.g. the disk-cache
    /// directory cannot be created). Note that *artifact* problems —
    /// corrupt or version-skewed files — are never errors: they degrade
    /// to a cold translate.
    Cache(String),
    /// Capability mismatch on the [`WootinJ::jit_on`] path: the chosen
    /// platform cannot run what the translation needs (e.g. `global`
    /// kernels on a device-less backend). Typed and raised at JIT time,
    /// before any world is built.
    Platform(PlatformError),
}

impl std::fmt::Display for WjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WjError::Jvm(e) => write!(f, "{e}"),
            WjError::Translate(e) => write!(f, "{e}"),
            WjError::Sim(e) => write!(f, "simulation error: {e}"),
            WjError::Cache(m) => write!(f, "artifact store: {m}"),
            WjError::Platform(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WjError {}

impl From<JvmError> for WjError {
    fn from(e: JvmError) -> Self {
        WjError::Jvm(e)
    }
}

impl From<TransError> for WjError {
    fn from(e: TransError) -> Self {
        WjError::Translate(e)
    }
}

impl From<SimError> for WjError {
    fn from(e: SimError) -> Self {
        WjError::Sim(e)
    }
}

impl From<PlatformError> for WjError {
    fn from(e: PlatformError) -> Self {
        WjError::Platform(e)
    }
}

pub type WjResult<T> = Result<T, WjError>;

/// The framework environment: a class table plus the interpreter heap in
/// which applications compose their object graphs.
pub struct WootinJ<'t> {
    pub table: &'t ClassTable,
    pub jvm: Jvm<'t>,
    /// User-registered foreign functions for translated code (the paper's
    /// FFI: `@Native("key")` methods with unknown keys become direct host
    /// calls).
    pub host: exec::HostRegistry,
    /// Specialization-keyed artifact store consulted by [`Self::jit`].
    /// [`MemoryLru`] by default; [`JitOptions::with_disk_cache`] (or
    /// [`Self::set_cache_backend`]) swaps in a [`Tiered`] store.
    cache: RefCell<Box<dyn CacheBackend>>,
    /// Incremental query database this env was built from
    /// ([`Self::from_db`]): `jit` consults its memoized per-function
    /// lowering queries instead of translating from scratch, and cache
    /// keys gain the database's source fingerprint.
    incr: Option<&'t Database>,
}

impl<'t> WootinJ<'t> {
    pub fn new(table: &'t ClassTable) -> WjResult<Self> {
        Ok(WootinJ {
            table,
            jvm: Jvm::new(table)?,
            host: exec::HostRegistry::new(),
            cache: RefCell::new(Box::new(MemoryLru::default())),
            incr: None,
        })
    }

    /// Build an environment on an incremental query [`Database`] (see
    /// [`Workspace`] for the usual entry point). The env borrows the
    /// database's table at its current revision, so the borrow checker
    /// enforces the edit discipline: drop the env (and its heap, whose
    /// layouts came from this table) before the next `edit`.
    pub fn from_db(db: &'t Database) -> WjResult<Self> {
        let table = db.table().ok_or_else(|| {
            WjError::Cache("query database has no compiled snapshot; call set_source first".into())
        })?;
        let mut env = Self::new(table)?;
        env.incr = Some(db);
        Ok(env)
    }

    /// Replace the artifact-store backend (drops the old tiers' contents
    /// from this env's view; disk artifacts stay on disk).
    pub fn set_cache_backend(&self, backend: Box<dyn CacheBackend>) {
        *self.cache.borrow_mut() = backend;
    }

    /// Register a foreign function for the *translated* execution path.
    /// The jlang side declares it as `@Native("key")`; unknown keys are
    /// translated into direct host calls (the paper's FFI mechanism).
    /// For the interpreter path, also call [`Self::register_jvm_native`].
    pub fn register_host(
        &mut self,
        key: impl Into<String>,
        f: impl Fn(&[Val], &mut exec::MemSpace) -> Result<Val, exec::ExecError> + 'static,
    ) {
        self.host.register(key, f);
    }

    /// Register the interpreter-side implementation of a foreign function.
    pub fn register_jvm_native(&mut self, key: impl Into<String>, f: jvm::NativeFn) {
        self.jvm.register_native(key, f);
    }

    /// Convenience: register a pure `f64 -> f64`-style scalar function on
    /// *both* execution paths at once (covers the common FFI-to-libm case).
    pub fn register_scalar_fn(&mut self, key: &str, f: fn(f64) -> f64) {
        self.host.register(key.to_string(), move |args, _| {
            let x = args.first().ok_or("missing argument")?.as_f64()?;
            Ok(Val::F64(f(x)))
        });
        self.jvm.register_native(
            key.to_string(),
            std::rc::Rc::new(move |_jvm: &mut Jvm<'_>, args: &[Value]| {
                let x = args
                    .first()
                    .ok_or_else(|| JvmError::new("missing argument"))?
                    .as_f64()
                    .map_err(JvmError::new)?;
                Ok(Value::Double(f(x)))
            }),
        );
    }

    /// Instantiate a class on the (host) Java side.
    pub fn new_instance(&mut self, class: &str, args: &[Value]) -> WjResult<Value> {
        Ok(self.jvm.new_instance(class, args)?)
    }

    pub fn new_f32_array(&mut self, data: &[f32]) -> Value {
        self.jvm.new_f32_array(data)
    }

    pub fn f32_array(&self, v: &Value) -> WjResult<Vec<f32>> {
        Ok(self.jvm.f32_array(v)?)
    }

    /// Run a method on the interpreter — the paper's *Java* series.
    pub fn run_interpreted(
        &mut self,
        recv: &Value,
        method: &str,
        args: &[Value],
    ) -> WjResult<JavaRunReport> {
        let steps_before = self.jvm.steps;
        let start = Instant::now();
        let result = self.jvm.call(recv, method, args)?;
        Ok(JavaRunReport {
            result,
            steps: self.jvm.steps - steps_before,
            wall: start.elapsed(),
        })
    }

    /// JIT-translate `recv.method(args)` — `WootinJ.jit` / `jit4mpi`.
    /// The arguments are recorded and replayed by [`JitCode::invoke`].
    ///
    /// Translation is memoized in a specialization-keyed code cache: the
    /// key is the exact dynamic type tuple of the live receiver/argument
    /// graph plus the full [`TransConfig`] and the host-FFI registry
    /// fingerprint. A repeat call with an identical key does zero
    /// translator/NIR work and shares the program via `Arc`.
    pub fn jit(
        &self,
        recv: &Value,
        method: &str,
        args: &[Value],
        options: JitOptions,
    ) -> WjResult<JitCode> {
        // Salt 0 is the unscoped legacy namespace (identical fingerprints
        // to every release before the platform layer existed).
        self.jit_salted(recv, method, args, options, 0)
    }

    /// `WootinJ.jit` retargeted: JIT for a specific [`Platform`]. The
    /// platform's salt scopes the artifact-store key (and any persisted
    /// `.wckpt` checkpoint) to the target, its capability surface is
    /// checked against what the translation needs (typed
    /// [`WjError::Platform`] on mismatch, raised here — not deep inside a
    /// run), and [`JitCode::invoke`] drives the platform's own
    /// [`Platform::run`]. This is the one path all backends share;
    /// [`Self::jit`]/[`Self::jit4mpi`] are thin wrappers over the same
    /// machinery with the built-in platforms selected from the legacy
    /// knobs.
    pub fn jit_on(
        &self,
        platform: Arc<dyn Platform>,
        recv: &Value,
        method: &str,
        args: &[Value],
        options: JitOptions,
    ) -> WjResult<JitCode> {
        let mut code = self.jit_salted(recv, method, args, options, platform.fingerprint_salt())?;
        platform.check(needs_of(&code.translated))?;
        code.platform = Some(platform);
        Ok(code)
    }

    /// The shared body of [`Self::jit`]/[`Self::jit_on`]: the degradation
    /// ladder over [`Self::jit_once`] with the artifact-store key scoped
    /// by `salt` (0 = unscoped).
    fn jit_salted(
        &self,
        recv: &Value,
        method: &str,
        args: &[Value],
        options: JitOptions,
        salt: u64,
    ) -> WjResult<JitCode> {
        let start = Instant::now();
        let q0 = self.incr.map(|db| db.stats());
        if let Some(dir) = &options.disk_cache {
            self.ensure_disk_cache(dir)?;
        }
        let checkpoint = self.resolve_checkpoint(&options, recv, method, args, salt);
        let mut attempts: Vec<(Mode, String)> = Vec::new();
        let mut config = options.config;
        let translated = loop {
            match self.jit_once(recv, method, args, config, salt) {
                Ok(t) => break t,
                Err(e) => {
                    let next = degrade_next(config).filter(|_| options.degrade);
                    let Some(next) = next else { return Err(e) };
                    attempts.push((config.mode, e.to_string()));
                    config = next;
                }
            }
        };
        let compile_time = start.elapsed();
        let degrade = if attempts.is_empty() {
            None
        } else {
            Some(DegradeReport {
                attempts,
                served: config.mode,
            })
        };
        Ok(JitCode {
            translated,
            compile_time,
            cache_stats: self.cache.borrow().stats(),
            query_delta: self
                .incr
                .zip(q0)
                .map(|(db, q0)| db.stats().since(&q0))
                .unwrap_or_default(),
            degrade,
            shared_jit: SharedCacheStats::default(),
            recv: recv.clone(),
            args: args.to_vec(),
            platform: None,
            mpi_size: 1,
            cost: CostModel::default(),
            gpu: None,
            fault: None,
            timeout_rounds: None,
            checkpoint,
            max_restarts: DEFAULT_MAX_RESTARTS,
            executor: options.executor,
        })
    }

    /// Resolve the effective checkpoint policy for one `jit` call: when
    /// checkpointing and a disk cache are both requested but no explicit
    /// persist path is set, checkpoints persist next to the JIT artifacts
    /// as `<dir>/<fingerprint>.wckpt` (same key derivation as the `.wjar`
    /// files, so distinct specializations never clobber each other's
    /// checkpoints — and the `.wckpt` suffix keeps them invisible to the
    /// artifact store's eviction scan).
    fn resolve_checkpoint(
        &self,
        options: &JitOptions,
        recv: &Value,
        method: &str,
        args: &[Value],
        salt: u64,
    ) -> Option<CheckpointPolicy> {
        let mut policy = options.checkpoint.clone()?;
        if policy.persist.is_none() {
            if let Some(dir) = &options.disk_cache {
                if let Ok(key) = self.cache_key(recv, method, args, options.config, salt) {
                    policy.persist = Some(dir.join(format!("{}.wckpt", key.fingerprint())));
                }
            }
        }
        Some(policy)
    }

    /// One rung of [`Self::jit`]: key derivation, cache probe, and (on a
    /// miss) translation under exactly one [`TransConfig`]. A failed
    /// translation never populates the cache — the `Err` returns before
    /// any insert, so a later corrected graph with the same key shape
    /// misses and retranslates instead of hitting a poisoned entry.
    fn jit_once(
        &self,
        recv: &Value,
        method: &str,
        args: &[Value],
        config: TransConfig,
        salt: u64,
    ) -> WjResult<Arc<Translated>> {
        let key = self.cache_key(recv, method, args, config, salt)?;
        let cached = self.cache.borrow_mut().lookup(&key);
        match cached {
            Some(hit) => Ok(hit),
            None => {
                let t = Arc::new(match self.incr {
                    Some(db) => db.translate(&self.jvm, recv, method, args, config)?,
                    None => translate(self.table, &self.jvm, recv, method, args, config)?,
                });
                let mut cache = self.cache.borrow_mut();
                cache.record_translation();
                cache.insert(&key, &t);
                Ok(t)
            }
        }
    }

    /// Derive the canonical artifact-store key for `recv.method(args)`
    /// under `config` (the pure half of [`Self::jit`]; also the id used
    /// for cross-rank sharing in [`Self::jit4mpi`] and for single-flight
    /// deduplication in the `jitd` service daemon).
    pub fn cache_key(
        &self,
        recv: &Value,
        method: &str,
        args: &[Value],
        config: TransConfig,
        salt: u64,
    ) -> WjResult<CacheKey> {
        let spec = entry_spec(self.table, &self.jvm, recv, method, args, config.mode)?;
        // With a query database attached, the key also carries the
        // whitespace-insensitive source fingerprint: a semantic edit
        // re-keys the artifact, a formatting-only edit keeps hitting.
        let src = self.incr.map_or(0, |db| db.source_fingerprint());
        Ok(
            CacheKey::new(spec, config, self.host.keys().map(str::to_string).collect())
                .with_platform_salt(salt)
                .with_source_fingerprint(src),
        )
    }

    /// Idempotently switch the artifact store to a [`Tiered`] backend
    /// persisting at `dir`. Already-tiered-at-`dir` envs keep their
    /// (warm) backend; anything else is replaced.
    fn ensure_disk_cache(&self, dir: &Path) -> WjResult<()> {
        if self.cache.borrow().disk_path() == Some(dir) {
            return Ok(());
        }
        let tiered = Tiered::open(dir)
            .map_err(|e| WjError::Cache(format!("cannot open disk cache at {dir:?}: {e}")))?;
        self.set_cache_backend(Box::new(tiered));
        Ok(())
    }

    /// `WootinJ.jit4mpi` with cross-rank artifact sharing: translate
    /// `recv.method(args)` for a `world_size`-rank world against a
    /// job-lifetime, rank-0-owned [`SharedCache`].
    ///
    /// The broadcast pattern of production MPI jobs: if the shared cache
    /// already holds the key's sealed artifact, **no rank translates** —
    /// every rank decodes the broadcast bytes. Otherwise rank 0
    /// translates exactly once (through this env's local artifact store,
    /// including the degradation ladder when enabled), publishes the
    /// encoded artifact, and the remaining `world_size − 1` ranks decode.
    /// Each distinct key is therefore translated once per *job*,
    /// regardless of world size or how many worlds share the cache.
    ///
    /// The returned code is already configured for `world_size` ranks
    /// (tune the cost model with [`JitCode::set_mpi`]), and its runs
    /// report the translate-once counters on `WorldRun::shared_jit`.
    pub fn jit4mpi(
        &self,
        recv: &Value,
        method: &str,
        args: &[Value],
        options: JitOptions,
        world_size: u32,
        shared: &mut SharedCache,
    ) -> WjResult<JitCode> {
        let world_size = world_size.max(1);
        let start = Instant::now();
        if let Some(dir) = &options.disk_cache {
            self.ensure_disk_cache(dir)?;
        }
        let key = self.cache_key(recv, method, args, options.config, 0)?;
        let fingerprint = key.fingerprint();

        if let Some(bytes) = shared.lookup(&fingerprint) {
            // A previous world already translated this key: every rank of
            // this world decodes the broadcast artifact. A corrupt entry
            // degrades to the cold path below — never a panic.
            let n = bytes.len() as u64;
            if let Ok(t) = Translated::decode(bytes) {
                shared.record_broadcast(u64::from(world_size), n);
                let checkpoint = self.resolve_checkpoint(&options, recv, method, args, 0);
                return Ok(JitCode {
                    translated: Arc::new(t),
                    compile_time: start.elapsed(),
                    cache_stats: self.cache.borrow().stats(),
                    query_delta: QueryStats::default(),
                    degrade: None,
                    shared_jit: shared.stats(),
                    recv: recv.clone(),
                    args: args.to_vec(),
                    platform: None,
                    mpi_size: world_size,
                    cost: CostModel::default(),
                    gpu: None,
                    fault: None,
                    timeout_rounds: None,
                    checkpoint,
                    max_restarts: DEFAULT_MAX_RESTARTS,
                    executor: options.executor,
                });
            }
        }

        // Rank 0 translates (once per key per job) and broadcasts. The
        // artifact is published under the *requested* key: if the
        // degradation ladder served a lower rung, later worlds asking for
        // the same options get the same degraded artifact.
        let mut code = self.jit(recv, method, args, options)?;
        let bytes = code.translated.encode();
        let n = bytes.len() as u64;
        shared.publish(fingerprint, bytes);
        if world_size > 1 {
            shared.record_broadcast(u64::from(world_size) - 1, n);
        }
        code.shared_jit = shared.stats();
        code.mpi_size = world_size;
        Ok(code)
    }

    /// Wrap an already-sealed artifact as runnable [`JitCode`] without
    /// translating: the follower half of out-of-process artifact sharing
    /// (the `jitd` daemon's single-flight path decodes the leader's
    /// broadcast bytes on every waiting connection through this). The
    /// code starts in the single-rank interpreter shape — callers tune
    /// it with `set_mpi`/`set_gpu`/`set_timeout` as usual.
    pub fn code_from_artifact(
        &self,
        translated: Arc<Translated>,
        recv: &Value,
        args: &[Value],
    ) -> JitCode {
        JitCode {
            translated,
            compile_time: Duration::ZERO,
            cache_stats: self.cache.borrow().stats(),
            query_delta: QueryStats::default(),
            degrade: None,
            shared_jit: SharedCacheStats::default(),
            recv: recv.clone(),
            args: args.to_vec(),
            platform: None,
            mpi_size: 1,
            cost: CostModel::default(),
            gpu: None,
            fault: None,
            timeout_rounds: None,
            checkpoint: None,
            max_restarts: DEFAULT_MAX_RESTARTS,
            executor: ExecutorCfg::Sim,
        }
    }

    /// Cumulative code-cache counters (hits / misses / evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Number of cached specializations currently resident.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Rebound the LRU cache, evicting down immediately. Capacity 0
    /// disables caching (every `jit` call translates from scratch).
    pub fn set_cache_capacity(&self, cap: usize) {
        self.cache.borrow_mut().set_capacity(cap);
    }
}

/// What a translation needs from its platform, read off the translated
/// program (the [`Platform::check`] input on the [`WootinJ::jit_on`]
/// path).
fn needs_of(translated: &Translated) -> Needs {
    Needs {
        kernels: translated.uses_gpu,
        collectives: translated.uses_mpi,
        host_ffi: !translated.program.host_fns.is_empty(),
    }
}

/// Map the legacy `set_mpi`/`set_gpu` knobs onto a built-in platform —
/// exactly the world shapes `invoke` built by hand before the platform
/// layer existed, so the wrapper paths stay bit-identical.
fn select_platform(mpi_size: u32, cost: CostModel, gpu: Option<GpuConfig>) -> Arc<dyn Platform> {
    match (mpi_size, gpu) {
        (0 | 1, None) => Arc::new(InterpPlatform { cost }),
        (0 | 1, Some(gpu)) => Arc::new(GpuSimPlatform { gpu, cost }),
        (ranks, gpu) => Arc::new(MpiSimPlatform { ranks, cost, gpu }),
    }
}

/// The next rung of the degradation ladder `Full → Devirt → Virtual`:
/// each step gives up one specialization guarantee. The final rung is
/// the C++-baseline configuration — virtual dispatch, heap objects, no
/// rule check — which tolerates graphs (rule violations, null fields,
/// object arrays) that the shaped modes reject.
fn degrade_next(config: TransConfig) -> Option<TransConfig> {
    match config.mode {
        Mode::Full => Some(TransConfig {
            mode: Mode::Devirt,
            ..config
        }),
        Mode::Devirt => Some(TransConfig::virtual_dispatch()),
        Mode::Virtual => None,
    }
}

/// What the degradation ladder did for one `jit` call: every rung that
/// failed (with its error) and the mode that finally served the request.
#[derive(Debug, Clone)]
pub struct DegradeReport {
    /// `(mode, error)` for each failed attempt, in ladder order.
    pub attempts: Vec<(Mode, String)>,
    /// The mode whose translation was actually served.
    pub served: Mode,
}

/// Options for [`WootinJ::jit`]; presets map onto the paper's series.
#[derive(Debug, Clone)]
pub struct JitOptions {
    pub config: TransConfig,
    /// When set, a failed translation falls down the degradation ladder
    /// (`Full → Devirt → Virtual`) instead of erroring; the served rung
    /// is recorded in [`JitCode::degrade`]. Off by default: the paper's
    /// series must fail loudly when their mode cannot translate.
    pub degrade: bool,
    /// When set, the env's artifact store is (idempotently) switched to a
    /// [`Tiered`] memory-over-disk backend persisting at this directory,
    /// so translations survive the process and a later env warm-starts
    /// without any translator work.
    pub disk_cache: Option<PathBuf>,
    /// When set, [`JitCode::invoke`] runs through
    /// [`World::run_with_restart`]: the world checkpoints at collective
    /// boundaries per this policy and rolls back + resumes on injected
    /// crashes/timeouts instead of failing. With [`Self::with_disk_cache`]
    /// also set (and no explicit persist path on the policy), the latest
    /// checkpoint persists as `<dir>/<fingerprint>.wckpt` next to the JIT
    /// artifacts, enabling process warm-restart.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Who executes ready slices each world round: the in-process
    /// cooperative loop ([`ExecutorCfg::Sim`], the default) or real
    /// OS-thread workers ([`ExecutorCfg::Threads`]). Replay-mode
    /// threads are bit-identical to the loop, so flipping this never
    /// changes results or cache identity. The `WJ_EXECUTOR=threads`
    /// environment override (checked at [`JitCode::invoke`]) wins over
    /// this option.
    pub executor: ExecutorCfg,
}

impl JitOptions {
    /// The WootinJ pipeline (devirtualization + specialization + object
    /// inlining).
    pub fn wootinj() -> Self {
        JitOptions {
            config: TransConfig::full(),
            degrade: false,
            disk_cache: None,
            checkpoint: None,
            executor: ExecutorCfg::Sim,
        }
    }

    /// The *C++* baseline: vtable dispatch, heap objects.
    pub fn cpp() -> Self {
        JitOptions {
            config: TransConfig::virtual_dispatch(),
            degrade: false,
            disk_cache: None,
            checkpoint: None,
            executor: ExecutorCfg::Sim,
        }
    }

    /// The *Template* baseline: devirtualized via specialization, objects
    /// kept on the heap, but with the optimizer's function inlining and
    /// scalar replacement — what an optimizing C++ compiler does to
    /// template code with value objects.
    pub fn template() -> Self {
        let mut config = TransConfig::devirt();
        config.opt = OptConfig::aggressive();
        JitOptions {
            config,
            degrade: false,
            disk_cache: None,
            checkpoint: None,
            executor: ExecutorCfg::Sim,
        }
    }

    /// The *Template w/o virt.* baseline: WootinJ + function inlining.
    pub fn template_no_virt() -> Self {
        JitOptions {
            config: TransConfig::template_no_virt(),
            degrade: false,
            disk_cache: None,
            checkpoint: None,
            executor: ExecutorCfg::Sim,
        }
    }

    pub fn with_opt(mut self, opt: OptConfig) -> Self {
        self.config.opt = opt;
        self
    }

    pub fn unchecked(mut self) -> Self {
        self.config.check_rules = false;
        self
    }

    /// Enable the graceful-degradation ladder for this `jit` call.
    pub fn with_degradation(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Persist translated artifacts under `dir` and warm-start from any
    /// already there (see [`JitOptions::disk_cache`]).
    pub fn with_disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_cache = Some(dir.into());
        self
    }

    /// Checkpoint at collective boundaries per `policy` and restart
    /// crashed worlds instead of failing (see [`JitOptions::checkpoint`]).
    pub fn with_checkpointing(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Execute world slices on real OS threads (or explicitly keep the
    /// cooperative loop) — see [`JitOptions::executor`].
    pub fn with_executor(mut self, executor: ExecutorCfg) -> Self {
        self.executor = executor;
        self
    }
}

/// Restart budget for checkpointed [`JitCode::invoke`] runs (tunable via
/// [`JitCode::set_max_restarts`]).
pub const DEFAULT_MAX_RESTARTS: u32 = 16;

/// A translated program with its recorded entry arguments — the paper's
/// `JitCode`. Cheaply cloneable: the program is `Arc`-shared with the
/// code cache and with every other `JitCode` minted from the same
/// specialization key.
#[derive(Clone)]
pub struct JitCode {
    pub translated: Arc<Translated>,
    /// Wall time this `jit` call spent (key extraction + cache probe +,
    /// on a miss, full translation — Table 3's "compilation time").
    pub compile_time: Duration,
    /// Snapshot of the env's cache counters when this code was minted.
    cache_stats: CacheStats,
    /// Query-database counter deltas for this `jit` call (all-zero
    /// without an attached [`Database`]).
    query_delta: QueryStats,
    /// What the degradation ladder did, when [`JitOptions::degrade`] was
    /// set and the requested mode failed; `None` for a first-try success.
    pub degrade: Option<DegradeReport>,
    /// Snapshot of the job-wide translate-once counters at mint time
    /// (all-zero unless this code came from [`WootinJ::jit4mpi`]);
    /// surfaced on every run's `WorldRun::shared_jit`.
    pub shared_jit: SharedCacheStats,
    recv: Value,
    args: Vec<Value>,
    /// The platform [`Self::invoke`] runs on. `Some` when minted by
    /// [`WootinJ::jit_on`]; `None` means "select a built-in from the
    /// legacy knobs below" (and [`Self::set_mpi`]/[`Self::set_gpu`] reset
    /// to that mode, since those knobs describe the built-in shapes).
    platform: Option<Arc<dyn Platform>>,
    mpi_size: u32,
    cost: CostModel,
    gpu: Option<GpuConfig>,
    fault: Option<FaultConfig>,
    timeout_rounds: Option<u64>,
    checkpoint: Option<CheckpointPolicy>,
    max_restarts: u32,
    executor: ExecutorCfg,
}

impl JitCode {
    /// `code.set4MPI(size, nodeList)` — configure the MPI world. Resets
    /// any [`WootinJ::jit_on`] platform choice: the legacy knobs select
    /// among the built-in shapes.
    pub fn set_mpi(&mut self, size: u32, cost: CostModel) {
        self.mpi_size = size.max(1);
        self.cost = cost;
        self.platform = None;
    }

    /// Give every rank a simulated GPU. Resets any [`WootinJ::jit_on`]
    /// platform choice (see [`Self::set_mpi`]).
    pub fn set_gpu(&mut self, config: GpuConfig) {
        self.gpu = Some(config);
        self.platform = None;
    }

    /// The platform [`Self::invoke`] will run on: the explicit
    /// [`WootinJ::jit_on`] choice, or the built-in selected from the
    /// legacy `set_mpi`/`set_gpu` knobs.
    pub fn platform(&self) -> Arc<dyn Platform> {
        match &self.platform {
            Some(p) => Arc::clone(p),
            None => select_platform(self.mpi_size, self.cost, self.gpu),
        }
    }

    /// Enable deterministic fault injection for [`Self::invoke`] runs
    /// (see [`FaultConfig`]; the same seed reproduces the same faults).
    pub fn set_faults(&mut self, fault: FaultConfig) {
        self.fault = Some(fault);
    }

    /// Bound the scheduler rounds a rank may stay blocked before the run
    /// fails with a typed timeout instead of hanging.
    pub fn set_timeout(&mut self, rounds: u64) {
        self.timeout_rounds = Some(rounds);
    }

    /// Enable (or replace) the checkpoint/restart policy for this code's
    /// runs — the post-`jit` twin of [`JitOptions::with_checkpointing`].
    pub fn set_checkpointing(&mut self, policy: CheckpointPolicy) {
        self.checkpoint = Some(policy);
    }

    /// Bound how many rollback-and-resume cycles one `invoke` may spend
    /// before the underlying typed error propagates
    /// ([`DEFAULT_MAX_RESTARTS`] unless set).
    pub fn set_max_restarts(&mut self, max_restarts: u32) {
        self.max_restarts = max_restarts;
    }

    /// Execute this code's world slices on real OS threads (or back on
    /// the cooperative loop) — the post-`jit` twin of
    /// [`JitOptions::with_executor`].
    pub fn set_executor(&mut self, executor: ExecutorCfg) {
        self.executor = executor;
    }

    /// The generated C/CUDA source (Listing 5 analogue).
    pub fn c_source(&self) -> String {
        self.translated.c_source()
    }

    pub fn mode(&self) -> Mode {
        self.translated.mode
    }

    /// Translation statistics, with the env's cache counters and the
    /// query-database counters (as of this `jit` call) merged in.
    pub fn stats(&self) -> TransStats {
        let mut stats = self.translated.stats.clone();
        stats.cache_hits = self.cache_stats.hits;
        stats.cache_misses = self.cache_stats.misses;
        stats.queries_executed = self.query_delta.executed();
        stats.queries_reused = self.query_delta.reused();
        stats.early_cutoffs = self.query_delta.early_cutoffs;
        stats
    }

    /// The raw query-database counter deltas for this `jit` call.
    pub fn query_stats(&self) -> QueryStats {
        self.query_delta
    }

    /// Execute the translated program with the recorded arguments —
    /// `code.invoke()`.
    pub fn invoke(&self, env: &WootinJ<'_>) -> WjResult<RunReport> {
        // One uniform run path for every backend: the platform owns the
        // world shape (size, device, link costs, scheduling); the request
        // carries everything else (faults, timeout, checkpoint/restart).
        let platform = self.platform();
        let req = RunRequest {
            program: &self.translated.program,
            entry: self.translated.entry,
            host: Some(&env.host),
            fault: self.fault,
            timeout_rounds: self.timeout_rounds,
            checkpoint: self.checkpoint.clone(),
            max_restarts: self.max_restarts,
            // `WJ_EXECUTOR=threads` flips any run onto replay-mode OS
            // threads (bit-identical), so the whole test suite can be
            // exercised through the thread path with one env var.
            executor: self.executor.from_env_or(),
        };
        let start = Instant::now();
        let mut make_args = |_: u32, machine: &mut exec::Machine| {
            bind_entry_args(
                &env.jvm,
                &self.recv,
                &self.args,
                &self.translated.bindings,
                machine,
            )
            .map_err(|e| e.message)
        };
        let mut run = platform.run(req, &mut make_args).map_err(WjError::Sim)?;
        run.shared_jit = self.shared_jit;
        let wall = start.elapsed();
        // Fold the jit-side degradation into the run's resilience view,
        // so one struct answers "what did the stack absorb this run".
        let mut resilience = run.resilience;
        if self.degrade.is_some() {
            resilience.degraded_jits += 1;
        }
        Ok(RunReport {
            result: run.ranks.first().and_then(|r| r.result),
            results: run.ranks.iter().map(|r| r.result).collect(),
            vtime_cycles: run.vtime,
            total_cycles: run.total_cycles,
            wall,
            wall_ms: wall.as_secs_f64() * 1e3,
            compile_wall: self.compile_time,
            outputs: run.ranks.iter().map(|r| r.output.clone()).collect(),
            resilience,
            restart: run.restart,
            per_rank: run
                .ranks
                .iter()
                .map(|r| PerRank {
                    vclock: r.vclock,
                    compute_cycles: r.compute_cycles,
                    comm_cycles: r.comm_cycles,
                    gpu_time: r.gpu_time,
                })
                .collect(),
            trans: self.stats(),
            worlds: run,
        })
    }
}

/// Per-rank timing breakdown.
#[derive(Debug, Clone, Copy)]
pub struct PerRank {
    pub vclock: u64,
    pub compute_cycles: u64,
    pub comm_cycles: u64,
    pub gpu_time: u64,
}

/// The outcome of `invoke()`: results plus both timing domains.
pub struct RunReport {
    /// Rank 0's return value.
    pub result: Option<Val>,
    pub results: Vec<Option<Val>>,
    /// Deterministic completion time (max rank virtual clock, cycles).
    pub vtime_cycles: u64,
    /// Total executed cycles across ranks.
    pub total_cycles: u64,
    /// Host wall-clock time of the simulation run.
    pub wall: Duration,
    /// [`RunReport::wall`] in milliseconds — the measured-time column
    /// the backend matrix and `repro wallclock` report next to the
    /// virtual-cost figures.
    pub wall_ms: f64,
    /// Wall-clock translation time (Table 3).
    pub compile_wall: Duration,
    /// Per-rank `WJ.print*` output.
    pub outputs: Vec<Vec<String>>,
    /// Aggregated fault/retry/degrade counters for this run (all-zero
    /// without fault injection and with a first-try translation).
    pub resilience: ResilienceStats,
    /// Checkpoint/restart accounting (all-zero unless the code was jitted
    /// with [`JitOptions::with_checkpointing`]).
    pub restart: RestartStats,
    pub per_rank: Vec<PerRank>,
    /// Translation statistics for the code that ran, including the
    /// artifact-cache counters (`cache_hits`/`cache_misses`) and the
    /// incremental-query counters (`queries_executed`/`queries_reused`/
    /// `early_cutoffs`).
    pub trans: TransStats,
    /// The raw world run (rank memory spaces etc.).
    pub worlds: mpi_sim::WorldRun,
}

/// Outcome of an interpreted (*Java* series) run.
#[derive(Debug)]
pub struct JavaRunReport {
    pub result: Value,
    /// Deterministic interpreter steps (the Java-series work metric).
    pub steps: u64,
    pub wall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 3/4: one-point stencil, GPU + MPI.
    const LISTING34: &str = r#"
        @WootinJ interface Generator { float[] make(int length, int seed); }
        @WootinJ interface Solver { float solve(float self, int index); }

        @WootinJ final class PhysDataGen implements Generator {
          PhysDataGen() { }
          float[] make(int length, int seed) {
            float[] a = new float[length];
            for (int i = 0; i < length; i++) { a[i] = i + seed * 100; }
            return a;
          }
        }

        @WootinJ final class PhysSolver implements Solver {
          PhysSolver() { }
          float solve(float self, int index) { return self * 0.5f + index; }
        }

        @WootinJ final class StencilOnGpuAndMPI {
          Solver solver;
          Generator generator;
          StencilOnGpuAndMPI(Generator g, Solver s) { generator = g; solver = s; }

          float run(int length, int updateCnt) {
            int rank = MPI.rank();
            float[] array = generator.make(length, rank);
            float[] arrayOnGPU = CUDA.copyToGPU(array);
            CudaConfig conf = new CudaConfig(new dim3((length + 63) / 64, 1, 1),
                                             new dim3(64, 1, 1));
            for (int i = 0; i < updateCnt; i++) {
              runGPU(conf, arrayOnGPU);
            }
            CUDA.copyFromGPU(array, arrayOnGPU);
            float sum = 0f;
            for (int i = 0; i < length; i++) { sum += array[i]; }
            return MPI.allreduceSumF(sum);
          }

          @Global void runGPU(CudaConfig conf, float[] array) {
            int x = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
            if (x < array.length) {
              array[x] = solver.solve(array[x], x);
            }
          }
        }
    "#;

    fn reference_single_rank(length: i32, update_cnt: i32) -> f32 {
        // Rank 0: a[i] = i; each step a[i] = a[i]*0.5 + i.
        let mut a: Vec<f32> = (0..length).map(|i| i as f32).collect();
        for _ in 0..update_cnt {
            for (i, v) in a.iter_mut().enumerate() {
                *v = *v * 0.5 + i as f32;
            }
        }
        a.iter().sum()
    }

    #[test]
    fn listing3_end_to_end_gpu_single_rank() {
        let table = build_table(&[("listing34.jl", LISTING34)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let gen = env.new_instance("PhysDataGen", &[]).unwrap();
        let solver = env.new_instance("PhysSolver", &[]).unwrap();
        let stencil = env
            .new_instance("StencilOnGpuAndMPI", &[gen, solver])
            .unwrap();
        let mut code = env
            .jit(
                &stencil,
                "run",
                &[Value::Int(200), Value::Int(4)],
                JitOptions::wootinj(),
            )
            .unwrap();
        code.set_gpu(GpuConfig::default());
        let report = code.invoke(&env).unwrap();
        let expected = reference_single_rank(200, 4);
        match report.result {
            Some(Val::F32(v)) => {
                assert!(
                    (v - expected).abs() < expected.abs() * 1e-5,
                    "{v} vs {expected}"
                )
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(code.translated.uses_gpu);
        assert!(code.translated.uses_mpi);
        assert!(code.stats().kernels >= 1);
    }

    #[test]
    fn listing3_multi_rank_allreduce() {
        let table = build_table(&[("listing34.jl", LISTING34)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let gen = env.new_instance("PhysDataGen", &[]).unwrap();
        let solver = env.new_instance("PhysSolver", &[]).unwrap();
        let stencil = env
            .new_instance("StencilOnGpuAndMPI", &[gen, solver])
            .unwrap();
        let mut code = env
            .jit(
                &stencil,
                "run",
                &[Value::Int(64), Value::Int(2)],
                JitOptions::wootinj(),
            )
            .unwrap();
        code.set_mpi(3, CostModel::default());
        code.set_gpu(GpuConfig::default());
        let report = code.invoke(&env).unwrap();
        // Each rank r generates a[i] = i + 100r and runs the same updates;
        // the allreduce makes every rank return the global sum.
        let per_rank: Vec<f32> = (0..3)
            .map(|r| {
                let mut a: Vec<f32> = (0..64).map(|i| (i + r * 100) as f32).collect();
                for _ in 0..2 {
                    for (i, v) in a.iter_mut().enumerate() {
                        *v = *v * 0.5 + i as f32;
                    }
                }
                a.iter().sum::<f32>()
            })
            .collect();
        let expected: f32 = per_rank.iter().sum();
        for r in &report.results {
            match r {
                Some(Val::F32(v)) => {
                    assert!(
                        (v - expected).abs() < expected.abs() * 1e-5,
                        "{v} vs {expected}"
                    )
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(report.results.len(), 3);
    }

    #[test]
    fn interpreted_run_matches_translated_cpu_only() {
        const CPU_APP: &str = r#"
            @WootinJ interface Solver { float solve(float self, int index); }
            @WootinJ final class S implements Solver {
              S() { }
              float solve(float self, int index) { return self * 0.5f + index; }
            }
            @WootinJ final class App {
              Solver solver;
              App(Solver s) { solver = s; }
              float run(float[] data, int steps) {
                for (int t = 0; t < steps; t++) {
                  for (int i = 0; i < data.length; i++) {
                    data[i] = solver.solve(data[i], i);
                  }
                }
                float sum = 0f;
                for (int i = 0; i < data.length; i++) { sum += data[i]; }
                return sum;
              }
            }
        "#;
        let table = build_table(&[("app.jl", CPU_APP)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let s = env.new_instance("S", &[]).unwrap();
        let app = env.new_instance("App", &[s]).unwrap();

        // Translated run (fresh data array).
        let data = env.new_f32_array(&[1.0, 2.0, 3.0]);
        let code = env
            .jit(&app, "run", &[data, Value::Int(5)], JitOptions::wootinj())
            .unwrap();
        let report = code.invoke(&env).unwrap();

        // Interpreted run — the translated run used a deep copy, so the
        // host array is untouched and reusable.
        let data2 = env.new_f32_array(&[1.0, 2.0, 3.0]);
        let jreport = env
            .run_interpreted(&app, "run", &[data2, Value::Int(5)])
            .unwrap();
        match (report.result, jreport.result) {
            (Some(Val::F32(a)), Value::Float(b)) => assert_eq!(a, b),
            other => panic!("unexpected {other:?}"),
        }
        assert!(jreport.steps > 0);
    }

    #[test]
    fn deep_copy_leaves_host_arrays_untouched() {
        const APP: &str = r#"
            @WootinJ final class W {
              W() { }
              void run(float[] data) {
                for (int i = 0; i < data.length; i++) { data[i] = 99f; }
              }
            }
        "#;
        let table = build_table(&[("w.jl", APP)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let w = env.new_instance("W", &[]).unwrap();
        let data = env.new_f32_array(&[1.0, 2.0]);
        let code = env
            .jit(
                &w,
                "run",
                std::slice::from_ref(&data),
                JitOptions::wootinj(),
            )
            .unwrap();
        code.invoke(&env).unwrap();
        // The paper: modified data are NOT copied back.
        assert_eq!(env.f32_array(&data).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn all_four_series_agree_on_results() {
        const APP: &str = r#"
            @WootinJ interface Op { double f(double x); }
            @WootinJ final class Poly implements Op {
              double a; double b;
              Poly(double a0, double b0) { a = a0; b = b0; }
              double f(double x) { return a * x * x + b * x + 1.0; }
            }
            @WootinJ final class Runner {
              Op op;
              Runner(Op o) { op = o; }
              double run(int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) { s += op.f(i * 0.001); }
                return s;
              }
            }
        "#;
        let table = build_table(&[("app.jl", APP)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let poly = env
            .new_instance("Poly", &[Value::Double(1.5), Value::Double(-0.5)])
            .unwrap();
        let runner = env.new_instance("Runner", &[poly]).unwrap();
        let args = [Value::Int(500)];
        let mut results = Vec::new();
        let mut vtimes = Vec::new();
        for opts in [
            JitOptions::wootinj(),
            JitOptions::template(),
            JitOptions::template_no_virt(),
            JitOptions::cpp(),
        ] {
            let code = env.jit(&runner, "run", &args, opts).unwrap();
            let report = code.invoke(&env).unwrap();
            match report.result {
                Some(Val::F64(v)) => results.push(v),
                other => panic!("unexpected {other:?}"),
            }
            vtimes.push(report.vtime_cycles);
        }
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
        // WootinJ fastest, C++ slowest (the Figure 17 ordering).
        assert!(
            vtimes[0] < vtimes[1],
            "wootinj {} !< template {}",
            vtimes[0],
            vtimes[1]
        );
        assert!(
            vtimes[1] < vtimes[3],
            "template {} !< cpp {}",
            vtimes[1],
            vtimes[3]
        );
    }

    #[test]
    fn compile_time_is_recorded() {
        let table = build_table(&[("listing34.jl", LISTING34)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let gen = env.new_instance("PhysDataGen", &[]).unwrap();
        let solver = env.new_instance("PhysSolver", &[]).unwrap();
        let stencil = env
            .new_instance("StencilOnGpuAndMPI", &[gen, solver])
            .unwrap();
        let code = env
            .jit(
                &stencil,
                "run",
                &[Value::Int(16), Value::Int(1)],
                JitOptions::wootinj(),
            )
            .unwrap();
        assert!(code.compile_time.as_nanos() > 0);
        let src = code.c_source();
        assert!(src.contains("__global__"), "{src}");
        assert!(src.contains("MPI_Init"), "{src}");
    }
}

#[cfg(test)]
mod preset_tests {
    use super::*;

    #[test]
    fn jit_option_presets_map_to_the_paper_series() {
        assert_eq!(JitOptions::wootinj().config.mode, Mode::Full);
        assert_eq!(JitOptions::template().config.mode, Mode::Devirt);
        assert!(
            JitOptions::template().config.opt.sroa,
            "Template models C++ value semantics"
        );
        assert_eq!(JitOptions::template_no_virt().config.mode, Mode::Full);
        assert!(JitOptions::template_no_virt().config.opt.inline_limit > 0);
        assert_eq!(JitOptions::cpp().config.mode, Mode::Virtual);
        assert!(
            !JitOptions::cpp().config.check_rules,
            "the C++ baseline is not rule-bound"
        );
    }

    #[test]
    fn run_report_exposes_per_rank_breakdown() {
        let src = "@WootinJ final class N { N() { } \
                   float run(float[] a) { float s = 0f; \
                   for (int i = 0; i < a.length; i++) { s += a[i]; } \
                   return MPI.allreduceSumF(s); } }";
        let table = build_table(&[("n.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let n = env.new_instance("N", &[]).unwrap();
        let data = env.new_f32_array(&[1.0; 32]);
        let mut code = env.jit(&n, "run", &[data], JitOptions::wootinj()).unwrap();
        code.set_mpi(3, MpiCostModel::default());
        let report = code.invoke(&env).unwrap();
        assert_eq!(report.per_rank.len(), 3);
        assert_eq!(report.outputs.len(), 3);
        for pr in &report.per_rank {
            assert!(pr.compute_cycles > 0);
            assert!(pr.vclock >= pr.compute_cycles);
        }
        // Every rank got its own deep copy: 3 x 32 elements summed.
        assert_eq!(report.result, Some(Val::F32(96.0)));
        assert!(report.vtime_cycles >= report.per_rank.iter().map(|r| r.vclock).max().unwrap());
    }

    #[test]
    fn print_output_is_captured_per_rank() {
        let src = "@WootinJ final class P { P() { } \
                   void run() { WJ.printInt(MPI.rank()); } }";
        let table = build_table(&[("p.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let p = env.new_instance("P", &[]).unwrap();
        let mut code = env.jit(&p, "run", &[], JitOptions::wootinj()).unwrap();
        code.set_mpi(2, MpiCostModel::default());
        let report = code.invoke(&env).unwrap();
        assert_eq!(report.outputs[0], vec!["0".to_string()]);
        assert_eq!(report.outputs[1], vec!["1".to_string()]);
    }
}
