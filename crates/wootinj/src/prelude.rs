//! The WootinJ prelude: the Java-side classes the framework provides.
//!
//! These mirror §3 of the paper: the `MPI` and `CUDA` classes whose method
//! calls translate into *direct* C calls (no JNI-style wrapper cost), the
//! `dim3` / `CudaConfig` value classes for `<<<grid, block>>>` launch
//! configurations, plus `Math` and `WJ` utility natives. The `@Native`
//! keys bind to interpreter natives (`jvm` crate) and NIR intrinsics
//! (`translator` crate).

/// jlang source of the prelude, prepended to every compilation.
pub const PRELUDE: &str = r#"
final class Math {
  @Native("math.sqrt")  static double sqrt(double x);
  @Native("math.sqrtf") static float sqrtf(float x);
  @Native("math.pow")   static double pow(double x, double y);
  @Native("math.exp")   static double exp(double x);
  @Native("math.absf")  static float absf(float x);
  @Native("math.absd")  static double absd(double x);
  @Native("math.absi")  static int absi(int x);
  @Native("math.mini")  static int mini(int a, int b);
  @Native("math.maxi")  static int maxi(int a, int b);
  @Native("math.minf")  static float minf(float a, float b);
  @Native("math.maxf")  static float maxf(float a, float b);
}

final class WJ {
  @Native("wj.printInt")    static void printInt(int x);
  @Native("wj.printLong")   static void printLong(long x);
  @Native("wj.printFloat")  static void printFloat(float x);
  @Native("wj.printDouble") static void printDouble(double x);
  @Native("wj.printBool")   static void printBool(boolean x);
  @Native("wj.arraycopyF")  static void arraycopyF(float[] src, int srcPos,
                                                   float[] dst, int dstPos, int len);
}

// CUDA's dim3: a strict-final, semi-immutable value class.
@WootinJ final class dim3 {
  int x; int y; int z;
  dim3(int x0, int y0, int z0) { x = x0; y = y0; z = z0; }
}

// The <<<grid, block>>> launch configuration a @Global method takes as
// its first argument (paper, section 3.1).
@WootinJ final class CudaConfig {
  dim3 grid; dim3 block;
  CudaConfig(dim3 g, dim3 b) { grid = g; block = b; }
}

final class CUDA {
  @Native("cuda.threadIdxX") static int threadIdxX();
  @Native("cuda.threadIdxY") static int threadIdxY();
  @Native("cuda.threadIdxZ") static int threadIdxZ();
  @Native("cuda.blockIdxX")  static int blockIdxX();
  @Native("cuda.blockIdxY")  static int blockIdxY();
  @Native("cuda.blockIdxZ")  static int blockIdxZ();
  @Native("cuda.blockDimX")  static int blockDimX();
  @Native("cuda.blockDimY")  static int blockDimY();
  @Native("cuda.blockDimZ")  static int blockDimZ();
  @Native("cuda.gridDimX")   static int gridDimX();
  @Native("cuda.gridDimY")   static int gridDimY();
  @Native("cuda.gridDimZ")   static int gridDimZ();
  @Native("cuda.copyToGPU")   static float[] copyToGPU(float[] a);
  @Native("cuda.copyFromGPU") static void copyFromGPU(float[] dst, float[] src);
  @Native("cuda.allocF32")    static float[] allocF32(int n);
  @Native("cuda.free")        static void free(float[] a);
  @Native("cuda.sync")        static void sync();
  // Partial copies (cudaMemcpy on sub-ranges): halo planes etc.
  @Native("cuda.copyInRange")
  static void copyInRange(float[] dev, int devOff, float[] host, int hostOff, int len);
  @Native("cuda.copyOutRange")
  static void copyOutRange(float[] host, int hostOff, float[] dev, int devOff, int len);
  // The reproduction's spelling of the paper's @Shared fields: allocate a
  // per-block __shared__ float array inside a kernel.
  @Native("cuda.sharedF32")   static float[] sharedF32(int n);
}

final class MPI {
  @Native("mpi.rank")    static int rank();
  @Native("mpi.size")    static int size();
  @Native("mpi.barrier") static void barrier();
  @Native("mpi.sendF")
  static void sendF(float[] buf, int offset, int count, int dest, int tag);
  @Native("mpi.recvF")
  static void recvF(float[] buf, int offset, int count, int src, int tag);
  @Native("mpi.sendrecvF")
  static void sendrecvF(float[] sbuf, int soff, int count, int dest,
                        float[] rbuf, int roff, int src, int tag);
  @Native("mpi.bcastF")
  static void bcastF(float[] buf, int offset, int count, int root);
  @Native("mpi.allreduceSumD") static double allreduceSumD(double x);
  @Native("mpi.allreduceSumF") static float allreduceSumF(float x);
  @Native("mpi.allreduceMaxD") static double allreduceMaxD(double x);
}
"#;
