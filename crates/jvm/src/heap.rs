//! Runtime values and the object/array heap of the interpreter.

use jlang::types::{ClassId, PrimKind, Type};
use std::fmt;
use std::rc::Rc;

/// Reference to a heap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjRef(pub u32);

/// Reference to a heap array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrRef(pub u32);

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    Bool(bool),
    Obj(ObjRef),
    Arr(ArrRef),
    Str(Rc<str>),
    Null,
    /// Result of a `void` call.
    Void,
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::Str(Rc::from(s))
    }

    pub fn as_i32(&self) -> Result<i32, String> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(format!("expected int, found {other:?}")),
        }
    }

    pub fn as_i64(&self) -> Result<i64, String> {
        match self {
            Value::Long(v) => Ok(*v),
            other => Err(format!("expected long, found {other:?}")),
        }
    }

    pub fn as_f32(&self) -> Result<f32, String> {
        match self {
            Value::Float(v) => Ok(*v),
            other => Err(format!("expected float, found {other:?}")),
        }
    }

    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Double(v) => Ok(*v),
            other => Err(format!("expected double, found {other:?}")),
        }
    }

    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(format!("expected boolean, found {other:?}")),
        }
    }

    pub fn as_obj(&self) -> Result<ObjRef, String> {
        match self {
            Value::Obj(r) => Ok(*r),
            other => Err(format!("expected object, found {other:?}")),
        }
    }

    pub fn as_arr(&self) -> Result<ArrRef, String> {
        match self {
            Value::Arr(r) => Ok(*r),
            other => Err(format!("expected array, found {other:?}")),
        }
    }

    /// Numeric value widened to f64 (for generic numeric natives).
    pub fn to_f64_lossy(&self) -> Result<f64, String> {
        Ok(match self {
            Value::Int(v) => *v as f64,
            Value::Long(v) => *v as f64,
            Value::Float(v) => *v as f64,
            Value::Double(v) => *v,
            other => return Err(format!("expected numeric, found {other:?}")),
        })
    }

    /// The zero/default value for a declared type.
    pub fn default_for(ty: &Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Long => Value::Long(0),
            Type::Float => Value::Float(0.0),
            Type::Double => Value::Double(0.0),
            Type::Boolean => Value::Bool(false),
            _ => Value::Null,
        }
    }

    /// The zero value for a primitive kind.
    pub fn zero(kind: PrimKind) -> Value {
        match kind {
            PrimKind::Int => Value::Int(0),
            PrimKind::Long => Value::Long(0),
            PrimKind::Float => Value::Float(0.0),
            PrimKind::Double => Value::Double(0.0),
            PrimKind::Boolean => Value::Bool(false),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}L"),
            Value::Float(v) => write!(f, "{v}f"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Obj(r) => write!(f, "obj@{}", r.0),
            Value::Arr(r) => write!(f, "arr@{}", r.0),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "null"),
            Value::Void => write!(f, "void"),
        }
    }
}

/// Typed array storage: HPC data lives in flat primitive vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F32(Vec<f32>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
    /// Arrays of objects (or nested arrays).
    Ref(Vec<Value>),
}

impl ArrayData {
    pub fn new(elem: &Type, len: usize) -> ArrayData {
        match elem {
            Type::Int => ArrayData::I32(vec![0; len]),
            Type::Long => ArrayData::I64(vec![0; len]),
            Type::Float => ArrayData::F32(vec![0.0; len]),
            Type::Double => ArrayData::F64(vec![0.0; len]),
            Type::Boolean => ArrayData::Bool(vec![false; len]),
            _ => ArrayData::Ref(vec![Value::Null; len]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ArrayData::I32(v) => v.len(),
            ArrayData::I64(v) => v.len(),
            ArrayData::F32(v) => v.len(),
            ArrayData::F64(v) => v.len(),
            ArrayData::Bool(v) => v.len(),
            ArrayData::Ref(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn get(&self, i: usize) -> Option<Value> {
        if i >= self.len() {
            return None;
        }
        Some(match self {
            ArrayData::I32(v) => Value::Int(v[i]),
            ArrayData::I64(v) => Value::Long(v[i]),
            ArrayData::F32(v) => Value::Float(v[i]),
            ArrayData::F64(v) => Value::Double(v[i]),
            ArrayData::Bool(v) => Value::Bool(v[i]),
            ArrayData::Ref(v) => v[i].clone(),
        })
    }

    pub fn set(&mut self, i: usize, val: Value) -> Result<(), String> {
        if i >= self.len() {
            return Err(format!(
                "array index {i} out of bounds (len {})",
                self.len()
            ));
        }
        match (self, val) {
            (ArrayData::I32(v), Value::Int(x)) => v[i] = x,
            (ArrayData::I64(v), Value::Long(x)) => v[i] = x,
            (ArrayData::F32(v), Value::Float(x)) => v[i] = x,
            (ArrayData::F64(v), Value::Double(x)) => v[i] = x,
            (ArrayData::Bool(v), Value::Bool(x)) => v[i] = x,
            (ArrayData::Ref(v), x) => v[i] = x,
            (arr, x) => return Err(format!("type mismatch storing {x:?} into {arr:?}")),
        }
        Ok(())
    }
}

/// A heap object: its runtime class plus one value slot per instance field
/// (absolute layout, inherited fields first).
#[derive(Debug, Clone)]
pub struct ObjData {
    pub class: ClassId,
    pub fields: Vec<Value>,
}

/// The interpreter heap. There is no garbage collector — HPC runs are
/// short-lived and the paper's framework leaves memory to the developer.
#[derive(Debug, Default)]
pub struct Heap {
    pub objects: Vec<ObjData>,
    pub arrays: Vec<ArrayData>,
}

impl Heap {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn alloc_obj(&mut self, class: ClassId, field_count: usize) -> ObjRef {
        let r = ObjRef(self.objects.len() as u32);
        self.objects.push(ObjData {
            class,
            fields: vec![Value::Null; field_count],
        });
        r
    }

    pub fn alloc_arr(&mut self, data: ArrayData) -> ArrRef {
        let r = ArrRef(self.arrays.len() as u32);
        self.arrays.push(data);
        r
    }

    pub fn obj(&self, r: ObjRef) -> &ObjData {
        &self.objects[r.0 as usize]
    }

    pub fn obj_mut(&mut self, r: ObjRef) -> &mut ObjData {
        &mut self.objects[r.0 as usize]
    }

    pub fn arr(&self, r: ArrRef) -> &ArrayData {
        &self.arrays[r.0 as usize]
    }

    pub fn arr_mut(&mut self, r: ArrRef) -> &mut ArrayData {
        &mut self.arrays[r.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_data_roundtrip() {
        let mut a = ArrayData::new(&Type::Float, 4);
        assert_eq!(a.len(), 4);
        a.set(2, Value::Float(1.5)).unwrap();
        assert_eq!(a.get(2), Some(Value::Float(1.5)));
        assert_eq!(a.get(0), Some(Value::Float(0.0)));
        assert_eq!(a.get(4), None);
    }

    #[test]
    fn array_type_mismatch_rejected() {
        let mut a = ArrayData::new(&Type::Int, 2);
        assert!(a.set(0, Value::Float(1.0)).is_err());
        assert!(a.set(5, Value::Int(1)).is_err());
    }

    #[test]
    fn defaults_match_java() {
        assert_eq!(Value::default_for(&Type::Int), Value::Int(0));
        assert_eq!(Value::default_for(&Type::Boolean), Value::Bool(false));
        assert_eq!(Value::default_for(&Type::array(Type::Float)), Value::Null);
    }

    #[test]
    fn heap_allocation() {
        let mut h = Heap::new();
        let o = h.alloc_obj(ClassId(1), 3);
        assert_eq!(h.obj(o).fields.len(), 3);
        let a = h.alloc_arr(ArrayData::new(&Type::Double, 8));
        assert_eq!(h.arr(a).len(), 8);
    }
}
