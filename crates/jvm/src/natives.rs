//! Default native (intrinsic) implementations for the interpreter.
//!
//! Keys follow a `namespace.name` convention and are referenced from jlang
//! sources via `@Native("key")`. The `wootinj` crate's prelude declares the
//! corresponding Java-side classes (`Math`, `WJ`, `CUDA`, `MPI`).
//!
//! CUDA semantics in the interpreter: device memory is *emulated* by
//! cloning arrays on `cuda.copyToGPU` and copying back on
//! `cuda.copyFromGPU`, which matches the paper's explicit-copy model.
//! `cuda.sync` (i.e. `__syncthreads`) cannot be emulated by a sequential
//! per-thread loop and reports an error directing users to the translated
//! gpu-sim path.
//!
//! MPI semantics in the interpreter: the paper notes that WootinJ programs
//! "can run without WootinJ unless they use MPI or GPUs"; we model a
//! single-rank world (`rank()==0`, `size()==1`, collectives are identity)
//! and reject point-to-point calls.

use std::rc::Rc;

use crate::heap::{ArrayData, Value};
use crate::interp::{Jvm, JvmError, NativeFn};

fn native(
    f: impl for<'a> Fn(&mut Jvm<'a>, &[Value]) -> Result<Value, JvmError> + 'static,
) -> NativeFn {
    Rc::new(f)
}

fn arg(args: &[Value], i: usize) -> Result<&Value, JvmError> {
    args.get(i)
        .ok_or_else(|| JvmError::new(format!("missing native argument {i}")))
}

/// Register the standard native set on a fresh interpreter.
pub fn register_defaults(jvm: &mut Jvm<'_>) {
    // ---------------- Math ----------------
    jvm.register_native(
        "math.sqrt",
        native(|_, a| {
            Ok(Value::Double(
                arg(a, 0)?.to_f64_lossy().map_err(JvmError::new)?.sqrt(),
            ))
        }),
    );
    jvm.register_native(
        "math.sqrtf",
        native(|_, a| {
            Ok(Value::Float(
                arg(a, 0)?.as_f32().map_err(JvmError::new)?.sqrt(),
            ))
        }),
    );
    jvm.register_native(
        "math.pow",
        native(|_, a| {
            let x = arg(a, 0)?.to_f64_lossy().map_err(JvmError::new)?;
            let y = arg(a, 1)?.to_f64_lossy().map_err(JvmError::new)?;
            Ok(Value::Double(x.powf(y)))
        }),
    );
    jvm.register_native(
        "math.exp",
        native(|_, a| {
            Ok(Value::Double(
                arg(a, 0)?.to_f64_lossy().map_err(JvmError::new)?.exp(),
            ))
        }),
    );
    jvm.register_native(
        "math.absf",
        native(|_, a| {
            Ok(Value::Float(
                arg(a, 0)?.as_f32().map_err(JvmError::new)?.abs(),
            ))
        }),
    );
    jvm.register_native(
        "math.absd",
        native(|_, a| {
            Ok(Value::Double(
                arg(a, 0)?.as_f64().map_err(JvmError::new)?.abs(),
            ))
        }),
    );
    jvm.register_native(
        "math.absi",
        native(|_, a| {
            Ok(Value::Int(
                arg(a, 0)?.as_i32().map_err(JvmError::new)?.wrapping_abs(),
            ))
        }),
    );
    jvm.register_native(
        "math.mini",
        native(|_, a| {
            let x = arg(a, 0)?.as_i32().map_err(JvmError::new)?;
            let y = arg(a, 1)?.as_i32().map_err(JvmError::new)?;
            Ok(Value::Int(x.min(y)))
        }),
    );
    jvm.register_native(
        "math.maxi",
        native(|_, a| {
            let x = arg(a, 0)?.as_i32().map_err(JvmError::new)?;
            let y = arg(a, 1)?.as_i32().map_err(JvmError::new)?;
            Ok(Value::Int(x.max(y)))
        }),
    );
    jvm.register_native(
        "math.minf",
        native(|_, a| {
            let x = arg(a, 0)?.as_f32().map_err(JvmError::new)?;
            let y = arg(a, 1)?.as_f32().map_err(JvmError::new)?;
            Ok(Value::Float(x.min(y)))
        }),
    );
    jvm.register_native(
        "math.maxf",
        native(|_, a| {
            let x = arg(a, 0)?.as_f32().map_err(JvmError::new)?;
            let y = arg(a, 1)?.as_f32().map_err(JvmError::new)?;
            Ok(Value::Float(x.max(y)))
        }),
    );

    // ---------------- WJ (printing & utilities) ----------------
    for (key, kind) in [
        ("wj.printInt", 0),
        ("wj.printLong", 1),
        ("wj.printFloat", 2),
        ("wj.printDouble", 3),
        ("wj.printBool", 4),
    ] {
        jvm.register_native(
            key,
            native(move |jvm, a| {
                let v = arg(a, 0)?;
                let line = match (kind, v) {
                    (0, Value::Int(x)) => x.to_string(),
                    (1, Value::Long(x)) => x.to_string(),
                    (2, Value::Float(x)) => format!("{x}"),
                    (3, Value::Double(x)) => format!("{x}"),
                    (4, Value::Bool(x)) => x.to_string(),
                    (_, other) => return Err(JvmError::new(format!("bad print arg {other}"))),
                };
                jvm.output.push(line);
                Ok(Value::Void)
            }),
        );
    }
    jvm.register_native(
        "wj.arraycopyF",
        native(|jvm, a| {
            let src = arg(a, 0)?.as_arr().map_err(JvmError::new)?;
            let src_pos = arg(a, 1)?.as_i32().map_err(JvmError::new)? as usize;
            let dst = arg(a, 2)?.as_arr().map_err(JvmError::new)?;
            let dst_pos = arg(a, 3)?.as_i32().map_err(JvmError::new)? as usize;
            let len = arg(a, 4)?.as_i32().map_err(JvmError::new)? as usize;
            let data: Vec<f32> = match jvm.heap.arr(src) {
                ArrayData::F32(v) => v
                    .get(src_pos..src_pos + len)
                    .ok_or_else(|| JvmError::new("arraycopy source out of range"))?
                    .to_vec(),
                _ => return Err(JvmError::new("arraycopyF on non-float array")),
            };
            match jvm.heap.arr_mut(dst) {
                ArrayData::F32(v) => {
                    let tgt = v
                        .get_mut(dst_pos..dst_pos + len)
                        .ok_or_else(|| JvmError::new("arraycopy target out of range"))?;
                    tgt.copy_from_slice(&data);
                }
                _ => return Err(JvmError::new("arraycopyF on non-float array")),
            }
            Ok(Value::Void)
        }),
    );

    // ---------------- CUDA (emulation) ----------------
    for (key, sel) in [
        ("cuda.threadIdxX", 0usize),
        ("cuda.threadIdxY", 1),
        ("cuda.threadIdxZ", 2),
        ("cuda.blockIdxX", 3),
        ("cuda.blockIdxY", 4),
        ("cuda.blockIdxZ", 5),
        ("cuda.blockDimX", 6),
        ("cuda.blockDimY", 7),
        ("cuda.blockDimZ", 8),
        ("cuda.gridDimX", 9),
        ("cuda.gridDimY", 10),
        ("cuda.gridDimZ", 11),
    ] {
        jvm.register_native(
            key,
            native(move |jvm, _| {
                let ctx = jvm
                    .cuda
                    .ok_or_else(|| JvmError::new("CUDA register read outside a kernel"))?;
                let v = match sel {
                    0..=2 => ctx.thread_idx[sel],
                    3..=5 => ctx.block_idx[sel - 3],
                    6..=8 => ctx.block_dim[sel - 6],
                    _ => ctx.grid_dim[sel - 9],
                };
                Ok(Value::Int(v))
            }),
        );
    }
    jvm.register_native(
        "cuda.copyToGPU",
        native(|jvm, a| {
            let src = arg(a, 0)?.as_arr().map_err(JvmError::new)?;
            let cloned = jvm.heap.arr(src).clone();
            Ok(Value::Arr(jvm.heap.alloc_arr(cloned)))
        }),
    );
    jvm.register_native(
        "cuda.copyFromGPU",
        native(|jvm, a| {
            let dst = arg(a, 0)?.as_arr().map_err(JvmError::new)?;
            let src = arg(a, 1)?.as_arr().map_err(JvmError::new)?;
            let data = jvm.heap.arr(src).clone();
            *jvm.heap.arr_mut(dst) = data;
            Ok(Value::Void)
        }),
    );
    jvm.register_native(
        "cuda.allocF32",
        native(|jvm, a| {
            let n = arg(a, 0)?.as_i32().map_err(JvmError::new)?;
            if n < 0 {
                return Err(JvmError::new("negative device allocation"));
            }
            Ok(Value::Arr(
                jvm.heap.alloc_arr(ArrayData::F32(vec![0.0; n as usize])),
            ))
        }),
    );
    jvm.register_native("cuda.free", native(|_, _| Ok(Value::Void)));
    jvm.register_native(
        "cuda.copyInRange",
        native(|jvm, a| {
            // (dev, devOff, host, hostOff, len) — emulated: both are heap arrays.
            let dev = arg(a, 0)?.as_arr().map_err(JvmError::new)?;
            let doff = arg(a, 1)?.as_i32().map_err(JvmError::new)? as usize;
            let host = arg(a, 2)?.as_arr().map_err(JvmError::new)?;
            let hoff = arg(a, 3)?.as_i32().map_err(JvmError::new)? as usize;
            let len = arg(a, 4)?.as_i32().map_err(JvmError::new)? as usize;
            let data: Vec<f32> = match jvm.heap.arr(host) {
                ArrayData::F32(v) => v
                    .get(hoff..hoff + len)
                    .ok_or_else(|| JvmError::new("copyInRange source out of range"))?
                    .to_vec(),
                _ => return Err(JvmError::new("copyInRange on non-float array")),
            };
            match jvm.heap.arr_mut(dev) {
                ArrayData::F32(v) => {
                    let tgt = v
                        .get_mut(doff..doff + len)
                        .ok_or_else(|| JvmError::new("copyInRange target out of range"))?;
                    tgt.copy_from_slice(&data);
                }
                _ => return Err(JvmError::new("copyInRange on non-float array")),
            }
            Ok(Value::Void)
        }),
    );
    jvm.register_native(
        "cuda.copyOutRange",
        native(|jvm, a| {
            // (host, hostOff, dev, devOff, len)
            let host = arg(a, 0)?.as_arr().map_err(JvmError::new)?;
            let hoff = arg(a, 1)?.as_i32().map_err(JvmError::new)? as usize;
            let dev = arg(a, 2)?.as_arr().map_err(JvmError::new)?;
            let doff = arg(a, 3)?.as_i32().map_err(JvmError::new)? as usize;
            let len = arg(a, 4)?.as_i32().map_err(JvmError::new)? as usize;
            let data: Vec<f32> = match jvm.heap.arr(dev) {
                ArrayData::F32(v) => v
                    .get(doff..doff + len)
                    .ok_or_else(|| JvmError::new("copyOutRange source out of range"))?
                    .to_vec(),
                _ => return Err(JvmError::new("copyOutRange on non-float array")),
            };
            match jvm.heap.arr_mut(host) {
                ArrayData::F32(v) => {
                    let tgt = v
                        .get_mut(hoff..hoff + len)
                        .ok_or_else(|| JvmError::new("copyOutRange target out of range"))?;
                    tgt.copy_from_slice(&data);
                }
                _ => return Err(JvmError::new("copyOutRange on non-float array")),
            }
            Ok(Value::Void)
        }),
    );
    jvm.register_native(
        "cuda.sharedF32",
        native(|_, _| {
            Err(JvmError::new(
                "shared memory cannot be emulated by the sequential interpreter; \
                 translate the kernel and run it on gpu-sim",
            ))
        }),
    );
    jvm.register_native(
        "cuda.sync",
        native(|_, _| {
            Err(JvmError::new(
                "__syncthreads cannot be emulated by the sequential interpreter; \
                 translate the kernel and run it on gpu-sim",
            ))
        }),
    );

    // ---------------- MPI (single-rank emulation) ----------------
    jvm.register_native("mpi.rank", native(|_, _| Ok(Value::Int(0))));
    jvm.register_native("mpi.size", native(|_, _| Ok(Value::Int(1))));
    jvm.register_native("mpi.barrier", native(|_, _| Ok(Value::Void)));
    jvm.register_native(
        "mpi.allreduceSumD",
        native(|_, a| Ok(Value::Double(arg(a, 0)?.as_f64().map_err(JvmError::new)?))),
    );
    jvm.register_native(
        "mpi.allreduceSumF",
        native(|_, a| Ok(Value::Float(arg(a, 0)?.as_f32().map_err(JvmError::new)?))),
    );
    jvm.register_native(
        "mpi.allreduceMaxD",
        native(|_, a| Ok(Value::Double(arg(a, 0)?.as_f64().map_err(JvmError::new)?))),
    );
    for key in ["mpi.sendF", "mpi.recvF", "mpi.sendrecvF", "mpi.bcastF"] {
        jvm.register_native(
            key,
            native(move |_, _| {
                Err(JvmError::new(
                    "MPI point-to-point communication requires translation (jit4mpi) \
                     and the mpi-sim runtime; the interpreter models a single rank",
                ))
            }),
        );
    }
}
