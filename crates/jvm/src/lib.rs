//! # jvm — heap + tree-walking interpreter for jlang
//!
//! Plays two roles in the reproduction:
//!
//! 1. **The "Java" baseline.** Figures 3, 17, and 18 of the paper compare
//!    WootinJ-translated code against the same program running on the JVM.
//!    This interpreter *is* that series: objects on a heap, per-call
//!    virtual dispatch from the receiver's runtime class, per-access field
//!    indirection.
//! 2. **Host-side object composition.** A WootinJ application composes its
//!    component objects in ordinary Java before calling `jit()`; here the
//!    host composes them in this interpreter's heap, and the translator
//!    reads exact runtime types from the live object graph — exactly the
//!    runtime-type-information-driven translation the paper describes.

#![forbid(unsafe_code)]

pub mod heap;
pub mod interp;
pub mod natives;

pub use heap::{ArrRef, ArrayData, Heap, ObjData, ObjRef, Value};
pub use interp::{CudaCtx, Jvm, JvmError, NativeFn};

#[cfg(test)]
mod tests {
    use super::*;
    use jlang::compile_str;

    fn run_static(src: &str, class: &str, method: &str, args: &[Value]) -> Value {
        let table = compile_str(src).expect("compile");
        let mut jvm = Jvm::new(&table).expect("jvm");
        jvm.call_static(class, method, args).expect("call")
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let v = run_static(
            "class A { static int sum(int n) { int s = 0; \
             for (int i = 1; i <= n; i++) { s += i; } return s; } }",
            "A",
            "sum",
            &[Value::Int(100)],
        );
        assert_eq!(v, Value::Int(5050));
    }

    #[test]
    fn while_break_continue() {
        let v = run_static(
            "class A { static int m() { int s = 0; int i = 0; \
             while (true) { i++; if (i > 10) { break; } if (i % 2 == 0) { continue; } s += i; } \
             return s; } }",
            "A",
            "m",
            &[],
        );
        assert_eq!(v, Value::Int(25)); // 1+3+5+7+9
    }

    #[test]
    fn int_wrapping_matches_java() {
        let v = run_static(
            "class A { static int m() { int x = 2147483647; return x + 1; } }",
            "A",
            "m",
            &[],
        );
        assert_eq!(v, Value::Int(i32::MIN));
    }

    #[test]
    fn float_vs_double_precision() {
        let v = run_static(
            "class A { static float m() { float x = 1.0f; return x / 3.0f; } }",
            "A",
            "m",
            &[],
        );
        assert_eq!(v, Value::Float(1.0f32 / 3.0f32));
    }

    #[test]
    fn division_by_zero_is_error() {
        let table = compile_str("class A { static int m(int d) { return 10 / d; } }").unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let err = jvm.call_static("A", "m", &[Value::Int(0)]).unwrap_err();
        assert!(err.message.contains("division"), "{err}");
    }

    #[test]
    fn object_construction_and_virtual_dispatch() {
        let src = "interface Shape { double area(); } \
             class Square implements Shape { double s; Square(double s0) { s = s0; } \
               double area() { return s * s; } } \
             class Circle implements Shape { double r; Circle(double r0) { r = r0; } \
               double area() { return 3.25 * r * r; } } \
             class Main { static double total(Shape a, Shape b) { return a.area() + b.area(); } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let sq = jvm.new_instance("Square", &[Value::Double(2.0)]).unwrap();
        let ci = jvm.new_instance("Circle", &[Value::Double(1.0)]).unwrap();
        let v = jvm.call_static("Main", "total", &[sq, ci]).unwrap();
        match v {
            Value::Double(d) => assert!((d - (4.0 + 3.25)).abs() < 1e-9),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn override_dispatches_to_runtime_class() {
        let src = "class Base { int m() { return 1; } int call() { return m(); } } \
                   class Sub extends Base { int m() { return 2; } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let sub = jvm.new_instance("Sub", &[]).unwrap();
        assert_eq!(jvm.call(&sub, "call", &[]).unwrap(), Value::Int(2));
    }

    #[test]
    fn super_call_is_not_virtual() {
        let src = "class Base { int m() { return 1; } } \
                   class Sub extends Base { int m() { return super.m() + 10; } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let sub = jvm.new_instance("Sub", &[]).unwrap();
        assert_eq!(jvm.call(&sub, "m", &[]).unwrap(), Value::Int(11));
    }

    #[test]
    fn ctor_order_super_then_inits_then_body() {
        let src = "class Base { int a; Base() { a = 1; } } \
                   class Sub extends Base { int b = 10; int c; Sub() { super(); c = a + b; } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let sub = jvm.new_instance("Sub", &[]).unwrap();
        assert_eq!(jvm.get_field(&sub, "c").unwrap(), Value::Int(11));
    }

    #[test]
    fn arrays_end_to_end() {
        let src = "class A { static float sum(float[] xs) { float s = 0f; \
                   for (int i = 0; i < xs.length; i++) { s += xs[i]; } return s; } \
                   static float[] iota(int n) { float[] a = new float[n]; \
                   for (int i = 0; i < n; i++) { a[i] = i; } return a; } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let arr = jvm.call_static("A", "iota", &[Value::Int(5)]).unwrap();
        assert_eq!(jvm.f32_array(&arr).unwrap(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let s = jvm.call_static("A", "sum", &[arr]).unwrap();
        assert_eq!(s, Value::Float(10.0));
    }

    #[test]
    fn out_of_bounds_is_error() {
        let table = compile_str("class A { static int m(int[] a) { return a[5]; } }").unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let arr = jvm.new_i32_array(&[1, 2, 3]);
        let err = jvm.call_static("A", "m", &[arr]).unwrap_err();
        assert!(err.message.contains("out of bounds"), "{err}");
    }

    #[test]
    fn null_dereference_is_error() {
        let table = compile_str("class B { int x; } class A { static int m(B b) { return b.x; } }")
            .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let err = jvm.call_static("A", "m", &[Value::Null]).unwrap_err();
        assert!(err.message.contains("null"), "{err}");
    }

    #[test]
    fn stack_overflow_detected() {
        let table =
            compile_str("class A { static int inf(int n) { return inf(n + 1); } }").unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let err = jvm.call_static("A", "inf", &[Value::Int(0)]).unwrap_err();
        assert!(err.message.contains("stack overflow"), "{err}");
    }

    #[test]
    fn statics_initialized_eagerly() {
        let src = "class A { static final int N = 6 * 7; static int n() { return N; } }";
        assert_eq!(run_static(src, "A", "n", &[]), Value::Int(42));
    }

    #[test]
    fn generics_run_erased() {
        let src = "class Cell { float v; Cell(float v0) { v = v0; } float val() { return v; } } \
                   class Box<T extends Cell> { T item; Box(T i) { item = i; } T get() { return item; } } \
                   class A { static float m() { Box<Cell> b = new Box<Cell>(new Cell(2.5f)); \
                     return b.get().val(); } }";
        assert_eq!(run_static(src, "A", "m", &[]), Value::Float(2.5));
    }

    #[test]
    fn math_natives() {
        let src = "class Math2 { @Native(\"math.sqrt\") static double sqrt(double x); } \
                   class A { static double m() { return Math2.sqrt(16.0); } }";
        assert_eq!(run_static(src, "A", "m", &[]), Value::Double(4.0));
    }

    #[test]
    fn print_native_collects_output() {
        let src = "class WJ2 { @Native(\"wj.printInt\") static void printInt(int x); } \
                   class A { static void m() { WJ2.printInt(7); WJ2.printInt(8); } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        jvm.call_static("A", "m", &[]).unwrap();
        assert_eq!(jvm.output, vec!["7", "8"]);
    }

    #[test]
    fn mpi_single_rank_emulation() {
        let src = "class MPI2 { @Native(\"mpi.rank\") static int rank(); \
                     @Native(\"mpi.size\") static int size(); } \
                   class A { static int m() { return MPI2.rank() + MPI2.size() * 100; } }";
        assert_eq!(run_static(src, "A", "m", &[]), Value::Int(100));
    }

    #[test]
    fn cuda_copy_emulation_is_a_real_copy() {
        let src =
            "class CUDA2 { @Native(\"cuda.copyToGPU\") static float[] copyToGPU(float[] a); } \
                   class A { static float m(float[] host) { \
                     float[] dev = CUDA2.copyToGPU(host); dev[0] = 99f; return host[0]; } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let host = jvm.new_f32_array(&[1.0, 2.0]);
        // Mutating the device copy must not affect the host array.
        assert_eq!(
            jvm.call_static("A", "m", &[host]).unwrap(),
            Value::Float(1.0)
        );
    }

    #[test]
    fn global_kernel_emulated_over_grid() {
        // A one-point stencil kernel, emulated sequentially: Listing 4 shape.
        let src = "
            class dim3 { int x; int y; int z; dim3(int x0) { x = x0; y = 1; z = 1; } }
            class CudaConfig { dim3 grid; dim3 block; CudaConfig(dim3 g, dim3 b) { grid = g; block = b; } }
            class CUDA3 { @Native(\"cuda.threadIdxX\") static int threadIdxX();
                          @Native(\"cuda.blockIdxX\") static int blockIdxX();
                          @Native(\"cuda.blockDimX\") static int blockDimX(); }
            class Kern {
              float scale; Kern(float s) { scale = s; }
              @Global void run(CudaConfig conf, float[] a) {
                int i = CUDA3.blockIdxX() * CUDA3.blockDimX() + CUDA3.threadIdxX();
                if (i < a.length) { a[i] = a[i] * scale; }
              }
              void launch(float[] a, int blocks, int threads) {
                CudaConfig conf = new CudaConfig(new dim3(blocks), new dim3(threads));
                run(conf, a);
              } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let k = jvm.new_instance("Kern", &[Value::Float(2.0)]).unwrap();
        let a = jvm.new_f32_array(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        jvm.call(&k, "launch", &[a.clone(), Value::Int(2), Value::Int(3)])
            .unwrap();
        assert_eq!(jvm.f32_array(&a).unwrap(), vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn steps_counter_is_deterministic_and_monotone() {
        let src = "class A { static int m(int n) { int s = 0; \
                   for (int i = 0; i < n; i++) { s += i; } return s; } }";
        let table = compile_str(src).unwrap();
        let mut jvm1 = Jvm::new(&table).unwrap();
        jvm1.call_static("A", "m", &[Value::Int(100)]).unwrap();
        let mut jvm2 = Jvm::new(&table).unwrap();
        jvm2.call_static("A", "m", &[Value::Int(100)]).unwrap();
        assert_eq!(jvm1.steps, jvm2.steps);
        let mut jvm3 = Jvm::new(&table).unwrap();
        jvm3.call_static("A", "m", &[Value::Int(200)]).unwrap();
        assert!(jvm3.steps > jvm1.steps);
    }

    #[test]
    fn ref_cast_checked_at_runtime() {
        let src = "class Base { } class Sub extends Base { } class Other extends Base { } \
                   class A { static Sub m(Base b) { return (Sub) b; } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let sub = jvm.new_instance("Sub", &[]).unwrap();
        assert!(jvm.call_static("A", "m", &[sub]).is_ok());
        let other = jvm.new_instance("Other", &[]).unwrap();
        let err = jvm.call_static("A", "m", &[other]).unwrap_err();
        assert!(err.message.contains("cast"), "{err}");
    }

    #[test]
    fn short_circuit_evaluation() {
        // The RHS would divide by zero if evaluated.
        let v = run_static(
            "class A { static boolean m(int d) { return d == 0 || 10 / d > 1; } }",
            "A",
            "m",
            &[Value::Int(0)],
        );
        assert_eq!(v, Value::Bool(true));
    }
}
