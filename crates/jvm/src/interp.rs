//! The tree-walking interpreter.
//!
//! This is the reproduction's stand-in for "running on the JVM" (the
//! *Java* series in Figures 3, 17 and 18): objects live on a heap, every
//! field access is an indirection, and every call is dispatched from the
//! receiver's runtime class. No devirtualization, no object inlining —
//! deliberately, since that performance gap is the paper's motivation.

use std::collections::HashMap;
use std::rc::Rc;

use jlang::ast::{BinOp, UnOp};
use jlang::span::Span;
use jlang::table::ClassTable;
use jlang::tast::{FieldSel, TBlock, TExpr, TExprKind, TStmt};
use jlang::types::{ClassId, PrimKind, Type};

use crate::heap::{ArrayData, Heap, ObjRef, Value};

/// Interpreter error (the subset of Java errors we model: bad index,
/// division by zero, null dereference, failed cast, stack overflow, and
/// native-call problems).
#[derive(Debug, Clone)]
pub struct JvmError {
    pub message: String,
    pub span: Option<Span>,
}

impl JvmError {
    pub fn new(message: impl Into<String>) -> Self {
        JvmError {
            message: message.into(),
            span: None,
        }
    }

    pub fn at(message: impl Into<String>, span: Span) -> Self {
        JvmError {
            message: message.into(),
            span: Some(span),
        }
    }
}

impl std::fmt::Display for JvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.span {
            Some(s) => write!(f, "jvm error at line {}: {}", s.line, self.message),
            None => write!(f, "jvm error: {}", self.message),
        }
    }
}

impl std::error::Error for JvmError {}

type JResult<T> = Result<T, JvmError>;

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// A native (intrinsic) function callable from jlang via `@Native("key")`.
pub type NativeFn = Rc<dyn for<'a> Fn(&mut Jvm<'a>, &[Value]) -> JResult<Value>>;

struct Frame {
    locals: Vec<Value>,
    this: Option<Value>,
}

/// CUDA thread coordinates available while emulating a `@Global` kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CudaCtx {
    pub grid_dim: [i32; 3],
    pub block_dim: [i32; 3],
    pub block_idx: [i32; 3],
    pub thread_idx: [i32; 3],
}

/// The interpreter. Holds the heap, static fields, native registry, and a
/// deterministic step counter used as the virtual-time metric for the
/// *Java* benchmark series.
pub struct Jvm<'t> {
    pub table: &'t ClassTable,
    pub heap: Heap,
    statics: Vec<Vec<Value>>,
    natives: HashMap<String, NativeFn>,
    /// Deterministic work metric: one step per evaluated node.
    pub steps: u64,
    depth: u32,
    max_depth: u32,
    /// Lines produced by the `wj.print*` natives.
    pub output: Vec<String>,
    /// Set while emulating a `@Global` kernel launch.
    pub cuda: Option<CudaCtx>,
}

impl<'t> Jvm<'t> {
    /// Create an interpreter and run all static field initializers.
    pub fn new(table: &'t ClassTable) -> JResult<Self> {
        let mut jvm = Jvm {
            table,
            heap: Heap::new(),
            statics: Vec::new(),
            natives: HashMap::new(),
            steps: 0,
            depth: 0,
            // Conservative: each jlang frame costs several large Rust
            // frames in this tree-walking interpreter (debug builds do not
            // reuse match-arm stack slots), and the coding rules forbid
            // recursion anyway. Hosts can raise it via `set_max_depth`.
            max_depth: 48,
            output: Vec::new(),
            cuda: None,
        };
        crate::natives::register_defaults(&mut jvm);
        jvm.init_statics()?;
        Ok(jvm)
    }

    pub fn register_native(&mut self, key: impl Into<String>, f: NativeFn) {
        self.natives.insert(key.into(), f);
    }

    /// Raise or lower the jlang call-depth limit. The default is small
    /// because each interpreted frame consumes several kilobytes of host
    /// stack; raise it only with a correspondingly large host stack.
    pub fn set_max_depth(&mut self, depth: u32) {
        self.max_depth = depth;
    }

    fn init_statics(&mut self) -> JResult<()> {
        for info in self.table.iter() {
            let defaults: Vec<Value> = info
                .statics
                .iter()
                .map(|f| Value::default_for(&f.ty))
                .collect();
            self.statics.push(defaults);
        }
        let ids: Vec<ClassId> = self.table.iter().map(|c| c.id).collect();
        for id in ids {
            let inits: Vec<(usize, TExpr)> = self
                .table
                .class(id)
                .statics
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.init.clone().map(|e| (i, e)))
                .collect();
            for (i, init) in inits {
                let mut frame = Frame {
                    locals: Vec::new(),
                    this: None,
                };
                let v = self.eval(&mut frame, &init)?;
                self.statics[id.0 as usize][i] = v;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Host-facing API
    // ------------------------------------------------------------------

    /// Instantiate `class_name` with constructor `args` (the host-side
    /// object composition step of a WootinJ application).
    pub fn new_instance(&mut self, class_name: &str, args: &[Value]) -> JResult<Value> {
        let id = self
            .table
            .by_name(class_name)
            .ok_or_else(|| JvmError::new(format!("unknown class `{class_name}`")))?;
        self.construct(id, args)
    }

    /// Virtually call `method` on `recv` (dispatch from its runtime class).
    pub fn call(&mut self, recv: &Value, method: &str, args: &[Value]) -> JResult<Value> {
        let class = self.runtime_class(recv)?;
        let (ic, im) = self.table.resolve_impl(class, method).ok_or_else(|| {
            JvmError::new(format!(
                "no implementation of `{method}` on `{}`",
                self.table.name(class)
            ))
        })?;
        self.invoke(Some(recv.clone()), ic, im, args.to_vec())
    }

    /// Call a static method by class and method name.
    pub fn call_static(&mut self, class: &str, method: &str, args: &[Value]) -> JResult<Value> {
        let id = self
            .table
            .by_name(class)
            .ok_or_else(|| JvmError::new(format!("unknown class `{class}`")))?;
        let ml = self
            .table
            .lookup_method(id, method)
            .ok_or_else(|| JvmError::new(format!("no method `{class}.{method}`")))?;
        self.invoke(None, ml.decl_class, ml.index, args.to_vec())
    }

    /// Allocate a float array on the interpreter heap.
    pub fn new_f32_array(&mut self, data: &[f32]) -> Value {
        Value::Arr(self.heap.alloc_arr(ArrayData::F32(data.to_vec())))
    }

    pub fn new_f64_array(&mut self, data: &[f64]) -> Value {
        Value::Arr(self.heap.alloc_arr(ArrayData::F64(data.to_vec())))
    }

    pub fn new_i32_array(&mut self, data: &[i32]) -> Value {
        Value::Arr(self.heap.alloc_arr(ArrayData::I32(data.to_vec())))
    }

    /// Read back a float array.
    pub fn f32_array(&self, v: &Value) -> JResult<Vec<f32>> {
        let r = v.as_arr().map_err(JvmError::new)?;
        match self.heap.arr(r) {
            ArrayData::F32(d) => Ok(d.clone()),
            other => Err(JvmError::new(format!("not a float array: {other:?}"))),
        }
    }

    pub fn f64_array(&self, v: &Value) -> JResult<Vec<f64>> {
        let r = v.as_arr().map_err(JvmError::new)?;
        match self.heap.arr(r) {
            ArrayData::F64(d) => Ok(d.clone()),
            other => Err(JvmError::new(format!("not a double array: {other:?}"))),
        }
    }

    /// Read an instance field by name (for tests and the translator).
    pub fn get_field(&self, recv: &Value, name: &str) -> JResult<Value> {
        let r = recv.as_obj().map_err(JvmError::new)?;
        let class = self.heap.obj(r).class;
        let fl = self
            .table
            .lookup_field(class, name)
            .ok_or_else(|| JvmError::new(format!("no field `{name}`")))?;
        Ok(self.heap.obj(r).fields[fl.slot as usize].clone())
    }

    /// The runtime class of a reference value.
    pub fn runtime_class(&self, v: &Value) -> JResult<ClassId> {
        match v {
            Value::Obj(r) => Ok(self.heap.obj(*r).class),
            other => Err(JvmError::new(format!("not an object: {other}"))),
        }
    }

    // ------------------------------------------------------------------
    // Core execution
    // ------------------------------------------------------------------

    /// Allocate and construct an instance: super constructors run first,
    /// then field initializers, then the constructor body (Java order).
    pub fn construct(&mut self, class: ClassId, args: &[Value]) -> JResult<Value> {
        let info = self.table.class(class);
        if info.is_interface {
            return Err(JvmError::new(format!(
                "cannot instantiate interface `{}`",
                info.name
            )));
        }
        if info.is_abstract {
            return Err(JvmError::new(format!(
                "cannot instantiate abstract class `{}`",
                info.name
            )));
        }
        let size = info.instance_size() as usize;
        let obj = self.heap.alloc_obj(class, size);
        // Initialize primitive defaults per declared field type.
        for (cid, cargs) in self.table.super_chain(class) {
            let cinfo = self.table.class(cid);
            for (i, f) in cinfo.fields.iter().enumerate() {
                let slot = cinfo.field_base as usize + i;
                self.heap.obj_mut(obj).fields[slot] = Value::default_for(&f.ty.subst(&cargs));
            }
        }
        self.run_ctor(obj, class, args.to_vec())?;
        Ok(Value::Obj(obj))
    }

    fn run_ctor(&mut self, obj: ObjRef, class: ClassId, args: Vec<Value>) -> JResult<()> {
        self.enter()?;
        let info = self.table.class(class);
        let ctor = info
            .ctor
            .clone()
            .ok_or_else(|| JvmError::new(format!("`{}` has no constructor", info.name)))?;
        if ctor.params.len() != args.len() {
            return Err(JvmError::new(format!(
                "constructor of `{}` expects {} args, got {}",
                info.name,
                ctor.params.len(),
                args.len()
            )));
        }
        let mut frame = Frame {
            locals: {
                let mut l = args;
                l.resize(ctor.frame_size as usize, Value::Null);
                l
            },
            this: Some(Value::Obj(obj)),
        };
        // 1. super constructor.
        if let Some((sid, _)) = &self.table.class(class).superclass.clone() {
            if *sid != jlang::OBJECT {
                let mut sargs = Vec::new();
                for a in &ctor.super_args {
                    sargs.push(self.eval(&mut frame, a)?);
                }
                self.run_ctor(obj, *sid, sargs)?;
            }
        }
        // 2. field initializers of this class.
        let inits: Vec<(u32, TExpr)> = {
            let cinfo = self.table.class(class);
            cinfo
                .fields
                .iter()
                .enumerate()
                .filter_map(|(i, f)| f.init.clone().map(|e| (cinfo.field_base + i as u32, e)))
                .collect()
        };
        for (slot, init) in inits {
            let v = self.eval(&mut frame, &init)?;
            self.heap.obj_mut(obj).fields[slot as usize] = v;
        }
        // 3. constructor body.
        if let Some(body) = &ctor.body {
            self.exec_block(&mut frame, body)?;
        }
        self.leave();
        Ok(())
    }

    fn enter(&mut self) -> JResult<()> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(JvmError::new("stack overflow (call depth limit exceeded)"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    /// Invoke a method body (or native) with an optional receiver.
    pub fn invoke(
        &mut self,
        this: Option<Value>,
        class: ClassId,
        index: u32,
        args: Vec<Value>,
    ) -> JResult<Value> {
        let m = self.table.method(class, index).clone();
        if let Some(key) = &m.native {
            return self.call_native(key, &args, m.span);
        }
        if m.is_global {
            return self.launch_kernel_emulated(this, class, index, args);
        }
        self.invoke_plain(this, class, index, args)
    }

    fn invoke_plain(
        &mut self,
        this: Option<Value>,
        class: ClassId,
        index: u32,
        args: Vec<Value>,
    ) -> JResult<Value> {
        let m = self.table.method(class, index).clone();
        let Some(body) = &m.body else {
            return Err(JvmError::new(format!(
                "method `{}::{}` has no body",
                self.table.name(class),
                m.name
            )));
        };
        if m.params.len() != args.len() {
            return Err(JvmError::new(format!(
                "`{}` expects {} args, got {}",
                m.name,
                m.params.len(),
                args.len()
            )));
        }
        self.enter()?;
        let mut frame = Frame {
            locals: {
                let mut l = args;
                l.resize(m.frame_size as usize, Value::Null);
                l
            },
            this,
        };
        let flow = self.exec_block(&mut frame, body)?;
        self.leave();
        match flow {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Void),
        }
    }

    fn call_native(&mut self, key: &str, args: &[Value], span: Span) -> JResult<Value> {
        let f = self
            .natives
            .get(key)
            .cloned()
            .ok_or_else(|| JvmError::at(format!("unregistered native `{key}`"), span))?;
        f(self, args)
    }

    /// Emulate a `@Global` kernel launch: iterate the whole grid
    /// sequentially. The first argument must be a `CudaConfig`. Kernels
    /// that call `cuda.sync` cannot be emulated here (use the gpu-sim
    /// engine via translation); the sync native reports a clear error.
    fn launch_kernel_emulated(
        &mut self,
        this: Option<Value>,
        class: ClassId,
        index: u32,
        args: Vec<Value>,
    ) -> JResult<Value> {
        let conf = args
            .first()
            .ok_or_else(|| JvmError::new("@Global method needs a CudaConfig first argument"))?
            .clone();
        let (grid, block) = self.read_cuda_config(&conf)?;
        let saved = self.cuda;
        for bz in 0..grid[2] {
            for by in 0..grid[1] {
                for bx in 0..grid[0] {
                    for tz in 0..block[2] {
                        for ty in 0..block[1] {
                            for tx in 0..block[0] {
                                self.cuda = Some(CudaCtx {
                                    grid_dim: grid,
                                    block_dim: block,
                                    block_idx: [bx, by, bz],
                                    thread_idx: [tx, ty, tz],
                                });
                                self.invoke_plain(this.clone(), class, index, args.clone())?;
                            }
                        }
                    }
                }
            }
        }
        self.cuda = saved;
        Ok(Value::Void)
    }

    /// Extract `(gridDim, blockDim)` from a `CudaConfig` object (fields
    /// `grid` and `block` of class `dim3` with `x`, `y`, `z`).
    pub fn read_cuda_config(&self, conf: &Value) -> JResult<([i32; 3], [i32; 3])> {
        let read_dim3 = |jvm: &Jvm<'_>, v: &Value| -> JResult<[i32; 3]> {
            let r = v.as_obj().map_err(JvmError::new)?;
            let class = jvm.heap.obj(r).class;
            let mut out = [1i32; 3];
            for (i, n) in ["x", "y", "z"].iter().enumerate() {
                let fl = jvm
                    .table
                    .lookup_field(class, n)
                    .ok_or_else(|| JvmError::new(format!("dim3 missing field `{n}`")))?;
                out[i] = jvm.heap.obj(r).fields[fl.slot as usize]
                    .as_i32()
                    .map_err(JvmError::new)?;
            }
            Ok(out)
        };
        let grid = read_dim3(self, &self.get_field(conf, "grid")?)?;
        let block = read_dim3(self, &self.get_field(conf, "block")?)?;
        for d in grid.iter().chain(block.iter()) {
            if *d <= 0 {
                return Err(JvmError::new("CudaConfig dimensions must be positive"));
            }
        }
        Ok((grid, block))
    }

    fn exec_block(&mut self, frame: &mut Frame, block: &TBlock) -> JResult<Flow> {
        for s in &block.stmts {
            match self.exec(frame, s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, frame: &mut Frame, stmt: &TStmt) -> JResult<Flow> {
        self.steps += 1;
        match stmt {
            TStmt::Local { slot, init, ty, .. } => {
                let v = match init {
                    Some(e) => self.eval(frame, e)?,
                    None => Value::default_for(ty),
                };
                frame.locals[*slot as usize] = v;
                Ok(Flow::Normal)
            }
            TStmt::AssignLocal { slot, value, .. } => {
                let v = self.eval(frame, value)?;
                frame.locals[*slot as usize] = v;
                Ok(Flow::Normal)
            }
            TStmt::AssignField {
                obj,
                field,
                value,
                span,
            } => {
                let o = self.eval(frame, obj)?;
                let v = self.eval(frame, value)?;
                let r = o
                    .as_obj()
                    .map_err(|m| JvmError::at(format!("null dereference: {m}"), *span))?;
                self.heap.obj_mut(r).fields[field.slot as usize] = v;
                Ok(Flow::Normal)
            }
            TStmt::AssignStatic {
                class,
                index,
                value,
                ..
            } => {
                let v = self.eval(frame, value)?;
                self.statics[class.0 as usize][*index as usize] = v;
                Ok(Flow::Normal)
            }
            TStmt::AssignIndex {
                arr,
                idx,
                value,
                span,
            } => {
                let a = self.eval(frame, arr)?;
                let i = self.eval(frame, idx)?;
                let v = self.eval(frame, value)?;
                let r = a
                    .as_arr()
                    .map_err(|m| JvmError::at(format!("null array: {m}"), *span))?;
                let i = i.as_i32().map_err(JvmError::new)?;
                if i < 0 {
                    return Err(JvmError::at(format!("negative array index {i}"), *span));
                }
                self.heap
                    .arr_mut(r)
                    .set(i as usize, v)
                    .map_err(|m| JvmError::at(m, *span))?;
                Ok(Flow::Normal)
            }
            TStmt::Expr(e) => {
                self.eval(frame, e)?;
                Ok(Flow::Normal)
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.eval(frame, cond)?.as_bool().map_err(JvmError::new)?;
                if c {
                    self.exec_block(frame, then_branch)
                } else if let Some(e) = else_branch {
                    self.exec_block(frame, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            TStmt::While { cond, body, .. } => {
                loop {
                    let c = self.eval(frame, cond)?.as_bool().map_err(JvmError::new)?;
                    if !c {
                        break;
                    }
                    match self.exec_block(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            TStmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.exec(frame, i)?;
                }
                loop {
                    if let Some(c) = cond {
                        if !self.eval(frame, c)?.as_bool().map_err(JvmError::new)? {
                            break;
                        }
                    }
                    match self.exec_block(frame, body)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    if let Some(u) = update {
                        self.exec(frame, u)?;
                    }
                }
                Ok(Flow::Normal)
            }
            TStmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.eval(frame, e)?,
                    None => Value::Void,
                };
                Ok(Flow::Return(v))
            }
            TStmt::Break(_) => Ok(Flow::Break),
            TStmt::Continue(_) => Ok(Flow::Continue),
            TStmt::Block(b) => self.exec_block(frame, b),
        }
    }

    fn eval(&mut self, frame: &mut Frame, e: &TExpr) -> JResult<Value> {
        self.steps += 1;
        match &e.kind {
            TExprKind::Int(v) => Ok(Value::Int(*v)),
            TExprKind::Long(v) => Ok(Value::Long(*v)),
            TExprKind::Float(v) => Ok(Value::Float(*v)),
            TExprKind::Double(v) => Ok(Value::Double(*v)),
            TExprKind::Bool(v) => Ok(Value::Bool(*v)),
            TExprKind::Null => Ok(Value::Null),
            TExprKind::Str(s) => Ok(Value::str(s)),
            TExprKind::Local(slot) => Ok(frame.locals[*slot as usize].clone()),
            TExprKind::This => frame
                .this
                .clone()
                .ok_or_else(|| JvmError::at("`this` in static context", e.span)),
            TExprKind::GetField { obj, field } => {
                let o = self.eval(frame, obj)?;
                let r = o
                    .as_obj()
                    .map_err(|m| JvmError::at(format!("null dereference: {m}"), e.span))?;
                Ok(self.heap.obj(r).fields[field.slot as usize].clone())
            }
            TExprKind::GetStatic { class, index } => {
                Ok(self.statics[class.0 as usize][*index as usize].clone())
            }
            TExprKind::Call { recv, method, args } => {
                let r = self.eval(frame, recv)?;
                let mut a = Vec::with_capacity(args.len());
                for x in args {
                    a.push(self.eval(frame, x)?);
                }
                // Virtual dispatch from the runtime class — the cost the
                // paper's framework eliminates.
                let rc = self
                    .runtime_class(&r)
                    .map_err(|err| JvmError::at(err.message, e.span))?;
                let name = &self.table.method(method.decl_class, method.index).name;
                let (ic, im) = self.table.resolve_impl(rc, name).ok_or_else(|| {
                    JvmError::at(
                        format!("no impl of `{name}` on `{}`", self.table.name(rc)),
                        e.span,
                    )
                })?;
                self.invoke(Some(r), ic, im, a)
            }
            TExprKind::DirectCall { recv, method, args } => {
                let r = self.eval(frame, recv)?;
                let mut a = Vec::with_capacity(args.len());
                for x in args {
                    a.push(self.eval(frame, x)?);
                }
                self.invoke(Some(r), method.decl_class, method.index, a)
            }
            TExprKind::StaticCall { class, index, args } => {
                let mut a = Vec::with_capacity(args.len());
                for x in args {
                    a.push(self.eval(frame, x)?);
                }
                self.invoke(None, *class, *index, a)
            }
            TExprKind::New { class, args, .. } => {
                let mut a = Vec::with_capacity(args.len());
                for x in args {
                    a.push(self.eval(frame, x)?);
                }
                self.construct(*class, &a)
            }
            TExprKind::NewArray { elem, len } => {
                let n = self.eval(frame, len)?.as_i32().map_err(JvmError::new)?;
                if n < 0 {
                    return Err(JvmError::at(format!("negative array size {n}"), e.span));
                }
                Ok(Value::Arr(
                    self.heap.alloc_arr(ArrayData::new(elem, n as usize)),
                ))
            }
            TExprKind::Index { arr, idx } => {
                let a = self.eval(frame, arr)?;
                let i = self.eval(frame, idx)?.as_i32().map_err(JvmError::new)?;
                let r = a
                    .as_arr()
                    .map_err(|m| JvmError::at(format!("null array: {m}"), e.span))?;
                if i < 0 {
                    return Err(JvmError::at(format!("negative array index {i}"), e.span));
                }
                self.heap.arr(r).get(i as usize).ok_or_else(|| {
                    JvmError::at(
                        format!(
                            "array index {i} out of bounds (len {})",
                            self.heap.arr(r).len()
                        ),
                        e.span,
                    )
                })
            }
            TExprKind::ArrayLen(arr) => {
                let a = self.eval(frame, arr)?;
                let r = a
                    .as_arr()
                    .map_err(|m| JvmError::at(format!("null array: {m}"), e.span))?;
                Ok(Value::Int(self.heap.arr(r).len() as i32))
            }
            TExprKind::Unary { op, expr } => {
                let v = self.eval(frame, expr)?;
                match op {
                    UnOp::Neg => Ok(match v {
                        Value::Int(x) => Value::Int(x.wrapping_neg()),
                        Value::Long(x) => Value::Long(x.wrapping_neg()),
                        Value::Float(x) => Value::Float(-x),
                        Value::Double(x) => Value::Double(-x),
                        other => {
                            return Err(JvmError::at(format!("cannot negate {other}"), e.span))
                        }
                    }),
                    UnOp::Not => Ok(Value::Bool(!v.as_bool().map_err(JvmError::new)?)),
                }
            }
            TExprKind::Binary {
                op,
                operand_kind,
                lhs,
                rhs,
            } => {
                // Short-circuit logical operators.
                if *op == BinOp::And {
                    let l = self.eval(frame, lhs)?.as_bool().map_err(JvmError::new)?;
                    if !l {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(
                        self.eval(frame, rhs)?.as_bool().map_err(JvmError::new)?,
                    ));
                }
                if *op == BinOp::Or {
                    let l = self.eval(frame, lhs)?.as_bool().map_err(JvmError::new)?;
                    if l {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(
                        self.eval(frame, rhs)?.as_bool().map_err(JvmError::new)?,
                    ));
                }
                let l = self.eval(frame, lhs)?;
                let r = self.eval(frame, rhs)?;
                binop(*op, *operand_kind, &l, &r).map_err(|m| JvmError::at(m, e.span))
            }
            TExprKind::RefEq { negated, lhs, rhs } => {
                let l = self.eval(frame, lhs)?;
                let r = self.eval(frame, rhs)?;
                let eq = match (&l, &r) {
                    (Value::Obj(a), Value::Obj(b)) => a == b,
                    (Value::Arr(a), Value::Arr(b)) => a == b,
                    (Value::Null, Value::Null) => true,
                    _ => false,
                };
                Ok(Value::Bool(eq != *negated))
            }
            TExprKind::NumCast { to, expr } | TExprKind::Convert { to, expr } => {
                let v = self.eval(frame, expr)?;
                numcast(*to, &v).map_err(|m| JvmError::at(m, e.span))
            }
            TExprKind::RefCast { to, expr } => {
                let v = self.eval(frame, expr)?;
                match (&v, to) {
                    (Value::Null, _) => Ok(v),
                    (Value::Obj(r), Type::Object(want, wargs)) => {
                        let rc = self.heap.obj(*r).class;
                        if self
                            .table
                            .is_subtype(&Type::object(rc), &Type::Object(*want, wargs.clone()))
                            || self.table.is_subclass_of(rc, *want)
                        {
                            Ok(v)
                        } else {
                            Err(JvmError::at(
                                format!(
                                    "class cast exception: `{}` is not a `{}`",
                                    self.table.name(rc),
                                    self.table.name(*want)
                                ),
                                e.span,
                            ))
                        }
                    }
                    (Value::Arr(_), Type::Array(_)) => Ok(v),
                    _ => Err(JvmError::at("invalid reference cast", e.span)),
                }
            }
            TExprKind::InstanceOf { expr, ty } => {
                let v = self.eval(frame, expr)?;
                let res = match (&v, ty) {
                    (Value::Obj(r), Type::Object(want, _)) => {
                        self.table.is_subclass_of(self.heap.obj(*r).class, *want)
                    }
                    (Value::Arr(_), Type::Array(_)) => true,
                    _ => false,
                };
                Ok(Value::Bool(res))
            }
            TExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let c = self.eval(frame, cond)?.as_bool().map_err(JvmError::new)?;
                if c {
                    self.eval(frame, then_val)
                } else {
                    self.eval(frame, else_val)
                }
            }
        }
    }
}

/// Java semantics for a binary operator on two already-promoted operands.
fn binop(op: BinOp, kind: PrimKind, l: &Value, r: &Value) -> Result<Value, String> {
    use BinOp::*;
    macro_rules! arith {
        ($l:expr, $r:expr, $wrap_add:ident, $wrap_sub:ident, $wrap_mul:ident, $ctor:path) => {
            match op {
                Add => $ctor($l.$wrap_add($r)),
                Sub => $ctor($l.$wrap_sub($r)),
                Mul => $ctor($l.$wrap_mul($r)),
                Div => {
                    if $r == 0 {
                        return Err("division by zero".into());
                    }
                    $ctor($l.wrapping_div($r))
                }
                Rem => {
                    if $r == 0 {
                        return Err("remainder by zero".into());
                    }
                    $ctor($l.wrapping_rem($r))
                }
                Lt => Value::Bool($l < $r),
                Le => Value::Bool($l <= $r),
                Gt => Value::Bool($l > $r),
                Ge => Value::Bool($l >= $r),
                Eq => Value::Bool($l == $r),
                Ne => Value::Bool($l != $r),
                BitAnd => $ctor($l & $r),
                BitOr => $ctor($l | $r),
                BitXor => $ctor($l ^ $r),
                Shl | Shr => unreachable!("handled before the macro"),
                And | Or => return Err("logical op on numeric".into()),
            }
        };
    }
    macro_rules! fl {
        ($l:expr, $r:expr, $ctor:path) => {
            match op {
                Add => $ctor($l + $r),
                Sub => $ctor($l - $r),
                Mul => $ctor($l * $r),
                Div => $ctor($l / $r),
                Rem => $ctor($l % $r),
                Lt => Value::Bool($l < $r),
                Le => Value::Bool($l <= $r),
                Gt => Value::Bool($l > $r),
                Ge => Value::Bool($l >= $r),
                Eq => Value::Bool($l == $r),
                Ne => Value::Bool($l != $r),
                _ => return Err("bitwise op on float".into()),
            }
        };
    }
    Ok(match kind {
        PrimKind::Int => {
            let (a, b) = (l.as_i32()?, r.as_i32()?);
            match op {
                Shl => Value::Int(a.wrapping_shl(b as u32 & 31)),
                Shr => Value::Int(a.wrapping_shr(b as u32 & 31)),
                _ => arith!(a, b, wrapping_add, wrapping_sub, wrapping_mul, Value::Int),
            }
        }
        PrimKind::Long => {
            let (a, b) = (l.as_i64()?, r.as_i64()?);
            match op {
                Shl => Value::Long(a.wrapping_shl(b as u32 & 63)),
                Shr => Value::Long(a.wrapping_shr(b as u32 & 63)),
                _ => arith!(a, b, wrapping_add, wrapping_sub, wrapping_mul, Value::Long),
            }
        }
        PrimKind::Float => {
            let (a, b) = (l.as_f32()?, r.as_f32()?);
            fl!(a, b, Value::Float)
        }
        PrimKind::Double => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            fl!(a, b, Value::Double)
        }
        PrimKind::Boolean => {
            let (a, b) = (l.as_bool()?, r.as_bool()?);
            match op {
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                _ => return Err("invalid boolean operator".into()),
            }
        }
    })
}

/// Java numeric conversion (widening or narrowing) to `to`.
/// Rust `as` saturates float->int exactly like the JLS requires.
fn numcast(to: PrimKind, v: &Value) -> Result<Value, String> {
    let out = match to {
        PrimKind::Int => Value::Int(match v {
            Value::Int(x) => *x,
            Value::Long(x) => *x as i32,
            Value::Float(x) => *x as i32,
            Value::Double(x) => *x as i32,
            other => return Err(format!("cannot convert {other} to int")),
        }),
        PrimKind::Long => Value::Long(match v {
            Value::Int(x) => *x as i64,
            Value::Long(x) => *x,
            Value::Float(x) => *x as i64,
            Value::Double(x) => *x as i64,
            other => return Err(format!("cannot convert {other} to long")),
        }),
        PrimKind::Float => Value::Float(match v {
            Value::Int(x) => *x as f32,
            Value::Long(x) => *x as f32,
            Value::Float(x) => *x,
            Value::Double(x) => *x as f32,
            other => return Err(format!("cannot convert {other} to float")),
        }),
        PrimKind::Double => Value::Double(match v {
            Value::Int(x) => *x as f64,
            Value::Long(x) => *x as f64,
            Value::Float(x) => *x as f64,
            Value::Double(x) => *x,
            other => return Err(format!("cannot convert {other} to double")),
        }),
        PrimKind::Boolean => match v {
            Value::Bool(_) => v.clone(),
            other => return Err(format!("cannot convert {other} to boolean")),
        },
    };
    Ok(out)
}

// FieldSel is currently only consumed for its slot; keep the import alive
// for the public API surface.
#[allow(unused)]
fn _field_sel_used(_f: &FieldSel) {}
