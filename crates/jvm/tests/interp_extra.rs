//! Additional interpreter coverage: Java-exact semantics for the corners
//! the benchmarks lean on — compound assignment on array elements, shift
//! masking, long/int interplay, inheritance chains, and control flow.

use jlang::compile_str;
use jvm::{Jvm, Value};

fn run(src: &str, class: &str, method: &str, args: &[Value]) -> Value {
    let table = compile_str(src).expect("compile");
    let mut jvm = Jvm::new(&table).expect("jvm");
    jvm.call_static(class, method, args).expect("call")
}

#[test]
fn compound_assignment_on_array_elements() {
    let v = run(
        "class A { static float m() { float[] a = new float[3]; a[0] = 1f; \
         a[0] += 2f; a[0] *= 3f; a[1] -= 4f; a[2] /= 2f; return a[0] + a[1] + a[2]; } }",
        "A",
        "m",
        &[],
    );
    assert_eq!(v, Value::Float(9.0 - 4.0 + 0.0));
}

#[test]
fn shift_amounts_mask_like_java() {
    // Java: x << 33 == x << 1 for ints (amount masked & 31).
    assert_eq!(
        run(
            "class A { static int m() { return 1 << 33; } }",
            "A",
            "m",
            &[]
        ),
        Value::Int(2)
    );
    assert_eq!(
        run(
            "class A { static long m() { return 1L << 65; } }",
            "A",
            "m",
            &[]
        ),
        Value::Long(2)
    );
    // Arithmetic (sign-propagating) right shift.
    assert_eq!(
        run(
            "class A { static int m() { return -8 >> 1; } }",
            "A",
            "m",
            &[]
        ),
        Value::Int(-4)
    );
}

#[test]
fn integer_division_truncates_toward_zero() {
    assert_eq!(
        run(
            "class A { static int m() { return -7 / 2; } }",
            "A",
            "m",
            &[]
        ),
        Value::Int(-3)
    );
    assert_eq!(
        run(
            "class A { static int m() { return -7 % 2; } }",
            "A",
            "m",
            &[]
        ),
        Value::Int(-1)
    );
}

#[test]
fn float_rem_matches_ieee() {
    let v = run(
        "class A { static float m() { return 5.5f % 2f; } }",
        "A",
        "m",
        &[],
    );
    assert_eq!(v, Value::Float(5.5f32 % 2.0));
}

#[test]
fn long_to_int_narrowing_wraps() {
    let v = run(
        "class A { static int m() { long big = 4294967298L; return (int) big; } }",
        "A",
        "m",
        &[],
    );
    assert_eq!(v, Value::Int(2));
}

#[test]
fn int_to_float_conversion_in_mixed_arithmetic() {
    // 1/2 in int is 0; 1/2f is 0.5.
    assert_eq!(
        run(
            "class A { static int m() { return 1 / 2; } }",
            "A",
            "m",
            &[]
        ),
        Value::Int(0)
    );
    assert_eq!(
        run(
            "class A { static float m() { return 1 / 2f; } }",
            "A",
            "m",
            &[]
        ),
        Value::Float(0.5)
    );
}

#[test]
fn three_level_inheritance_with_field_and_method_mix() {
    let src = "
        class A { int base; A(int b) { base = b; } int tag() { return 1; } }
        class B extends A { B(int b) { super(b + 10); } int tag() { return 2; } }
        class C extends B { C() { super(100); } int tag() { return super.tag() * 10 + base; } }
        class Main { static int m() { C c = new C(); return c.tag(); } }";
    // base = 100 + 10 = 110; super.tag() = B.tag() = 2 -> 2*10 + 110 = 130.
    assert_eq!(run(src, "Main", "m", &[]), Value::Int(130));
}

#[test]
fn interface_default_dispatch_across_hierarchy() {
    let src = "
        interface Sound { int decibels(); }
        abstract class Animal implements Sound { int volume() { return decibels() * 2; } }
        class Dog extends Animal { int decibels() { return 30; } }
        class Main { static int m() { Dog d = new Dog(); return d.volume(); } }";
    assert_eq!(run(src, "Main", "m", &[]), Value::Int(60));
}

#[test]
fn nested_loops_with_labelsless_break_continue() {
    let src = "
        class A { static int m() {
          int s = 0;
          for (int i = 0; i < 5; i++) {
            for (int j = 0; j < 5; j++) {
              if (j > i) { break; }
              if (j % 2 == 1) { continue; }
              s += 1;
            }
          }
          return s;
        } }";
    // inner runs j=0..=i, counting even j: i=0:1, 1:1, 2:2, 3:2, 4:3 = 9.
    assert_eq!(run(src, "A", "m", &[]), Value::Int(9));
}

#[test]
fn for_update_runs_after_continue() {
    let src = "
        class A { static int m() {
          int s = 0;
          for (int i = 0; i < 6; i++) {
            if (i % 2 == 0) { continue; }
            s += i;
          }
          return s;
        } }";
    assert_eq!(run(src, "A", "m", &[]), Value::Int(1 + 3 + 5));
}

#[test]
fn instance_state_is_per_object() {
    let src = "
        class Counter { float[] slots; Counter() { slots = new float[1]; }
          void bump() { slots[0] += 1f; } float get() { return slots[0]; } }
        class Main { static float m() {
          Counter a = new Counter();
          Counter b = new Counter();
          a.bump(); a.bump(); b.bump();
          return a.get() * 10f + b.get();
        } }";
    assert_eq!(run(src, "Main", "m", &[]), Value::Float(21.0));
}

#[test]
fn arrays_are_reference_values() {
    let src = "
        class A { static float m() {
          float[] x = new float[2];
          float[] y = x;
          y[0] = 5f;
          return x[0];
        } }";
    assert_eq!(run(src, "A", "m", &[]), Value::Float(5.0));
}

#[test]
fn negative_array_size_is_an_error() {
    let table =
        compile_str("class A { static void m(int n) { float[] a = new float[n]; a[0] = 1f; } }")
            .unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let err = jvm.call_static("A", "m", &[Value::Int(-3)]).unwrap_err();
    assert!(err.message.contains("negative"), "{err}");
}

#[test]
fn ternary_evaluates_only_one_branch() {
    // The untaken branch would divide by zero.
    let src = "class A { static int m(int d) { int r = d == 0 ? -1 : 10 / d; return r; } }";
    assert_eq!(run(src, "A", "m", &[Value::Int(0)]), Value::Int(-1));
    assert_eq!(run(src, "A", "m", &[Value::Int(5)]), Value::Int(2));
}

#[test]
fn instanceof_and_refeq_in_unrestricted_code() {
    let src = "
        class Base { } class Sub extends Base { }
        class A { static boolean m() {
          Base b = new Sub();
          Base c = b;
          boolean same = b == c;
          boolean isSub = b instanceof Sub;
          boolean notNull = b != null;
          return same && isSub && notNull;
        } }";
    assert_eq!(run(src, "A", "m", &[]), Value::Bool(true));
}

#[test]
fn double_precision_accumulation() {
    let src = "
        class A { static double m(int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) { s += 0.1; }
          return s;
        } }";
    let v = run(src, "A", "m", &[Value::Int(10)]);
    match v {
        Value::Double(d) => {
            let mut want = 0.0f64;
            for _ in 0..10 {
                want += 0.1;
            }
            assert_eq!(d, want);
        }
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn field_initializer_sees_ctor_params_order() {
    // Field inits run after super, before body; they cannot read ctor
    // params (different frame) but the body can overwrite them.
    let src = "
        class A { int x = 5; int y; A(int v) { y = x + v; } }
        class Main { static int m() { A a = new A(2); return a.y; } }";
    assert_eq!(run(src, "Main", "m", &[]), Value::Int(7));
}

#[test]
fn kernel_emulation_respects_bounds_guard() {
    // Grid overshoot with a guard writes only valid cells.
    let src = "
        class Kern {
          Kern() { }
          @Global void k(CudaConfig conf, float[] a) {
            int i = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
            if (i < a.length) { a[i] = 1f; }
          }
          float run(float[] a) {
            CudaConfig conf = new CudaConfig(new dim3(4, 1, 1), new dim3(8, 1, 1));
            k(conf, a);
            float s = 0f;
            for (int i = 0; i < a.length; i++) { s += a[i]; }
            return s;
          }
        }";
    let table = wootinj::build_table(&[("kern.jl", src)]).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let k = jvm.new_instance("Kern", &[]).unwrap();
    let a = jvm.new_f32_array(&[0.0; 10]); // 32 threads, 10 cells
    let v = jvm.call(&k, "run", &[a]).unwrap();
    assert_eq!(v, Value::Float(10.0));
}
