//! Property tests for the NIR optimizer: random straight-line programs
//! (with a conditional diamond) must compute the same result at every
//! optimization level, and the optimized program must never be larger
//! in retired instructions.

use jlang::ast::BinOp;
use jlang::types::PrimKind;
use nir::{FuncBuilder, FuncKind, Instr, OptConfig, Program, Reg, Ty};
use proptest::prelude::*;

/// A random instruction recipe over int registers.
#[derive(Debug, Clone)]
enum Step {
    Const(i32),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Mov(usize),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-1000i32..1000).prop_map(Step::Const),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Sub(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Mul(a, b)),
        any::<usize>().prop_map(Step::Mov),
    ]
}

/// Build a program from the recipe: a prologue of steps, a branch on
/// (last value > 0), two diamond arms, and a join returning the sum of
/// everything defined.
fn build(steps: &[Step], arg: i32) -> Program {
    let mut fb = FuncBuilder::new("f", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
    let mut defined: Vec<Reg> = vec![0]; // the parameter
    for s in steps {
        let pick = |i: &usize| defined[i % defined.len()];
        let r = fb.reg(Ty::I32);
        match s {
            Step::Const(v) => {
                fb.emit(Instr::ConstI32(r, *v));
            }
            Step::Add(a, b) => {
                fb.emit(Instr::Bin {
                    op: BinOp::Add,
                    kind: PrimKind::Int,
                    dst: r,
                    lhs: pick(a),
                    rhs: pick(b),
                });
            }
            Step::Sub(a, b) => {
                fb.emit(Instr::Bin {
                    op: BinOp::Sub,
                    kind: PrimKind::Int,
                    dst: r,
                    lhs: pick(a),
                    rhs: pick(b),
                });
            }
            Step::Mul(a, b) => {
                fb.emit(Instr::Bin {
                    op: BinOp::Mul,
                    kind: PrimKind::Int,
                    dst: r,
                    lhs: pick(a),
                    rhs: pick(b),
                });
            }
            Step::Mov(a) => {
                fb.emit(Instr::Mov(r, pick(a)));
            }
        }
        defined.push(r);
    }
    // Diamond: if last > 0 { acc = last*2 } else { acc = last - 7 }.
    let last = *defined.last().unwrap();
    let zero = fb.reg(Ty::I32);
    let cond = fb.reg(Ty::Bool);
    let acc = fb.reg(Ty::I32);
    let k = fb.reg(Ty::I32);
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::Bin { op: BinOp::Gt, kind: PrimKind::Int, dst: cond, lhs: last, rhs: zero });
    let t = fb.label();
    let e = fb.label();
    let join = fb.label();
    fb.br(cond, t, e);
    fb.bind(t);
    fb.emit(Instr::ConstI32(k, 2));
    fb.emit(Instr::Bin { op: BinOp::Mul, kind: PrimKind::Int, dst: acc, lhs: last, rhs: k });
    fb.jmp(join);
    fb.bind(e);
    fb.emit(Instr::ConstI32(k, 7));
    fb.emit(Instr::Bin { op: BinOp::Sub, kind: PrimKind::Int, dst: acc, lhs: last, rhs: k });
    fb.jmp(join);
    fb.bind(join);
    // Fold every defined register into the result so nothing is trivially
    // dead from the engine's point of view.
    let out = fb.reg(Ty::I32);
    fb.emit(Instr::Mov(out, acc));
    for d in defined.clone() {
        fb.emit(Instr::Bin { op: BinOp::Add, kind: PrimKind::Int, dst: out, lhs: out, rhs: d });
    }
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.entry = Some(id);
    p.validate().unwrap();
    let _ = arg;
    p
}

fn eval(p: &Program, arg: i32) -> (i32, u64) {
    let mut m = exec::Machine::new();
    let v = exec::run_to_completion(p, p.entry.unwrap(), vec![exec::Val::I32(arg)], &mut m)
        .unwrap();
    match v {
        Some(exec::Val::I32(x)) => (x, m.counters.instrs),
        other => panic!("unexpected {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_optimization_levels_agree(
        steps in proptest::collection::vec(arb_step(), 1..24),
        arg in -100i32..100,
    ) {
        let base = build(&steps, arg);
        let (want, base_instrs) = eval(&base, arg);
        for config in [OptConfig::standard(), OptConfig::aggressive()] {
            let mut p = build(&steps, arg);
            nir::optimize(&mut p, config);
            p.validate().unwrap();
            let (got, opt_instrs) = eval(&p, arg);
            prop_assert_eq!(got, want, "config {:?}", config);
            prop_assert!(
                opt_instrs <= base_instrs,
                "optimization must not add work: {} -> {}",
                base_instrs,
                opt_instrs
            );
        }
    }

    #[test]
    fn optimizer_is_idempotent_on_random_programs(
        steps in proptest::collection::vec(arb_step(), 1..16),
    ) {
        let mut p = build(&steps, 1);
        nir::optimize(&mut p, OptConfig::aggressive());
        let once = format!("{p}");
        nir::optimize(&mut p, OptConfig::aggressive());
        prop_assert_eq!(once, format!("{p}"));
    }
}
