//! Textual C / CUDA emission from NIR.
//!
//! WootinJ hands the generated C/CUDA source to an external compiler
//! (icc/nvcc). In this reproduction the program is *executed* by the
//! `exec` engine, but the emitter still produces readable source — the
//! analogue of Listing 5 of the paper — for inspection, documentation,
//! and golden tests. The output is a direct register-level rendering: one
//! C variable per register and `goto` for control flow, i.e. exactly what
//! the IR says, with no prettification pass.

use std::fmt::Write as _;

use jlang::ast::BinOp;

use crate::ir::{FuncKind, Function, Instr, IntrinOp, Program};

/// Emit a full C (plus CUDA where kernels exist) translation unit.
pub fn emit_c(p: &Program) -> String {
    let mut out = String::new();
    let has_kernels = p.funcs.iter().any(|f| f.kind != FuncKind::Host);
    let has_mpi = p.funcs.iter().any(|f| {
        f.code.iter().any(|i| {
            matches!(
                i,
                Instr::Intrin {
                    op: IntrinOp::MpiRank
                        | IntrinOp::MpiSize
                        | IntrinOp::MpiBarrier
                        | IntrinOp::MpiSendF32
                        | IntrinOp::MpiRecvF32
                        | IntrinOp::MpiSendRecvF32
                        | IntrinOp::MpiBcastF32
                        | IntrinOp::MpiAllreduceSumF64
                        | IntrinOp::MpiAllreduceSumF32
                        | IntrinOp::MpiAllreduceMaxF64,
                    ..
                }
            )
        })
    });
    out.push_str("#include <stdlib.h>\n#include <stdio.h>\n#include <math.h>\n");
    if has_mpi {
        out.push_str("#include <mpi.h>\n");
    }
    if has_kernels {
        out.push_str("#include <cuda_runtime.h>\n");
    }
    out.push('\n');

    for g in &p.globals {
        let v = match &g.value {
            crate::ir::ConstVal::I32(x) => x.to_string(),
            crate::ir::ConstVal::I64(x) => format!("{x}L"),
            crate::ir::ConstVal::F32(x) => format!("{x:?}f"),
            crate::ir::ConstVal::F64(x) => format!("{x:?}"),
            crate::ir::ConstVal::Bool(x) => (*x as i32).to_string(),
        };
        let _ = writeln!(out, "static const {} {} = {};", g.ty.c_name(), g.name, v);
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }

    // Forward declarations.
    for f in &p.funcs {
        let _ = writeln!(out, "{};", signature(f));
    }
    out.push('\n');

    for f in &p.funcs {
        emit_func(&mut out, p, f);
        out.push('\n');
    }

    // A main() shell mirroring Listing 5's structure.
    if let Some(entry) = p.entry {
        let e = p.func(entry);
        out.push_str("int main(int argc, char* argv[]) {\n");
        if has_mpi {
            out.push_str("    MPI_Init(&argc, &argv);\n");
        }
        let args: Vec<String> = (0..e.params.len()).map(|i| format!("arg{i}")).collect();
        for (i, t) in e.params.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {} arg{} = /* recorded by jit() */;",
                t.c_name(),
                i
            );
        }
        let _ = writeln!(out, "    {}({});", e.name, args.join(", "));
        if has_mpi {
            out.push_str("    MPI_Finalize();\n");
        }
        out.push_str("    return 0;\n}\n");
    }
    out
}

fn signature(f: &Function) -> String {
    let prefix = match f.kind {
        FuncKind::Host => "",
        FuncKind::Kernel => "__global__ ",
        FuncKind::Device => "__device__ ",
    };
    let ret = match (f.kind, &f.ret) {
        (FuncKind::Kernel, _) => "void".to_string(),
        (_, Some(t)) => t.c_name(),
        (_, None) => "void".to_string(),
    };
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{} r{}", t.c_name(), i))
        .collect();
    format!("{prefix}{ret} {}({})", f.name, params.join(", "))
}

fn emit_func(out: &mut String, p: &Program, f: &Function) {
    let _ = writeln!(out, "{} {{", signature(f));
    // Declare non-parameter registers.
    for (i, t) in f.regs.iter().enumerate().skip(f.params.len()) {
        let _ = writeln!(out, "    {} r{};", t.c_name(), i);
    }
    // Which pcs are jump targets (need labels)?
    let mut target = vec![false; f.code.len() + 1];
    for ins in &f.code {
        match ins {
            Instr::Jmp(t) => target[*t as usize] = true,
            Instr::Br { t, f: fl, .. } => {
                target[*t as usize] = true;
                target[*fl as usize] = true;
            }
            _ => {}
        }
    }
    for (pc, ins) in f.code.iter().enumerate() {
        if target[pc] {
            let _ = writeln!(out, "L{pc}:;");
        }
        let line = render(p, ins, pc);
        let _ = writeln!(out, "    {line}");
    }
    if target[f.code.len()] {
        let _ = writeln!(out, "L{}:;", f.code.len());
    }
    out.push_str("}\n");
}

fn c_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

fn render(p: &Program, ins: &Instr, _pc: usize) -> String {
    match ins {
        Instr::ConstI32(d, v) => format!("r{d} = {v};"),
        Instr::ConstI64(d, v) => format!("r{d} = {v}L;"),
        Instr::ConstF32(d, v) => format!("r{d} = {v:?}f;"),
        Instr::ConstF64(d, v) => format!("r{d} = {v:?};"),
        Instr::ConstBool(d, v) => format!("r{d} = {};", *v as i32),
        Instr::Mov(d, s) => format!("r{d} = r{s};"),
        Instr::Bin {
            op, dst, lhs, rhs, ..
        } => {
            format!("r{dst} = r{lhs} {} r{rhs};", c_op(*op))
        }
        Instr::Neg { dst, src, .. } => format!("r{dst} = -r{src};"),
        Instr::Not { dst, src } => format!("r{dst} = !r{src};"),
        Instr::Cast { to, dst, src, .. } => {
            let t = crate::ir::Ty::of_prim(*to).c_name();
            format!("r{dst} = ({t}) r{src};")
        }
        Instr::Jmp(t) => format!("goto L{t};"),
        Instr::Br { cond, t, f } => format!("if (r{cond}) goto L{t}; else goto L{f};"),
        Instr::Ret(Some(r)) => format!("return r{r};"),
        Instr::Ret(None) => "return;".to_string(),
        Instr::Call { func, args, dst } => {
            let callee = p.func(*func);
            let a: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            match dst {
                Some(d) => format!("r{d} = {}({});", callee.name, a.join(", ")),
                None => format!("{}({});", callee.name, a.join(", ")),
            }
        }
        Instr::CallHost { host, args, dst } => {
            let sig = &p.host_fns[*host as usize];
            let a: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            let cname = sig.name.replace('.', "_");
            match dst {
                Some(d) => format!("r{d} = {cname}({}); /* extern */", a.join(", ")),
                None => format!("{cname}({}); /* extern */", a.join(", ")),
            }
        }
        Instr::NewObj { class, dst } => {
            let c = &p.classes[*class as usize];
            format!(
                "r{dst} = obj_new(/* {} */ {}, {});",
                c.name, class, c.field_count
            )
        }
        Instr::GetField { obj, slot, dst } => format!("r{dst} = r{obj}->f[{slot}];"),
        Instr::PutField { obj, slot, src } => format!("r{obj}->f[{slot}] = r{src};"),
        Instr::CallVirt {
            selector,
            recv,
            args,
            dst,
        } => {
            let sel = &p.selectors[*selector as usize];
            let mut a: Vec<String> = vec![format!("r{recv}")];
            a.extend(args.iter().map(|r| format!("r{r}")));
            match dst {
                Some(d) => format!("r{d} = VCALL(r{recv}, {sel})({});", a.join(", ")),
                None => format!("VCALL(r{recv}, {sel})({});", a.join(", ")),
            }
        }
        Instr::NewArr { elem, len, dst } => {
            let t = elem.c_name();
            format!("r{dst} = ({t}*) malloc(sizeof({t}) * r{len});")
        }
        Instr::LdArr { arr, idx, dst } => format!("r{dst} = r{arr}[r{idx}];"),
        Instr::StArr { arr, idx, src } => format!("r{arr}[r{idx}] = r{src};"),
        Instr::ArrLen { arr, dst } => format!("r{dst} = len(r{arr});"),
        Instr::FreeArr { arr } => format!("free(r{arr});"),
        Instr::Intrin { op, args, dst } => {
            let a: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            match op {
                IntrinOp::ThreadIdx(_)
                | IntrinOp::BlockIdx(_)
                | IntrinOp::BlockDim(_)
                | IntrinOp::GridDim(_) => {
                    format!("r{} = {};", dst.unwrap(), op.c_name())
                }
                IntrinOp::MpiRank => format!("MPI_Comm_rank(MPI_COMM_WORLD, &r{});", dst.unwrap()),
                IntrinOp::MpiSize => format!("MPI_Comm_size(MPI_COMM_WORLD, &r{});", dst.unwrap()),
                IntrinOp::MpiBarrier => "MPI_Barrier(MPI_COMM_WORLD);".to_string(),
                IntrinOp::MpiSendF32 => format!(
                    "MPI_Send({}, MPI_FLOAT, MPI_COMM_WORLD);",
                    a.join(", ")
                ),
                IntrinOp::MpiRecvF32 => format!(
                    "MPI_Recv({}, MPI_FLOAT, MPI_COMM_WORLD, MPI_STATUS_IGNORE);",
                    a.join(", ")
                ),
                IntrinOp::MpiSendRecvF32 => format!(
                    "MPI_Sendrecv({}, MPI_COMM_WORLD, MPI_STATUS_IGNORE);",
                    a.join(", ")
                ),
                IntrinOp::MpiBcastF32 => {
                    format!("MPI_Bcast({}, MPI_FLOAT, MPI_COMM_WORLD);", a.join(", "))
                }
                IntrinOp::MpiAllreduceSumF64 => format!(
                    "MPI_Allreduce(MPI_IN_PLACE, &r{}, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);",
                    dst.unwrap()
                ),
                IntrinOp::MpiAllreduceSumF32 => format!(
                    "MPI_Allreduce(MPI_IN_PLACE, &r{}, 1, MPI_FLOAT, MPI_SUM, MPI_COMM_WORLD);",
                    dst.unwrap()
                ),
                IntrinOp::MpiAllreduceMaxF64 => format!(
                    "MPI_Allreduce(MPI_IN_PLACE, &r{}, 1, MPI_DOUBLE, MPI_MAX, MPI_COMM_WORLD);",
                    dst.unwrap()
                ),
                IntrinOp::CopyToGpu => format!(
                    "cudaMalloc(&r{0}, len(r{1})); cudaMemcpy(r{0}, r{1}, len(r{1}), cudaMemcpyHostToDevice);",
                    dst.unwrap(),
                    args[0]
                ),
                IntrinOp::CopyFromGpu => format!(
                    "cudaMemcpy(r{}, r{}, len(r{}), cudaMemcpyDeviceToHost);",
                    args[0], args[1], args[1]
                ),
                IntrinOp::GpuAllocF32 => {
                    format!("cudaMalloc(&r{}, sizeof(float) * r{});", dst.unwrap(), args[0])
                }
                IntrinOp::GpuFree => format!("cudaFree(r{});", args[0]),
                IntrinOp::PrintI32 | IntrinOp::PrintI64 => {
                    format!("printf(\"%ld\\n\", (long) r{});", args[0])
                }
                IntrinOp::PrintF32 | IntrinOp::PrintF64 => {
                    format!("printf(\"%g\\n\", (double) r{});", args[0])
                }
                IntrinOp::PrintBool => format!("printf(\"%d\\n\", (int) r{});", args[0]),
                IntrinOp::ArrayCopyF32 => format!(
                    "memcpy(r{2} + r{3}, r{0} + r{1}, sizeof(float) * r{4});",
                    args[0], args[1], args[2], args[3], args[4]
                ),
                _ => match dst {
                    Some(d) => format!("r{d} = {}({});", op.c_name(), a.join(", ")),
                    None => format!("{}({});", op.c_name(), a.join(", ")),
                },
            }
        }
        Instr::Launch {
            kernel,
            grid,
            block,
            args,
        } => {
            let k = p.func(*kernel);
            let a: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            format!(
                "{}<<<dim3(r{}, r{}, r{}), dim3(r{}, r{}, r{})>>>({});",
                k.name,
                grid[0],
                grid[1],
                grid[2],
                block[0],
                block[1],
                block[2],
                a.join(", ")
            )
        }
        Instr::SharedAlloc { elem, len, dst } => {
            format!("__shared__ {} r{dst}[/* r{len} */];", elem.c_name())
        }
        Instr::Sync => "__syncthreads();".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ElemTy, FuncBuilder, FuncId, Ty};
    use jlang::types::PrimKind;

    #[test]
    fn emits_listing5_like_structure() {
        // Build: __global__ kernel writing array[threadIdx.x] and a host
        // run() that launches it — the shape of Listing 5.
        let mut p = Program::default();
        let mut kb = FuncBuilder::new("runGPU", vec![Ty::Arr(ElemTy::F32)], None, FuncKind::Kernel);
        let x = kb.reg(Ty::I32);
        let v = kb.reg(Ty::F32);
        let two = kb.reg(Ty::F32);
        kb.emit(Instr::Intrin {
            op: IntrinOp::ThreadIdx(0),
            args: vec![],
            dst: Some(x),
        });
        kb.emit(Instr::LdArr {
            arr: 0,
            idx: x,
            dst: v,
        });
        kb.emit(Instr::ConstF32(two, 2.0));
        kb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Float,
            dst: v,
            lhs: v,
            rhs: two,
        });
        kb.emit(Instr::StArr {
            arr: 0,
            idx: x,
            src: v,
        });
        kb.emit(Instr::Ret(None));
        let kid = p.add_func(kb.finish().unwrap());

        let mut hb = FuncBuilder::new("run", vec![Ty::I32], None, FuncKind::Host);
        let one = hb.reg(Ty::I32);
        let arr = hb.reg(Ty::Arr(ElemTy::F32));
        hb.emit(Instr::ConstI32(one, 1));
        hb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: 0,
            dst: arr,
        });
        hb.emit(Instr::Launch {
            kernel: kid,
            grid: [one, one, one],
            block: [0, one, one],
            args: vec![arr],
        });
        hb.emit(Instr::Ret(None));
        let hid = p.add_func(hb.finish().unwrap());
        p.entry = Some(hid);
        p.validate().unwrap();

        let src = emit_c(&p);
        assert!(src.contains("__global__ void runGPU(float* r0)"), "{src}");
        assert!(src.contains("threadIdx.x"), "{src}");
        assert!(src.contains("runGPU<<<"), "{src}");
        assert!(src.contains("#include <cuda_runtime.h>"), "{src}");
        assert!(src.contains("int main(int argc, char* argv[])"), "{src}");
    }

    #[test]
    fn mpi_program_includes_mpi_shell() {
        let mut p = Program::default();
        let mut fb = FuncBuilder::new("run", vec![], None, FuncKind::Host);
        let r = fb.reg(Ty::I32);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(r),
        });
        fb.emit(Instr::Ret(None));
        let id = p.add_func(fb.finish().unwrap());
        p.entry = Some(id);
        let src = emit_c(&p);
        assert!(src.contains("#include <mpi.h>"), "{src}");
        assert!(src.contains("MPI_Init(&argc, &argv);"), "{src}");
        assert!(src.contains("MPI_Comm_rank(MPI_COMM_WORLD, &r0);"), "{src}");
        assert!(src.contains("MPI_Finalize();"), "{src}");
    }

    #[test]
    fn control_flow_uses_labels() {
        let mut fb = FuncBuilder::new("f", vec![Ty::Bool], Some(Ty::I32), FuncKind::Host);
        let a = fb.reg(Ty::I32);
        let t = fb.label();
        let e = fb.label();
        fb.br(0, t, e);
        fb.bind(t);
        fb.emit(Instr::ConstI32(a, 1));
        fb.emit(Instr::Ret(Some(a)));
        fb.bind(e);
        fb.emit(Instr::ConstI32(a, 2));
        fb.emit(Instr::Ret(Some(a)));
        let mut p = Program::default();
        p.add_func(fb.finish().unwrap());
        let src = emit_c(&p);
        assert!(src.contains("goto L"), "{src}");
        assert!(src.contains("L1:;"), "{src}");
    }

    #[test]
    fn unknown_function_panics_cleanly_prevented_by_validate() {
        let mut p = Program::default();
        let mut fb = FuncBuilder::new("f", vec![], None, FuncKind::Host);
        fb.emit(Instr::Call {
            func: FuncId(7),
            args: vec![],
            dst: None,
        });
        fb.emit(Instr::Ret(None));
        p.add_func(fb.finish().unwrap());
        assert!(p.validate().is_err());
    }
}
