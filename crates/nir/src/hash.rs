//! The repo's one stable-hash implementation.
//!
//! Two 64-bit hashes live here and nowhere else:
//!
//! * [`digest64`] — the xorshift64\* stream digest used by the artifact
//!   codec seal and the `CacheKey` fingerprint pair. Seeded, so two
//!   seeds give an independent 128-bit fingerprint.
//! * [`fnv1a64`] — FNV-1a, used for platform salts and for the query
//!   fingerprints of the incremental database. Both are baked into
//!   on-disk cache namespaces; neither may ever change.
//!
//! [`Fingerprint`] is a tiny streaming wrapper over FNV-1a so query
//! fingerprints over structured data (item trees, bodies) are built
//! from typed pushes instead of ad-hoc byte buffers.

/// Content digest: a xorshift64\* stream absorbing one byte per step.
/// Not cryptographic — it detects accidental corruption (bit flips,
/// truncated tails hidden by padding), which is all a local artifact
/// store needs. Different `seed`s give independent digests, so a pair of
/// seeded digests serves as a 128-bit fingerprint.
pub fn digest64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed | 1;
    for &b in bytes {
        h ^= u64::from(b).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // xorshift64* step.
        h ^= h >> 12;
        h ^= h << 25;
        h ^= h >> 27;
        h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    h
}

/// FNV-1a 64-bit. Stable across processes and releases (it is baked
/// into on-disk fingerprints and platform salts).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Streaming FNV-1a fingerprint over structured data. Every push is
/// framed by its width, so `u8(1), u8(2)` and `u16(0x0201)` do not
/// collide by construction and field boundaries stay unambiguous.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    pub fn new() -> Self {
        Fingerprint(FNV_OFFSET)
    }

    /// Seeded start, for chaining one fingerprint into another.
    pub fn seeded(seed: u64) -> Self {
        let mut f = Fingerprint::new();
        f.u64(seed);
        f
    }

    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.bytes(&[v])
    }

    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    pub fn f64_bits(&mut self, v: f64) -> &mut Self {
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// Length-prefixed so adjacent strings cannot run together.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Well-known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_streams_like_fnv() {
        let mut f = Fingerprint::new();
        f.bytes(b"foobar");
        assert_eq!(f.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn fingerprint_frames_fields() {
        let mut a = Fingerprint::new();
        a.str("ab").str("c");
        let mut b = Fingerprint::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefix keeps boundaries");
    }

    #[test]
    fn digest64_agrees_with_codec_seal() {
        // digest64 moved here from codec; the seal format depends on it
        // byte-for-byte, so pin a vector.
        let d = digest64(b"hello", 1);
        assert_eq!(d, digest64(b"hello", 1));
        assert_ne!(d, digest64(b"hello", 2));
    }
}
