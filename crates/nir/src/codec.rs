//! Stable, versioned, checksummed binary (de)serialization of NIR
//! programs — the on-disk half of the persistent JIT artifact store.
//!
//! The paper's generated C/CUDA source is a durable artifact: compile it
//! once, run it for hours. Our [`Program`] was, until this module, an
//! in-memory value that died with the process. The codec here makes it a
//! durable, shareable object:
//!
//! * **Hand-rolled, dependency-free** — like the JSON in `bench::series`,
//!   this builds on network-isolated hosts with no external crates.
//! * **Versioned** — a sealed container starts with the `WJAR` magic and a
//!   format version byte ([`VERSION`]); decoding a container written by a
//!   different format version fails with [`CodecError::VersionSkew`]
//!   instead of misinterpreting bytes.
//! * **Checksummed** — the payload is followed by a xorshift64\*-based
//!   content digest ([`digest64`]); any bit flip fails with
//!   [`CodecError::Corrupt`], and truncation fails with
//!   [`CodecError::Truncated`]. Decode never panics on hostile input:
//!   every discriminant is checked and every length is bounded by the
//!   remaining input.
//!
//! The container layout is:
//!
//! ```text
//! "WJAR" | version: u8 | payload_len: u64 LE | payload | digest64(payload): u64 LE
//! ```
//!
//! All multi-byte integers are little-endian; floats are stored as their
//! IEEE-754 bit patterns, so encode→decode→encode is bit-identical (the
//! golden-fixture property the artifact tests pin down).

use std::fmt;
use std::time::Duration;

use jlang::ast::BinOp;
use jlang::types::PrimKind;

use crate::ir::{
    ClassMeta, ConstVal, ElemTy, FuncId, FuncKind, Function, Global, HostFnSig, Instr, IntrinOp,
    Program, Ty,
};
use crate::opt::PassProfile;

/// Magic prefix of a sealed artifact container.
pub const MAGIC: [u8; 4] = *b"WJAR";

/// Current artifact format version. Bump on any layout change: decoders
/// reject other versions with [`CodecError::VersionSkew`] rather than
/// guessing.
pub const VERSION: u8 = 1;

/// Typed decode failure. `Truncated`/`BadMagic`/`VersionSkew` are
/// structural (the container is not a complete current-version artifact);
/// `Corrupt` means the container framing was fine but the content was not
/// (digest mismatch, unknown discriminant, invalid UTF-8, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the decoder got what the format promised.
    Truncated { offset: usize },
    /// The input does not start with the `WJAR` magic.
    BadMagic,
    /// The container was written by a different format version.
    VersionSkew { found: u8, expected: u8 },
    /// Digest mismatch or malformed content inside a well-framed payload.
    Corrupt { offset: usize, message: String },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { offset } => {
                write!(f, "artifact truncated at byte {offset}")
            }
            CodecError::BadMagic => write!(f, "not a WJAR artifact (bad magic)"),
            CodecError::VersionSkew { found, expected } => write!(
                f,
                "artifact format version {found}, this build reads version {expected}"
            ),
            CodecError::Corrupt { offset, message } => {
                write!(f, "artifact corrupt at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

pub type CodecResult<T> = Result<T, CodecError>;

pub use crate::hash::digest64;

/// Seed of the container checksum.
const SEAL_SEED: u64 = 0x57_4A_41_52_00_00_00_01; // "WJAR" | version 1

/// Wrap `payload` in the versioned, checksummed container.
pub fn seal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + MAGIC.len() + 1 + 16);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&digest64(payload, SEAL_SEED).to_le_bytes());
    out
}

/// Verify the container framing and checksum; return the payload slice.
pub fn unseal(bytes: &[u8]) -> CodecResult<&[u8]> {
    if bytes.len() < MAGIC.len() {
        return Err(CodecError::Truncated {
            offset: bytes.len(),
        });
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let Some(&version) = bytes.get(MAGIC.len()) else {
        return Err(CodecError::Truncated {
            offset: bytes.len(),
        });
    };
    if version != VERSION {
        return Err(CodecError::VersionSkew {
            found: version,
            expected: VERSION,
        });
    }
    let header = MAGIC.len() + 1 + 8;
    if bytes.len() < header {
        return Err(CodecError::Truncated {
            offset: bytes.len(),
        });
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[MAGIC.len() + 1..header]);
    let payload_len = u64::from_le_bytes(len8) as usize;
    let Some(total) = header
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
    else {
        return Err(CodecError::Corrupt {
            offset: MAGIC.len() + 1,
            message: "payload length overflows".into(),
        });
    };
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            offset: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(CodecError::Corrupt {
            offset: total,
            message: format!("{} trailing bytes after the digest", bytes.len() - total),
        });
    }
    let payload = &bytes[header..header + payload_len];
    let mut dig8 = [0u8; 8];
    dig8.copy_from_slice(&bytes[header + payload_len..total]);
    let stored = u64::from_le_bytes(dig8);
    let actual = digest64(payload, SEAL_SEED);
    if stored != actual {
        return Err(CodecError::Corrupt {
            offset: header,
            message: format!("content digest mismatch: stored {stored:#x}, computed {actual:#x}"),
        });
    }
    Ok(payload)
}

/// Append-only byte sink for artifact payloads.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A collection length (u32; artifact payloads never need more).
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes, unframed — the caller writes its own length prefix.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Bounds-checked cursor over an artifact payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn offset(&self) -> usize {
        self.pos
    }

    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub fn corrupt(&self, message: impl Into<String>) -> CodecError {
        CodecError::Corrupt {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(CodecError::Truncated {
                offset: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.corrupt(format!("bool byte {other}"))),
        }
    }

    pub fn u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn i32(&mut self) -> CodecResult<i32> {
        Ok(self.u32()? as i32)
    }

    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(self.u64()? as i64)
    }

    pub fn f32(&mut self) -> CodecResult<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A collection length, sanity-bounded by the remaining input so a
    /// corrupt length cannot trigger a huge allocation.
    #[allow(clippy::len_without_is_empty)] // reads a length prefix; not a container
    pub fn len(&mut self) -> CodecResult<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len() - self.pos {
            return Err(self.corrupt(format!(
                "length {n} exceeds the {} remaining bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Raw bytes, unframed — pairs with [`Writer::bytes`].
    pub fn bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.take(n)
    }

    pub fn str(&mut self) -> CodecResult<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| CodecError::Corrupt {
            offset: self.pos,
            message: format!("invalid UTF-8 in string: {e}"),
        })
    }
}

// ---- enum discriminants -------------------------------------------------
//
// Every enum gets an explicit, append-only tag table. Changing an existing
// tag is a format change (bump VERSION); appending new tags is
// backwards-compatible for writers (old readers reject them as Corrupt).

fn prim_tag(k: PrimKind) -> u8 {
    match k {
        PrimKind::Int => 0,
        PrimKind::Long => 1,
        PrimKind::Float => 2,
        PrimKind::Double => 3,
        PrimKind::Boolean => 4,
    }
}

fn prim_of(tag: u8, r: &Reader<'_>) -> CodecResult<PrimKind> {
    Ok(match tag {
        0 => PrimKind::Int,
        1 => PrimKind::Long,
        2 => PrimKind::Float,
        3 => PrimKind::Double,
        4 => PrimKind::Boolean,
        other => return Err(r.corrupt(format!("prim kind tag {other}"))),
    })
}

/// Write a [`PrimKind`] (public: the translator artifact reuses it for
/// shapes and fingerprints).
pub fn write_prim(w: &mut Writer, k: PrimKind) {
    w.u8(prim_tag(k));
}

pub fn read_prim(r: &mut Reader<'_>) -> CodecResult<PrimKind> {
    let tag = r.u8()?;
    prim_of(tag, r)
}

fn elem_tag(e: ElemTy) -> u8 {
    match e {
        ElemTy::I32 => 0,
        ElemTy::I64 => 1,
        ElemTy::F32 => 2,
        ElemTy::F64 => 3,
        ElemTy::Bool => 4,
    }
}

pub fn write_elem(w: &mut Writer, e: ElemTy) {
    w.u8(elem_tag(e));
}

pub fn read_elem(r: &mut Reader<'_>) -> CodecResult<ElemTy> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => ElemTy::I32,
        1 => ElemTy::I64,
        2 => ElemTy::F32,
        3 => ElemTy::F64,
        4 => ElemTy::Bool,
        other => return Err(r.corrupt(format!("element type tag {other}"))),
    })
}

pub fn write_ty(w: &mut Writer, t: Ty) {
    match t {
        Ty::I32 => w.u8(0),
        Ty::I64 => w.u8(1),
        Ty::F32 => w.u8(2),
        Ty::F64 => w.u8(3),
        Ty::Bool => w.u8(4),
        Ty::Arr(e) => {
            w.u8(5);
            write_elem(w, e);
        }
        Ty::Obj => w.u8(6),
    }
}

pub fn read_ty(r: &mut Reader<'_>) -> CodecResult<Ty> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Ty::I32,
        1 => Ty::I64,
        2 => Ty::F32,
        3 => Ty::F64,
        4 => Ty::Bool,
        5 => Ty::Arr(read_elem(r)?),
        6 => Ty::Obj,
        other => return Err(r.corrupt(format!("type tag {other}"))),
    })
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Lt => 5,
        BinOp::Le => 6,
        BinOp::Gt => 7,
        BinOp::Ge => 8,
        BinOp::Eq => 9,
        BinOp::Ne => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
        BinOp::BitAnd => 13,
        BinOp::BitOr => 14,
        BinOp::BitXor => 15,
        BinOp::Shl => 16,
        BinOp::Shr => 17,
    }
}

fn binop_of(tag: u8, r: &Reader<'_>) -> CodecResult<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Lt,
        6 => BinOp::Le,
        7 => BinOp::Gt,
        8 => BinOp::Ge,
        9 => BinOp::Eq,
        10 => BinOp::Ne,
        11 => BinOp::And,
        12 => BinOp::Or,
        13 => BinOp::BitAnd,
        14 => BinOp::BitOr,
        15 => BinOp::BitXor,
        16 => BinOp::Shl,
        17 => BinOp::Shr,
        other => return Err(r.corrupt(format!("binop tag {other}"))),
    })
}

/// Stable wire tag of an intrinsic op (tag, axis). Public so runtime
/// wire protocols (the `dist` rank protocol) encode yielded intrinsics
/// with the same tags the program codec bakes into `.wjar` artifacts.
pub fn intrin_tag(op: IntrinOp) -> (u8, u8) {
    match op {
        IntrinOp::SqrtF64 => (0, 0),
        IntrinOp::SqrtF32 => (1, 0),
        IntrinOp::PowF64 => (2, 0),
        IntrinOp::ExpF64 => (3, 0),
        IntrinOp::AbsF32 => (4, 0),
        IntrinOp::AbsF64 => (5, 0),
        IntrinOp::AbsI32 => (6, 0),
        IntrinOp::MinI32 => (7, 0),
        IntrinOp::MaxI32 => (8, 0),
        IntrinOp::MinF32 => (9, 0),
        IntrinOp::MaxF32 => (10, 0),
        IntrinOp::PrintI32 => (11, 0),
        IntrinOp::PrintI64 => (12, 0),
        IntrinOp::PrintF32 => (13, 0),
        IntrinOp::PrintF64 => (14, 0),
        IntrinOp::PrintBool => (15, 0),
        IntrinOp::ArrayCopyF32 => (16, 0),
        IntrinOp::ThreadIdx(a) => (17, a),
        IntrinOp::BlockIdx(a) => (18, a),
        IntrinOp::BlockDim(a) => (19, a),
        IntrinOp::GridDim(a) => (20, a),
        IntrinOp::CopyToGpu => (21, 0),
        IntrinOp::CopyFromGpu => (22, 0),
        IntrinOp::CopyToGpuRange => (23, 0),
        IntrinOp::CopyFromGpuRange => (24, 0),
        IntrinOp::GpuAllocF32 => (25, 0),
        IntrinOp::GpuFree => (26, 0),
        IntrinOp::MpiRank => (27, 0),
        IntrinOp::MpiSize => (28, 0),
        IntrinOp::MpiBarrier => (29, 0),
        IntrinOp::MpiSendF32 => (30, 0),
        IntrinOp::MpiRecvF32 => (31, 0),
        IntrinOp::MpiSendRecvF32 => (32, 0),
        IntrinOp::MpiBcastF32 => (33, 0),
        IntrinOp::MpiAllreduceSumF64 => (34, 0),
        IntrinOp::MpiAllreduceSumF32 => (35, 0),
        IntrinOp::MpiAllreduceMaxF64 => (36, 0),
    }
}

/// Inverse of [`intrin_tag`]; unknown tags fail typed.
pub fn intrin_of(tag: u8, axis: u8, r: &Reader<'_>) -> CodecResult<IntrinOp> {
    if matches!(tag, 17..=20) && axis > 2 {
        return Err(r.corrupt(format!("CUDA register axis {axis}")));
    }
    Ok(match tag {
        0 => IntrinOp::SqrtF64,
        1 => IntrinOp::SqrtF32,
        2 => IntrinOp::PowF64,
        3 => IntrinOp::ExpF64,
        4 => IntrinOp::AbsF32,
        5 => IntrinOp::AbsF64,
        6 => IntrinOp::AbsI32,
        7 => IntrinOp::MinI32,
        8 => IntrinOp::MaxI32,
        9 => IntrinOp::MinF32,
        10 => IntrinOp::MaxF32,
        11 => IntrinOp::PrintI32,
        12 => IntrinOp::PrintI64,
        13 => IntrinOp::PrintF32,
        14 => IntrinOp::PrintF64,
        15 => IntrinOp::PrintBool,
        16 => IntrinOp::ArrayCopyF32,
        17 => IntrinOp::ThreadIdx(axis),
        18 => IntrinOp::BlockIdx(axis),
        19 => IntrinOp::BlockDim(axis),
        20 => IntrinOp::GridDim(axis),
        21 => IntrinOp::CopyToGpu,
        22 => IntrinOp::CopyFromGpu,
        23 => IntrinOp::CopyToGpuRange,
        24 => IntrinOp::CopyFromGpuRange,
        25 => IntrinOp::GpuAllocF32,
        26 => IntrinOp::GpuFree,
        27 => IntrinOp::MpiRank,
        28 => IntrinOp::MpiSize,
        29 => IntrinOp::MpiBarrier,
        30 => IntrinOp::MpiSendF32,
        31 => IntrinOp::MpiRecvF32,
        32 => IntrinOp::MpiSendRecvF32,
        33 => IntrinOp::MpiBcastF32,
        34 => IntrinOp::MpiAllreduceSumF64,
        35 => IntrinOp::MpiAllreduceSumF32,
        36 => IntrinOp::MpiAllreduceMaxF64,
        other => return Err(r.corrupt(format!("intrinsic tag {other}"))),
    })
}

fn write_opt_reg(w: &mut Writer, r: Option<u32>) {
    match r {
        Some(v) => {
            w.u8(1);
            w.u32(v);
        }
        None => w.u8(0),
    }
}

fn read_opt_reg(r: &mut Reader<'_>) -> CodecResult<Option<u32>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u32()?)),
        other => Err(r.corrupt(format!("option tag {other}"))),
    }
}

fn write_regs(w: &mut Writer, regs: &[u32]) {
    w.len(regs.len());
    for &r in regs {
        w.u32(r);
    }
}

fn read_regs(r: &mut Reader<'_>) -> CodecResult<Vec<u32>> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn write_instr(w: &mut Writer, ins: &Instr) {
    match ins {
        Instr::ConstI32(d, v) => {
            w.u8(0);
            w.u32(*d);
            w.i32(*v);
        }
        Instr::ConstI64(d, v) => {
            w.u8(1);
            w.u32(*d);
            w.i64(*v);
        }
        Instr::ConstF32(d, v) => {
            w.u8(2);
            w.u32(*d);
            w.f32(*v);
        }
        Instr::ConstF64(d, v) => {
            w.u8(3);
            w.u32(*d);
            w.f64(*v);
        }
        Instr::ConstBool(d, v) => {
            w.u8(4);
            w.u32(*d);
            w.bool(*v);
        }
        Instr::Mov(d, s) => {
            w.u8(5);
            w.u32(*d);
            w.u32(*s);
        }
        Instr::Bin {
            op,
            kind,
            dst,
            lhs,
            rhs,
        } => {
            w.u8(6);
            w.u8(binop_tag(*op));
            write_prim(w, *kind);
            w.u32(*dst);
            w.u32(*lhs);
            w.u32(*rhs);
        }
        Instr::Neg { kind, dst, src } => {
            w.u8(7);
            write_prim(w, *kind);
            w.u32(*dst);
            w.u32(*src);
        }
        Instr::Not { dst, src } => {
            w.u8(8);
            w.u32(*dst);
            w.u32(*src);
        }
        Instr::Cast { to, from, dst, src } => {
            w.u8(9);
            write_prim(w, *to);
            write_prim(w, *from);
            w.u32(*dst);
            w.u32(*src);
        }
        Instr::Jmp(t) => {
            w.u8(10);
            w.u32(*t);
        }
        Instr::Br { cond, t, f } => {
            w.u8(11);
            w.u32(*cond);
            w.u32(*t);
            w.u32(*f);
        }
        Instr::Ret(r) => {
            w.u8(12);
            write_opt_reg(w, *r);
        }
        Instr::Call { func, args, dst } => {
            w.u8(13);
            w.u32(func.0);
            write_regs(w, args);
            write_opt_reg(w, *dst);
        }
        Instr::CallHost { host, args, dst } => {
            w.u8(14);
            w.u32(*host);
            write_regs(w, args);
            write_opt_reg(w, *dst);
        }
        Instr::NewObj { class, dst } => {
            w.u8(15);
            w.u32(*class);
            w.u32(*dst);
        }
        Instr::GetField { obj, slot, dst } => {
            w.u8(16);
            w.u32(*obj);
            w.u32(*slot);
            w.u32(*dst);
        }
        Instr::PutField { obj, slot, src } => {
            w.u8(17);
            w.u32(*obj);
            w.u32(*slot);
            w.u32(*src);
        }
        Instr::CallVirt {
            selector,
            recv,
            args,
            dst,
        } => {
            w.u8(18);
            w.u32(*selector);
            w.u32(*recv);
            write_regs(w, args);
            write_opt_reg(w, *dst);
        }
        Instr::NewArr { elem, len, dst } => {
            w.u8(19);
            write_elem(w, *elem);
            w.u32(*len);
            w.u32(*dst);
        }
        Instr::LdArr { arr, idx, dst } => {
            w.u8(20);
            w.u32(*arr);
            w.u32(*idx);
            w.u32(*dst);
        }
        Instr::StArr { arr, idx, src } => {
            w.u8(21);
            w.u32(*arr);
            w.u32(*idx);
            w.u32(*src);
        }
        Instr::ArrLen { arr, dst } => {
            w.u8(22);
            w.u32(*arr);
            w.u32(*dst);
        }
        Instr::FreeArr { arr } => {
            w.u8(23);
            w.u32(*arr);
        }
        Instr::Intrin { op, args, dst } => {
            w.u8(24);
            let (tag, axis) = intrin_tag(*op);
            w.u8(tag);
            w.u8(axis);
            write_regs(w, args);
            write_opt_reg(w, *dst);
        }
        Instr::Launch {
            kernel,
            grid,
            block,
            args,
        } => {
            w.u8(25);
            w.u32(kernel.0);
            for r in grid.iter().chain(block.iter()) {
                w.u32(*r);
            }
            write_regs(w, args);
        }
        Instr::SharedAlloc { elem, len, dst } => {
            w.u8(26);
            write_elem(w, *elem);
            w.u32(*len);
            w.u32(*dst);
        }
        Instr::Sync => w.u8(27),
    }
}

fn read_instr(r: &mut Reader<'_>) -> CodecResult<Instr> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Instr::ConstI32(r.u32()?, r.i32()?),
        1 => Instr::ConstI64(r.u32()?, r.i64()?),
        2 => Instr::ConstF32(r.u32()?, r.f32()?),
        3 => Instr::ConstF64(r.u32()?, r.f64()?),
        4 => Instr::ConstBool(r.u32()?, r.bool()?),
        5 => Instr::Mov(r.u32()?, r.u32()?),
        6 => {
            let op_tag = r.u8()?;
            let op = binop_of(op_tag, r)?;
            Instr::Bin {
                op,
                kind: read_prim(r)?,
                dst: r.u32()?,
                lhs: r.u32()?,
                rhs: r.u32()?,
            }
        }
        7 => Instr::Neg {
            kind: read_prim(r)?,
            dst: r.u32()?,
            src: r.u32()?,
        },
        8 => Instr::Not {
            dst: r.u32()?,
            src: r.u32()?,
        },
        9 => Instr::Cast {
            to: read_prim(r)?,
            from: read_prim(r)?,
            dst: r.u32()?,
            src: r.u32()?,
        },
        10 => Instr::Jmp(r.u32()?),
        11 => Instr::Br {
            cond: r.u32()?,
            t: r.u32()?,
            f: r.u32()?,
        },
        12 => Instr::Ret(read_opt_reg(r)?),
        13 => Instr::Call {
            func: FuncId(r.u32()?),
            args: read_regs(r)?,
            dst: read_opt_reg(r)?,
        },
        14 => Instr::CallHost {
            host: r.u32()?,
            args: read_regs(r)?,
            dst: read_opt_reg(r)?,
        },
        15 => Instr::NewObj {
            class: r.u32()?,
            dst: r.u32()?,
        },
        16 => Instr::GetField {
            obj: r.u32()?,
            slot: r.u32()?,
            dst: r.u32()?,
        },
        17 => Instr::PutField {
            obj: r.u32()?,
            slot: r.u32()?,
            src: r.u32()?,
        },
        18 => Instr::CallVirt {
            selector: r.u32()?,
            recv: r.u32()?,
            args: read_regs(r)?,
            dst: read_opt_reg(r)?,
        },
        19 => Instr::NewArr {
            elem: read_elem(r)?,
            len: r.u32()?,
            dst: r.u32()?,
        },
        20 => Instr::LdArr {
            arr: r.u32()?,
            idx: r.u32()?,
            dst: r.u32()?,
        },
        21 => Instr::StArr {
            arr: r.u32()?,
            idx: r.u32()?,
            src: r.u32()?,
        },
        22 => Instr::ArrLen {
            arr: r.u32()?,
            dst: r.u32()?,
        },
        23 => Instr::FreeArr { arr: r.u32()? },
        24 => {
            let itag = r.u8()?;
            let axis = r.u8()?;
            let op = intrin_of(itag, axis, r)?;
            Instr::Intrin {
                op,
                args: read_regs(r)?,
                dst: read_opt_reg(r)?,
            }
        }
        25 => {
            let kernel = FuncId(r.u32()?);
            let mut six = [0u32; 6];
            for slot in six.iter_mut() {
                *slot = r.u32()?;
            }
            Instr::Launch {
                kernel,
                grid: [six[0], six[1], six[2]],
                block: [six[3], six[4], six[5]],
                args: read_regs(r)?,
            }
        }
        26 => Instr::SharedAlloc {
            elem: read_elem(r)?,
            len: r.u32()?,
            dst: r.u32()?,
        },
        27 => Instr::Sync,
        other => return Err(r.corrupt(format!("instruction tag {other}"))),
    })
}

fn write_func(w: &mut Writer, f: &Function) {
    w.str(&f.name);
    w.len(f.params.len());
    for &t in &f.params {
        write_ty(w, t);
    }
    match f.ret {
        Some(t) => {
            w.u8(1);
            write_ty(w, t);
        }
        None => w.u8(0),
    }
    w.len(f.regs.len());
    for &t in &f.regs {
        write_ty(w, t);
    }
    w.len(f.code.len());
    for ins in &f.code {
        write_instr(w, ins);
    }
    w.u8(match f.kind {
        FuncKind::Host => 0,
        FuncKind::Kernel => 1,
        FuncKind::Device => 2,
    });
}

fn read_func(r: &mut Reader<'_>) -> CodecResult<Function> {
    let name = r.str()?;
    let n = r.len()?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(read_ty(r)?);
    }
    let ret = match r.u8()? {
        0 => None,
        1 => Some(read_ty(r)?),
        other => return Err(r.corrupt(format!("option tag {other}"))),
    };
    let n = r.len()?;
    let mut regs = Vec::with_capacity(n);
    for _ in 0..n {
        regs.push(read_ty(r)?);
    }
    let n = r.len()?;
    let mut code = Vec::with_capacity(n);
    for _ in 0..n {
        code.push(read_instr(r)?);
    }
    let kind = match r.u8()? {
        0 => FuncKind::Host,
        1 => FuncKind::Kernel,
        2 => FuncKind::Device,
        other => return Err(r.corrupt(format!("function kind tag {other}"))),
    };
    Ok(Function {
        name,
        params,
        ret,
        regs,
        code,
        kind,
    })
}

fn write_const(w: &mut Writer, v: &ConstVal) {
    match v {
        ConstVal::I32(x) => {
            w.u8(0);
            w.i32(*x);
        }
        ConstVal::I64(x) => {
            w.u8(1);
            w.i64(*x);
        }
        ConstVal::F32(x) => {
            w.u8(2);
            w.f32(*x);
        }
        ConstVal::F64(x) => {
            w.u8(3);
            w.f64(*x);
        }
        ConstVal::Bool(x) => {
            w.u8(4);
            w.bool(*x);
        }
    }
}

fn read_const(r: &mut Reader<'_>) -> CodecResult<ConstVal> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => ConstVal::I32(r.i32()?),
        1 => ConstVal::I64(r.i64()?),
        2 => ConstVal::F32(r.f32()?),
        3 => ConstVal::F64(r.f64()?),
        4 => ConstVal::Bool(r.bool()?),
        other => return Err(r.corrupt(format!("const tag {other}"))),
    })
}

/// Serialize a whole [`Program`] into `w` (payload bytes only; callers
/// frame the result with [`seal`] — the translator's `Translated::encode`
/// composes this with its own envelope).
pub fn write_program(w: &mut Writer, p: &Program) {
    w.len(p.funcs.len());
    for f in &p.funcs {
        write_func(w, f);
    }
    w.len(p.globals.len());
    for g in &p.globals {
        w.str(&g.name);
        write_ty(w, g.ty);
        write_const(w, &g.value);
    }
    w.len(p.classes.len());
    for c in &p.classes {
        w.str(&c.name);
        w.u32(c.field_count);
        w.len(c.vtable.len());
        for (sel, target) in &c.vtable {
            w.u32(*sel);
            w.u32(target.0);
        }
    }
    w.len(p.selectors.len());
    for s in &p.selectors {
        w.str(s);
    }
    w.len(p.host_fns.len());
    for h in &p.host_fns {
        w.str(&h.name);
        w.len(h.params.len());
        for &t in &h.params {
            write_ty(w, t);
        }
        match h.ret {
            Some(t) => {
                w.u8(1);
                write_ty(w, t);
            }
            None => w.u8(0),
        }
    }
    match p.entry {
        Some(e) => {
            w.u8(1);
            w.u32(e.0);
        }
        None => w.u8(0),
    }
}

/// Deserialize a [`Program`]. Structural soundness (register ranges,
/// jump targets, arities) is *not* re-checked here — run
/// [`Program::validate`] on the result before executing it, exactly as
/// the translator does for freshly generated programs.
pub fn read_program(r: &mut Reader<'_>) -> CodecResult<Program> {
    let n = r.len()?;
    let mut funcs = Vec::with_capacity(n);
    for _ in 0..n {
        funcs.push(read_func(r)?);
    }
    let n = r.len()?;
    let mut globals = Vec::with_capacity(n);
    for _ in 0..n {
        globals.push(Global {
            name: r.str()?,
            ty: read_ty(r)?,
            value: read_const(r)?,
        });
    }
    let n = r.len()?;
    let mut classes = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let field_count = r.u32()?;
        let vn = r.len()?;
        let mut vtable = Vec::with_capacity(vn);
        for _ in 0..vn {
            vtable.push((r.u32()?, FuncId(r.u32()?)));
        }
        classes.push(ClassMeta {
            name,
            field_count,
            vtable,
        });
    }
    let n = r.len()?;
    let mut selectors = Vec::with_capacity(n);
    for _ in 0..n {
        selectors.push(r.str()?);
    }
    let n = r.len()?;
    let mut host_fns = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let pn = r.len()?;
        let mut params = Vec::with_capacity(pn);
        for _ in 0..pn {
            params.push(read_ty(r)?);
        }
        let ret = match r.u8()? {
            0 => None,
            1 => Some(read_ty(r)?),
            other => return Err(r.corrupt(format!("option tag {other}"))),
        };
        host_fns.push(HostFnSig { name, params, ret });
    }
    let entry = match r.u8()? {
        0 => None,
        1 => Some(FuncId(r.u32()?)),
        other => return Err(r.corrupt(format!("option tag {other}"))),
    };
    Ok(Program {
        funcs,
        globals,
        classes,
        selectors,
        host_fns,
        entry,
    })
}

/// The optimizer pass names the decoder can intern back to `'static`
/// strings (pass profiles carry `&'static str` names). Names outside this
/// set decode as `"other"` — an old artifact from a build with more
/// passes still decodes.
const KNOWN_PASSES: &[&str] = &["inline", "fold", "dce", "sroa"];

pub fn write_pass_profiles(w: &mut Writer, passes: &[PassProfile]) {
    w.len(passes.len());
    for p in passes {
        w.str(p.pass);
        w.u64(p.wall.as_nanos() as u64);
        w.u64(p.instrs_before);
        w.u64(p.instrs_after);
    }
}

pub fn read_pass_profiles(r: &mut Reader<'_>) -> CodecResult<Vec<PassProfile>> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let pass = KNOWN_PASSES
            .iter()
            .find(|k| **k == name)
            .copied()
            .unwrap_or("other");
        out.push(PassProfile {
            pass,
            wall: Duration::from_nanos(r.u64()?),
            instrs_before: r.u64()?,
            instrs_after: r.u64()?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FuncBuilder;

    fn sample_program() -> Program {
        let mut p = Program::default();
        // A host function exercising most scalar instructions.
        let mut fb = FuncBuilder::new(
            "main",
            vec![Ty::I32, Ty::Arr(ElemTy::F32)],
            Some(Ty::F32),
            FuncKind::Host,
        );
        let c = fb.reg(Ty::F32);
        let acc = fb.reg(Ty::F32);
        fb.emit(Instr::ConstF32(c, 1.5));
        fb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Float,
            dst: acc,
            lhs: c,
            rhs: c,
        });
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiAllreduceSumF32,
            args: vec![acc],
            dst: Some(acc),
        });
        fb.emit(Instr::Ret(Some(acc)));
        let main = p.add_func(fb.finish().unwrap());

        // A kernel with CUDA registers and shared memory.
        let mut kb = FuncBuilder::new("k", vec![Ty::Arr(ElemTy::F32)], None, FuncKind::Kernel);
        let x = kb.reg(Ty::I32);
        let sh = kb.reg(Ty::Arr(ElemTy::F32));
        kb.emit(Instr::Intrin {
            op: IntrinOp::ThreadIdx(0),
            args: vec![],
            dst: Some(x),
        });
        kb.emit(Instr::SharedAlloc {
            elem: ElemTy::F32,
            len: x,
            dst: sh,
        });
        kb.emit(Instr::Sync);
        kb.emit(Instr::Ret(None));
        p.add_func(kb.finish().unwrap());

        p.globals.push(Global {
            name: "G".into(),
            ty: Ty::F64,
            value: ConstVal::F64(-0.25),
        });
        p.classes.push(ClassMeta {
            name: "C".into(),
            field_count: 2,
            vtable: vec![(0, main)],
        });
        p.selectors.push("run".into());
        p.host_fns.push(HostFnSig {
            name: "ext.hypot".into(),
            params: vec![Ty::F64, Ty::F64],
            ret: Some(Ty::F64),
        });
        p.entry = Some(main);
        p
    }

    fn encode(p: &Program) -> Vec<u8> {
        let mut w = Writer::new();
        write_program(&mut w, p);
        w.into_bytes()
    }

    #[test]
    fn program_roundtrips_bit_identically() {
        let p = sample_program();
        let bytes = encode(&p);
        let mut r = Reader::new(&bytes);
        let back = read_program(&mut r).unwrap();
        assert!(r.is_at_end(), "decoder consumed everything");
        assert_eq!(encode(&back), bytes, "encode(decode(x)) == x");
        assert_eq!(back.funcs.len(), p.funcs.len());
        assert_eq!(back.funcs[0].code, p.funcs[0].code);
        assert_eq!(back.entry, p.entry);
        back.validate().expect("decoded program is valid");
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let payload = b"the artifact payload".to_vec();
        let sealed = seal(&payload);
        assert_eq!(unseal(&sealed).unwrap(), &payload[..]);
    }

    #[test]
    fn unseal_rejects_every_corruption_mode() {
        let sealed = seal(b"payload bytes here");
        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xFF;
        assert_eq!(unseal(&bad), Err(CodecError::BadMagic));
        // Version skew.
        let mut skew = sealed.clone();
        skew[4] = VERSION + 1;
        assert_eq!(
            unseal(&skew),
            Err(CodecError::VersionSkew {
                found: VERSION + 1,
                expected: VERSION
            })
        );
        // Truncation at every prefix length.
        for n in 0..sealed.len() {
            assert!(
                matches!(
                    unseal(&sealed[..n]),
                    Err(CodecError::Truncated { .. }) | Err(CodecError::BadMagic)
                ),
                "prefix of {n} bytes must be rejected"
            );
        }
        // Any single payload bit flip is a digest mismatch.
        for byte in [13usize, 20, sealed.len() - 9] {
            let mut flip = sealed.clone();
            flip[byte] ^= 0x10;
            assert!(
                matches!(unseal(&flip), Err(CodecError::Corrupt { .. })),
                "bit flip at {byte} must be caught"
            );
        }
        // Trailing garbage is rejected too.
        let mut long = sealed.clone();
        long.push(0);
        assert!(matches!(unseal(&long), Err(CodecError::Corrupt { .. })));
    }

    #[test]
    fn decoder_never_panics_on_garbage_payloads() {
        // Arbitrary bytes through the program decoder: typed error or a
        // (vacuously) decoded program, never a panic or huge allocation.
        let mut seed = 0x1234_5678_9abc_def0u64;
        for len in [0usize, 1, 7, 64, 512] {
            let mut junk = Vec::with_capacity(len);
            for _ in 0..len {
                seed ^= seed >> 12;
                seed ^= seed << 25;
                seed ^= seed >> 27;
                junk.push((seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8);
            }
            let mut r = Reader::new(&junk);
            let _ = read_program(&mut r);
        }
    }

    #[test]
    fn digest_is_seed_and_content_sensitive() {
        let a = digest64(b"hello", 1);
        assert_ne!(a, digest64(b"hellp", 1), "content sensitivity");
        assert_ne!(a, digest64(b"hello", 2), "seed sensitivity");
        assert_eq!(a, digest64(b"hello", 1), "determinism");
    }

    #[test]
    fn pass_profiles_roundtrip_and_intern_names() {
        let passes = vec![
            PassProfile {
                pass: "fold",
                wall: Duration::from_nanos(1234),
                instrs_before: 100,
                instrs_after: 90,
            },
            PassProfile {
                pass: "dce",
                wall: Duration::from_micros(7),
                instrs_before: 90,
                instrs_after: 70,
            },
        ];
        let mut w = Writer::new();
        write_pass_profiles(&mut w, &passes);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_pass_profiles(&mut r).unwrap();
        assert_eq!(back, passes);
    }
}
