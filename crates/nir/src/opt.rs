//! NIR optimizer passes — the reproduction's analogue of the external C
//! compiler's work (the `-O3`-ish part of Table 1/Table 2).
//!
//! Passes:
//! * **const-fold + copy-propagation** (per basic block): replaces
//!   arithmetic on known constants and forwards `Mov` chains;
//! * **dead-code elimination**: removes pure instructions whose results
//!   are never used (whole-function liveness);
//! * **function inlining**: splices small callees into their callers. The
//!   coding rules forbid recursion, so inlining always terminates. This
//!   pass is what distinguishes the *Template w/o virt.* series from the
//!   plain WootinJ pipeline in our reproduction.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use jlang::ast::BinOp;
use jlang::types::PrimKind;

use crate::ir::{FuncKind, Function, Instr, Program, Reg};

/// Optimizer configuration; maps onto the compiler-option rows of
/// Tables 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptConfig {
    pub const_fold: bool,
    pub copy_prop: bool,
    pub dce: bool,
    /// Inline callees with at most this many instructions (0 = off).
    pub inline_limit: usize,
    /// Scalar replacement of non-escaping heap objects (models C++ value
    /// semantics for temporaries — the *Template* baseline's stack
    /// objects).
    pub sroa: bool,
}

impl OptConfig {
    /// Everything on, no inlining (the standard WootinJ pipeline).
    pub fn standard() -> Self {
        OptConfig {
            const_fold: true,
            copy_prop: true,
            dce: true,
            inline_limit: 0,
            sroa: false,
        }
    }

    /// Everything on plus function inlining and scalar replacement — what
    /// an optimizing C++ compiler does to template code (the *Template* /
    /// *Template w/o virt.* series).
    pub fn aggressive() -> Self {
        OptConfig {
            const_fold: true,
            copy_prop: true,
            dce: true,
            inline_limit: 64,
            sroa: true,
        }
    }

    /// All passes off (`-O0`).
    pub fn none() -> Self {
        OptConfig {
            const_fold: false,
            copy_prop: false,
            dce: false,
            inline_limit: 0,
            sroa: false,
        }
    }
}

/// Wall time and instruction-count effect of one optimizer pass,
/// accumulated over every function it visited. This is what lets Table 3's
/// compile-time column be decomposed by pipeline stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassProfile {
    pub pass: &'static str,
    pub wall: Duration,
    /// Total instructions in the functions the pass visited, before/after.
    pub instrs_before: u64,
    pub instrs_after: u64,
}

impl PassProfile {
    fn record<T, R>(
        pass: &'static str,
        target: &mut T,
        instrs: fn(&T) -> u64,
        body: impl FnOnce(&mut T) -> R,
    ) -> (Self, R) {
        let instrs_before = instrs(target);
        let start = Instant::now();
        let out = body(target);
        let wall = start.elapsed();
        (
            PassProfile {
                pass,
                wall,
                instrs_before,
                instrs_after: instrs(target),
            },
            out,
        )
    }
}

/// Run the configured passes over the whole program. Returns one
/// [`PassProfile`] per pass that actually ran, in execution order (the
/// fold/dce/sroa entries aggregate all per-function applications,
/// including the post-SROA cleanup round).
pub fn optimize(program: &mut Program, config: OptConfig) -> Vec<PassProfile> {
    let mut profiles = Vec::new();
    if config.inline_limit > 0 {
        let (p, ()) = PassProfile::record(
            "inline",
            program,
            |p| p.instr_count() as u64,
            |p| inline_functions(p, config.inline_limit),
        );
        profiles.push(p);
    }
    let mut fold_p = PassProfile {
        pass: "fold",
        ..Default::default()
    };
    let mut dce_p = PassProfile {
        pass: "dce",
        ..Default::default()
    };
    let mut sroa_p = PassProfile {
        pass: "sroa",
        ..Default::default()
    };
    for f in &mut program.funcs {
        optimize_fn_into(f, config, &mut fold_p, &mut dce_p, &mut sroa_p);
    }
    for p in [fold_p, dce_p, sroa_p] {
        if p.instrs_before > 0 || p.instrs_after > 0 {
            profiles.push(p);
        }
    }
    profiles
}

/// Run the local (per-function) passes over one function. This is the
/// loop body of [`optimize`]: for configurations without inlining
/// (`inline_limit == 0`) applying it to every function is *exactly*
/// whole-program optimization, which is what lets the incremental query
/// layer optimize only freshly lowered functions and reuse memoized,
/// already-optimized ones. Returns the per-pass profiles that ran.
pub fn optimize_fn(f: &mut Function, config: OptConfig) -> Vec<PassProfile> {
    let mut fold_p = PassProfile {
        pass: "fold",
        ..Default::default()
    };
    let mut dce_p = PassProfile {
        pass: "dce",
        ..Default::default()
    };
    let mut sroa_p = PassProfile {
        pass: "sroa",
        ..Default::default()
    };
    optimize_fn_into(f, config, &mut fold_p, &mut dce_p, &mut sroa_p);
    [fold_p, dce_p, sroa_p]
        .into_iter()
        .filter(|p| p.instrs_before > 0 || p.instrs_after > 0)
        .collect()
}

/// Canonical pipeline order of the optimizer passes — the order
/// [`optimize`] executes (and reports) them in.
pub const PASS_ORDER: [&str; 4] = ["inline", "fold", "dce", "sroa"];

/// Deterministically aggregate pass profiles collected out of order —
/// per-function profiles from parallel lowering, or per-thread shards:
/// one entry per pass name, durations and instruction counts summed,
/// sorted into canonical [`PASS_ORDER`], zero-work passes dropped.
/// Feeding it the per-function profiles of every function yields
/// exactly the aggregation [`optimize`] computes serially (wall times
/// are summed the same way; only their values reflect the measuring
/// thread), so `repro pass-profile` output is order-stable no matter
/// who optimized which function.
pub fn merge_profiles(parts: impl IntoIterator<Item = PassProfile>) -> Vec<PassProfile> {
    let mut merged: Vec<PassProfile> = Vec::new();
    for p in parts {
        match merged.iter_mut().find(|m| m.pass == p.pass) {
            Some(m) => {
                m.wall += p.wall;
                m.instrs_before += p.instrs_before;
                m.instrs_after += p.instrs_after;
            }
            None => merged.push(p),
        }
    }
    merged.sort_by_key(|p| {
        PASS_ORDER
            .iter()
            .position(|&n| n == p.pass)
            .unwrap_or(PASS_ORDER.len())
    });
    merged.retain(|p| p.instrs_before > 0 || p.instrs_after > 0);
    merged
}

fn optimize_fn_into(
    f: &mut Function,
    config: OptConfig,
    fold_p: &mut PassProfile,
    dce_p: &mut PassProfile,
    sroa_p: &mut PassProfile,
) {
    let accumulate =
        |acc: &mut PassProfile, f: &mut Function, body: fn(&mut Function, OptConfig), config| {
            let (p, ()) =
                PassProfile::record(acc.pass, f, |f| f.code.len() as u64, |f| body(f, config));
            acc.wall += p.wall;
            acc.instrs_before += p.instrs_before;
            acc.instrs_after += p.instrs_after;
        };
    // First round: propagate copies so that inline-call argument
    // aliases dissolve, then drop the dead moves...
    if config.const_fold || config.copy_prop {
        accumulate(fold_p, f, local_fold, config);
    }
    if config.dce {
        accumulate(dce_p, f, |f, _| dce(f), config);
    }
    // ...so scalar replacement sees unaliased temporaries.
    if config.sroa {
        accumulate(sroa_p, f, |f, _| sroa(f), config);
        if config.const_fold || config.copy_prop {
            accumulate(fold_p, f, local_fold, config);
        }
        if config.dce {
            accumulate(dce_p, f, |f, _| dce(f), config);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Known {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    Bool(bool),
    /// Copy of another register.
    Copy(Reg),
}

/// Per-basic-block constant folding and copy propagation.
#[allow(clippy::needless_range_loop)] // `pc` indexes both code and leader
fn local_fold(f: &mut Function, config: OptConfig) {
    // Block leaders: entry, jump targets, and instructions after terminators.
    let mut leader = vec![false; f.code.len() + 1];
    leader[0] = true;
    for (pc, ins) in f.code.iter().enumerate() {
        match ins {
            Instr::Jmp(t) => {
                leader[*t as usize] = true;
                leader[pc + 1] = true;
            }
            Instr::Br { t, f: fl, .. } => {
                leader[*t as usize] = true;
                leader[*fl as usize] = true;
                leader[pc + 1] = true;
            }
            Instr::Ret(_) => {
                leader[pc + 1] = true;
            }
            _ => {}
        }
    }

    let mut known: HashMap<Reg, Known> = HashMap::new();
    for pc in 0..f.code.len() {
        if leader[pc] {
            known.clear();
        }
        // Resolve copies in sources first.
        let resolve = |known: &HashMap<Reg, Known>, r: Reg| -> Reg {
            let mut cur = r;
            let mut hops = 0;
            while let Some(Known::Copy(s)) = known.get(&cur) {
                cur = *s;
                hops += 1;
                if hops > 32 {
                    break;
                }
            }
            cur
        };
        if config.copy_prop {
            let ins = &mut f.code[pc];
            match ins {
                Instr::Mov(_, s) => *s = resolve(&known, *s),
                Instr::Bin { lhs, rhs, .. } => {
                    *lhs = resolve(&known, *lhs);
                    *rhs = resolve(&known, *rhs);
                }
                Instr::Neg { src, .. } | Instr::Not { src, .. } | Instr::Cast { src, .. } => {
                    *src = resolve(&known, *src);
                }
                Instr::Br { cond, .. } => *cond = resolve(&known, *cond),
                Instr::Ret(Some(r)) => *r = resolve(&known, *r),
                Instr::Call { args, .. }
                | Instr::CallHost { args, .. }
                | Instr::Intrin { args, .. } => {
                    for a in args {
                        *a = resolve(&known, *a);
                    }
                }
                Instr::CallVirt { recv, args, .. } => {
                    *recv = resolve(&known, *recv);
                    for a in args {
                        *a = resolve(&known, *a);
                    }
                }
                Instr::GetField { obj, .. } => *obj = resolve(&known, *obj),
                Instr::PutField { obj, src, .. } => {
                    *obj = resolve(&known, *obj);
                    *src = resolve(&known, *src);
                }
                Instr::NewArr { len, .. } | Instr::SharedAlloc { len, .. } => {
                    *len = resolve(&known, *len);
                }
                Instr::LdArr { arr, idx, .. } => {
                    *arr = resolve(&known, *arr);
                    *idx = resolve(&known, *idx);
                }
                Instr::StArr { arr, idx, src } => {
                    *arr = resolve(&known, *arr);
                    *idx = resolve(&known, *idx);
                    *src = resolve(&known, *src);
                }
                Instr::ArrLen { arr, .. } | Instr::FreeArr { arr } => {
                    *arr = resolve(&known, *arr);
                }
                Instr::Launch {
                    grid, block, args, ..
                } => {
                    for g in grid
                        .iter_mut()
                        .chain(block.iter_mut())
                        .chain(args.iter_mut())
                    {
                        *g = resolve(&known, *g);
                    }
                }
                _ => {}
            }
        }

        if config.const_fold {
            // Try folding a binary op on two known constants.
            if let Instr::Bin {
                op,
                kind,
                dst,
                lhs,
                rhs,
            } = f.code[pc].clone()
            {
                if let (Some(l), Some(r)) = (const_of(&known, lhs), const_of(&known, rhs)) {
                    if let Some(folded) = fold_bin(op, kind, l, r, dst) {
                        f.code[pc] = folded;
                    }
                }
            }
            if let Instr::Cast { to, dst, src, .. } = f.code[pc].clone() {
                if let Some(v) = const_of(&known, src) {
                    if let Some(folded) = fold_cast(to, v, dst) {
                        f.code[pc] = folded;
                    }
                }
            }
        }

        // Update the known map from the (possibly rewritten) instruction.
        let ins = f.code[pc].clone();
        match ins {
            Instr::ConstI32(d, v) => {
                known.insert(d, Known::I32(v));
                invalidate_copies(&mut known, d);
            }
            Instr::ConstI64(d, v) => {
                known.insert(d, Known::I64(v));
                invalidate_copies(&mut known, d);
            }
            Instr::ConstF32(d, v) => {
                known.insert(d, Known::F32(v));
                invalidate_copies(&mut known, d);
            }
            Instr::ConstF64(d, v) => {
                known.insert(d, Known::F64(v));
                invalidate_copies(&mut known, d);
            }
            Instr::ConstBool(d, v) => {
                known.insert(d, Known::Bool(v));
                invalidate_copies(&mut known, d);
            }
            Instr::Mov(d, s) => {
                if d != s {
                    let k = known.get(&s).copied().unwrap_or(Known::Copy(s));
                    known.insert(d, k);
                    invalidate_copies(&mut known, d);
                }
            }
            other => {
                if let Some(d) = other.dst() {
                    known.remove(&d);
                    invalidate_copies(&mut known, d);
                }
            }
        }
    }
}

fn invalidate_copies(known: &mut HashMap<Reg, Known>, written: Reg) {
    let stale: Vec<Reg> = known
        .iter()
        .filter(|(_, k)| matches!(k, Known::Copy(s) if *s == written))
        .map(|(r, _)| *r)
        .collect();
    for r in stale {
        known.remove(&r);
    }
}

fn const_of(known: &HashMap<Reg, Known>, r: Reg) -> Option<Known> {
    match known.get(&r)? {
        Known::Copy(s) => const_of(known, *s),
        k => Some(*k),
    }
}

fn fold_bin(op: BinOp, kind: PrimKind, l: Known, r: Known, dst: Reg) -> Option<Instr> {
    use BinOp::*;
    match kind {
        PrimKind::Int => {
            let (Known::I32(a), Known::I32(b)) = (l, r) else {
                return None;
            };
            Some(match op {
                Add => Instr::ConstI32(dst, a.wrapping_add(b)),
                Sub => Instr::ConstI32(dst, a.wrapping_sub(b)),
                Mul => Instr::ConstI32(dst, a.wrapping_mul(b)),
                Div if b != 0 => Instr::ConstI32(dst, a.wrapping_div(b)),
                Rem if b != 0 => Instr::ConstI32(dst, a.wrapping_rem(b)),
                Lt => Instr::ConstBool(dst, a < b),
                Le => Instr::ConstBool(dst, a <= b),
                Gt => Instr::ConstBool(dst, a > b),
                Ge => Instr::ConstBool(dst, a >= b),
                Eq => Instr::ConstBool(dst, a == b),
                Ne => Instr::ConstBool(dst, a != b),
                Shl => Instr::ConstI32(dst, a.wrapping_shl(b as u32 & 31)),
                Shr => Instr::ConstI32(dst, a.wrapping_shr(b as u32 & 31)),
                BitAnd => Instr::ConstI32(dst, a & b),
                BitOr => Instr::ConstI32(dst, a | b),
                BitXor => Instr::ConstI32(dst, a ^ b),
                _ => return None,
            })
        }
        PrimKind::Long => {
            let (Known::I64(a), Known::I64(b)) = (l, r) else {
                return None;
            };
            Some(match op {
                Add => Instr::ConstI64(dst, a.wrapping_add(b)),
                Sub => Instr::ConstI64(dst, a.wrapping_sub(b)),
                Mul => Instr::ConstI64(dst, a.wrapping_mul(b)),
                Lt => Instr::ConstBool(dst, a < b),
                Eq => Instr::ConstBool(dst, a == b),
                _ => return None,
            })
        }
        PrimKind::Float => {
            let (Known::F32(a), Known::F32(b)) = (l, r) else {
                return None;
            };
            Some(match op {
                Add => Instr::ConstF32(dst, a + b),
                Sub => Instr::ConstF32(dst, a - b),
                Mul => Instr::ConstF32(dst, a * b),
                Div => Instr::ConstF32(dst, a / b),
                Lt => Instr::ConstBool(dst, a < b),
                _ => return None,
            })
        }
        PrimKind::Double => {
            let (Known::F64(a), Known::F64(b)) = (l, r) else {
                return None;
            };
            Some(match op {
                Add => Instr::ConstF64(dst, a + b),
                Sub => Instr::ConstF64(dst, a - b),
                Mul => Instr::ConstF64(dst, a * b),
                Div => Instr::ConstF64(dst, a / b),
                Lt => Instr::ConstBool(dst, a < b),
                _ => return None,
            })
        }
        PrimKind::Boolean => {
            let (Known::Bool(a), Known::Bool(b)) = (l, r) else {
                return None;
            };
            Some(match op {
                Eq => Instr::ConstBool(dst, a == b),
                Ne => Instr::ConstBool(dst, a != b),
                And => Instr::ConstBool(dst, a && b),
                Or => Instr::ConstBool(dst, a || b),
                _ => return None,
            })
        }
    }
}

fn fold_cast(to: PrimKind, v: Known, dst: Reg) -> Option<Instr> {
    let as_f64 = match v {
        Known::I32(x) => x as f64,
        Known::I64(x) => x as f64,
        Known::F32(x) => x as f64,
        Known::F64(x) => x,
        Known::Bool(_) | Known::Copy(_) => return None,
    };
    Some(match to {
        PrimKind::Int => Instr::ConstI32(
            dst,
            match v {
                Known::I32(x) => x,
                Known::I64(x) => x as i32,
                Known::F32(x) => x as i32,
                Known::F64(x) => x as i32,
                _ => return None,
            },
        ),
        PrimKind::Long => Instr::ConstI64(
            dst,
            match v {
                Known::I32(x) => x as i64,
                Known::I64(x) => x,
                Known::F32(x) => x as i64,
                Known::F64(x) => x as i64,
                _ => return None,
            },
        ),
        PrimKind::Float => Instr::ConstF32(dst, as_f64 as f32),
        PrimKind::Double => Instr::ConstF64(dst, as_f64),
        PrimKind::Boolean => return None,
    })
}

/// Whole-function liveness-based dead code elimination. Instructions with
/// side effects are kept; pure instructions whose destination is never
/// read afterwards are dropped with jump-target remapping.
fn dce(f: &mut Function) {
    let mut keep = vec![false; f.code.len()];
    for (i, ins) in f.code.iter().enumerate() {
        // Self-moves are pure no-ops (SROA leaves them for pc alignment).
        if matches!(ins, Instr::Mov(d, s) if d == s) {
            continue;
        }
        if ins.has_side_effects() || ins.dst().is_none() {
            keep[i] = true;
        }
    }
    loop {
        let mut live: Vec<bool> = vec![false; f.regs.len()];
        for (i, ins) in f.code.iter().enumerate() {
            if keep[i] {
                for s in ins.sources() {
                    live[s as usize] = true;
                }
            }
        }
        let mut changed = false;
        for (i, ins) in f.code.iter().enumerate() {
            if !keep[i] {
                if let Some(d) = ins.dst() {
                    if live[d as usize] && !matches!(ins, Instr::Mov(a, b) if a == b) {
                        keep[i] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    if keep.iter().all(|k| *k) {
        return;
    }
    // Rebuild code with remapped jump targets.
    let mut new_pc = vec![0u32; f.code.len() + 1];
    let mut cur = 0u32;
    for i in 0..f.code.len() {
        new_pc[i] = cur;
        if keep[i] {
            cur += 1;
        }
    }
    new_pc[f.code.len()] = cur;
    let old = std::mem::take(&mut f.code);
    for (i, mut ins) in old.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        match &mut ins {
            Instr::Jmp(t) => *t = new_pc[*t as usize],
            Instr::Br { t, f: fl, .. } => {
                *t = new_pc[*t as usize];
                *fl = new_pc[*fl as usize];
            }
            _ => {}
        }
        f.code.push(ins);
    }
    // Dropping trailing instructions can leave a fall-through; re-terminate.
    match f.code.last() {
        Some(Instr::Ret(_)) => {}
        _ => f.code.push(Instr::Ret(None)),
    }
    // A former jump-to-end may now target the appended Ret exactly; fix
    // any target still equal to the pre-append length.
    let len = (f.code.len() - 1) as u32;
    for ins in &mut f.code {
        match ins {
            Instr::Jmp(t) if *t > len => *t = len,
            Instr::Br { t, f: fl, .. } => {
                if *t > len {
                    *t = len;
                }
                if *fl > len {
                    *fl = len;
                }
            }
            _ => {}
        }
    }
}

/// Scalar replacement of aggregates: a heap object that is allocated in
/// this function and only ever used as the direct receiver of
/// `GetField`/`PutField` — possibly through single-assignment `Mov`
/// aliases (inlined call arguments) — is replaced by one register per
/// field slot. The translator's inlined constructors initialize every
/// slot at the allocation site, so every read is dominated by a write.
fn sroa(f: &mut Function) {
    use std::collections::HashSet;

    // Write counts per register (to validate single-assignment aliases).
    let mut writes: HashMap<Reg, u32> = HashMap::new();
    for ins in &f.code {
        if let Some(d) = ins.dst() {
            *writes.entry(d).or_insert(0) += 1;
        }
    }

    // Candidate roots: NewObj destinations (single class per register).
    let mut class_of: HashMap<Reg, u32> = HashMap::new();
    let mut bad: HashSet<Reg> = HashSet::new();
    for ins in &f.code {
        if let Instr::NewObj { class, dst } = ins {
            match class_of.get(dst) {
                Some(c) if c != class => {
                    bad.insert(*dst);
                }
                _ => {
                    class_of.insert(*dst, *class);
                }
            }
        }
    }

    // Alias closure: a register written exactly once, by `Mov` from a
    // root or alias, denotes the same object.
    let mut root: HashMap<Reg, Reg> = HashMap::new();
    for &r in class_of.keys() {
        root.insert(r, r);
    }
    // Iterate to a fixed point (alias chains may appear in any order).
    loop {
        let mut changed = false;
        for ins in &f.code {
            if let Instr::Mov(d, src) = ins {
                if d == src {
                    continue;
                }
                if let Some(&r) = root.get(src) {
                    if writes.get(d) == Some(&1) && !root.contains_key(d) {
                        root.insert(*d, r);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Escape analysis: any use of a root/alias other than GetField/
    // PutField receiver or an alias-forming Mov disqualifies the object.
    for ins in &f.code {
        match ins {
            Instr::GetField { obj, dst, .. } => {
                // Receiver use is fine; loading a handle *into* a tracked
                // register would break the alias map.
                let _ = obj;
                if root.contains_key(dst) {
                    if let Some(&r) = root.get(dst) {
                        bad.insert(r);
                    }
                }
            }
            Instr::PutField { obj: _, src, .. } => {
                if let Some(&r) = root.get(src) {
                    bad.insert(r); // handle stored into another object
                }
            }
            Instr::Mov(d, src) => {
                // Alias-forming moves are fine; a move into a multiply
                // written register escapes the object.
                if let Some(&r) = root.get(src) {
                    if root.get(d) != Some(&r) {
                        bad.insert(r);
                    }
                }
            }
            Instr::NewObj { dst, .. } => {
                // Reallocation into an *alias* (not a root) is not handled.
                if let Some(&r) = root.get(dst) {
                    if r != *dst {
                        bad.insert(r);
                    }
                }
            }
            other => {
                for u in other.sources() {
                    if let Some(&r) = root.get(&u) {
                        bad.insert(r);
                    }
                }
                if let Some(d) = other.dst() {
                    if let Some(&r) = root.get(&d) {
                        bad.insert(r);
                    }
                }
            }
        }
    }
    root.retain(|_, r| !bad.contains(r) && class_of.contains_key(r));
    if root.is_empty() {
        return;
    }

    // Slot register types, inferred from accesses.
    let mut slot_ty: HashMap<(Reg, u32), crate::ir::Ty> = HashMap::new();
    for ins in &f.code {
        match ins {
            Instr::PutField { obj, slot, src } => {
                if let Some(&r) = root.get(obj) {
                    slot_ty.entry((r, *slot)).or_insert(f.regs[*src as usize]);
                }
            }
            Instr::GetField { obj, slot, dst } => {
                if let Some(&r) = root.get(obj) {
                    slot_ty.entry((r, *slot)).or_insert(f.regs[*dst as usize]);
                }
            }
            _ => {}
        }
    }

    // Rewrite.
    let mut slot_regs: HashMap<(Reg, u32), Reg> = HashMap::new();
    let old = std::mem::take(&mut f.code);
    for ins in old {
        match ins {
            Instr::NewObj { dst, .. } if root.get(&dst) == Some(&dst) => {
                f.code.push(Instr::Mov(dst, dst)); // keeps pc alignment; DCE removes
            }
            Instr::Mov(d, src) if root.contains_key(&src) && root.get(&d) == root.get(&src) => {
                f.code.push(Instr::Mov(d, d));
            }
            Instr::PutField { obj, slot, src } if root.contains_key(&obj) => {
                let r = root[&obj];
                let ty = slot_ty[&(r, slot)];
                let sr = *slot_regs.entry((r, slot)).or_insert_with(|| {
                    f.regs.push(ty);
                    f.regs.len() as Reg - 1
                });
                f.code.push(Instr::Mov(sr, src));
            }
            Instr::GetField { obj, slot, dst } if root.contains_key(&obj) => {
                let r = root[&obj];
                let ty = slot_ty[&(r, slot)];
                let sr = *slot_regs.entry((r, slot)).or_insert_with(|| {
                    f.regs.push(ty);
                    f.regs.len() as Reg - 1
                });
                f.code.push(Instr::Mov(dst, sr));
            }
            other => f.code.push(other),
        }
    }
}

/// Inline calls to small functions. Because the coding rules forbid
/// recursion, repeated application terminates; we run to a fixed point
/// with a global budget.
fn inline_functions(program: &mut Program, limit: usize) {
    let mut budget = 10_000usize;
    loop {
        let mut did = false;
        for fi in 0..program.funcs.len() {
            // Find an inlinable call site.
            let site = program.funcs[fi].code.iter().position(|ins| {
                if let Instr::Call { func, .. } = ins {
                    let callee = &program.funcs[func.0 as usize];
                    let caller_kind = program.funcs[fi].kind;
                    func.0 as usize != fi
                        && callee.code.len() <= limit
                        && (callee.kind == caller_kind
                            || (caller_kind == FuncKind::Kernel && callee.kind == FuncKind::Device))
                } else {
                    false
                }
            });
            let Some(pc) = site else { continue };
            let (callee_id, args, dst) = match &program.funcs[fi].code[pc] {
                Instr::Call { func, args, dst } => (*func, args.clone(), *dst),
                _ => unreachable!(),
            };
            let callee = program.funcs[callee_id.0 as usize].clone();
            inline_at(&mut program.funcs[fi], pc, &callee, &args, dst);
            did = true;
            budget = budget.saturating_sub(1);
            if budget == 0 {
                return;
            }
        }
        if !did {
            return;
        }
    }
}

/// Splice `callee` into `caller` at call site `pc`.
fn inline_at(caller: &mut Function, pc: usize, callee: &Function, args: &[Reg], dst: Option<Reg>) {
    let reg_base = caller.regs.len() as Reg;
    caller.regs.extend(callee.regs.iter().copied());

    // Build the inlined body: param moves, remapped code, returns become
    // moves + jumps to the continuation.
    let mut body: Vec<Instr> = Vec::with_capacity(callee.code.len() + args.len() + 1);
    for (i, a) in args.iter().enumerate() {
        body.push(Instr::Mov(reg_base + i as Reg, *a));
    }
    let code_offset = pc as u32 + args.len() as u32; // where remapped callee pc 0 lands
    let map_target = |t: u32| -> u32 { t + code_offset };
    // Continuation pc (after the spliced body) is computed later; first
    // emit with a placeholder and fix up.
    const CONT: u32 = u32::MAX - 1;
    for ins in &callee.code {
        let mut ins = ins.clone();
        // Remap registers.
        remap_regs(&mut ins, reg_base);
        match ins {
            Instr::Ret(Some(r)) => {
                if let Some(d) = dst {
                    body.push(Instr::Mov(d, r));
                }
                body.push(Instr::Jmp(CONT));
            }
            Instr::Ret(None) => {
                body.push(Instr::Jmp(CONT));
            }
            Instr::Jmp(t) => body.push(Instr::Jmp(map_target(t))),
            Instr::Br { cond, t, f } => body.push(Instr::Br {
                cond,
                t: map_target(t),
                f: map_target(f),
            }),
            other => body.push(other),
        }
    }
    let body_len = body.len() as u32;
    // Shift: the single Call instruction is replaced by body_len instrs.
    let delta = body_len as i64 - 1;
    let cont_pc = pc as u32 + body_len;
    for ins in &mut body {
        match ins {
            Instr::Jmp(t) if *t == CONT => *t = cont_pc,
            Instr::Br { t, f, .. } => {
                if *t == CONT {
                    *t = cont_pc;
                }
                if *f == CONT {
                    *f = cont_pc;
                }
            }
            _ => {}
        }
    }
    // Remap all existing jump targets in the caller that point past `pc`.
    for ins in caller.code.iter_mut() {
        match ins {
            Instr::Jmp(t) if *t as usize > pc => {
                *t = (*t as i64 + delta) as u32;
            }
            Instr::Br { t, f, .. } => {
                if *t as usize > pc {
                    *t = (*t as i64 + delta) as u32;
                }
                if *f as usize > pc {
                    *f = (*f as i64 + delta) as u32;
                }
            }
            _ => {}
        }
    }
    caller.code.splice(pc..=pc, body);
}

fn remap_regs(ins: &mut Instr, base: Reg) {
    let m = |r: &mut Reg| *r += base;
    match ins {
        Instr::ConstI32(d, _)
        | Instr::ConstI64(d, _)
        | Instr::ConstF32(d, _)
        | Instr::ConstF64(d, _)
        | Instr::ConstBool(d, _) => m(d),
        Instr::Mov(d, s) => {
            m(d);
            m(s);
        }
        Instr::Bin { dst, lhs, rhs, .. } => {
            m(dst);
            m(lhs);
            m(rhs);
        }
        Instr::Neg { dst, src, .. } | Instr::Not { dst, src } | Instr::Cast { dst, src, .. } => {
            m(dst);
            m(src);
        }
        Instr::Br { cond, .. } => m(cond),
        Instr::Ret(Some(r)) => m(r),
        Instr::Call { args, dst, .. } | Instr::CallHost { args, dst, .. } => {
            for a in args {
                m(a);
            }
            if let Some(d) = dst {
                m(d);
            }
        }
        Instr::NewObj { dst, .. } => m(dst),
        Instr::GetField { obj, dst, .. } => {
            m(obj);
            m(dst);
        }
        Instr::PutField { obj, src, .. } => {
            m(obj);
            m(src);
        }
        Instr::CallVirt {
            recv, args, dst, ..
        } => {
            m(recv);
            for a in args {
                m(a);
            }
            if let Some(d) = dst {
                m(d);
            }
        }
        Instr::NewArr { len, dst, .. } | Instr::SharedAlloc { len, dst, .. } => {
            m(len);
            m(dst);
        }
        Instr::LdArr { arr, idx, dst } => {
            m(arr);
            m(idx);
            m(dst);
        }
        Instr::StArr { arr, idx, src } => {
            m(arr);
            m(idx);
            m(src);
        }
        Instr::ArrLen { arr, dst } => {
            m(arr);
            m(dst);
        }
        Instr::FreeArr { arr } => m(arr),
        Instr::Intrin { args, dst, .. } => {
            for a in args {
                m(a);
            }
            if let Some(d) = dst {
                m(d);
            }
        }
        Instr::Launch {
            grid, block, args, ..
        } => {
            for g in grid.iter_mut().chain(block.iter_mut()) {
                m(g);
            }
            for a in args {
                m(a);
            }
        }
        Instr::Jmp(_) | Instr::Ret(None) | Instr::Sync => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FuncBuilder, Ty};

    fn const_add_program() -> Program {
        // fn f() -> i32 { let a = 2; let b = 3; a + b }
        let mut fb = FuncBuilder::new("f", vec![], Some(Ty::I32), FuncKind::Host);
        let a = fb.reg(Ty::I32);
        let b = fb.reg(Ty::I32);
        let c = fb.reg(Ty::I32);
        fb.emit(Instr::ConstI32(a, 2));
        fb.emit(Instr::ConstI32(b, 3));
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: c,
            lhs: a,
            rhs: b,
        });
        fb.emit(Instr::Ret(Some(c)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.entry = Some(id);
        p
    }

    #[test]
    fn const_folding_folds_add() {
        let mut p = const_add_program();
        optimize(&mut p, OptConfig::standard());
        // After folding + DCE only the const and ret remain.
        let f = &p.funcs[0];
        assert!(
            f.code.iter().any(|i| matches!(i, Instr::ConstI32(_, 5))),
            "expected folded constant 5 in {:?}",
            f.code
        );
        assert!(
            f.code.len() <= 2,
            "DCE should drop dead consts: {:?}",
            f.code
        );
        p.validate().unwrap();
    }

    #[test]
    fn copy_propagation_forwards_movs() {
        let mut fb = FuncBuilder::new("f", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let a = fb.reg(Ty::I32);
        let b = fb.reg(Ty::I32);
        let c = fb.reg(Ty::I32);
        fb.emit(Instr::Mov(a, 0));
        fb.emit(Instr::Mov(b, a));
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: c,
            lhs: b,
            rhs: b,
        });
        fb.emit(Instr::Ret(Some(c)));
        let mut p = Program::default();
        p.add_func(fb.finish().unwrap());
        optimize(&mut p, OptConfig::standard());
        let f = &p.funcs[0];
        // The add should now read the parameter register directly.
        let add = f
            .code
            .iter()
            .find(|i| matches!(i, Instr::Bin { .. }))
            .expect("add survives");
        if let Instr::Bin { lhs, rhs, .. } = add {
            assert_eq!((*lhs, *rhs), (0, 0));
        }
        p.validate().unwrap();
    }

    #[test]
    fn dce_keeps_side_effects() {
        let mut fb = FuncBuilder::new(
            "f",
            vec![Ty::Arr(crate::ir::ElemTy::F32)],
            None,
            FuncKind::Host,
        );
        let idx = fb.reg(Ty::I32);
        let val = fb.reg(Ty::F32);
        let dead = fb.reg(Ty::I32);
        fb.emit(Instr::ConstI32(idx, 0));
        fb.emit(Instr::ConstF32(val, 1.0));
        fb.emit(Instr::ConstI32(dead, 42)); // dead
        fb.emit(Instr::StArr {
            arr: 0,
            idx,
            src: val,
        }); // effectful
        fb.emit(Instr::Ret(None));
        let mut p = Program::default();
        p.add_func(fb.finish().unwrap());
        optimize(&mut p, OptConfig::standard());
        let f = &p.funcs[0];
        assert!(f.code.iter().any(|i| matches!(i, Instr::StArr { .. })));
        assert!(!f.code.iter().any(|i| matches!(i, Instr::ConstI32(_, 42))));
        p.validate().unwrap();
    }

    #[test]
    fn dce_remaps_jump_targets() {
        let mut fb = FuncBuilder::new("f", vec![Ty::Bool], Some(Ty::I32), FuncKind::Host);
        let dead = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let two = fb.reg(Ty::I32);
        let t = fb.label();
        let e = fb.label();
        fb.emit(Instr::ConstI32(dead, 99)); // dead
        fb.br(0, t, e);
        fb.bind(t);
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::Ret(Some(one)));
        fb.bind(e);
        fb.emit(Instr::ConstI32(two, 2));
        fb.emit(Instr::Ret(Some(two)));
        let mut p = Program::default();
        p.add_func(fb.finish().unwrap());
        optimize(&mut p, OptConfig::standard());
        p.validate().unwrap();
    }

    #[test]
    fn inlining_splices_small_callee() {
        // callee: fn double(x) { x + x }; caller: fn f(a) { double(a) + 1 }
        let mut cb = FuncBuilder::new("double", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let d = cb.reg(Ty::I32);
        cb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: d,
            lhs: 0,
            rhs: 0,
        });
        cb.emit(Instr::Ret(Some(d)));
        let mut p = Program::default();
        let callee = p.add_func(cb.finish().unwrap());

        let mut fb = FuncBuilder::new("f", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let r = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let out = fb.reg(Ty::I32);
        fb.emit(Instr::Call {
            func: callee,
            args: vec![0],
            dst: Some(r),
        });
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: out,
            lhs: r,
            rhs: one,
        });
        fb.emit(Instr::Ret(Some(out)));
        p.add_func(fb.finish().unwrap());

        optimize(&mut p, OptConfig::aggressive());
        let f = &p.funcs[1];
        assert!(
            !f.code.iter().any(|i| matches!(i, Instr::Call { .. })),
            "call should be inlined: {f:?}"
        );
        p.validate().unwrap();
    }

    #[test]
    fn optimizer_is_idempotent() {
        let mut p = const_add_program();
        optimize(&mut p, OptConfig::standard());
        let once = format!("{p}");
        optimize(&mut p, OptConfig::standard());
        assert_eq!(once, format!("{p}"));
    }
}
