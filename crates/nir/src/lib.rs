//! # nir — the flat native IR the WootinJ translator targets
//!
//! The paper's framework emits C or CUDA source and hands it to icc/nvcc.
//! In this reproduction the equivalent artifact is a NIR [`Program`]: flat
//! functions over primitive registers and arrays (fully optimized mode),
//! plus heap-object and vtable instructions used only by the *C++* /
//! *Template* baseline configurations. The `exec` crate executes NIR; the
//! [`emit`] module renders it as readable C/CUDA text (the Listing-5
//! analogue); the [`opt`] module plays the role of the external compiler's
//! optimizer and is the knob behind the Table 1 / Table 2 reproduction.

#![forbid(unsafe_code)]

pub mod codec;
pub mod emit;
pub mod hash;
pub mod ir;
pub mod opt;

pub use codec::{digest64, seal, unseal, CodecError, CodecResult, Reader, Writer};
pub use emit::emit_c;
pub use hash::{fnv1a64, Fingerprint};
pub use ir::{
    ClassMeta, ConstVal, ElemTy, FuncBuilder, FuncId, FuncKind, Function, Global, HostFnSig, Instr,
    IntrinOp, Label, Program, Reg, Ty,
};
pub use opt::{merge_profiles, optimize, optimize_fn, OptConfig, PassProfile, PASS_ORDER};
