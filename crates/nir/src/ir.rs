//! NIR — the flat "native" register IR that translation targets.
//!
//! This is the reproduction's analogue of the C/CUDA source WootinJ
//! generates: functions over primitive registers and flat arrays. In the
//! fully optimized configuration there are *no* objects — devirtualization
//! and object inlining have erased them. The unoptimized configurations
//! (the paper's *C++* and *Template* baselines) additionally use the
//! heap-object and vtable instructions.

use jlang::ast::BinOp;
use jlang::types::PrimKind;
use std::fmt;

/// A virtual register within a function.
pub type Reg = u32;

/// Index of a function in a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// A (not yet resolved) jump target handed out by [`FuncBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(pub u32);

/// Scalar/array register types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    I32,
    I64,
    F32,
    F64,
    Bool,
    Arr(ElemTy),
    /// Heap object reference — unoptimized configurations only.
    Obj,
}

/// Primitive element types of NIR arrays. (Object arrays never appear:
/// the coding rules confine bulk data to primitive arrays, and the
/// translator reports a clear error otherwise.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemTy {
    I32,
    I64,
    F32,
    F64,
    Bool,
}

impl ElemTy {
    pub fn ty(self) -> Ty {
        match self {
            ElemTy::I32 => Ty::I32,
            ElemTy::I64 => Ty::I64,
            ElemTy::F32 => Ty::F32,
            ElemTy::F64 => Ty::F64,
            ElemTy::Bool => Ty::Bool,
        }
    }

    pub fn c_name(self) -> &'static str {
        match self {
            ElemTy::I32 => "int",
            ElemTy::I64 => "long",
            ElemTy::F32 => "float",
            ElemTy::F64 => "double",
            ElemTy::Bool => "bool",
        }
    }
}

impl Ty {
    pub fn of_prim(kind: PrimKind) -> Ty {
        match kind {
            PrimKind::Int => Ty::I32,
            PrimKind::Long => Ty::I64,
            PrimKind::Float => Ty::F32,
            PrimKind::Double => Ty::F64,
            PrimKind::Boolean => Ty::Bool,
        }
    }

    pub fn prim(self) -> Option<PrimKind> {
        Some(match self {
            Ty::I32 => PrimKind::Int,
            Ty::I64 => PrimKind::Long,
            Ty::F32 => PrimKind::Float,
            Ty::F64 => PrimKind::Double,
            Ty::Bool => PrimKind::Boolean,
            _ => return None,
        })
    }

    pub fn c_name(self) -> String {
        match self {
            Ty::I32 => "int".into(),
            Ty::I64 => "long".into(),
            Ty::F32 => "float".into(),
            Ty::F64 => "double".into(),
            Ty::Bool => "bool".into(),
            Ty::Arr(e) => format!("{}*", e.c_name()),
            Ty::Obj => "struct obj*".into(),
        }
    }
}

/// Intrinsic operations: math, I/O, CUDA registers/memory, MPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntrinOp {
    // math
    SqrtF64,
    SqrtF32,
    PowF64,
    ExpF64,
    AbsF32,
    AbsF64,
    AbsI32,
    MinI32,
    MaxI32,
    MinF32,
    MaxF32,
    // printing / util
    PrintI32,
    PrintI64,
    PrintF32,
    PrintF64,
    PrintBool,
    ArrayCopyF32,
    // CUDA thread registers; the axis is 0=x, 1=y, 2=z
    ThreadIdx(u8),
    BlockIdx(u8),
    BlockDim(u8),
    GridDim(u8),
    // CUDA memory
    CopyToGpu,
    CopyFromGpu,
    /// (dev, devOff, host, hostOff, len): copy a host range into a device range.
    CopyToGpuRange,
    /// (host, hostOff, dev, devOff, len): copy a device range into a host range.
    CopyFromGpuRange,
    GpuAllocF32,
    GpuFree,
    // MPI
    MpiRank,
    MpiSize,
    MpiBarrier,
    MpiSendF32,
    MpiRecvF32,
    MpiSendRecvF32,
    MpiBcastF32,
    MpiAllreduceSumF64,
    MpiAllreduceSumF32,
    MpiAllreduceMaxF64,
}

impl IntrinOp {
    /// The C spelling used by the source emitter.
    pub fn c_name(self) -> String {
        match self {
            IntrinOp::SqrtF64 => "sqrt".into(),
            IntrinOp::SqrtF32 => "sqrtf".into(),
            IntrinOp::PowF64 => "pow".into(),
            IntrinOp::ExpF64 => "exp".into(),
            IntrinOp::AbsF32 => "fabsf".into(),
            IntrinOp::AbsF64 => "fabs".into(),
            IntrinOp::AbsI32 => "abs".into(),
            IntrinOp::MinI32 => "min".into(),
            IntrinOp::MaxI32 => "max".into(),
            IntrinOp::MinF32 => "fminf".into(),
            IntrinOp::MaxF32 => "fmaxf".into(),
            IntrinOp::PrintI32 | IntrinOp::PrintI64 => "printf_int".into(),
            IntrinOp::PrintF32 | IntrinOp::PrintF64 => "printf_float".into(),
            IntrinOp::PrintBool => "printf_bool".into(),
            IntrinOp::ArrayCopyF32 => "memcpy_float".into(),
            IntrinOp::ThreadIdx(a) => format!("threadIdx.{}", axis(a)),
            IntrinOp::BlockIdx(a) => format!("blockIdx.{}", axis(a)),
            IntrinOp::BlockDim(a) => format!("blockDim.{}", axis(a)),
            IntrinOp::GridDim(a) => format!("gridDim.{}", axis(a)),
            IntrinOp::CopyToGpu => "cudaMemcpyHostToDevice".into(),
            IntrinOp::CopyFromGpu => "cudaMemcpyDeviceToHost".into(),
            IntrinOp::CopyToGpuRange => "cudaMemcpy/*range,HtoD*/".into(),
            IntrinOp::CopyFromGpuRange => "cudaMemcpy/*range,DtoH*/".into(),
            IntrinOp::GpuAllocF32 => "cudaMalloc".into(),
            IntrinOp::GpuFree => "cudaFree".into(),
            IntrinOp::MpiRank => "MPI_Comm_rank".into(),
            IntrinOp::MpiSize => "MPI_Comm_size".into(),
            IntrinOp::MpiBarrier => "MPI_Barrier".into(),
            IntrinOp::MpiSendF32 => "MPI_Send".into(),
            IntrinOp::MpiRecvF32 => "MPI_Recv".into(),
            IntrinOp::MpiSendRecvF32 => "MPI_Sendrecv".into(),
            IntrinOp::MpiBcastF32 => "MPI_Bcast".into(),
            IntrinOp::MpiAllreduceSumF64
            | IntrinOp::MpiAllreduceSumF32
            | IntrinOp::MpiAllreduceMaxF64 => "MPI_Allreduce".into(),
        }
    }

    /// Is this intrinsic pure (no side effects, safe to DCE)?
    pub fn is_pure(self) -> bool {
        matches!(
            self,
            IntrinOp::SqrtF64
                | IntrinOp::SqrtF32
                | IntrinOp::PowF64
                | IntrinOp::ExpF64
                | IntrinOp::AbsF32
                | IntrinOp::AbsF64
                | IntrinOp::AbsI32
                | IntrinOp::MinI32
                | IntrinOp::MaxI32
                | IntrinOp::MinF32
                | IntrinOp::MaxF32
                | IntrinOp::ThreadIdx(_)
                | IntrinOp::BlockIdx(_)
                | IntrinOp::BlockDim(_)
                | IntrinOp::GridDim(_)
        )
    }
}

fn axis(a: u8) -> &'static str {
    match a {
        0 => "x",
        1 => "y",
        _ => "z",
    }
}

/// One NIR instruction. Jump targets are instruction indices.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    ConstI32(Reg, i32),
    ConstI64(Reg, i64),
    ConstF32(Reg, f32),
    ConstF64(Reg, f64),
    ConstBool(Reg, bool),
    Mov(Reg, Reg),
    /// `dst = lhs op rhs`, both operands of `kind`.
    Bin {
        op: BinOp,
        kind: PrimKind,
        dst: Reg,
        lhs: Reg,
        rhs: Reg,
    },
    Neg {
        kind: PrimKind,
        dst: Reg,
        src: Reg,
    },
    Not {
        dst: Reg,
        src: Reg,
    },
    Cast {
        to: PrimKind,
        from: PrimKind,
        dst: Reg,
        src: Reg,
    },
    Jmp(u32),
    /// Branch to `t` when `cond` is true, else to `f`.
    Br {
        cond: Reg,
        t: u32,
        f: u32,
    },
    Ret(Option<Reg>),
    Call {
        func: FuncId,
        args: Vec<Reg>,
        dst: Option<Reg>,
    },
    /// Direct call to a registered host (foreign) function — the paper's
    /// FFI: "a method call that is translated into a direct call to the
    /// corresponding C function". `host` indexes [`Program::host_fns`].
    CallHost {
        host: u32,
        args: Vec<Reg>,
        dst: Option<Reg>,
    },
    // ---- heap objects (unoptimized configurations only) ----
    NewObj {
        class: u32,
        dst: Reg,
    },
    GetField {
        obj: Reg,
        slot: u32,
        dst: Reg,
    },
    PutField {
        obj: Reg,
        slot: u32,
        src: Reg,
    },
    /// Virtual dispatch through the receiver's class vtable.
    CallVirt {
        selector: u32,
        recv: Reg,
        args: Vec<Reg>,
        dst: Option<Reg>,
    },
    // ---- arrays ----
    NewArr {
        elem: ElemTy,
        len: Reg,
        dst: Reg,
    },
    LdArr {
        arr: Reg,
        idx: Reg,
        dst: Reg,
    },
    StArr {
        arr: Reg,
        idx: Reg,
        src: Reg,
    },
    ArrLen {
        arr: Reg,
        dst: Reg,
    },
    FreeArr {
        arr: Reg,
    },
    // ---- intrinsics ----
    Intrin {
        op: IntrinOp,
        args: Vec<Reg>,
        dst: Option<Reg>,
    },
    // ---- GPU ----
    /// Launch `kernel <<<grid, block>>> (args)`.
    Launch {
        kernel: FuncId,
        grid: [Reg; 3],
        block: [Reg; 3],
        args: Vec<Reg>,
    },
    /// Allocate a per-block `__shared__` array (kernel functions only).
    SharedAlloc {
        elem: ElemTy,
        len: Reg,
        dst: Reg,
    },
    /// `__syncthreads()` (kernel functions only, top level).
    Sync,
}

impl Instr {
    /// Destination register written by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::ConstI32(d, _)
            | Instr::ConstI64(d, _)
            | Instr::ConstF32(d, _)
            | Instr::ConstF64(d, _)
            | Instr::ConstBool(d, _)
            | Instr::Mov(d, _) => Some(*d),
            Instr::Bin { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::Not { dst, .. }
            | Instr::Cast { dst, .. }
            | Instr::NewObj { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::NewArr { dst, .. }
            | Instr::LdArr { dst, .. }
            | Instr::ArrLen { dst, .. }
            | Instr::SharedAlloc { dst, .. } => Some(*dst),
            Instr::Call { dst, .. }
            | Instr::CallHost { dst, .. }
            | Instr::CallVirt { dst, .. }
            | Instr::Intrin { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Registers read by this instruction.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Instr::Mov(_, s) => vec![*s],
            Instr::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Instr::Neg { src, .. } | Instr::Not { src, .. } | Instr::Cast { src, .. } => {
                vec![*src]
            }
            Instr::Br { cond, .. } => vec![*cond],
            Instr::Ret(Some(r)) => vec![*r],
            Instr::Call { args, .. } | Instr::CallHost { args, .. } => args.clone(),
            Instr::GetField { obj, .. } => vec![*obj],
            Instr::PutField { obj, src, .. } => vec![*obj, *src],
            Instr::CallVirt { recv, args, .. } => {
                let mut v = vec![*recv];
                v.extend(args);
                v
            }
            Instr::NewArr { len, .. } | Instr::SharedAlloc { len, .. } => vec![*len],
            Instr::LdArr { arr, idx, .. } => vec![*arr, *idx],
            Instr::StArr { arr, idx, src } => vec![*arr, *idx, *src],
            Instr::ArrLen { arr, .. } | Instr::FreeArr { arr } => vec![*arr],
            Instr::Intrin { args, .. } => args.clone(),
            Instr::Launch {
                grid, block, args, ..
            } => {
                let mut v = Vec::with_capacity(6 + args.len());
                v.extend_from_slice(grid);
                v.extend_from_slice(block);
                v.extend(args);
                v
            }
            _ => Vec::new(),
        }
    }

    /// Does this instruction have side effects (must not be removed)?
    pub fn has_side_effects(&self) -> bool {
        match self {
            Instr::Jmp(_)
            | Instr::Br { .. }
            | Instr::Ret(_)
            | Instr::Call { .. }
            | Instr::CallHost { .. }
            | Instr::CallVirt { .. }
            | Instr::PutField { .. }
            | Instr::StArr { .. }
            | Instr::FreeArr { .. }
            | Instr::Launch { .. }
            | Instr::Sync => true,
            // Allocation results may escape via later instructions; keep
            // them unless the destination is provably dead AND unaliased —
            // we conservatively treat allocation as effectful.
            Instr::NewObj { .. } | Instr::NewArr { .. } | Instr::SharedAlloc { .. } => true,
            Instr::Intrin { op, .. } => !op.is_pure(),
            _ => false,
        }
    }
}

/// Where a function runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuncKind {
    /// Ordinary host function.
    Host,
    /// CUDA `__global__` kernel entry.
    Kernel,
    /// CUDA `__device__` function callable from kernels.
    Device,
}

/// A NIR function.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    /// Parameter registers are `0..params.len()`.
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
    /// Types of all registers (length = register count).
    pub regs: Vec<Ty>,
    pub code: Vec<Instr>,
    pub kind: FuncKind,
}

/// Per-class metadata for the unoptimized (heap objects + vtable) mode.
#[derive(Debug, Clone)]
pub struct ClassMeta {
    pub name: String,
    pub field_count: u32,
    /// `(selector, target)` pairs; selectors index [`Program::selectors`].
    pub vtable: Vec<(u32, FuncId)>,
}

/// Signature of a registered host (foreign) function.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFnSig {
    /// The `@Native("key")` key, e.g. `"ext.hypot"`.
    pub name: String,
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
}

/// A compile-time constant global (from `static final` fields).
#[derive(Debug, Clone)]
pub struct Global {
    pub name: String,
    pub ty: Ty,
    pub value: ConstVal,
}

/// Constant values storable in globals.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstVal {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    Bool(bool),
}

/// A complete translated program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub funcs: Vec<Function>,
    pub globals: Vec<Global>,
    pub classes: Vec<ClassMeta>,
    /// Method-name selectors for `CallVirt`.
    pub selectors: Vec<String>,
    /// Foreign-function signatures referenced by `CallHost`.
    pub host_fns: Vec<HostFnSig>,
    /// The entry function invoked by `JitCode::invoke`.
    pub entry: Option<FuncId>,
}

impl Program {
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Total instruction count (a code-size metric used by Table 3).
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Validate structural invariants: register indices and types, jump
    /// targets, call arities, and placement constraints (Sync/SharedAlloc
    /// only in kernels, Launch only outside kernels).
    pub fn validate(&self) -> Result<(), String> {
        for (fi, f) in self.funcs.iter().enumerate() {
            let check_reg = |r: Reg| -> Result<(), String> {
                if (r as usize) < f.regs.len() {
                    Ok(())
                } else {
                    Err(format!(
                        "function `{}`: register r{} out of range",
                        f.name, r
                    ))
                }
            };
            if f.params.len() > f.regs.len() {
                return Err(format!("function `{}`: params exceed registers", f.name));
            }
            for (i, p) in f.params.iter().enumerate() {
                if f.regs[i] != *p {
                    return Err(format!("function `{}`: param {} type mismatch", f.name, i));
                }
            }
            for (pc, ins) in f.code.iter().enumerate() {
                for r in ins.sources() {
                    check_reg(r)?;
                }
                if let Some(d) = ins.dst() {
                    check_reg(d)?;
                }
                match ins {
                    Instr::Jmp(t) if *t as usize > f.code.len() => {
                        return Err(format!(
                            "function `{}` pc {}: jump target {} out of range",
                            f.name, pc, t
                        ));
                    }
                    Instr::Br { t, f: fl, .. }
                        if (*t as usize > f.code.len() || *fl as usize > f.code.len()) =>
                    {
                        return Err(format!(
                            "function `{}` pc {}: branch target out of range",
                            f.name, pc
                        ));
                    }
                    Instr::Call { func, args, .. } => {
                        let callee = self
                            .funcs
                            .get(func.0 as usize)
                            .ok_or_else(|| format!("call to unknown function {}", func.0))?;
                        if callee.params.len() != args.len() {
                            return Err(format!(
                                "function `{}` pc {}: call to `{}` with {} args, expects {}",
                                f.name,
                                pc,
                                callee.name,
                                args.len(),
                                callee.params.len()
                            ));
                        }
                        if f.kind != FuncKind::Host && callee.kind == FuncKind::Host {
                            return Err(format!(
                                "kernel/device function `{}` calls host function `{}`",
                                f.name, callee.name
                            ));
                        }
                    }
                    Instr::CallHost { host, args, .. } => {
                        let sig = self
                            .host_fns
                            .get(*host as usize)
                            .ok_or_else(|| format!("call to unknown host fn {host}"))?;
                        if sig.params.len() != args.len() {
                            return Err(format!(
                                "function `{}` pc {}: host call to `{}` with {} args, expects {}",
                                f.name,
                                pc,
                                sig.name,
                                args.len(),
                                sig.params.len()
                            ));
                        }
                    }
                    Instr::CallVirt { selector, .. }
                        if *selector as usize >= self.selectors.len() =>
                    {
                        return Err(format!(
                            "function `{}` pc {}: unknown selector {}",
                            f.name, pc, selector
                        ));
                    }
                    Instr::Launch { kernel, .. } => {
                        if f.kind != FuncKind::Host {
                            return Err(format!("launch inside non-host function `{}`", f.name));
                        }
                        let k = self
                            .funcs
                            .get(kernel.0 as usize)
                            .ok_or_else(|| format!("launch of unknown function {}", kernel.0))?;
                        if k.kind != FuncKind::Kernel {
                            return Err(format!("launch of non-kernel function `{}`", k.name));
                        }
                    }
                    Instr::Sync | Instr::SharedAlloc { .. } if f.kind != FuncKind::Kernel => {
                        return Err(format!(
                            "`{}`: __syncthreads/__shared__ outside a kernel",
                            f.name
                        ));
                    }
                    Instr::NewObj { class, .. } if *class as usize >= self.classes.len() => {
                        return Err(format!("new of unknown class {class}"));
                    }
                    _ => {}
                }
            }
            // Code must not fall off the end.
            match f.code.last() {
                Some(Instr::Ret(_)) | Some(Instr::Jmp(_)) | Some(Instr::Br { .. }) => {}
                _ => {
                    return Err(format!(
                        "function `{}` (index {fi}) does not end in ret/jmp",
                        f.name
                    ))
                }
            }
        }
        if let Some(e) = self.entry {
            if e.0 as usize >= self.funcs.len() {
                return Err("entry function out of range".into());
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, func) in self.funcs.iter().enumerate() {
            writeln!(
                f,
                "fn {} #{} ({} params, {} regs) {:?}:",
                func.name,
                i,
                func.params.len(),
                func.regs.len(),
                func.kind
            )?;
            for (pc, ins) in func.code.iter().enumerate() {
                writeln!(f, "  {pc:4}: {ins:?}")?;
            }
        }
        Ok(())
    }
}

/// Incremental builder for a [`Function`] with label patching.
///
/// ```
/// use nir::{FuncBuilder, FuncKind, Instr, Ty, Program};
/// use jlang::ast::BinOp;
/// use jlang::types::PrimKind;
///
/// // fn add1(x: i32) -> i32 { x + 1 }
/// let mut fb = FuncBuilder::new("add1", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
/// let one = fb.reg(Ty::I32);
/// let out = fb.reg(Ty::I32);
/// fb.emit(Instr::ConstI32(one, 1));
/// fb.emit(Instr::Bin { op: BinOp::Add, kind: PrimKind::Int, dst: out, lhs: 0, rhs: one });
/// fb.emit(Instr::Ret(Some(out)));
/// let mut p = Program::default();
/// p.add_func(fb.finish().unwrap());
/// assert!(p.validate().is_ok());
/// ```
pub struct FuncBuilder {
    pub name: String,
    pub params: Vec<Ty>,
    pub ret: Option<Ty>,
    pub kind: FuncKind,
    regs: Vec<Ty>,
    code: Vec<Instr>,
    /// label -> resolved pc
    labels: Vec<Option<u32>>,
    /// (pc, which-slot, label) fixups
    fixups: Vec<(usize, u8, Label)>,
}

impl FuncBuilder {
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Option<Ty>, kind: FuncKind) -> Self {
        FuncBuilder {
            name: name.into(),
            regs: params.clone(),
            params,
            ret,
            kind,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Allocate a fresh register of type `ty`.
    pub fn reg(&mut self, ty: Ty) -> Reg {
        let r = self.regs.len() as Reg;
        self.regs.push(ty);
        r
    }

    pub fn reg_ty(&self, r: Reg) -> Ty {
        self.regs[r as usize]
    }

    pub fn emit(&mut self, ins: Instr) -> usize {
        self.code.push(ins);
        self.code.len() - 1
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Bind `label` to the next instruction to be emitted.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0 as usize] = Some(self.code.len() as u32);
    }

    pub fn jmp(&mut self, label: Label) {
        let pc = self.emit(Instr::Jmp(u32::MAX));
        self.fixups.push((pc, 0, label));
    }

    pub fn br(&mut self, cond: Reg, t: Label, f: Label) {
        let pc = self.emit(Instr::Br {
            cond,
            t: u32::MAX,
            f: u32::MAX,
        });
        self.fixups.push((pc, 1, t));
        self.fixups.push((pc, 2, f));
    }

    /// Current instruction count (useful for tests).
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolve labels and produce the function.
    pub fn finish(mut self) -> Result<Function, String> {
        for (pc, slot, label) in &self.fixups {
            let target = self.labels[label.0 as usize]
                .ok_or_else(|| format!("unbound label {} in `{}`", label.0, self.name))?;
            match (&mut self.code[*pc], slot) {
                (Instr::Jmp(t), 0) => *t = target,
                (Instr::Br { t, .. }, 1) => *t = target,
                (Instr::Br { f, .. }, 2) => *f = target,
                other => return Err(format!("bad fixup {other:?}")),
            }
        }
        // Ensure control cannot fall (or jump) off the end: a label bound
        // after the last instruction (e.g. the end label of a trailing
        // `if`) needs a real terminator to land on.
        let len = self.code.len() as u32;
        let jumps_to_end = self.code.iter().any(|i| match i {
            Instr::Jmp(t) => *t == len,
            Instr::Br { t, f, .. } => *t == len || *f == len,
            _ => false,
        });
        if jumps_to_end || !matches!(self.code.last(), Some(Instr::Ret(_))) {
            self.code.push(Instr::Ret(None));
        }
        Ok(Function {
            name: self.name,
            params: self.params,
            ret: self.ret,
            regs: self.regs,
            code: self.code,
            kind: self.kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_add() -> Program {
        // fn add(a: i32, b: i32) -> i32 { a + b }
        let mut fb = FuncBuilder::new("add", vec![Ty::I32, Ty::I32], Some(Ty::I32), FuncKind::Host);
        let dst = fb.reg(Ty::I32);
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst,
            lhs: 0,
            rhs: 1,
        });
        fb.emit(Instr::Ret(Some(dst)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.entry = Some(id);
        p
    }

    #[test]
    fn builder_produces_valid_program() {
        let p = sample_add();
        p.validate().expect("valid");
        assert_eq!(p.instr_count(), 2);
    }

    #[test]
    fn labels_resolve() {
        // fn loop10() -> i32 { s=0; for i in 0..10 { s+=i }; s }
        let mut fb = FuncBuilder::new("loop10", vec![], Some(Ty::I32), FuncKind::Host);
        let s = fb.reg(Ty::I32);
        let i = fb.reg(Ty::I32);
        let ten = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let cond = fb.reg(Ty::Bool);
        fb.emit(Instr::ConstI32(s, 0));
        fb.emit(Instr::ConstI32(i, 0));
        fb.emit(Instr::ConstI32(ten, 10));
        fb.emit(Instr::ConstI32(one, 1));
        let head = fb.label();
        let body = fb.label();
        let done = fb.label();
        fb.bind(head);
        fb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: cond,
            lhs: i,
            rhs: ten,
        });
        fb.br(cond, body, done);
        fb.bind(body);
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: s,
            lhs: s,
            rhs: i,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: i,
            lhs: i,
            rhs: one,
        });
        fb.jmp(head);
        fb.bind(done);
        fb.emit(Instr::Ret(Some(s)));
        let f = fb.finish().unwrap();
        // No u32::MAX placeholders remain.
        for ins in &f.code {
            match ins {
                Instr::Jmp(t) => assert_ne!(*t, u32::MAX),
                Instr::Br { t, f, .. } => {
                    assert_ne!(*t, u32::MAX);
                    assert_ne!(*f, u32::MAX);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn unbound_label_is_error() {
        let mut fb = FuncBuilder::new("bad", vec![], None, FuncKind::Host);
        let l = fb.label();
        fb.jmp(l);
        assert!(fb.finish().is_err());
    }

    #[test]
    fn validate_rejects_bad_register() {
        let mut p = sample_add();
        p.funcs[0].code[0] = Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: 99,
            lhs: 0,
            rhs: 1,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_sync_outside_kernel() {
        let mut p = sample_add();
        p.funcs[0].code.insert(0, Instr::Sync);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_missing_terminator() {
        let mut p = sample_add();
        p.funcs[0].code.pop();
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_host_call_from_kernel() {
        let mut p = sample_add();
        let mut fb = FuncBuilder::new("k", vec![], None, FuncKind::Kernel);
        fb.emit(Instr::Call {
            func: FuncId(0),
            args: vec![],
            dst: None,
        });
        fb.emit(Instr::Ret(None));
        // wrong arg count AND host call — both should be errors; arity hits first
        p.add_func(fb.finish().unwrap());
        assert!(p.validate().is_err());
    }

    #[test]
    fn instr_dst_and_sources() {
        let i = Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Float,
            dst: 5,
            lhs: 1,
            rhs: 2,
        };
        assert_eq!(i.dst(), Some(5));
        assert_eq!(i.sources(), vec![1, 2]);
        let st = Instr::StArr {
            arr: 1,
            idx: 2,
            src: 3,
        };
        assert_eq!(st.dst(), None);
        assert!(st.has_side_effects());
    }
}
