//! Native-Rust analogues of the paper's C/C++ diffusion baselines.
//!
//! The primary reproduction runs every series on the same NIR engine (see
//! DESIGN.md); this module is the *native cross-check*: the same four
//! dispatch/representation strategies expressed directly in Rust, where
//! `rustc` plays the role of icc. The orderings measured here (virtual
//! dispatch per cell vs. monomorphized vs. hand-flattened) validate that
//! the engine-level orderings are not artifacts of the simulator.
//!
//! All variants implement the exact same computation as
//! `hpclib`'s `StencilCPU3D` (NoiseInit + 7-point diffusion, ghost z
//! planes, fixed x/y boundaries) and return the same checksum.

/// `NoiseInit.value` (identical to the jlang library).
#[inline]
pub fn noise_init(x: i32, y: i32, z: i32) -> f32 {
    let h = x * 31 + y * 17 + z * 7;
    (h % 97) as f32 * 0.01
}

fn build_grid(nx: usize, ny: usize, nz: usize) -> Vec<f32> {
    let mut a = vec![0.0f32; nx * ny * (nz + 2)];
    for z in 1..=nz {
        for y in 0..ny {
            for x in 0..nx {
                a[(z * ny + y) * nx + x] = noise_init(x as i32, y as i32, z as i32 - 1);
            }
        }
    }
    a
}

fn checksum(grid: &[f32], nx: usize, ny: usize, nz: usize) -> f32 {
    let mut sum = 0.0f32;
    for z in 1..=nz {
        for y in 0..ny {
            for x in 0..nx {
                sum += grid[(z * ny + y) * nx + x];
            }
        }
    }
    sum
}

/// The *C* baseline: hand-flattened, no abstraction at all.
pub mod c_style {
    use super::*;

    pub fn diffusion3d(nx: usize, ny: usize, nz: usize, steps: usize, cc: f32, cn: f32) -> f32 {
        let mut a = build_grid(nx, ny, nz);
        let mut b = a.clone();
        let plane = nx * ny;
        for _ in 0..steps {
            for z in 1..=nz {
                for y in 1..ny - 1 {
                    let row = (z * ny + y) * nx;
                    for x in 1..nx - 1 {
                        let i = row + x;
                        b[i] = cc * a[i]
                            + cn * (a[i - 1]
                                + a[i + 1]
                                + a[i - nx]
                                + a[i + nx]
                                + a[i - plane]
                                + a[i + plane]);
                    }
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        checksum(&a, nx, ny, nz)
    }
}

/// The component abstraction shared by the OO variants.
pub trait Solver {
    /// Seven-point neighborhood, exactly like the jlang `Solver3D`.
    #[allow(clippy::too_many_arguments)]
    fn solve(&self, c: f32, xm: f32, xp: f32, ym: f32, yp: f32, zm: f32, zp: f32) -> f32;
}

/// 3D diffusion solver component.
pub struct DiffusionSolver {
    pub cc: f32,
    pub cn: f32,
}

impl Solver for DiffusionSolver {
    #[inline]
    fn solve(&self, c: f32, xm: f32, xp: f32, ym: f32, yp: f32, zm: f32, zp: f32) -> f32 {
        self.cc * c + self.cn * (xm + xp + ym + yp + zm + zp)
    }
}

/// Damped-averaging solver (the alternative component).
pub struct DampedSolver {
    pub k: f32,
}

impl Solver for DampedSolver {
    #[inline]
    fn solve(&self, c: f32, xm: f32, xp: f32, ym: f32, yp: f32, zm: f32, zp: f32) -> f32 {
        let avg = (xm + xp + ym + yp + zm + zp) * 0.166_666_67;
        c + self.k * (avg - c)
    }
}

/// The *C++* baseline: dynamic dispatch through a vtable on every cell —
/// the per-element virtual call the paper measures.
pub mod virtual_style {
    use super::*;

    pub struct Runner {
        pub solver: Box<dyn Solver>,
    }

    impl Runner {
        pub fn invoke(&self, nx: usize, ny: usize, nz: usize, steps: usize) -> f32 {
            let mut a = build_grid(nx, ny, nz);
            let mut b = a.clone();
            let plane = nx * ny;
            for _ in 0..steps {
                for z in 1..=nz {
                    for y in 1..ny - 1 {
                        let row = (z * ny + y) * nx;
                        for x in 1..nx - 1 {
                            let i = row + x;
                            // Virtual dispatch per grid element.
                            b[i] = self.solver.solve(
                                a[i],
                                a[i - 1],
                                a[i + 1],
                                a[i - nx],
                                a[i + nx],
                                a[i - plane],
                                a[i + plane],
                            );
                        }
                    }
                }
                std::mem::swap(&mut a, &mut b);
            }
            checksum(&a, nx, ny, nz)
        }
    }
}

/// The *Template* baseline: the component is a type parameter, the call
/// monomorphizes away (C++ template metaprogramming; Rust generics).
pub mod template_style {
    use super::*;

    pub struct Runner<S: Solver> {
        pub solver: S,
    }

    impl<S: Solver> Runner<S> {
        pub fn invoke(&self, nx: usize, ny: usize, nz: usize, steps: usize) -> f32 {
            let mut a = build_grid(nx, ny, nz);
            let mut b = a.clone();
            let plane = nx * ny;
            for _ in 0..steps {
                for z in 1..=nz {
                    for y in 1..ny - 1 {
                        let row = (z * ny + y) * nx;
                        for x in 1..nx - 1 {
                            let i = row + x;
                            b[i] = self.solver.solve(
                                a[i],
                                a[i - 1],
                                a[i + 1],
                                a[i - nx],
                                a[i + nx],
                                a[i - plane],
                                a[i + plane],
                            );
                        }
                    }
                }
                std::mem::swap(&mut a, &mut b);
            }
            checksum(&a, nx, ny, nz)
        }
    }
}

/// The *Template w/o virt.* baseline: method bodies manually copied into
/// one concrete class — maximal inlining, no reuse (the paper notes the
/// modularity cost).
pub mod template_no_virt {
    use super::*;

    pub struct DiffusionRunner {
        pub cc: f32,
        pub cn: f32,
    }

    impl DiffusionRunner {
        pub fn invoke(&self, nx: usize, ny: usize, nz: usize, steps: usize) -> f32 {
            let mut a = build_grid(nx, ny, nz);
            let mut b = a.clone();
            let plane = nx * ny;
            let (cc, cn) = (self.cc, self.cn);
            for _ in 0..steps {
                for z in 1..=nz {
                    for y in 1..ny - 1 {
                        let row = (z * ny + y) * nx;
                        for x in 1..nx - 1 {
                            let i = row + x;
                            // Solver body copied inline (no call at all).
                            b[i] = cc * a[i]
                                + cn * (a[i - 1]
                                    + a[i + 1]
                                    + a[i - nx]
                                    + a[i + nx]
                                    + a[i - plane]
                                    + a[i + plane]);
                        }
                    }
                }
                std::mem::swap(&mut a, &mut b);
            }
            checksum(&a, nx, ny, nz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NX: usize = 12;
    const NY: usize = 10;
    const NZ: usize = 8;
    const STEPS: usize = 4;
    const CC: f32 = 0.4;
    const CN: f32 = 0.1;

    #[test]
    fn all_styles_compute_identical_checksums() {
        let c = c_style::diffusion3d(NX, NY, NZ, STEPS, CC, CN);
        let v = virtual_style::Runner {
            solver: Box::new(DiffusionSolver { cc: CC, cn: CN }),
        }
        .invoke(NX, NY, NZ, STEPS);
        let t = template_style::Runner {
            solver: DiffusionSolver { cc: CC, cn: CN },
        }
        .invoke(NX, NY, NZ, STEPS);
        let nv = template_no_virt::DiffusionRunner { cc: CC, cn: CN }.invoke(NX, NY, NZ, STEPS);
        assert_eq!(c, v);
        assert_eq!(c, t);
        assert_eq!(c, nv);
    }

    #[test]
    fn solver_component_switch_changes_result() {
        let diff = virtual_style::Runner {
            solver: Box::new(DiffusionSolver { cc: CC, cn: CN }),
        }
        .invoke(NX, NY, NZ, STEPS);
        let damp = virtual_style::Runner {
            solver: Box::new(DampedSolver { k: 0.5 }),
        }
        .invoke(NX, NY, NZ, STEPS);
        assert_ne!(diff, damp);
    }

    #[test]
    fn matches_the_jlang_library_semantics() {
        // Mirror of hpclib::reference_diffusion — same formulas, so the
        // native baselines and the translated library agree bit for bit.
        let ours = c_style::diffusion3d(8, 8, 6, 3, CC, CN);
        // Independently recompute with a differently structured loop.
        let nx = 8usize;
        let ny = 8usize;
        let nz = 6usize;
        let mut a = vec![0.0f32; nx * ny * (nz + 2)];
        for z in 1..=nz {
            for y in 0..ny {
                for x in 0..nx {
                    a[(z * ny + y) * nx + x] = noise_init(x as i32, y as i32, z as i32 - 1);
                }
            }
        }
        let mut b = a.clone();
        for _ in 0..3 {
            for z in 1..=nz {
                for y in 1..ny - 1 {
                    for x in 1..nx - 1 {
                        let i = (z * ny + y) * nx + x;
                        b[i] = CC * a[i]
                            + CN * (a[i - 1]
                                + a[i + 1]
                                + a[i - nx]
                                + a[i + nx]
                                + a[i - nx * ny]
                                + a[i + nx * ny]);
                    }
                }
            }
            std::mem::swap(&mut a, &mut b);
        }
        let want: f32 = (1..=nz)
            .flat_map(|z| (0..ny).flat_map(move |y| (0..nx).map(move |x| (x, y, z))))
            .map(|(x, y, z)| a[(z * ny + y) * nx + x])
            .sum();
        assert_eq!(ours, want);
    }
}
