//! # baselines — native-Rust analogues of the paper's C and C++ programs
//!
//! The primary reproduction measures every series on the same NIR engine
//! so that the only variable is the dispatch/representation strategy
//! (DESIGN.md §3). This crate is the *native cross-check*: the same four
//! styles expressed directly in Rust machine code —
//!
//! * `c_style` — hand-flattened, no abstraction (the paper's *C*),
//! * `virtual_style` — `dyn Trait` dispatch per element (*C++*),
//! * `template_style` — generics/monomorphization (*Template*),
//! * `template_no_virt` — method bodies manually copied inline
//!   (*Template w/o virt.*),
//!
//! for both evaluation workloads (3-D diffusion and matrix
//! multiplication). The Criterion benches in the `bench` crate measure
//! these in wall time; their ordering should match the engine-level
//! ordering of the translated series.

#![forbid(unsafe_code)]

pub mod diffusion;
pub mod matmul;
