//! Native-Rust analogues of the paper's C/C++ matrix-multiplication
//! baselines (§4.2), mirroring `hpclib`'s matmul library semantics:
//! `DefaultGen` inputs, `C = A·B`, checksum of `C`.

/// `DefaultGen.value` (identical to the jlang library).
#[inline]
pub fn default_gen(which: i32, r: i32, c: i32, _n: i32) -> f32 {
    let h = r * 13 + c * 7 + which * 101;
    ((h % 19) - 9) as f32 * 0.125
}

pub fn gen_matrix(which: i32, n: usize) -> Vec<f32> {
    (0..n * n)
        .map(|i| default_gen(which, (i / n) as i32, (i % n) as i32, n as i32))
        .collect()
}

/// The *C* baseline: flat ikj loops on raw slices.
pub mod c_style {
    use super::*;

    pub fn matmul_checksum(n: usize) -> f32 {
        let a = gen_matrix(0, n);
        let b = gen_matrix(1, n);
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i * n + k];
                for j in 0..n {
                    c[i * n + j] += aik * b[k * n + j];
                }
            }
        }
        c.iter().sum()
    }
}

/// The data abstraction shared by the OO variants (the library's
/// `Matrix` interface).
pub trait Matrix {
    fn get(&self, r: usize, c: usize) -> f32;
    fn set(&mut self, r: usize, c: usize, v: f32);
    fn size(&self) -> usize;
}

pub struct SimpleMatrix {
    pub d: Vec<f32>,
    pub n: usize,
}

impl SimpleMatrix {
    pub fn generated(which: i32, n: usize) -> Self {
        SimpleMatrix {
            d: gen_matrix(which, n),
            n,
        }
    }

    pub fn zero(n: usize) -> Self {
        SimpleMatrix {
            d: vec![0.0; n * n],
            n,
        }
    }
}

impl Matrix for SimpleMatrix {
    #[inline]
    fn get(&self, r: usize, c: usize) -> f32 {
        self.d[r * self.n + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f32) {
        self.d[r * self.n + c] = v;
    }

    fn size(&self) -> usize {
        self.n
    }
}

/// The *C++* baseline: per-element dynamic dispatch through `dyn Matrix`.
pub mod virtual_style {
    use super::*;

    pub fn multiply_add(a: &dyn Matrix, b: &dyn Matrix, c: &mut dyn Matrix) {
        let n = a.size();
        for i in 0..n {
            for k in 0..n {
                let aik = a.get(i, k);
                for j in 0..n {
                    c.set(i, j, c.get(i, j) + aik * b.get(k, j));
                }
            }
        }
    }

    pub fn matmul_checksum(n: usize) -> f32 {
        let a = SimpleMatrix::generated(0, n);
        let b = SimpleMatrix::generated(1, n);
        let mut c = SimpleMatrix::zero(n);
        multiply_add(&a, &b, &mut c);
        c.d.iter().sum()
    }
}

/// The *Template* baseline: monomorphized accessors.
pub mod template_style {
    use super::*;

    pub fn multiply_add<M: Matrix>(a: &M, b: &M, c: &mut M) {
        let n = a.size();
        for i in 0..n {
            for k in 0..n {
                let aik = a.get(i, k);
                for j in 0..n {
                    c.set(i, j, c.get(i, j) + aik * b.get(k, j));
                }
            }
        }
    }

    pub fn matmul_checksum(n: usize) -> f32 {
        let a = SimpleMatrix::generated(0, n);
        let b = SimpleMatrix::generated(1, n);
        let mut c = SimpleMatrix::zero(n);
        multiply_add(&a, &b, &mut c);
        c.d.iter().sum()
    }
}

/// The *Template w/o virt.* baseline: the accessor bodies manually copied
/// into one flat routine over the concrete representation.
pub mod template_no_virt {
    use super::*;

    pub fn matmul_checksum(n: usize) -> f32 {
        let a = SimpleMatrix::generated(0, n);
        let b = SimpleMatrix::generated(1, n);
        let mut c = SimpleMatrix::zero(n);
        // get/set copied inline onto the raw vectors.
        for i in 0..n {
            for k in 0..n {
                let aik = a.d[i * n + k];
                for j in 0..n {
                    c.d[i * n + j] += aik * b.d[k * n + j];
                }
            }
        }
        c.d.iter().sum()
    }
}

/// A sequential model of the Fox algorithm's block schedule (for checking
/// the block decomposition used by the jlang `FoxAlgorithm`): the global
/// matrix is split into q×q blocks and accumulated in Fox order.
pub fn fox_schedule_checksum(n: usize, q: usize) -> f32 {
    assert_eq!(n % q, 0, "block size must divide n");
    let m = n / q;
    let a = gen_matrix(0, n);
    let b = gen_matrix(1, n);
    let mut c = vec![0.0f32; n * n];
    // For each process (row, col) and Fox step k, multiply block
    // A[row, root] * B[root, col] into C[row, col], root = (row + k) % q.
    for step in 0..q {
        for row in 0..q {
            for col in 0..q {
                let root = (row + step) % q;
                for i in 0..m {
                    for k in 0..m {
                        let aik = a[(row * m + i) * n + (root * m + k)];
                        for j in 0..m {
                            c[(row * m + i) * n + (col * m + j)] +=
                                aik * b[(root * m + k) * n + (col * m + j)];
                        }
                    }
                }
            }
        }
    }
    c.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_styles_compute_identical_checksums() {
        for n in [8usize, 13, 24] {
            let c = c_style::matmul_checksum(n);
            let v = virtual_style::matmul_checksum(n);
            let t = template_style::matmul_checksum(n);
            let nv = template_no_virt::matmul_checksum(n);
            assert_eq!(c, v, "n={n}");
            assert_eq!(c, t, "n={n}");
            assert_eq!(c, nv, "n={n}");
        }
    }

    #[test]
    fn fox_schedule_matches_plain_multiplication() {
        for (n, q) in [(12usize, 2usize), (18, 3), (16, 4)] {
            let plain = c_style::matmul_checksum(n);
            let fox = fox_schedule_checksum(n, q);
            let scale = plain.abs().max(1.0);
            assert!(
                (plain - fox).abs() <= scale * 1e-4,
                "n={n} q={q}: {plain} vs {fox}"
            );
        }
    }

    #[test]
    fn generated_inputs_are_nontrivial() {
        let a = gen_matrix(0, 16);
        let b = gen_matrix(1, 16);
        assert_ne!(a, b);
        assert!(a.iter().any(|v| *v > 0.0));
        assert!(a.iter().any(|v| *v < 0.0));
    }
}
