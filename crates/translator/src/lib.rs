//! # translator — the WootinJ JIT: Java-subset → flat native IR
//!
//! This crate is the paper's primary contribution rebuilt in Rust. Given a
//! typed class table, a *live* receiver object (composed in the `jvm`
//! interpreter's heap, exactly like the untranslated Java side of a
//! WootinJ application), an entry method, and the actual argument values,
//! it produces a NIR program in one of three configurations:
//!
//! | mode | paper series | dispatch | objects |
//! |---|---|---|---|
//! | [`Mode::Full`]    | *WootinJ*  | devirtualized + specialized | inlined into registers |
//! | [`Mode::Devirt`]  | *Template* | devirtualized + specialized | heap + field indirection |
//! | [`Mode::Virtual`] | *C++*      | vtable dispatch             | heap + field indirection |
//!
//! The hand-written *C* baselines bypass this crate entirely (see the
//! `baselines` crate), and the *Java* series is the `jvm` interpreter.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod incr;
pub mod lower;
pub mod shape;
pub mod sheval;
pub mod virt;

use jlang::table::ClassTable;
use jlang::types::ClassId;
use jvm::{ArrayData, Jvm, Value};
use nir::{FuncId, Instr, IntrinOp, OptConfig, Program};

pub use artifact::CacheKey;
pub use incr::{BodyRef, CalleeEdge, FnMemo, FnRec, MemberRef, ReplayState, TraceState};
pub use lower::{Lowerer, TransStats};
pub use shape::{leaf_paths, shape_of_value, LeafPath, Shape, TransError};
pub use sheval::SpecKey;

pub type TResult<T> = Result<T, TransError>;

/// Translation mode (see the crate docs for the paper-series mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Vtable dispatch, heap objects (*C++*).
    Virtual,
    /// Devirtualized + specialized, heap objects (*Template*).
    Devirt,
    /// Devirtualized + specialized + object inlining (*WootinJ*).
    Full,
}

/// Translator configuration. `Eq`/`Hash` make it usable as part of a
/// code-cache key: every field that changes what translation emits
/// participates in identity. [`TransConfig::parallel_lowering`] is
/// deliberately *excluded* (manual `PartialEq`/`Hash` below, and it is
/// never written into artifact fingerprints): it changes which thread
/// optimizes each function, never the bytes emitted, so serial and
/// parallel translations of the same entry must share one cache slot
/// and one on-disk artifact.
#[derive(Debug, Clone, Copy)]
pub struct TransConfig {
    pub mode: Mode,
    /// NIR optimizer setting — the Table 1/2 analogue. `aggressive()`
    /// (function inlining) models the paper's *Template w/o virt.*.
    pub opt: OptConfig,
    /// Enforce the eight coding rules before translating (the paper's
    /// `@WootinJ` contract). On by default.
    pub check_rules: bool,
    /// Dispatch independent per-function optimization onto OS threads
    /// (the `exec::pool` work pool). Inlining still runs serially first
    /// (it rewrites callers against the whole function table); the
    /// local passes then fan out per function and their profiles merge
    /// deterministically in canonical pass order, so function bodies,
    /// FuncIds, and `encode_semantic()` bytes are identical to serial.
    pub parallel_lowering: bool,
}

impl PartialEq for TransConfig {
    fn eq(&self, other: &Self) -> bool {
        // `parallel_lowering` is not part of translation identity.
        self.mode == other.mode && self.opt == other.opt && self.check_rules == other.check_rules
    }
}

impl Eq for TransConfig {}

impl std::hash::Hash for TransConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.mode.hash(state);
        self.opt.hash(state);
        self.check_rules.hash(state);
    }
}

impl TransConfig {
    pub fn full() -> Self {
        TransConfig {
            mode: Mode::Full,
            opt: OptConfig::standard(),
            check_rules: true,
            parallel_lowering: false,
        }
    }

    pub fn devirt() -> Self {
        TransConfig {
            mode: Mode::Devirt,
            opt: OptConfig::standard(),
            check_rules: true,
            parallel_lowering: false,
        }
    }

    pub fn virtual_dispatch() -> Self {
        TransConfig {
            mode: Mode::Virtual,
            opt: OptConfig::standard(),
            check_rules: false,
            parallel_lowering: false,
        }
    }

    /// *Template w/o virt.*: full pipeline plus NIR function inlining.
    pub fn template_no_virt() -> Self {
        TransConfig {
            mode: Mode::Full,
            opt: OptConfig::aggressive(),
            check_rules: true,
            parallel_lowering: false,
        }
    }

    /// Fan per-function optimization out over OS threads (see
    /// [`TransConfig::parallel_lowering`]). Output bytes and cache
    /// identity are unchanged — only who does the work.
    pub fn with_parallel_lowering(mut self) -> Self {
        self.parallel_lowering = true;
        self
    }
}

/// How to build each NIR entry parameter from the live jvm values.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// A leaf of the (flattened) receiver, addressed by field-slot path.
    RecvLeaf { path: Vec<u32> },
    /// A leaf of flattened argument `arg`.
    ArgLeaf { arg: usize, path: Vec<u32> },
    /// The whole receiver, materialized as a heap object.
    RecvObj,
    /// Argument `arg` as a single value (prim / array / heap object).
    ArgWhole(usize),
}

/// The output of translation.
#[derive(Debug)]
pub struct Translated {
    pub program: Program,
    pub entry: FuncId,
    pub bindings: Vec<Binding>,
    pub mode: Mode,
    pub stats: TransStats,
    pub uses_mpi: bool,
    pub uses_gpu: bool,
    /// Virtual-mode impls skipped because they cannot compile on this
    /// path (kept for diagnostics).
    pub warnings: Vec<String>,
}

impl Translated {
    /// Render the Listing-5-style C/CUDA source for this program.
    pub fn c_source(&self) -> String {
        nir::emit_c(&self.program)
    }
}

/// The canonical specialization identity of an entry invocation: every
/// piece of the *live object graph* that translation reads. Two calls
/// with equal `EntrySpec` and equal [`TransConfig`] (plus an identical
/// host-FFI registry) translate to identical programs, which is what
/// makes it the key of the `wootinj` JIT code cache.
///
/// It is derived from the same exact-type analysis that drives
/// devirtualization, so two structurally identical object graphs —
/// differing only in field *values* — map to the same spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EntrySpec {
    /// Devirt/Full modes specialize on the deep shape (exact dynamic
    /// type tuple) of the receiver and argument object graphs.
    Shaped(SpecKey),
    /// Virtual mode compiles the whole class closure from static types
    /// and reads no shapes (so it also tolerates nulls and object arrays
    /// in the live graph); only the resolved entry and arity matter.
    Opaque {
        class: ClassId,
        method: u32,
        arity: usize,
    },
}

/// Extract the [`EntrySpec`] for `recv.method(args)` without translating
/// anything — the pure key-derivation half of [`translate`].
pub fn entry_spec(
    table: &ClassTable,
    jvm: &Jvm<'_>,
    recv: &Value,
    method: &str,
    args: &[Value],
    mode: Mode,
) -> TResult<EntrySpec> {
    let recv_class = jvm
        .runtime_class(recv)
        .map_err(|e| TransError::new(format!("entry receiver: {}", e.message)))?;
    let (ic, im) = table.resolve_impl(recv_class, method).ok_or_else(|| {
        TransError::new(format!(
            "no implementation of `{method}` on `{}`",
            table.name(recv_class)
        ))
    })?;
    Ok(match mode {
        Mode::Virtual => EntrySpec::Opaque {
            class: ic,
            method: im,
            arity: args.len(),
        },
        Mode::Devirt | Mode::Full => {
            let recv_shape = shape_of_value(jvm, recv)?;
            let arg_shapes: Vec<Shape> = args
                .iter()
                .map(|a| shape_of_value(jvm, a))
                .collect::<TResult<_>>()?;
            EntrySpec::Shaped(SpecKey {
                class: ic,
                method: im,
                recv: Some(recv_shape),
                args: arg_shapes,
            })
        }
    })
}

/// Translate `recv.method(args)` — the reproduction of `WootinJ.jit`.
pub fn translate(
    table: &ClassTable,
    jvm: &Jvm<'_>,
    recv: &Value,
    method: &str,
    args: &[Value],
    config: TransConfig,
) -> TResult<Translated> {
    let recv_class = jvm
        .runtime_class(recv)
        .map_err(|e| TransError::new(format!("entry receiver: {}", e.message)))?;

    if config.check_rules {
        let info = table.class(recv_class);
        if !info.has_annotation("WootinJ") {
            return Err(TransError::new(format!(
                "entry class `{}` is not annotated @WootinJ",
                info.name
            )));
        }
        let report = jrules::check_program(table);
        if !report.is_ok() {
            return Err(TransError::new(format!(
                "coding-rule violations:\n{}",
                report.render()
            )));
        }
    }

    let spec = entry_spec(table, jvm, recv, method, args, config.mode)?;

    let (mut program, entry, bindings, mut stats, warnings) = match &spec {
        EntrySpec::Opaque {
            class: ic,
            method: im,
            ..
        } => {
            let mut vl = virt::VirtLowerer::new(table);
            let entry = vl.compile_entry(*ic, *im)?;
            let mut bindings = Vec::new();
            if !table.method(*ic, *im).is_static {
                bindings.push(Binding::RecvObj);
            }
            for i in 0..args.len() {
                bindings.push(Binding::ArgWhole(i));
            }
            let warnings = vl
                .skipped
                .iter()
                .map(|(what, why)| format!("skipped `{what}`: {why}"))
                .collect();
            (vl.program, entry, bindings, vl.stats, warnings)
        }
        EntrySpec::Shaped(key) => {
            let flatten = config.mode == Mode::Full;
            let mut lw = Lowerer::new(table, flatten);
            let entry = match lw.lower_spec(key, false)? {
                lower::SpecResult::Func { id, .. } => id,
                lower::SpecResult::InlineOnly { .. } => {
                    return Err(TransError::new(
                        "the entry method returns a composite object; return void or a scalar",
                    ))
                }
            };
            let bindings = shaped_bindings(key, flatten, args.len());
            (lw.program, entry, bindings, lw.stats, Vec::new())
        }
    };

    program.entry = Some(entry);
    stats.passes = optimize_program(&mut program, &config);
    program
        .validate()
        .map_err(|m| TransError::new(format!("internal error: generated program invalid: {m}")))?;

    let (uses_mpi, uses_gpu) = scan_uses(&program);

    Ok(Translated {
        program,
        entry,
        bindings,
        mode: config.mode,
        stats,
        uses_mpi,
        uses_gpu,
        warnings,
    })
}

/// Run the NIR optimizer over a freshly lowered program, honoring
/// [`TransConfig::parallel_lowering`]: serial is the historical
/// whole-program pipeline; parallel runs inlining serially first (it
/// rewrites callers against the whole function table), then fans the
/// local passes out per function on the `exec::pool` work pool and
/// merges their profiles deterministically in canonical pass order.
/// Function bodies — and therefore `encode_semantic()` bytes — are
/// identical either way: per-function local passes are *exactly*
/// whole-program optimization once inlining has run (see
/// [`nir::optimize_fn`]), and results return in function-index order.
pub fn optimize_program(program: &mut Program, config: &TransConfig) -> Vec<nir::PassProfile> {
    let workers = exec::pool::default_workers();
    if !config.parallel_lowering || workers < 2 || program.funcs.len() < 2 {
        return nir::optimize(program, config.opt);
    }
    let mut profiles = Vec::new();
    if config.opt.inline_limit > 0 {
        let mut inline_only = OptConfig::none();
        inline_only.inline_limit = config.opt.inline_limit;
        profiles.extend(nir::optimize(program, inline_only));
    }
    let mut local = config.opt;
    local.inline_limit = 0;
    let funcs = std::mem::take(&mut program.funcs);
    let optimized = exec::pool::parallel_map(workers, funcs, |_, mut f| {
        let prof = nir::optimize_fn(&mut f, local);
        (f, prof)
    });
    let mut parts = Vec::new();
    for (f, prof) in optimized {
        program.funcs.push(f);
        parts.extend(prof);
    }
    profiles.extend(nir::merge_profiles(parts));
    profiles
}

/// Optimize the functions at `indices` with the local (per-function)
/// passes — the incremental query layer's counterpart of
/// [`optimize_program`], for the `inline_limit == 0` path where only
/// freshly lowered functions need optimizing. Honors
/// [`TransConfig::parallel_lowering`]; either way the profiles return
/// concatenated in the given index order, exactly as the serial loop
/// produces them, so `TransStats::passes` is shape-identical.
pub fn optimize_functions(
    program: &mut Program,
    indices: &[usize],
    config: &TransConfig,
) -> Vec<nir::PassProfile> {
    let workers = exec::pool::default_workers();
    if !config.parallel_lowering || workers < 2 || indices.len() < 2 {
        let mut passes = Vec::new();
        for &i in indices {
            passes.extend(nir::optimize_fn(&mut program.funcs[i], config.opt));
        }
        return passes;
    }
    // Move the scattered functions out (cheap stub swap — no body
    // copies), optimize in parallel, reinstall by index.
    let stub = || nir::Function {
        name: String::new(),
        params: Vec::new(),
        ret: None,
        regs: Vec::new(),
        code: Vec::new(),
        kind: nir::FuncKind::Host,
    };
    let opt = config.opt;
    let fresh: Vec<(usize, nir::Function)> = indices
        .iter()
        .map(|&i| (i, std::mem::replace(&mut program.funcs[i], stub())))
        .collect();
    let optimized = exec::pool::parallel_map(workers, fresh, |_, (i, mut f)| {
        let prof = nir::optimize_fn(&mut f, opt);
        (i, f, prof)
    });
    let mut passes = Vec::new();
    for (i, f, prof) in optimized {
        program.funcs[i] = f;
        passes.extend(prof);
    }
    passes
}

/// Entry-argument bindings for a shape-specialized entry: per-leaf in
/// flattened (Full) mode, whole-value in heap (Devirt) mode. Shared by
/// the classic [`translate`] path and the incremental query pipeline so
/// both derive identical [`Translated`] artifacts.
pub fn shaped_bindings(key: &SpecKey, flatten: bool, nargs: usize) -> Vec<Binding> {
    let mut bindings = Vec::new();
    if flatten {
        if let Some(recv_shape) = &key.recv {
            for leaf in leaf_paths(recv_shape) {
                bindings.push(Binding::RecvLeaf { path: leaf.path });
            }
        }
        for (i, s) in key.args.iter().enumerate() {
            for leaf in leaf_paths(s) {
                bindings.push(Binding::ArgLeaf {
                    arg: i,
                    path: leaf.path,
                });
            }
        }
    } else {
        bindings.push(Binding::RecvObj);
        for i in 0..nargs {
            bindings.push(Binding::ArgWhole(i));
        }
    }
    bindings
}

/// Scan a lowered program for the platform capabilities it exercises:
/// `(uses_mpi, uses_gpu)`. Shared with the incremental pipeline.
pub fn scan_uses(program: &nir::Program) -> (bool, bool) {
    let mut uses_mpi = false;
    let mut uses_gpu = false;
    for f in &program.funcs {
        for ins in &f.code {
            match ins {
                Instr::Launch { .. } | Instr::Sync | Instr::SharedAlloc { .. } => uses_gpu = true,
                Instr::Intrin { op, .. } => match op {
                    IntrinOp::MpiRank
                    | IntrinOp::MpiSize
                    | IntrinOp::MpiBarrier
                    | IntrinOp::MpiSendF32
                    | IntrinOp::MpiRecvF32
                    | IntrinOp::MpiSendRecvF32
                    | IntrinOp::MpiBcastF32
                    | IntrinOp::MpiAllreduceSumF64
                    | IntrinOp::MpiAllreduceSumF32
                    | IntrinOp::MpiAllreduceMaxF64 => uses_mpi = true,
                    IntrinOp::CopyToGpu
                    | IntrinOp::CopyFromGpu
                    | IntrinOp::GpuAllocF32
                    | IntrinOp::GpuFree
                    | IntrinOp::ThreadIdx(_)
                    | IntrinOp::BlockIdx(_)
                    | IntrinOp::BlockDim(_)
                    | IntrinOp::GridDim(_) => uses_gpu = true,
                    _ => {}
                },
                _ => {}
            }
        }
    }
    (uses_mpi, uses_gpu)
}

/// Build the entry argument vector for the translated program from live
/// jvm values, deep-copying arrays (and, in heap modes, object graphs)
/// into the target machine — the paper's "arguments are deeply copied
/// from the Java memory space" semantics.
pub fn bind_entry_args(
    jvm: &Jvm<'_>,
    recv: &Value,
    args: &[Value],
    bindings: &[Binding],
    machine: &mut exec::Machine,
) -> TResult<Vec<exec::Val>> {
    let mut out = Vec::with_capacity(bindings.len());
    for b in bindings {
        match b {
            Binding::RecvLeaf { path } => out.push(leaf_val(jvm, recv, path, machine)?),
            Binding::ArgLeaf { arg, path } => {
                let v = args
                    .get(*arg)
                    .ok_or_else(|| TransError::new("missing entry argument"))?;
                out.push(leaf_val(jvm, v, path, machine)?);
            }
            Binding::RecvObj => out.push(materialize(jvm, recv, machine)?),
            Binding::ArgWhole(i) => {
                let v = args
                    .get(*i)
                    .ok_or_else(|| TransError::new("missing entry argument"))?;
                out.push(materialize(jvm, v, machine)?);
            }
        }
    }
    Ok(out)
}

fn leaf_val(
    jvm: &Jvm<'_>,
    root: &Value,
    path: &[u32],
    machine: &mut exec::Machine,
) -> TResult<exec::Val> {
    let mut cur = root.clone();
    for slot in path {
        let r = cur
            .as_obj()
            .map_err(|m| TransError::new(format!("leaf path through non-object: {m}")))?;
        cur = jvm.heap.obj(r).fields[*slot as usize].clone();
    }
    materialize(jvm, &cur, machine)
}

/// Deep-copy a jvm value into the machine (arrays copied; objects
/// recursively materialized into the machine's object heap).
pub fn materialize(jvm: &Jvm<'_>, v: &Value, machine: &mut exec::Machine) -> TResult<exec::Val> {
    Ok(match v {
        Value::Int(x) => exec::Val::I32(*x),
        Value::Long(x) => exec::Val::I64(*x),
        Value::Float(x) => exec::Val::F32(*x),
        Value::Double(x) => exec::Val::F64(*x),
        Value::Bool(x) => exec::Val::Bool(*x),
        Value::Arr(r) => {
            let store = match jvm.heap.arr(*r) {
                ArrayData::I32(d) => exec::ArrStore::I32(d.clone()),
                ArrayData::I64(d) => exec::ArrStore::I64(d.clone()),
                ArrayData::F32(d) => exec::ArrStore::F32(d.clone()),
                ArrayData::F64(d) => exec::ArrStore::F64(d.clone()),
                ArrayData::Bool(d) => exec::ArrStore::Bool(d.clone()),
                ArrayData::Ref(_) => {
                    return Err(TransError::new("object arrays cannot be materialized"))
                }
            };
            exec::Val::Arr(machine.mem.alloc(store))
        }
        Value::Obj(r) => {
            let obj = jvm.heap.obj(*r);
            let h = machine.objs.alloc(obj.class.0, obj.fields.len());
            for (slot, fv) in obj.fields.clone().iter().enumerate() {
                let mv = materialize(jvm, fv, machine)?;
                machine
                    .objs
                    .set(h, slot as u32, mv)
                    .map_err(|e| TransError::new(e.to_string()))?;
            }
            exec::Val::Obj(h)
        }
        other => return Err(TransError::new(format!("cannot materialize {other}"))),
    })
}

/// Resolve the class id the entry dispatches on (helper for the facade).
pub fn entry_class(jvm: &Jvm<'_>, recv: &Value) -> TResult<ClassId> {
    jvm.runtime_class(recv)
        .map_err(|e| TransError::new(e.message))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec::{run_to_completion, Machine, Val};
    use jlang::compile_str;

    const APP: &str = "
        @WootinJ interface Solver { float solve(float self, int index); }
        @WootinJ final class PhysSolver implements Solver {
          float a; float b;
          PhysSolver(float a0, float b0) { a = a0; b = b0; }
          float solve(float self, int index) { return a * self + b * index; }
        }
        @WootinJ final class App {
          Solver solver;
          App(Solver s) { solver = s; }
          float run(float[] data, int steps) {
            for (int t = 0; t < steps; t++) {
              for (int i = 0; i < data.length; i++) {
                data[i] = solver.solve(data[i], i);
              }
            }
            float sum = 0f;
            for (int i = 0; i < data.length; i++) { sum += data[i]; }
            return sum;
          }
        }";

    fn run_translated(mode: Mode, opt: OptConfig) -> (f32, Translated, Machine) {
        let table = compile_str(APP).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let solver = jvm
            .new_instance("PhysSolver", &[Value::Float(0.5), Value::Float(0.25)])
            .unwrap();
        let app = jvm.new_instance("App", &[solver]).unwrap();
        let data = jvm.new_f32_array(&[1.0, 2.0, 3.0, 4.0]);
        let args = [data, Value::Int(3)];
        let t = translate(
            &table,
            &jvm,
            &app,
            "run",
            &args,
            TransConfig {
                mode,
                opt,
                check_rules: true,
                parallel_lowering: false,
            },
        )
        .unwrap();
        let mut machine = Machine::with_globals(&t.program);
        let vals = bind_entry_args(&jvm, &app, &args, &t.bindings, &mut machine).unwrap();
        let out = run_to_completion(&t.program, t.entry, vals, &mut machine).unwrap();
        match out {
            Some(Val::F32(v)) => (v, t, machine),
            other => panic!("unexpected result {other:?}"),
        }
    }

    fn jvm_reference() -> f32 {
        let table = compile_str(APP).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let solver = jvm
            .new_instance("PhysSolver", &[Value::Float(0.5), Value::Float(0.25)])
            .unwrap();
        let app = jvm.new_instance("App", &[solver]).unwrap();
        let data = jvm.new_f32_array(&[1.0, 2.0, 3.0, 4.0]);
        match jvm.call(&app, "run", &[data, Value::Int(3)]).unwrap() {
            Value::Float(v) => v,
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn full_mode_matches_interpreter() {
        let expected = jvm_reference();
        let (got, t, _) = run_translated(Mode::Full, OptConfig::standard());
        assert_eq!(got, expected);
        assert!(t.stats.devirtualized_calls > 0);
    }

    #[test]
    fn devirt_mode_matches_interpreter() {
        let expected = jvm_reference();
        let (got, _, _) = run_translated(Mode::Devirt, OptConfig::standard());
        assert_eq!(got, expected);
    }

    #[test]
    fn virtual_mode_matches_interpreter() {
        let expected = jvm_reference();
        let (got, t, _) = run_translated(Mode::Virtual, OptConfig::standard());
        assert_eq!(got, expected);
        assert!(t.stats.virtual_calls > 0);
    }

    #[test]
    fn template_no_virt_matches_interpreter() {
        let expected = jvm_reference();
        let (got, _, _) = run_translated(Mode::Full, OptConfig::aggressive());
        assert_eq!(got, expected);
    }

    #[test]
    fn full_mode_erases_objects() {
        let (_, t, _) = run_translated(Mode::Full, OptConfig::standard());
        for f in &t.program.funcs {
            for ins in &f.code {
                assert!(
                    !matches!(
                        ins,
                        Instr::GetField { .. }
                            | Instr::PutField { .. }
                            | Instr::NewObj { .. }
                            | Instr::CallVirt { .. }
                    ),
                    "object operation survived object inlining: {ins:?} in {}",
                    f.name
                );
            }
        }
    }

    #[test]
    fn devirt_keeps_heap_but_no_virtual_calls() {
        let (_, t, _) = run_translated(Mode::Devirt, OptConfig::standard());
        let mut has_field = false;
        for f in &t.program.funcs {
            for ins in &f.code {
                assert!(
                    !matches!(ins, Instr::CallVirt { .. }),
                    "virtual call survived devirt"
                );
                if matches!(ins, Instr::GetField { .. }) {
                    has_field = true;
                }
            }
        }
        assert!(has_field, "Template mode should keep field indirection");
    }

    #[test]
    fn virtual_mode_keeps_vtable_dispatch() {
        let (_, t, _) = run_translated(Mode::Virtual, OptConfig::standard());
        let mut has_virt = false;
        for f in &t.program.funcs {
            for ins in &f.code {
                if matches!(ins, Instr::CallVirt { .. }) {
                    has_virt = true;
                }
            }
        }
        assert!(has_virt);
    }

    #[test]
    fn cycle_costs_rank_correctly_across_modes() {
        // The deterministic cycle counters must order Full < Devirt < Virtual
        // for identical workloads — that ordering *is* Figure 3.
        let (_, _, m_full) = run_translated(Mode::Full, OptConfig::standard());
        let (_, _, m_dev) = run_translated(Mode::Devirt, OptConfig::standard());
        let (_, _, m_virt) = run_translated(Mode::Virtual, OptConfig::standard());
        assert!(
            m_full.counters.cycles < m_dev.counters.cycles,
            "full {} !< devirt {}",
            m_full.counters.cycles,
            m_dev.counters.cycles
        );
        assert!(
            m_dev.counters.cycles < m_virt.counters.cycles,
            "devirt {} !< virtual {}",
            m_dev.counters.cycles,
            m_virt.counters.cycles
        );
    }

    #[test]
    fn multi_leaf_object_returns_are_inlined() {
        let src = "
            @WootinJ final class Pair { float x; float y; Pair(float a, float b) { x = a; y = b; } }
            @WootinJ final class M {
              M() { }
              Pair mk(float a) { return new Pair(a, a * 2f); }
              float run(float a) { Pair p = mk(a); return p.x + p.y; }
            }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let m = jvm.new_instance("M", &[]).unwrap();
        let t = translate(
            &table,
            &jvm,
            &m,
            "run",
            &[Value::Float(3.0)],
            TransConfig::full(),
        )
        .unwrap();
        assert!(t.stats.inlined_calls > 0);
        let mut machine = Machine::with_globals(&t.program);
        let vals =
            bind_entry_args(&jvm, &m, &[Value::Float(3.0)], &t.bindings, &mut machine).unwrap();
        let out = run_to_completion(&t.program, t.entry, vals, &mut machine).unwrap();
        assert_eq!(out, Some(Val::F32(9.0)));
    }

    #[test]
    fn rules_violations_block_translation() {
        let src = "
            @WootinJ final class Bad {
              int counter;
              Bad() { counter = 0; }
              void run(int n) { counter = counter + n; }
            }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let bad = jvm.new_instance("Bad", &[]).unwrap();
        let err = translate(
            &table,
            &jvm,
            &bad,
            "run",
            &[Value::Int(1)],
            TransConfig::full(),
        )
        .unwrap_err();
        assert!(err.message.contains("coding-rule"), "{err}");
    }

    #[test]
    fn missing_wootinj_annotation_blocks_translation() {
        let src = "final class Plain { Plain() { } void run() { } }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let p = jvm.new_instance("Plain", &[]).unwrap();
        let err = translate(&table, &jvm, &p, "run", &[], TransConfig::full()).unwrap_err();
        assert!(err.message.contains("@WootinJ"), "{err}");
    }

    #[test]
    fn generated_c_source_shows_devirtualized_calls() {
        let (_, t, _) = run_translated(Mode::Full, OptConfig::standard());
        let src = t.c_source();
        // A specialized, devirtualized solve function exists and is
        // called directly.
        assert!(src.contains("PhysSolver_solve"), "{src}");
        assert!(!src.contains("VCALL"), "{src}");
    }

    #[test]
    fn generic_library_translates() {
        let src = "
            @WootinJ interface Ctx { }
            @WootinJ final class MyCtx implements Ctx { float k; MyCtx(float k0) { k = k0; } float k() { return k; } }
            @WootinJ final class Holder<T extends Ctx> { T ctx; Holder(T c) { ctx = c; } T get() { return ctx; } }
            @WootinJ final class G {
              Holder<MyCtx> h;
              G(Holder<MyCtx> h0) { h = h0; }
              float run(float x) { return h.get().k() * x; }
            }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let ctx = jvm.new_instance("MyCtx", &[Value::Float(4.0)]).unwrap();
        let holder = jvm.new_instance("Holder", &[ctx]).unwrap();
        let g = jvm.new_instance("G", &[holder]).unwrap();
        let t = translate(
            &table,
            &jvm,
            &g,
            "run",
            &[Value::Float(2.5)],
            TransConfig::full(),
        )
        .unwrap();
        let mut machine = Machine::with_globals(&t.program);
        let vals =
            bind_entry_args(&jvm, &g, &[Value::Float(2.5)], &t.bindings, &mut machine).unwrap();
        let out = run_to_completion(&t.program, t.entry, vals, &mut machine).unwrap();
        assert_eq!(out, Some(Val::F32(10.0)));
    }

    #[test]
    fn different_shapes_produce_different_specializations() {
        let src = "
            @WootinJ interface Op { float f(float x); }
            @WootinJ final class Dbl implements Op { Dbl() { } float f(float x) { return x * 2f; } }
            @WootinJ final class Sqr implements Op { Sqr() { } float f(float x) { return x * x; } }
            @WootinJ final class TwoOps {
              Op a; Op b;
              TwoOps(Op a0, Op b0) { a = a0; b = b0; }
              float run(float x) { return a.f(x) + b.f(x); }
            }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let d = jvm.new_instance("Dbl", &[]).unwrap();
        let s = jvm.new_instance("Sqr", &[]).unwrap();
        let two = jvm.new_instance("TwoOps", &[d, s]).unwrap();
        let t = translate(
            &table,
            &jvm,
            &two,
            "run",
            &[Value::Float(3.0)],
            TransConfig::full(),
        )
        .unwrap();
        // run + Dbl::f + Sqr::f
        assert!(t.stats.specializations >= 3, "{:?}", t.stats);
        let mut machine = Machine::with_globals(&t.program);
        let vals =
            bind_entry_args(&jvm, &two, &[Value::Float(3.0)], &t.bindings, &mut machine).unwrap();
        let out = run_to_completion(&t.program, t.entry, vals, &mut machine).unwrap();
        assert_eq!(out, Some(Val::F32(15.0)));
    }

    #[test]
    fn constructor_inlining_inside_translated_code() {
        let src = "
            @WootinJ final class Acc { float v; Acc(float v0) { v = v0; } float val() { return v; } }
            @WootinJ final class K {
              K() { }
              float run(int n) {
                float s = 0f;
                for (int i = 0; i < n; i++) {
                  Acc a = new Acc(s + i);
                  s = a.val();
                }
                return s;
              }
            }";
        let table = compile_str(src).unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let k = jvm.new_instance("K", &[]).unwrap();
        let t = translate(
            &table,
            &jvm,
            &k,
            "run",
            &[Value::Int(5)],
            TransConfig::full(),
        )
        .unwrap();
        assert!(t.stats.inlined_ctors > 0);
        let mut machine = Machine::with_globals(&t.program);
        let vals = bind_entry_args(&jvm, &k, &[Value::Int(5)], &t.bindings, &mut machine).unwrap();
        let out = run_to_completion(&t.program, t.entry, vals, &mut machine).unwrap();
        // Differential check against the interpreter.
        let expected = match jvm.call(&k, "run", &[Value::Int(5)]).unwrap() {
            Value::Float(v) => v,
            other => panic!("unexpected {other}"),
        };
        assert_eq!(out, Some(Val::F32(expected)));
        assert_eq!(expected, 10.0);
    }
}
