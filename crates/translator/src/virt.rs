//! Virtual-dispatch lowering — the paper's *C++* baseline.
//!
//! One function per `(class, method)` with heap objects and vtable
//! dispatch at every virtual call site. No shape analysis, no
//! specialization, no object inlining: this is the configuration whose
//! overheads Figure 3 demonstrates and that WootinJ exists to eliminate.
//!
//! `@Global` kernels are not supported in this mode: the paper itself
//! could not use virtual calls in CUDA kernels ("virtual function calls by
//! -> operator in CUDA on GPUs were unstable") — GPU figures compare the
//! devirtualized configurations.

use std::collections::HashMap;

use jlang::ast::{BinOp, UnOp};
use jlang::table::ClassTable;
use jlang::tast::{TBlock, TExpr, TExprKind, TStmt};
use jlang::types::{ClassId, PrimKind, Type};
use nir::{FuncBuilder, FuncId, FuncKind, Instr, Label, Program, Reg, Ty};

use crate::lower::{const_eval, native_intrin, TransStats};
use crate::shape::{elem_ty_of, TransError};
use crate::TResult;

pub struct VirtLowerer<'t> {
    pub table: &'t ClassTable,
    pub program: Program,
    methods: HashMap<(ClassId, u32), FuncId>,
    ctors: HashMap<ClassId, FuncId>,
    selectors: HashMap<String, u32>,
    /// Impls that failed to compile (e.g. GPU-only code on this path);
    /// only fatal if actually required.
    pub skipped: Vec<(String, String)>,
    pub stats: TransStats,
}

struct VCtx {
    fb: FuncBuilder,
    env: HashMap<u32, Reg>,
    recv: Option<Reg>,
    ret_ty: Option<Ty>,
    loops: Vec<(Label, Label)>,
}

impl<'t> VirtLowerer<'t> {
    pub fn new(table: &'t ClassTable) -> Self {
        let mut program = Program::default();
        for info in table.iter() {
            program.classes.push(nir::ClassMeta {
                name: info.name.clone(),
                field_count: info.instance_size(),
                vtable: Vec::new(),
            });
        }
        VirtLowerer {
            table,
            program,
            methods: HashMap::new(),
            ctors: HashMap::new(),
            selectors: HashMap::new(),
            skipped: Vec::new(),
            stats: TransStats::default(),
        }
    }

    fn selector(&mut self, name: &str) -> u32 {
        if let Some(&s) = self.selectors.get(name) {
            return s;
        }
        let id = self.program.selectors.len() as u32;
        self.program.selectors.push(name.to_string());
        self.selectors.insert(name.to_string(), id);
        id
    }

    /// Compile the entry method, close over the needed vtables, and
    /// return the entry function.
    pub fn compile_entry(&mut self, class: ClassId, method: u32) -> TResult<FuncId> {
        let entry = self.method_func(class, method)?;
        // Fixed point: every selector must have vtable entries on every
        // class that could serve as a receiver.
        loop {
            let selector_names: Vec<(u32, String)> = self
                .program
                .selectors
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, s.clone()))
                .collect();
            let mut changed = false;
            for info in self.table.iter() {
                if info.is_interface || info.is_abstract {
                    continue;
                }
                for (sel, name) in &selector_names {
                    if self.program.classes[info.id.0 as usize]
                        .vtable
                        .iter()
                        .any(|(s, _)| s == sel)
                    {
                        continue;
                    }
                    let Some((ic, im)) = self.table.resolve_impl(info.id, name) else {
                        continue;
                    };
                    if self.table.method(ic, im).is_global {
                        continue; // kernels unsupported here
                    }
                    match self.method_func(ic, im) {
                        Ok(f) => {
                            self.program.classes[info.id.0 as usize]
                                .vtable
                                .push((*sel, f));
                            changed = true;
                        }
                        Err(e) => {
                            self.skipped
                                .push((format!("{}::{}", self.table.name(ic), name), e.message));
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(entry)
    }

    /// Compile (or fetch) the generic function for `(class, method)`.
    fn method_func(&mut self, class: ClassId, method: u32) -> TResult<FuncId> {
        if let Some(&f) = self.methods.get(&(class, method)) {
            return Ok(f);
        }
        let m = self.table.method(class, method).clone();
        if m.is_global {
            return Err(TransError::new(format!(
                "@Global `{}` cannot be translated with virtual dispatch; \
                 the paper's C++ baseline likewise avoids virtual calls in kernels",
                m.name
            )));
        }
        if m.native.is_some() {
            return Err(TransError::new("native methods are inlined at call sites"));
        }
        let Some(body) = &m.body else {
            return Err(TransError::new(format!(
                "abstract method `{}::{}` has no body",
                self.table.name(class),
                m.name
            )));
        };
        // Reserve the slot to break cycles (recursion is legal here! The
        // C++ baseline has no coding-rule restrictions).
        let placeholder =
            self.reserve_placeholder(&format!("{}_{}_v", self.table.name(class), m.name));
        self.methods.insert((class, method), placeholder);

        let mut params = Vec::new();
        if !m.is_static {
            params.push(Ty::Obj);
        }
        for p in &m.params {
            params.push(decl_ty(&p.ty)?);
        }
        let ret_ty = match &m.ret {
            Type::Void => None,
            t => Some(decl_ty(t)?),
        };
        let fb = FuncBuilder::new(
            self.program.funcs[placeholder.0 as usize].name.clone(),
            params,
            ret_ty,
            FuncKind::Host,
        );
        let mut next = 0u32;
        let recv = if m.is_static {
            None
        } else {
            next += 1;
            Some(0)
        };
        let mut env = HashMap::new();
        for (i, _) in m.params.iter().enumerate() {
            env.insert(i as u32, next);
            next += 1;
        }
        let mut cx = VCtx {
            fb,
            env,
            recv,
            ret_ty,
            loops: Vec::new(),
        };
        self.block(&mut cx, body)?;
        let f = cx.fb.finish().map_err(TransError::new)?;
        self.program.funcs[placeholder.0 as usize] = f;
        self.stats.specializations += 1;
        Ok(placeholder)
    }

    fn reserve_placeholder(&mut self, name: &str) -> FuncId {
        let mut final_name = name.to_string();
        let mut i = 2;
        while self.program.funcs.iter().any(|f| f.name == final_name) {
            final_name = format!("{name}_{i}");
            i += 1;
        }
        let mut fb = FuncBuilder::new(final_name, vec![], None, FuncKind::Host);
        fb.emit(Instr::Ret(None));
        self.program.add_func(fb.finish().unwrap())
    }

    /// Compile (or fetch) the constructor function of `class`:
    /// `C_init(obj, params...)` running super ctor, field inits, body.
    fn ctor_func(&mut self, class: ClassId) -> TResult<FuncId> {
        if let Some(&f) = self.ctors.get(&class) {
            return Ok(f);
        }
        let info = self.table.class(class).clone();
        let Some(ctor) = &info.ctor else {
            return Err(TransError::new(format!(
                "`{}` has no constructor",
                info.name
            )));
        };
        let placeholder = self.reserve_placeholder(&format!("{}_init", info.name));
        self.ctors.insert(class, placeholder);

        let mut params = vec![Ty::Obj];
        for p in &ctor.params {
            params.push(decl_ty(&p.ty)?);
        }
        let fb = FuncBuilder::new(
            self.program.funcs[placeholder.0 as usize].name.clone(),
            params,
            None,
            FuncKind::Host,
        );
        let mut env = HashMap::new();
        for (i, _) in ctor.params.iter().enumerate() {
            env.insert(i as u32, i as u32 + 1);
        }
        let mut cx = VCtx {
            fb,
            env,
            recv: Some(0),
            ret_ty: None,
            loops: Vec::new(),
        };
        // 1. super constructor.
        if let Some((sid, _)) = &info.superclass {
            if *sid != jlang::OBJECT {
                let mut sargs = vec![0];
                for a in &ctor.super_args {
                    sargs.push(self.expr(&mut cx, a)?);
                }
                let sf = self.ctor_func(*sid)?;
                cx.fb.emit(Instr::Call {
                    func: sf,
                    args: sargs,
                    dst: None,
                });
            }
        }
        // 2. field initializers.
        for (i, f) in info.fields.iter().enumerate() {
            if let Some(init) = &f.init {
                let v = self.expr(&mut cx, init)?;
                cx.fb.emit(Instr::PutField {
                    obj: 0,
                    slot: info.field_base + i as u32,
                    src: v,
                });
            }
        }
        // 3. body.
        if let Some(body) = &ctor.body {
            self.block(&mut cx, body)?;
        }
        let f = cx.fb.finish().map_err(TransError::new)?;
        self.program.funcs[placeholder.0 as usize] = f;
        Ok(placeholder)
    }

    fn block(&mut self, cx: &mut VCtx, b: &TBlock) -> TResult<()> {
        for s in &b.stmts {
            self.stmt(cx, s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, cx: &mut VCtx, s: &TStmt) -> TResult<()> {
        match s {
            TStmt::Local { slot, ty, init, .. } => {
                let ty_n = decl_ty(ty)?;
                let r = cx.fb.reg(ty_n);
                match init {
                    Some(e) => {
                        let v = self.expr(cx, e)?;
                        cx.fb.emit(Instr::Mov(r, v));
                    }
                    None => {
                        if let Some(k) = ty.prim_kind() {
                            cx.fb.emit(zero(k, r));
                        }
                    }
                }
                cx.env.insert(*slot, r);
                Ok(())
            }
            TStmt::AssignLocal { slot, value, .. } => {
                let v = self.expr(cx, value)?;
                let r = *cx.env.get(slot).ok_or_else(|| {
                    TransError::new(format!("assignment to undeclared slot {slot}"))
                })?;
                cx.fb.emit(Instr::Mov(r, v));
                Ok(())
            }
            TStmt::AssignField {
                obj, field, value, ..
            } => {
                let o = self.expr(cx, obj)?;
                let v = self.expr(cx, value)?;
                cx.fb.emit(Instr::PutField {
                    obj: o,
                    slot: field.slot,
                    src: v,
                });
                Ok(())
            }
            TStmt::AssignStatic { .. } => Err(TransError::new(
                "assignment to a static field cannot be translated",
            )),
            TStmt::AssignIndex {
                arr, idx, value, ..
            } => {
                let a = self.expr(cx, arr)?;
                let i = self.expr(cx, idx)?;
                let v = self.expr(cx, value)?;
                cx.fb.emit(Instr::StArr {
                    arr: a,
                    idx: i,
                    src: v,
                });
                Ok(())
            }
            TStmt::Expr(e) => {
                self.expr_maybe_void(cx, e)?;
                Ok(())
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.expr(cx, cond)?;
                let tl = cx.fb.label();
                let el = cx.fb.label();
                let end = cx.fb.label();
                cx.fb.br(c, tl, el);
                cx.fb.bind(tl);
                self.block(cx, then_branch)?;
                cx.fb.jmp(end);
                cx.fb.bind(el);
                if let Some(e) = else_branch {
                    self.block(cx, e)?;
                }
                cx.fb.jmp(end);
                cx.fb.bind(end);
                Ok(())
            }
            TStmt::While { cond, body, .. } => {
                let head = cx.fb.label();
                let bodyl = cx.fb.label();
                let end = cx.fb.label();
                cx.fb.jmp(head);
                cx.fb.bind(head);
                let c = self.expr(cx, cond)?;
                cx.fb.br(c, bodyl, end);
                cx.fb.bind(bodyl);
                cx.loops.push((head, end));
                self.block(cx, body)?;
                cx.loops.pop();
                cx.fb.jmp(head);
                cx.fb.bind(end);
                Ok(())
            }
            TStmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(cx, i)?;
                }
                let head = cx.fb.label();
                let bodyl = cx.fb.label();
                let cont = cx.fb.label();
                let end = cx.fb.label();
                cx.fb.jmp(head);
                cx.fb.bind(head);
                match cond {
                    Some(c) => {
                        let cv = self.expr(cx, c)?;
                        cx.fb.br(cv, bodyl, end);
                    }
                    None => cx.fb.jmp(bodyl),
                }
                cx.fb.bind(bodyl);
                cx.loops.push((cont, end));
                self.block(cx, body)?;
                cx.loops.pop();
                cx.fb.jmp(cont);
                cx.fb.bind(cont);
                if let Some(u) = update {
                    self.stmt(cx, u)?;
                }
                cx.fb.jmp(head);
                cx.fb.bind(end);
                Ok(())
            }
            TStmt::Return { value, .. } => {
                match value {
                    Some(e) => {
                        let v = self.expr(cx, e)?;
                        cx.fb.emit(Instr::Ret(Some(v)));
                    }
                    None => {
                        cx.fb.emit(Instr::Ret(None));
                    }
                }
                Ok(())
            }
            TStmt::Break(_) => {
                let (_, brk) = *cx
                    .loops
                    .last()
                    .ok_or_else(|| TransError::new("break outside loop"))?;
                cx.fb.jmp(brk);
                Ok(())
            }
            TStmt::Continue(_) => {
                let (cont, _) = *cx
                    .loops
                    .last()
                    .ok_or_else(|| TransError::new("continue outside loop"))?;
                cx.fb.jmp(cont);
                Ok(())
            }
            TStmt::Block(b) => self.block(cx, b),
        }
    }

    fn expr_maybe_void(&mut self, cx: &mut VCtx, e: &TExpr) -> TResult<Option<Reg>> {
        match &e.kind {
            TExprKind::Call { recv, method, args } => {
                let r = self.expr(cx, recv)?;
                self.call(
                    cx,
                    Some(r),
                    method.decl_class,
                    method.index,
                    args,
                    true,
                    &e.ty,
                )
            }
            TExprKind::DirectCall { recv, method, args } => {
                let r = self.expr(cx, recv)?;
                self.call(
                    cx,
                    Some(r),
                    method.decl_class,
                    method.index,
                    args,
                    false,
                    &e.ty,
                )
            }
            TExprKind::StaticCall { class, index, args } => {
                self.call(cx, None, *class, *index, args, false, &e.ty)
            }
            _ => Ok(Some(self.expr(cx, e)?)),
        }
    }

    fn expr(&mut self, cx: &mut VCtx, e: &TExpr) -> TResult<Reg> {
        match &e.kind {
            TExprKind::Int(v) => {
                let r = cx.fb.reg(Ty::I32);
                cx.fb.emit(Instr::ConstI32(r, *v));
                Ok(r)
            }
            TExprKind::Long(v) => {
                let r = cx.fb.reg(Ty::I64);
                cx.fb.emit(Instr::ConstI64(r, *v));
                Ok(r)
            }
            TExprKind::Float(v) => {
                let r = cx.fb.reg(Ty::F32);
                cx.fb.emit(Instr::ConstF32(r, *v));
                Ok(r)
            }
            TExprKind::Double(v) => {
                let r = cx.fb.reg(Ty::F64);
                cx.fb.emit(Instr::ConstF64(r, *v));
                Ok(r)
            }
            TExprKind::Bool(v) => {
                let r = cx.fb.reg(Ty::Bool);
                cx.fb.emit(Instr::ConstBool(r, *v));
                Ok(r)
            }
            TExprKind::Local(slot) => cx
                .env
                .get(slot)
                .copied()
                .ok_or_else(|| TransError::new(format!("unassigned slot {slot}"))),
            TExprKind::This => cx
                .recv
                .ok_or_else(|| TransError::new("`this` in static context")),
            TExprKind::GetField { obj, field } => {
                let o = self.expr(cx, obj)?;
                let dst = cx.fb.reg(decl_ty(&field.ty)?);
                cx.fb.emit(Instr::GetField {
                    obj: o,
                    slot: field.slot,
                    dst,
                });
                Ok(dst)
            }
            TExprKind::GetStatic { class, index } => {
                let f = self.table.class(*class).statics[*index as usize].clone();
                let init = f.init.as_ref().ok_or_else(|| {
                    TransError::new(format!("static `{}` has no constant initializer", f.name))
                })?;
                let cv = const_eval(self.table, init)?;
                Ok(emit_const(cx, cv))
            }
            TExprKind::Call { recv, method, args } => {
                let r = self.expr(cx, recv)?;
                self.call(
                    cx,
                    Some(r),
                    method.decl_class,
                    method.index,
                    args,
                    true,
                    &e.ty,
                )?
                .ok_or_else(|| TransError::new("void call used as a value"))
            }
            TExprKind::DirectCall { recv, method, args } => {
                let r = self.expr(cx, recv)?;
                self.call(
                    cx,
                    Some(r),
                    method.decl_class,
                    method.index,
                    args,
                    false,
                    &e.ty,
                )?
                .ok_or_else(|| TransError::new("void call used as a value"))
            }
            TExprKind::StaticCall { class, index, args } => self
                .call(cx, None, *class, *index, args, false, &e.ty)?
                .ok_or_else(|| TransError::new("void call used as a value")),
            TExprKind::New { class, args, .. } => {
                let obj = cx.fb.reg(Ty::Obj);
                cx.fb.emit(Instr::NewObj {
                    class: class.0,
                    dst: obj,
                });
                let cf = self.ctor_func(*class)?;
                let mut argv = vec![obj];
                for a in args {
                    argv.push(self.expr(cx, a)?);
                }
                cx.fb.emit(Instr::Call {
                    func: cf,
                    args: argv,
                    dst: None,
                });
                Ok(obj)
            }
            TExprKind::NewArray { elem, len } => {
                let et = elem_ty_of(elem)
                    .ok_or_else(|| TransError::new("only primitive arrays can be translated"))?;
                let l = self.expr(cx, len)?;
                let dst = cx.fb.reg(Ty::Arr(et));
                cx.fb.emit(Instr::NewArr {
                    elem: et,
                    len: l,
                    dst,
                });
                Ok(dst)
            }
            TExprKind::Index { arr, idx } => {
                let a = self.expr(cx, arr)?;
                let i = self.expr(cx, idx)?;
                let dst = cx.fb.reg(decl_ty(&e.ty)?);
                cx.fb.emit(Instr::LdArr {
                    arr: a,
                    idx: i,
                    dst,
                });
                Ok(dst)
            }
            TExprKind::ArrayLen(a) => {
                let arr = self.expr(cx, a)?;
                let dst = cx.fb.reg(Ty::I32);
                cx.fb.emit(Instr::ArrLen { arr, dst });
                Ok(dst)
            }
            TExprKind::Unary { op, expr } => {
                let v = self.expr(cx, expr)?;
                let k = expr_kind(e)?;
                let dst = cx.fb.reg(Ty::of_prim(k));
                match op {
                    UnOp::Neg => {
                        cx.fb.emit(Instr::Neg {
                            kind: k,
                            dst,
                            src: v,
                        });
                    }
                    UnOp::Not => {
                        cx.fb.emit(Instr::Not { dst, src: v });
                    }
                }
                Ok(dst)
            }
            TExprKind::Binary {
                op,
                operand_kind,
                lhs,
                rhs,
            } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    let dst = cx.fb.reg(Ty::Bool);
                    let l = self.expr(cx, lhs)?;
                    cx.fb.emit(Instr::Mov(dst, l));
                    let eval_rhs = cx.fb.label();
                    let end = cx.fb.label();
                    match op {
                        BinOp::And => cx.fb.br(dst, eval_rhs, end),
                        BinOp::Or => cx.fb.br(dst, end, eval_rhs),
                        _ => unreachable!(),
                    }
                    cx.fb.bind(eval_rhs);
                    let r = self.expr(cx, rhs)?;
                    cx.fb.emit(Instr::Mov(dst, r));
                    cx.fb.jmp(end);
                    cx.fb.bind(end);
                    return Ok(dst);
                }
                let l = self.expr(cx, lhs)?;
                let r = self.expr(cx, rhs)?;
                let out = if op.is_comparison() {
                    PrimKind::Boolean
                } else {
                    *operand_kind
                };
                let dst = cx.fb.reg(Ty::of_prim(out));
                cx.fb.emit(Instr::Bin {
                    op: *op,
                    kind: *operand_kind,
                    dst,
                    lhs: l,
                    rhs: r,
                });
                Ok(dst)
            }
            TExprKind::NumCast { to, expr } | TExprKind::Convert { to, expr } => {
                let v = self.expr(cx, expr)?;
                let from = expr_kind(expr)?;
                if from == *to {
                    return Ok(v);
                }
                let dst = cx.fb.reg(Ty::of_prim(*to));
                cx.fb.emit(Instr::Cast {
                    to: *to,
                    from,
                    dst,
                    src: v,
                });
                Ok(dst)
            }
            TExprKind::RefCast { expr, .. } => self.expr(cx, expr),
            TExprKind::RefEq { .. }
            | TExprKind::InstanceOf { .. }
            | TExprKind::Null
            | TExprKind::Str(_)
            | TExprKind::Ternary { .. } => Err(TransError::new(
                "construct forbidden by the coding rules cannot be translated",
            )),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn call(
        &mut self,
        cx: &mut VCtx,
        recv: Option<Reg>,
        decl_class: ClassId,
        index: u32,
        args: &[TExpr],
        is_virtual: bool,
        ret_ty: &Type,
    ) -> TResult<Option<Reg>> {
        let decl = self.table.method(decl_class, index).clone();
        // Natives are intrinsics in every mode.
        if let Some(key) = &decl.native {
            if key == "cuda.sync" {
                cx.fb.emit(Instr::Sync);
                return Ok(None);
            }
            if key == "cuda.sharedF32" {
                return Err(TransError::new(
                    "shared memory requires a kernel; the virtual-dispatch baseline has none",
                ));
            }
            let mut regs = Vec::new();
            for a in args {
                regs.push(self.expr(cx, a)?);
            }
            if let Some(op) = native_intrin(key) {
                return match ret_ty {
                    Type::Void => {
                        cx.fb.emit(Instr::Intrin {
                            op,
                            args: regs,
                            dst: None,
                        });
                        Ok(None)
                    }
                    t => {
                        let dst = cx.fb.reg(decl_ty(t)?);
                        cx.fb.emit(Instr::Intrin {
                            op,
                            args: regs,
                            dst: Some(dst),
                        });
                        Ok(Some(dst))
                    }
                };
            }
            // User-registered foreign function (the paper's FFI).
            let host = {
                if let Some(i) = self.program.host_fns.iter().position(|h| h.name == *key) {
                    i as u32
                } else {
                    let params: Vec<Ty> = decl
                        .params
                        .iter()
                        .map(|p| decl_ty(&p.ty))
                        .collect::<TResult<_>>()?;
                    let ret = match ret_ty {
                        Type::Void => None,
                        t => Some(decl_ty(t)?),
                    };
                    self.program.host_fns.push(nir::HostFnSig {
                        name: key.clone(),
                        params,
                        ret,
                    });
                    self.program.host_fns.len() as u32 - 1
                }
            };
            return match ret_ty {
                Type::Void => {
                    cx.fb.emit(Instr::CallHost {
                        host,
                        args: regs,
                        dst: None,
                    });
                    Ok(None)
                }
                t => {
                    let dst = cx.fb.reg(decl_ty(t)?);
                    cx.fb.emit(Instr::CallHost {
                        host,
                        args: regs,
                        dst: Some(dst),
                    });
                    Ok(Some(dst))
                }
            };
        }
        if decl.is_global {
            return Err(TransError::new(
                "@Global kernels cannot be translated with virtual dispatch (paper §4: \
                 virtual calls in CUDA kernels were avoided); use the Devirt or Full mode",
            ));
        }
        let mut argv = Vec::new();
        for a in args {
            argv.push(self.expr(cx, a)?);
        }
        let dst = match ret_ty {
            Type::Void => None,
            t => Some(cx.fb.reg(decl_ty(t)?)),
        };
        match (recv, is_virtual) {
            (Some(r), true) => {
                let sel = self.selector(&decl.name);
                self.stats.virtual_calls += 1;
                cx.fb.emit(Instr::CallVirt {
                    selector: sel,
                    recv: r,
                    args: argv,
                    dst,
                });
            }
            (Some(r), false) => {
                // super call: direct, non-virtual.
                let f = self.method_func(decl_class, index)?;
                let mut all = vec![r];
                all.extend(argv);
                cx.fb.emit(Instr::Call {
                    func: f,
                    args: all,
                    dst,
                });
            }
            (None, _) => {
                let f = self.method_func(decl_class, index)?;
                cx.fb.emit(Instr::Call {
                    func: f,
                    args: argv,
                    dst,
                });
            }
        }
        let _ = &cx.ret_ty;
        Ok(dst)
    }
}

/// NIR register type for a declared jlang type.
fn decl_ty(t: &Type) -> TResult<Ty> {
    Ok(match t {
        Type::Int => Ty::I32,
        Type::Long => Ty::I64,
        Type::Float => Ty::F32,
        Type::Double => Ty::F64,
        Type::Boolean => Ty::Bool,
        Type::Array(e) => Ty::Arr(
            elem_ty_of(e)
                .ok_or_else(|| TransError::new("only primitive arrays can be translated"))?,
        ),
        Type::Object(..) | Type::Var(_) => Ty::Obj,
        other => return Err(TransError::new(format!("untranslatable type {other}"))),
    })
}

fn expr_kind(e: &TExpr) -> TResult<PrimKind> {
    e.ty.prim_kind()
        .ok_or_else(|| TransError::new("expected a primitive expression"))
}

fn zero(kind: PrimKind, r: Reg) -> Instr {
    match kind {
        PrimKind::Int => Instr::ConstI32(r, 0),
        PrimKind::Long => Instr::ConstI64(r, 0),
        PrimKind::Float => Instr::ConstF32(r, 0.0),
        PrimKind::Double => Instr::ConstF64(r, 0.0),
        PrimKind::Boolean => Instr::ConstBool(r, false),
    }
}

fn emit_const(cx: &mut VCtx, cv: nir::ConstVal) -> Reg {
    match cv {
        nir::ConstVal::I32(v) => {
            let r = cx.fb.reg(Ty::I32);
            cx.fb.emit(Instr::ConstI32(r, v));
            r
        }
        nir::ConstVal::I64(v) => {
            let r = cx.fb.reg(Ty::I64);
            cx.fb.emit(Instr::ConstI64(r, v));
            r
        }
        nir::ConstVal::F32(v) => {
            let r = cx.fb.reg(Ty::F32);
            cx.fb.emit(Instr::ConstF32(r, v));
            r
        }
        nir::ConstVal::F64(v) => {
            let r = cx.fb.reg(Ty::F64);
            cx.fb.emit(Instr::ConstF64(r, v));
            r
        }
        nir::ConstVal::Bool(v) => {
            let r = cx.fb.reg(Ty::Bool);
            cx.fb.emit(Instr::ConstBool(r, v));
            r
        }
    }
}
