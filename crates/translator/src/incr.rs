//! Incremental lowering support: execution traces and memo replay.
//!
//! The query database (crate `querydb`) treats `lower_fn` — one
//! shape-specialized function — as a memoizable query. The [`Lowerer`]
//! cooperates through two optional attachments:
//!
//! * [`TraceState`]: while lowering, every specialization records the
//!   callee edges it emitted (in first-encounter order, i.e. the DFS
//!   order that assigns [`FuncId`]s), the typed bodies it read (its own,
//!   plus any bodies spliced by call inlining or constructor inlining),
//!   and its *exclusive* statistics delta. The database harvests these
//!   records into per-function memos after a successful translate.
//! * [`ReplayState`]: a set of still-valid memos from a previous
//!   revision. When `lower_spec` misses its session map, it first
//!   consults the replay set: a valid memo is *replayed* by recursively
//!   ensuring every recorded callee lands on its recorded [`FuncId`]
//!   (the natural DFS order), then injecting the memoized, already
//!   optimized function at its recorded id. Any mismatch — a callee
//!   re-lowered to a different id, an id drift — aborts the replay and
//!   falls back to fresh lowering, so a replayed program is always
//!   bit-identical to the from-scratch program at the same revision.
//!
//! [`Lowerer`]: crate::lower::Lowerer
//! [`FuncId`]: nir::FuncId

use std::collections::HashMap;
use std::sync::Arc;

use jlang::types::ClassId;
use nir::FuncId;

use crate::shape::Shape;
use crate::sheval::SpecKey;

/// Which typed body of a class a lowering step read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemberRef {
    /// A method body, by index in the class's method list.
    Method(u32),
    /// The constructor bundle: super(...) args, field initializers, and
    /// the ctor body — always read together by `new`-site inlining.
    Ctor,
}

/// A typed body read during lowering (a `typeck_body` dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BodyRef {
    pub class: ClassId,
    pub member: MemberRef,
}

/// One recorded call edge: which specialization was demanded, and which
/// function id it resolved to when the memo was recorded.
#[derive(Debug, Clone)]
pub struct CalleeEdge {
    pub key: SpecKey,
    pub device: bool,
    pub kernel: bool,
    pub expect: FuncId,
}

/// Exclusive counter deltas, in [`TransStats`] field order:
/// specializations, devirtualized_calls, virtual_calls, inlined_ctors,
/// inlined_calls, kernels.
///
/// [`TransStats`]: crate::lower::TransStats
pub type StatsDelta = [u32; 6];

pub(crate) fn sub6(a: StatsDelta, b: StatsDelta) -> StatsDelta {
    std::array::from_fn(|i| a[i].wrapping_sub(b[i]))
}

pub(crate) fn add6(a: StatsDelta, b: StatsDelta) -> StatsDelta {
    std::array::from_fn(|i| a[i].wrapping_add(b[i]))
}

/// A memoized `lower_fn` result: everything needed to re-inject the
/// function without re-walking its typed body. The stored function is
/// already optimized (for configurations without cross-function
/// inlining), so replay skips the optimizer too.
#[derive(Debug, Clone)]
pub struct FnMemo {
    pub id: FuncId,
    pub ret: Option<Shape>,
    pub func: nir::Function,
    /// Callee edges in first-encounter (DFS) order.
    pub callees: Vec<CalleeEdge>,
    /// Typed bodies this function's lowering read.
    pub bodies: Vec<BodyRef>,
    /// Exclusive statistics delta (this function only, children removed).
    pub excl: StatsDelta,
}

/// One completed trace record, harvested into an [`FnMemo`] by the
/// query database (which adds the post-optimization function clone and
/// the fingerprinted dependency sets).
#[derive(Debug, Clone)]
pub struct FnRec {
    pub key: SpecKey,
    pub device: bool,
    pub kernel: bool,
    pub id: FuncId,
    pub ret: Option<Shape>,
    pub callees: Vec<CalleeEdge>,
    pub bodies: Vec<BodyRef>,
    pub excl: StatsDelta,
}

/// An in-flight trace frame (one per specialization being lowered).
#[derive(Debug)]
pub(crate) struct Frame {
    pub key: SpecKey,
    pub device: bool,
    pub kernel: bool,
    pub callees: Vec<CalleeEdge>,
    pub bodies: Vec<BodyRef>,
    /// Inclusive stats snapshot at frame entry.
    pub base: StatsDelta,
    /// Sum of children's inclusive deltas, for exclusive attribution.
    pub child: StatsDelta,
}

/// Dependency-trace collector attached to a [`Lowerer`].
///
/// [`Lowerer`]: crate::lower::Lowerer
#[derive(Debug, Default)]
pub struct TraceState {
    pub(crate) frames: Vec<Frame>,
    /// Completed records, in post-order (children before parents — the
    /// same order `FuncId`s are assigned).
    pub recs: Vec<FnRec>,
}

impl TraceState {
    pub fn new() -> Self {
        TraceState::default()
    }
}

/// Validated memos available for replay this translate, plus the replay
/// outcome counters the query layer reads back.
#[derive(Debug, Default)]
pub struct ReplayState {
    /// Memos whose dependencies the database verified unchanged,
    /// keyed by (spec, device, kernel).
    pub memos: HashMap<(SpecKey, bool, bool), Arc<FnMemo>>,
    /// Ids of functions injected from memos (already optimized).
    pub replayed: Vec<FuncId>,
    /// How many specializations were served by replay.
    pub reused: u64,
}

impl ReplayState {
    pub fn new(memos: HashMap<(SpecKey, bool, bool), Arc<FnMemo>>) -> Self {
        ReplayState {
            memos,
            replayed: Vec::new(),
            reused: 0,
        }
    }
}
