//! Shape evaluation: abstract interpretation of typed method bodies over
//! the [`Shape`] domain.
//!
//! This is the "simple program analysis" of §3.3: given the exact shapes
//! of the receiver and arguments, determine the exact shape of every
//! expression — in particular method return values and constructed
//! objects. The coding rules make this sound and terminating:
//! constructors are branch-free, shapes of locals are fixed at their
//! declaration, and recursion is forbidden.

use std::collections::{HashMap, HashSet};

use jlang::table::ClassTable;
use jlang::tast::{TBlock, TExpr, TExprKind, TStmt};
use jlang::types::{ClassId, Type};

use crate::shape::{elem_ty_of, Shape, TransError};
use crate::TResult;

/// Identity of a shape specialization of a method.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpecKey {
    pub class: ClassId,
    pub method: u32,
    /// `None` for static methods.
    pub recv: Option<Shape>,
    pub args: Vec<Shape>,
}

pub struct ShapeEval<'t> {
    pub table: &'t ClassTable,
    ret_cache: HashMap<SpecKey, Option<Shape>>,
    in_progress: HashSet<SpecKey>,
}

struct Env {
    locals: HashMap<u32, Shape>,
    recv: Option<Shape>,
}

impl<'t> ShapeEval<'t> {
    pub fn new(table: &'t ClassTable) -> Self {
        ShapeEval {
            table,
            ret_cache: HashMap::new(),
            in_progress: HashSet::new(),
        }
    }

    /// The return shape of a specialized method (`None` = void).
    pub fn method_return(&mut self, key: &SpecKey) -> TResult<Option<Shape>> {
        if let Some(s) = self.ret_cache.get(key) {
            return Ok(s.clone());
        }
        if !self.in_progress.insert(key.clone()) {
            return Err(TransError::new(format!(
                "recursion reached shape analysis in `{}::{}` (coding rule 6 forbids recursive calls)",
                self.table.name(key.class),
                self.table.method(key.class, key.method).name
            )));
        }
        let result = self.method_return_inner(key);
        self.in_progress.remove(key);
        if let Ok(s) = &result {
            self.ret_cache.insert(key.clone(), s.clone());
        }
        result
    }

    fn method_return_inner(&mut self, key: &SpecKey) -> TResult<Option<Shape>> {
        let m = self.table.method(key.class, key.method).clone();
        if let Some(native) = &m.native {
            return native_return_shape(&m.ret, native);
        }
        let Some(body) = &m.body else {
            return Err(TransError::new(format!(
                "method `{}::{}` has no body to analyze",
                self.table.name(key.class),
                m.name
            )));
        };
        if m.ret == Type::Void {
            // Still walk the body to surface shape errors early? Walking is
            // done during lowering anyway; skip for speed.
            return Ok(None);
        }
        let mut env = Env {
            locals: HashMap::new(),
            recv: key.recv.clone(),
        };
        for (i, a) in key.args.iter().enumerate() {
            env.locals.insert(i as u32, a.clone());
        }
        let mut ret: Option<Option<Shape>> = None;
        self.block(&mut env, body, &mut ret)?;
        match ret {
            Some(s) => Ok(s),
            None => Err(TransError::new(format!(
                "could not determine return shape of `{}::{}`",
                self.table.name(key.class),
                m.name
            ))),
        }
    }

    fn block(
        &mut self,
        env: &mut Env,
        block: &TBlock,
        ret: &mut Option<Option<Shape>>,
    ) -> TResult<()> {
        for s in &block.stmts {
            self.stmt(env, s, ret)?;
        }
        Ok(())
    }

    fn stmt(&mut self, env: &mut Env, s: &TStmt, ret: &mut Option<Option<Shape>>) -> TResult<()> {
        match s {
            TStmt::Local { slot, ty, init, .. } => {
                let shape = match init {
                    Some(e) => self.expr(env, e)?,
                    None => shape_from_decl(self.table, ty).ok_or_else(|| {
                        TransError::new(format!(
                            "object-typed local needs an initializer for shape analysis (type {})",
                            self.table.show_type(ty)
                        ))
                    })?,
                };
                env.locals.insert(*slot, shape);
                Ok(())
            }
            TStmt::AssignLocal { slot, value, .. } => {
                let new = self.expr(env, value)?;
                if let Some(old) = env.locals.get(slot) {
                    if old != &new {
                        return Err(TransError::new(format!(
                            "local changes shape from {} to {} — exact types must be static",
                            old.show(self.table),
                            new.show(self.table)
                        )));
                    }
                }
                env.locals.insert(*slot, new);
                Ok(())
            }
            TStmt::AssignField { obj, value, .. }
            | TStmt::AssignIndex {
                arr: obj, value, ..
            } => {
                self.expr(env, obj)?;
                self.expr(env, value)?;
                if let TStmt::AssignIndex { idx, .. } = s {
                    self.expr(env, idx)?;
                }
                Ok(())
            }
            TStmt::AssignStatic { value, .. } => {
                self.expr(env, value)?;
                Ok(())
            }
            TStmt::Expr(e) => {
                self.expr_stmt(env, e)?;
                Ok(())
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                self.expr(env, cond)?;
                self.block(env, then_branch, ret)?;
                if let Some(e) = else_branch {
                    self.block(env, e, ret)?;
                }
                Ok(())
            }
            TStmt::While { cond, body, .. } => {
                self.expr(env, cond)?;
                self.block(env, body, ret)
            }
            TStmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(env, i, ret)?;
                }
                if let Some(c) = cond {
                    self.expr(env, c)?;
                }
                self.block(env, body, ret)?;
                if let Some(u) = update {
                    self.stmt(env, u, ret)?;
                }
                Ok(())
            }
            TStmt::Return { value, .. } => {
                let shape = match value {
                    Some(e) => Some(self.expr(env, e)?),
                    None => None,
                };
                match ret {
                    None => *ret = Some(shape),
                    Some(prev) => {
                        if prev != &shape {
                            return Err(TransError::new(
                                "return statements produce different shapes — exact types must be static".to_string(),
                            ));
                        }
                    }
                }
                Ok(())
            }
            TStmt::Break(_) | TStmt::Continue(_) => Ok(()),
            TStmt::Block(b) => self.block(env, b, ret),
        }
    }

    /// Statement-position expression: void calls are fine here.
    fn expr_stmt(&mut self, env: &mut Env, e: &TExpr) -> TResult<()> {
        match &e.kind {
            TExprKind::Call { recv, method, args } => {
                let rs = self.expr(env, recv)?;
                let Some(class) = rs.class() else {
                    return Err(TransError::new("call on non-object shape"));
                };
                let name = &self.table.method(method.decl_class, method.index).name;
                let (ic, im) = self.table.resolve_impl(class, name).ok_or_else(|| {
                    TransError::new(format!(
                        "no implementation of `{name}` on `{}`",
                        self.table.name(class)
                    ))
                })?;
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.expr(env, a)?);
                }
                let key = SpecKey {
                    class: ic,
                    method: im,
                    recv: Some(rs),
                    args: arg_shapes,
                };
                self.method_return(&key)?;
                Ok(())
            }
            TExprKind::DirectCall { recv, method, args } => {
                let rs = self.expr(env, recv)?;
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.expr(env, a)?);
                }
                let key = SpecKey {
                    class: method.decl_class,
                    method: method.index,
                    recv: Some(rs),
                    args: arg_shapes,
                };
                self.method_return(&key)?;
                Ok(())
            }
            TExprKind::StaticCall { class, index, args } => {
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.expr(env, a)?);
                }
                let key = SpecKey {
                    class: *class,
                    method: *index,
                    recv: None,
                    args: arg_shapes,
                };
                self.method_return(&key)?;
                Ok(())
            }
            _ => {
                self.expr(env, e)?;
                Ok(())
            }
        }
    }

    fn expr(&mut self, env: &mut Env, e: &TExpr) -> TResult<Shape> {
        use jlang::types::PrimKind::*;
        match &e.kind {
            TExprKind::Int(_) => Ok(Shape::Prim(Int)),
            TExprKind::Long(_) => Ok(Shape::Prim(Long)),
            TExprKind::Float(_) => Ok(Shape::Prim(Float)),
            TExprKind::Double(_) => Ok(Shape::Prim(Double)),
            TExprKind::Bool(_) => Ok(Shape::Prim(Boolean)),
            TExprKind::Local(slot) => env.locals.get(slot).cloned().ok_or_else(|| {
                TransError::new(format!("local slot {slot} used before assignment"))
            }),
            TExprKind::This => env
                .recv
                .clone()
                .ok_or_else(|| TransError::new("`this` in static translation context")),
            TExprKind::GetField { obj, field } => {
                let os = self.expr(env, obj)?;
                field_shape(self.table, &os, field.slot)
            }
            TExprKind::GetStatic { class, index } => {
                let f = &self.table.class(*class).statics[*index as usize];
                shape_from_decl(self.table, &f.ty).ok_or_else(|| {
                    TransError::new("static fields must be primitives under the coding rules")
                })
            }
            TExprKind::Call { recv, method, args } => {
                let rs = self.expr(env, recv)?;
                let Some(class) = rs.class() else {
                    return Err(TransError::new("call on non-object shape"));
                };
                let name = &self.table.method(method.decl_class, method.index).name;
                let (ic, im) = self.table.resolve_impl(class, name).ok_or_else(|| {
                    TransError::new(format!(
                        "no implementation of `{name}` on `{}`",
                        self.table.name(class)
                    ))
                })?;
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.expr(env, a)?);
                }
                let key = SpecKey {
                    class: ic,
                    method: im,
                    recv: Some(rs),
                    args: arg_shapes,
                };
                self.method_return(&key)?
                    .ok_or_else(|| TransError::new(format!("void call `{name}` used as a value")))
            }
            TExprKind::DirectCall { recv, method, args } => {
                let rs = self.expr(env, recv)?;
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.expr(env, a)?);
                }
                let key = SpecKey {
                    class: method.decl_class,
                    method: method.index,
                    recv: Some(rs),
                    args: arg_shapes,
                };
                self.method_return(&key)?
                    .ok_or_else(|| TransError::new("void super-call used as a value"))
            }
            TExprKind::StaticCall { class, index, args } => {
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.expr(env, a)?);
                }
                let key = SpecKey {
                    class: *class,
                    method: *index,
                    recv: None,
                    args: arg_shapes,
                };
                self.method_return(&key)?
                    .ok_or_else(|| TransError::new("void static call used as a value"))
            }
            TExprKind::New { class, args, .. } => {
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.expr(env, a)?);
                }
                self.ctor_shape(*class, &arg_shapes)
            }
            TExprKind::NewArray { elem, .. } => elem_ty_of(elem)
                .map(Shape::Arr)
                .ok_or_else(|| TransError::new("only primitive arrays can be translated")),
            TExprKind::Index { arr, idx } => {
                self.expr(env, idx)?;
                match self.expr(env, arr)? {
                    Shape::Arr(e) => Ok(Shape::Prim(match e {
                        nir::ElemTy::I32 => Int,
                        nir::ElemTy::I64 => Long,
                        nir::ElemTy::F32 => Float,
                        nir::ElemTy::F64 => Double,
                        nir::ElemTy::Bool => Boolean,
                    })),
                    other => Err(TransError::new(format!(
                        "indexing non-array shape {}",
                        other.show(self.table)
                    ))),
                }
            }
            TExprKind::ArrayLen(a) => {
                self.expr(env, a)?;
                Ok(Shape::Prim(Int))
            }
            TExprKind::Unary { expr, .. } => self.expr(env, expr),
            TExprKind::Binary {
                op,
                operand_kind,
                lhs,
                rhs,
            } => {
                self.expr(env, lhs)?;
                self.expr(env, rhs)?;
                if op.is_comparison() {
                    Ok(Shape::Prim(Boolean))
                } else {
                    Ok(Shape::Prim(*operand_kind))
                }
            }
            TExprKind::NumCast { to, expr } | TExprKind::Convert { to, expr } => {
                self.expr(env, expr)?;
                Ok(Shape::Prim(*to))
            }
            TExprKind::RefCast { to, expr } => {
                let s = self.expr(env, expr)?;
                if let (Some(c), Type::Object(want, _)) = (s.class(), to) {
                    if !self.table.is_subclass_of(c, *want) {
                        return Err(TransError::new(format!(
                            "cast of `{}` to `{}` can never succeed",
                            self.table.name(c),
                            self.table.name(*want)
                        )));
                    }
                }
                Ok(s)
            }
            TExprKind::RefEq { .. } => Err(TransError::new(
                "reference equality cannot be translated (coding rule 7)",
            )),
            TExprKind::InstanceOf { .. } => Err(TransError::new(
                "`instanceof` cannot be translated (coding rule 8)",
            )),
            TExprKind::Null => Err(TransError::new(
                "`null` cannot be translated (coding rule 8)",
            )),
            TExprKind::Str(_) => Err(TransError::new("string values cannot be translated")),
            TExprKind::Ternary { .. } => Err(TransError::new(
                "the conditional operator cannot be translated (coding rule 7)",
            )),
        }
    }

    /// Abstractly run the constructor chain of `new class(args)` and
    /// assemble the resulting object shape. Constructors are straight-line
    /// under the semi-immutable rules; anything else is reported.
    pub fn ctor_shape(&mut self, class: ClassId, arg_shapes: &[Shape]) -> TResult<Shape> {
        let size = self.table.class(class).instance_size() as usize;
        let mut fields: Vec<Option<Shape>> = vec![None; size];
        self.run_ctor_abstract(class, arg_shapes, &mut fields)?;
        let mut out = Vec::with_capacity(size);
        for (slot, s) in fields.into_iter().enumerate() {
            match s {
                Some(s) => out.push(s),
                None => {
                    // Unassigned fields default like Java: primitives to 0.
                    let decl = field_decl_type(self.table, class, slot as u32);
                    match decl.and_then(|t| shape_from_decl(self.table, &t)) {
                        Some(s) => out.push(s),
                        None => {
                            return Err(TransError::new(format!(
                                "field slot {slot} of `{}` is not assigned by any constructor; \
                                 its exact type cannot be determined",
                                self.table.name(class)
                            )))
                        }
                    }
                }
            }
        }
        Ok(Shape::Obj { class, fields: out })
    }

    fn run_ctor_abstract(
        &mut self,
        class: ClassId,
        arg_shapes: &[Shape],
        fields: &mut Vec<Option<Shape>>,
    ) -> TResult<()> {
        let info = self.table.class(class).clone();
        let Some(ctor) = &info.ctor else {
            return Err(TransError::new(format!(
                "`{}` has no constructor",
                info.name
            )));
        };
        if ctor.params.len() != arg_shapes.len() {
            return Err(TransError::new(format!(
                "constructor of `{}` expects {} args, got {}",
                info.name,
                ctor.params.len(),
                arg_shapes.len()
            )));
        }
        let mut env = Env {
            locals: HashMap::new(),
            recv: None,
        };
        for (i, s) in arg_shapes.iter().enumerate() {
            env.locals.insert(i as u32, s.clone());
        }
        // 1. super constructor.
        if let Some((sid, _)) = &info.superclass {
            if *sid != jlang::OBJECT {
                let mut sargs = Vec::new();
                for a in &ctor.super_args {
                    sargs.push(self.ctor_expr(&mut env, a, fields)?);
                }
                self.run_ctor_abstract(*sid, &sargs, fields)?;
            }
        }
        // 2. field initializers.
        for (i, f) in info.fields.iter().enumerate() {
            if let Some(init) = &f.init {
                let s = self.ctor_expr(&mut env, init, fields)?;
                fields[(info.field_base + i as u32) as usize] = Some(s);
            }
        }
        // 3. constructor body (straight-line assignments only).
        if let Some(body) = &ctor.body {
            self.ctor_block(&mut env, body, fields)?;
        }
        Ok(())
    }

    fn ctor_block(
        &mut self,
        env: &mut Env,
        body: &TBlock,
        fields: &mut Vec<Option<Shape>>,
    ) -> TResult<()> {
        for s in &body.stmts {
            match s {
                TStmt::Local { slot, init, ty, .. } => {
                    let shape = match init {
                        Some(e) => self.ctor_expr(env, e, fields)?,
                        None => shape_from_decl(self.table, ty).ok_or_else(|| {
                            TransError::new("uninitialized object local in constructor")
                        })?,
                    };
                    env.locals.insert(*slot, shape);
                }
                TStmt::AssignLocal { slot, value, .. } => {
                    let shape = self.ctor_expr(env, value, fields)?;
                    env.locals.insert(*slot, shape);
                }
                TStmt::AssignField {
                    obj, field, value, ..
                } => {
                    if !matches!(obj.kind, TExprKind::This) {
                        return Err(TransError::new(
                            "constructor assigns a field of another object (not semi-immutable)",
                        ));
                    }
                    let shape = self.ctor_expr(env, value, fields)?;
                    fields[field.slot as usize] = Some(shape);
                }
                TStmt::Block(b) => self.ctor_block(env, b, fields)?,
                other => {
                    return Err(TransError::new(format!(
                        "constructor contains a statement that breaks semi-immutability \
                         (line {}); only assignments are allowed",
                        other.span().line
                    )))
                }
            }
        }
        Ok(())
    }

    /// Expressions inside constructors: like `expr` but `this.field` reads
    /// resolve against the in-progress field map instead of a receiver.
    fn ctor_expr(
        &mut self,
        env: &mut Env,
        e: &TExpr,
        fields: &mut Vec<Option<Shape>>,
    ) -> TResult<Shape> {
        if let TExprKind::GetField { obj, field } = &e.kind {
            if matches!(obj.kind, TExprKind::This) {
                return fields[field.slot as usize].clone().ok_or_else(|| {
                    TransError::new(format!(
                        "constructor reads field slot {} before assigning it",
                        field.slot
                    ))
                });
            }
        }
        if matches!(e.kind, TExprKind::This) {
            return Err(TransError::new(
                "constructor uses `this` as a value (not semi-immutable)",
            ));
        }
        match &e.kind {
            // Allocation inside a constructor is fine (e.g. field inits).
            TExprKind::New { class, args, .. } => {
                let mut arg_shapes = Vec::with_capacity(args.len());
                for a in args {
                    arg_shapes.push(self.ctor_expr(env, a, fields)?);
                }
                self.ctor_shape(*class, &arg_shapes)
            }
            TExprKind::NewArray { elem, len } => {
                self.ctor_expr(env, len, fields)?;
                elem_ty_of(elem)
                    .map(Shape::Arr)
                    .ok_or_else(|| TransError::new("only primitive arrays can be translated"))
            }
            TExprKind::Binary {
                op,
                operand_kind,
                lhs,
                rhs,
            } => {
                self.ctor_expr(env, lhs, fields)?;
                self.ctor_expr(env, rhs, fields)?;
                if op.is_comparison() {
                    Ok(Shape::Prim(jlang::PrimKind::Boolean))
                } else {
                    Ok(Shape::Prim(*operand_kind))
                }
            }
            TExprKind::Unary { expr, .. } => self.ctor_expr(env, expr, fields),
            TExprKind::NumCast { to, expr } | TExprKind::Convert { to, expr } => {
                self.ctor_expr(env, expr, fields)?;
                Ok(Shape::Prim(*to))
            }
            TExprKind::Call { .. }
            | TExprKind::DirectCall { .. }
            | TExprKind::StaticCall { .. } => Err(TransError::new(
                "constructor calls a method (not semi-immutable)",
            )),
            _ => self.expr(env, e),
        }
    }
}

/// Shape derivable from a declared type alone (primitives and primitive
/// arrays — the cases where the declaration pins the exact type).
pub fn shape_from_decl(table: &ClassTable, ty: &Type) -> Option<Shape> {
    let _ = table;
    match ty {
        Type::Int => Some(Shape::Prim(jlang::PrimKind::Int)),
        Type::Long => Some(Shape::Prim(jlang::PrimKind::Long)),
        Type::Float => Some(Shape::Prim(jlang::PrimKind::Float)),
        Type::Double => Some(Shape::Prim(jlang::PrimKind::Double)),
        Type::Boolean => Some(Shape::Prim(jlang::PrimKind::Boolean)),
        Type::Array(e) => elem_ty_of(e).map(Shape::Arr),
        _ => None,
    }
}

/// Return shape of an `@Native` method from its declared signature.
fn native_return_shape(ret: &Type, key: &str) -> TResult<Option<Shape>> {
    match ret {
        Type::Void => Ok(None),
        Type::Int => Ok(Some(Shape::Prim(jlang::PrimKind::Int))),
        Type::Long => Ok(Some(Shape::Prim(jlang::PrimKind::Long))),
        Type::Float => Ok(Some(Shape::Prim(jlang::PrimKind::Float))),
        Type::Double => Ok(Some(Shape::Prim(jlang::PrimKind::Double))),
        Type::Boolean => Ok(Some(Shape::Prim(jlang::PrimKind::Boolean))),
        Type::Array(e) => elem_ty_of(e).map(|t| Some(Shape::Arr(t))).ok_or_else(|| {
            TransError::new(format!("native `{key}` returns a non-primitive array"))
        }),
        other => Err(TransError::new(format!(
            "native `{key}` returns unsupported type {other}"
        ))),
    }
}

/// Declared type of the field at absolute `slot` of `class`.
fn field_decl_type(table: &ClassTable, class: ClassId, slot: u32) -> Option<Type> {
    for (cid, args) in table.super_chain(class) {
        let info = table.class(cid);
        let base = info.field_base;
        if slot >= base && slot < base + info.fields.len() as u32 {
            return Some(info.fields[(slot - base) as usize].ty.subst(&args));
        }
    }
    None
}

/// Shape of field `slot` within an object shape.
pub fn field_shape(table: &ClassTable, obj: &Shape, slot: u32) -> TResult<Shape> {
    match obj {
        Shape::Obj { fields, .. } => fields
            .get(slot as usize)
            .cloned()
            .ok_or_else(|| TransError::new(format!("field slot {slot} out of range for shape"))),
        other => Err(TransError::new(format!(
            "field access on non-object shape {}",
            other.show(table)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::shape_of_value;
    use jlang::compile_str;
    use jlang::types::PrimKind;
    use jvm::{Jvm, Value};

    fn entry_key(
        table: &ClassTable,
        jvm: &Jvm<'_>,
        recv: &Value,
        method: &str,
        args: &[Value],
    ) -> SpecKey {
        let rs = shape_of_value(jvm, recv).unwrap();
        let class = rs.class().unwrap();
        let (ic, im) = table.resolve_impl(class, method).unwrap();
        let arg_shapes = args
            .iter()
            .map(|a| shape_of_value(jvm, a).unwrap())
            .collect();
        SpecKey {
            class: ic,
            method: im,
            recv: Some(rs),
            args: arg_shapes,
        }
    }

    #[test]
    fn return_shape_through_dispatch() {
        let table = compile_str(
            "interface Solver { float solve(float x); } \
             final class Mul implements Solver { float a; Mul(float a0) { a = a0; } \
               float solve(float x) { return a * x; } } \
             final class App { Solver s; App(Solver s0) { s = s0; } \
               float run(float x) { return s.solve(x); } }",
        )
        .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let mul = jvm.new_instance("Mul", &[Value::Float(3.0)]).unwrap();
        let app = jvm.new_instance("App", &[mul]).unwrap();
        let key = entry_key(&table, &jvm, &app, "run", &[Value::Float(1.0)]);
        let mut se = ShapeEval::new(&table);
        assert_eq!(
            se.method_return(&key).unwrap(),
            Some(Shape::Prim(PrimKind::Float))
        );
    }

    #[test]
    fn object_return_shapes() {
        let table = compile_str(
            "final class Cell { float v; Cell(float v0) { v = v0; } } \
             final class Maker { Maker() { } Cell make(float x) { return new Cell(x + 1f); } }",
        )
        .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let maker = jvm.new_instance("Maker", &[]).unwrap();
        let key = entry_key(&table, &jvm, &maker, "make", &[Value::Float(0.0)]);
        let mut se = ShapeEval::new(&table);
        let ret = se.method_return(&key).unwrap().unwrap();
        assert_eq!(
            ret,
            Shape::Obj {
                class: table.by_name("Cell").unwrap(),
                fields: vec![Shape::Prim(PrimKind::Float)],
            }
        );
    }

    #[test]
    fn ctor_chain_with_super_and_inits() {
        let table = compile_str(
            "class Base { int a; Base(int a0) { a = a0; } } \
             final class Sub extends Base { float[] buf = new float[4]; int b; \
               Sub(int x) { super(x); b = a + 1; } }",
        )
        .unwrap();
        let mut se = ShapeEval::new(&table);
        let sub = table.by_name("Sub").unwrap();
        let s = se.ctor_shape(sub, &[Shape::Prim(PrimKind::Int)]).unwrap();
        assert_eq!(
            s,
            Shape::Obj {
                class: sub,
                fields: vec![
                    Shape::Prim(PrimKind::Int),
                    Shape::Arr(nir::ElemTy::F32),
                    Shape::Prim(PrimKind::Int),
                ],
            }
        );
    }

    #[test]
    fn divergent_return_shapes_rejected() {
        let table = compile_str(
            "interface I { } final class A implements I { A() { } } final class B implements I { B() { } } \
             final class F { F() { } I pick(boolean b) { if (b) { return new A(); } return new B(); } }",
        )
        .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let f = jvm.new_instance("F", &[]).unwrap();
        let key = entry_key(&table, &jvm, &f, "pick", &[Value::Bool(true)]);
        let mut se = ShapeEval::new(&table);
        let err = se.method_return(&key).unwrap_err();
        assert!(err.message.contains("different shapes"), "{err}");
    }

    #[test]
    fn recursion_detected() {
        let table = compile_str(
            "final class R { R() { } int f(int n) { if (n <= 0) { return 0; } return f(n - 1); } }",
        )
        .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let r = jvm.new_instance("R", &[]).unwrap();
        let key = entry_key(&table, &jvm, &r, "f", &[Value::Int(3)]);
        let mut se = ShapeEval::new(&table);
        let err = se.method_return(&key).unwrap_err();
        assert!(err.message.contains("recursion"), "{err}");
    }

    #[test]
    fn unassigned_object_field_rejected() {
        let table = compile_str(
            "final class Inner { Inner() { } } \
             final class Outer { Inner i; Outer() { } }",
        )
        .unwrap();
        let mut se = ShapeEval::new(&table);
        let outer = table.by_name("Outer").unwrap();
        let err = se.ctor_shape(outer, &[]).unwrap_err();
        assert!(err.message.contains("not assigned"), "{err}");
    }

    #[test]
    fn unassigned_primitive_field_defaults() {
        let table = compile_str("final class P { int x; float y; P() { } }").unwrap();
        let mut se = ShapeEval::new(&table);
        let p = table.by_name("P").unwrap();
        let s = se.ctor_shape(p, &[]).unwrap();
        assert_eq!(
            s,
            Shape::Obj {
                class: p,
                fields: vec![Shape::Prim(PrimKind::Int), Shape::Prim(PrimKind::Float)],
            }
        );
    }
}
