//! The shape domain: exact runtime types of whole object graphs.
//!
//! WootinJ's key move is translating with *runtime type information*: the
//! entry method's actual arguments (and the composed application object)
//! are inspected, and because the coding rules make every reachable object
//! semi-immutable with statically determinable exact types, one [`Shape`]
//! describes each value completely. Specialization keys, devirtualization,
//! and object inlining all operate on shapes.

use jlang::table::ClassTable;
use jlang::types::{ClassId, PrimKind, Type};
use jvm::{ArrayData, Jvm, Value};
use nir::ElemTy;

/// The exact type of a value, including the exact types of everything
/// reachable from it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Shape {
    Prim(PrimKind),
    /// Primitive array (bulk HPC data).
    Arr(ElemTy),
    /// Exact class plus the shapes of all instance fields, in absolute
    /// slot order (inherited fields first).
    Obj {
        class: ClassId,
        fields: Vec<Shape>,
    },
}

/// A translation error.
#[derive(Debug, Clone)]
pub struct TransError {
    pub message: String,
}

impl TransError {
    pub fn new(message: impl Into<String>) -> Self {
        TransError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TransError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "translation error: {}", self.message)
    }
}

impl std::error::Error for TransError {}

pub type TResult<T> = Result<T, TransError>;

impl Shape {
    /// Number of scalar/array leaves in the flattened representation.
    pub fn leaf_count(&self) -> usize {
        match self {
            Shape::Prim(_) | Shape::Arr(_) => 1,
            Shape::Obj { fields, .. } => fields.iter().map(Shape::leaf_count).sum(),
        }
    }

    /// The NIR register types of the flattened leaves, in order.
    pub fn leaf_tys(&self) -> Vec<nir::Ty> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.collect_leaf_tys(&mut out);
        out
    }

    fn collect_leaf_tys(&self, out: &mut Vec<nir::Ty>) {
        match self {
            Shape::Prim(k) => out.push(nir::Ty::of_prim(*k)),
            Shape::Arr(e) => out.push(nir::Ty::Arr(*e)),
            Shape::Obj { fields, .. } => {
                for f in fields {
                    f.collect_leaf_tys(out);
                }
            }
        }
    }

    /// For an object shape: `(leaf offset, field shape)` of field `slot`.
    pub fn field_leaf_range(&self, slot: u32) -> Option<(usize, &Shape)> {
        let Shape::Obj { fields, .. } = self else {
            return None;
        };
        let mut off = 0;
        for (i, f) in fields.iter().enumerate() {
            if i as u32 == slot {
                return Some((off, f));
            }
            off += f.leaf_count();
        }
        None
    }

    /// Exact class of an object shape.
    pub fn class(&self) -> Option<ClassId> {
        match self {
            Shape::Obj { class, .. } => Some(*class),
            _ => None,
        }
    }

    /// A short stable string used in specialized function names.
    pub fn mangle(&self, table: &ClassTable) -> String {
        match self {
            Shape::Prim(PrimKind::Int) => "i".into(),
            Shape::Prim(PrimKind::Long) => "l".into(),
            Shape::Prim(PrimKind::Float) => "f".into(),
            Shape::Prim(PrimKind::Double) => "d".into(),
            Shape::Prim(PrimKind::Boolean) => "z".into(),
            Shape::Arr(e) => format!("A{}", ElemShape(*e).mangle()),
            Shape::Obj { class, fields } => {
                let mut s = table.name(*class).to_string();
                if !fields.is_empty() {
                    s.push('_');
                    for f in fields {
                        s.push_str(&f.mangle(table));
                    }
                }
                s
            }
        }
    }

    /// Render human-readably for error messages.
    pub fn show(&self, table: &ClassTable) -> String {
        match self {
            Shape::Prim(k) => format!("{k:?}").to_lowercase(),
            Shape::Arr(e) => format!("{}[]", e.c_name()),
            Shape::Obj { class, fields } => {
                let mut s = table.name(*class).to_string();
                if !fields.is_empty() {
                    s.push('{');
                    for (i, f) in fields.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&f.show(table));
                    }
                    s.push('}');
                }
                s
            }
        }
    }

    /// Does the exact class of this shape conform to declared type `ty`?
    pub fn conforms_to(&self, table: &ClassTable, ty: &Type) -> bool {
        match (self, ty) {
            (Shape::Prim(k), t) => t.prim_kind() == Some(*k),
            (Shape::Arr(e), Type::Array(elem)) => elem_ty_of(elem) == Some(*e),
            (Shape::Obj { class, .. }, Type::Object(want, _)) => {
                table.is_subclass_of(*class, *want)
            }
            // Generic positions are erased in shapes.
            (Shape::Obj { .. }, Type::Var(_)) => true,
            _ => false,
        }
    }
}

struct ElemShape(ElemTy);

impl ElemShape {
    fn mangle(&self) -> &'static str {
        match self.0 {
            ElemTy::I32 => "i",
            ElemTy::I64 => "l",
            ElemTy::F32 => "f",
            ElemTy::F64 => "d",
            ElemTy::Bool => "z",
        }
    }
}

/// NIR element type for a jlang array element type (primitive only).
pub fn elem_ty_of(t: &Type) -> Option<ElemTy> {
    Some(match t {
        Type::Int => ElemTy::I32,
        Type::Long => ElemTy::I64,
        Type::Float => ElemTy::F32,
        Type::Double => ElemTy::F64,
        Type::Boolean => ElemTy::Bool,
        _ => return None,
    })
}

/// Derive the shape of a live jvm value (the runtime type information that
/// drives translation).
pub fn shape_of_value(jvm: &Jvm<'_>, v: &Value) -> TResult<Shape> {
    match v {
        Value::Int(_) => Ok(Shape::Prim(PrimKind::Int)),
        Value::Long(_) => Ok(Shape::Prim(PrimKind::Long)),
        Value::Float(_) => Ok(Shape::Prim(PrimKind::Float)),
        Value::Double(_) => Ok(Shape::Prim(PrimKind::Double)),
        Value::Bool(_) => Ok(Shape::Prim(PrimKind::Boolean)),
        Value::Arr(r) => match jvm.heap.arr(*r) {
            ArrayData::I32(_) => Ok(Shape::Arr(ElemTy::I32)),
            ArrayData::I64(_) => Ok(Shape::Arr(ElemTy::I64)),
            ArrayData::F32(_) => Ok(Shape::Arr(ElemTy::F32)),
            ArrayData::F64(_) => Ok(Shape::Arr(ElemTy::F64)),
            ArrayData::Bool(_) => Ok(Shape::Arr(ElemTy::Bool)),
            ArrayData::Ref(_) => Err(TransError::new(
                "object arrays cannot be translated (the coding rules confine bulk data to primitive arrays)",
            )),
        },
        Value::Obj(r) => {
            let obj = jvm.heap.obj(*r);
            let mut fields = Vec::with_capacity(obj.fields.len());
            for (slot, fv) in obj.fields.iter().enumerate() {
                if matches!(fv, Value::Null) {
                    return Err(TransError::new(format!(
                        "object graph is incomplete: field slot {slot} of `{}` is null",
                        jvm.table.name(obj.class)
                    )));
                }
                fields.push(shape_of_value(jvm, fv)?);
            }
            Ok(Shape::Obj { class: obj.class, fields })
        }
        Value::Null => Err(TransError::new("cannot derive a shape from null")),
        Value::Str(_) => Err(TransError::new("string values cannot be translated")),
        Value::Void => Err(TransError::new("cannot derive a shape from void")),
    }
}

/// A leaf of a flattened value: the path of absolute field slots from the
/// root, ending at a primitive or array.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafPath {
    pub path: Vec<u32>,
    pub ty: nir::Ty,
}

/// Enumerate the leaf paths of a shape, in flattening order.
pub fn leaf_paths(shape: &Shape) -> Vec<LeafPath> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    collect_paths(shape, &mut path, &mut out);
    out
}

fn collect_paths(shape: &Shape, path: &mut Vec<u32>, out: &mut Vec<LeafPath>) {
    match shape {
        Shape::Prim(k) => out.push(LeafPath {
            path: path.clone(),
            ty: nir::Ty::of_prim(*k),
        }),
        Shape::Arr(e) => out.push(LeafPath {
            path: path.clone(),
            ty: nir::Ty::Arr(*e),
        }),
        Shape::Obj { fields, .. } => {
            for (i, f) in fields.iter().enumerate() {
                path.push(i as u32);
                collect_paths(f, path, out);
                path.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jlang::compile_str;

    #[test]
    fn shapes_from_live_objects() {
        let table = compile_str(
            "interface Solver { float solve(float x); } \
             class FastSolver implements Solver { float a; FastSolver(float a0) { a = a0; } \
               float solve(float x) { return a * x; } } \
             class App { Solver s; float[] data; App(Solver s0, float[] d) { s = s0; data = d; } }",
        )
        .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let solver = jvm
            .new_instance("FastSolver", &[Value::Float(2.0)])
            .unwrap();
        let data = jvm.new_f32_array(&[1.0, 2.0]);
        let app = jvm.new_instance("App", &[solver, data]).unwrap();
        let shape = shape_of_value(&jvm, &app).unwrap();
        let app_id = table.by_name("App").unwrap();
        let fs_id = table.by_name("FastSolver").unwrap();
        assert_eq!(
            shape,
            Shape::Obj {
                class: app_id,
                fields: vec![
                    Shape::Obj {
                        class: fs_id,
                        fields: vec![Shape::Prim(PrimKind::Float)]
                    },
                    Shape::Arr(ElemTy::F32),
                ],
            }
        );
        assert_eq!(shape.leaf_count(), 2);
        assert_eq!(
            shape.leaf_tys(),
            vec![nir::Ty::F32, nir::Ty::Arr(ElemTy::F32)]
        );
        let paths = leaf_paths(&shape);
        assert_eq!(paths[0].path, vec![0, 0]);
        assert_eq!(paths[1].path, vec![1]);
    }

    #[test]
    fn null_field_rejected() {
        let table = compile_str("class B { } class A { B b; A() { } }").unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let a = jvm.new_instance("A", &[]).unwrap();
        let err = shape_of_value(&jvm, &a).unwrap_err();
        assert!(err.message.contains("null"), "{err}");
    }

    #[test]
    fn field_leaf_ranges() {
        let table = compile_str(
            "class P { int x; int y; P(int a, int b) { x = a; y = b; } } \
             class Q { P p; float f; Q(P p0, float f0) { p = p0; f = f0; } }",
        )
        .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let p = jvm
            .new_instance("P", &[Value::Int(1), Value::Int(2)])
            .unwrap();
        let q = jvm.new_instance("Q", &[p, Value::Float(3.0)]).unwrap();
        let shape = shape_of_value(&jvm, &q).unwrap();
        let (off0, f0) = shape.field_leaf_range(0).unwrap();
        assert_eq!(off0, 0);
        assert_eq!(f0.leaf_count(), 2);
        let (off1, f1) = shape.field_leaf_range(1).unwrap();
        assert_eq!(off1, 2);
        assert_eq!(f1, &Shape::Prim(PrimKind::Float));
    }

    #[test]
    fn mangle_is_deterministic_and_distinct() {
        let table = compile_str(
            "class A { int x; A(int v) { x = v; } } class B { float y; B(float v) { y = v; } }",
        )
        .unwrap();
        let mut jvm = Jvm::new(&table).unwrap();
        let a = jvm.new_instance("A", &[Value::Int(1)]).unwrap();
        let b = jvm.new_instance("B", &[Value::Float(1.0)]).unwrap();
        let sa = shape_of_value(&jvm, &a).unwrap();
        let sb = shape_of_value(&jvm, &b).unwrap();
        assert_ne!(sa.mangle(&table), sb.mangle(&table));
        assert_eq!(sa.mangle(&table), sa.mangle(&table));
    }
}
