//! Durable JIT artifacts: `Translated` ⇄ bytes, plus the canonical
//! [`CacheKey`] and its cross-process [`fingerprint`](CacheKey::fingerprint).
//!
//! This is the translator's half of the two-tier artifact store. The
//! `nir::codec` module frames and checksums bytes; this module knows what
//! a translated program *carries* (bindings, mode, stats, MPI/GPU usage,
//! warnings) and how to name it on disk or on the wire.
//!
//! Decoding is defensive end to end: a truncated, bit-flipped, or
//! version-skewed artifact yields a typed [`CodecError`], and even a
//! well-framed payload is re-validated with [`Program::validate`] before
//! it is allowed near an execution engine. Callers treat any decode
//! failure as a cache miss and fall back to a cold translate.

#[cfg(test)]
use jlang::types::ClassId;
use nir::codec::{self, CodecError, CodecResult, Reader, Writer};
use nir::FuncId;
#[cfg(test)]
use nir::OptConfig;

use crate::lower::TransStats;
use crate::shape::Shape;
#[cfg(test)]
use crate::sheval::SpecKey;
use crate::{Binding, EntrySpec, Mode, TransConfig, Translated};

// ---- shapes, specs, configs (shared by artifact + fingerprint) ----------

fn write_shape(w: &mut Writer, s: &Shape) {
    match s {
        Shape::Prim(k) => {
            w.u8(0);
            codec::write_prim(w, *k);
        }
        Shape::Arr(e) => {
            w.u8(1);
            codec::write_elem(w, *e);
        }
        Shape::Obj { class, fields } => {
            w.u8(2);
            w.u32(class.0);
            w.len(fields.len());
            for f in fields {
                write_shape(w, f);
            }
        }
    }
}

#[cfg(test)]
fn read_shape(r: &mut Reader<'_>, depth: u32) -> CodecResult<Shape> {
    // Shapes are finite trees; bound recursion so a corrupt payload
    // cannot blow the stack.
    if depth > 64 {
        return Err(r.corrupt("shape nesting deeper than 64"));
    }
    let tag = r.u8()?;
    Ok(match tag {
        0 => Shape::Prim(codec::read_prim(r)?),
        1 => Shape::Arr(codec::read_elem(r)?),
        2 => {
            let class = ClassId(r.u32()?);
            let n = r.len()?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                fields.push(read_shape(r, depth + 1)?);
            }
            Shape::Obj { class, fields }
        }
        other => return Err(r.corrupt(format!("shape tag {other}"))),
    })
}

fn write_opt_shape(w: &mut Writer, s: &Option<Shape>) {
    match s {
        Some(s) => {
            w.u8(1);
            write_shape(w, s);
        }
        None => w.u8(0),
    }
}

#[cfg(test)]
fn read_opt_shape(r: &mut Reader<'_>) -> CodecResult<Option<Shape>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_shape(r, 0)?)),
        other => Err(r.corrupt(format!("option tag {other}"))),
    }
}

fn write_spec(w: &mut Writer, spec: &EntrySpec) {
    match spec {
        EntrySpec::Shaped(k) => {
            w.u8(0);
            w.u32(k.class.0);
            w.u32(k.method);
            write_opt_shape(w, &k.recv);
            w.len(k.args.len());
            for s in &k.args {
                write_shape(w, s);
            }
        }
        EntrySpec::Opaque {
            class,
            method,
            arity,
        } => {
            w.u8(1);
            w.u32(class.0);
            w.u32(*method);
            w.u64(*arity as u64);
        }
    }
}

#[cfg(test)]
fn read_spec(r: &mut Reader<'_>) -> CodecResult<EntrySpec> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => {
            let class = ClassId(r.u32()?);
            let method = r.u32()?;
            let recv = read_opt_shape(r)?;
            let n = r.len()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(read_shape(r, 0)?);
            }
            EntrySpec::Shaped(SpecKey {
                class,
                method,
                recv,
                args,
            })
        }
        1 => EntrySpec::Opaque {
            class: ClassId(r.u32()?),
            method: r.u32()?,
            arity: r.u64()? as usize,
        },
        other => return Err(r.corrupt(format!("entry-spec tag {other}"))),
    })
}

fn mode_tag(m: Mode) -> u8 {
    match m {
        Mode::Virtual => 0,
        Mode::Devirt => 1,
        Mode::Full => 2,
    }
}

fn mode_of(tag: u8, r: &Reader<'_>) -> CodecResult<Mode> {
    Ok(match tag {
        0 => Mode::Virtual,
        1 => Mode::Devirt,
        2 => Mode::Full,
        other => return Err(r.corrupt(format!("mode tag {other}"))),
    })
}

fn write_config(w: &mut Writer, c: &TransConfig) {
    w.u8(mode_tag(c.mode));
    w.bool(c.opt.const_fold);
    w.bool(c.opt.copy_prop);
    w.bool(c.opt.dce);
    w.u64(c.opt.inline_limit as u64);
    w.bool(c.opt.sroa);
    w.bool(c.check_rules);
}

#[cfg(test)]
fn read_config(r: &mut Reader<'_>) -> CodecResult<TransConfig> {
    let tag = r.u8()?;
    let mode = mode_of(tag, r)?;
    Ok(TransConfig {
        mode,
        opt: OptConfig {
            const_fold: r.bool()?,
            copy_prop: r.bool()?,
            dce: r.bool()?,
            inline_limit: r.u64()? as usize,
            sroa: r.bool()?,
        },
        check_rules: r.bool()?,
        // Not persisted: execution strategy, not translation identity.
        parallel_lowering: false,
    })
}

fn write_path(w: &mut Writer, path: &[u32]) {
    w.len(path.len());
    for &p in path {
        w.u32(p);
    }
}

fn read_path(r: &mut Reader<'_>) -> CodecResult<Vec<u32>> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn write_binding(w: &mut Writer, b: &Binding) {
    match b {
        Binding::RecvLeaf { path } => {
            w.u8(0);
            write_path(w, path);
        }
        Binding::ArgLeaf { arg, path } => {
            w.u8(1);
            w.u64(*arg as u64);
            write_path(w, path);
        }
        Binding::RecvObj => w.u8(2),
        Binding::ArgWhole(i) => {
            w.u8(3);
            w.u64(*i as u64);
        }
    }
}

fn read_binding(r: &mut Reader<'_>) -> CodecResult<Binding> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => Binding::RecvLeaf {
            path: read_path(r)?,
        },
        1 => Binding::ArgLeaf {
            arg: r.u64()? as usize,
            path: read_path(r)?,
        },
        2 => Binding::RecvObj,
        3 => Binding::ArgWhole(r.u64()? as usize),
        other => return Err(r.corrupt(format!("binding tag {other}"))),
    })
}

// ---- Translated ⇄ bytes -------------------------------------------------

impl Translated {
    /// Serialize into a sealed (magic + version + checksum) byte artifact
    /// suitable for the disk store or a rank-0 broadcast. The encoding is
    /// deterministic: equal `Translated` values produce identical bytes,
    /// and `encode(decode(x)) == x` bit-for-bit (the golden-fixture
    /// property).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with(&self.stats)
    }

    /// Serialize with volatile observability stripped: pass profiles
    /// (wall times) and facade-filled cache counters are zeroed, so two
    /// semantically equal translations — e.g. an incremental re-JIT and
    /// a from-scratch translate at the same revision — produce
    /// byte-identical output. This is the determinism contract the
    /// incremental property tests assert.
    pub fn encode_semantic(&self) -> Vec<u8> {
        let stats = TransStats {
            passes: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
            queries_executed: 0,
            queries_reused: 0,
            early_cutoffs: 0,
            ..self.stats.clone()
        };
        self.encode_with(&stats)
    }

    fn encode_with(&self, stats: &TransStats) -> Vec<u8> {
        let mut w = Writer::new();
        codec::write_program(&mut w, &self.program);
        w.u32(self.entry.0);
        w.len(self.bindings.len());
        for b in &self.bindings {
            write_binding(&mut w, b);
        }
        w.u8(mode_tag(self.mode));
        w.u32(stats.specializations);
        w.u32(stats.devirtualized_calls);
        w.u32(stats.virtual_calls);
        w.u32(stats.inlined_ctors);
        w.u32(stats.inlined_calls);
        w.u32(stats.kernels);
        codec::write_pass_profiles(&mut w, &stats.passes);
        w.u64(stats.cache_hits);
        w.u64(stats.cache_misses);
        w.bool(self.uses_mpi);
        w.bool(self.uses_gpu);
        w.len(self.warnings.len());
        for warn in &self.warnings {
            w.str(warn);
        }
        codec::seal(&w.into_bytes())
    }

    /// Decode a sealed artifact. Never panics on hostile input: framing,
    /// checksum, every discriminant, and finally [`Program::validate`]
    /// all gate the result behind a typed [`CodecError`].
    ///
    /// [`Program::validate`]: nir::Program::validate
    pub fn decode(bytes: &[u8]) -> CodecResult<Translated> {
        let payload = codec::unseal(bytes)?;
        let mut r = Reader::new(payload);
        let program = codec::read_program(&mut r)?;
        let entry = FuncId(r.u32()?);
        let n = r.len()?;
        let mut bindings = Vec::with_capacity(n);
        for _ in 0..n {
            bindings.push(read_binding(&mut r)?);
        }
        let tag = r.u8()?;
        let mode = mode_of(tag, &r)?;
        let stats = TransStats {
            specializations: r.u32()?,
            devirtualized_calls: r.u32()?,
            virtual_calls: r.u32()?,
            inlined_ctors: r.u32()?,
            inlined_calls: r.u32()?,
            kernels: r.u32()?,
            passes: codec::read_pass_profiles(&mut r)?,
            cache_hits: r.u64()?,
            cache_misses: r.u64()?,
            // Query counters are facade-side observability, never encoded.
            ..TransStats::default()
        };
        let uses_mpi = r.bool()?;
        let uses_gpu = r.bool()?;
        let n = r.len()?;
        let mut warnings = Vec::with_capacity(n);
        for _ in 0..n {
            warnings.push(r.str()?);
        }
        if !r.is_at_end() {
            return Err(r.corrupt("payload longer than the artifact it encodes"));
        }
        // Defense in depth: the digest catches accidental corruption, but
        // a validated program is what the execution engines assume.
        if let Err(m) = program.validate() {
            return Err(CodecError::Corrupt {
                offset: 0,
                message: format!("decoded program failed validation: {m}"),
            });
        }
        if entry.0 as usize >= program.funcs.len() || program.entry != Some(entry) {
            return Err(CodecError::Corrupt {
                offset: 0,
                message: "artifact entry point disagrees with its program".into(),
            });
        }
        Ok(Translated {
            program,
            entry,
            bindings,
            mode,
            stats,
            uses_mpi,
            uses_gpu,
            warnings,
        })
    }
}

// ---- CacheKey -----------------------------------------------------------

/// The canonical JIT-cache key: everything the translation pipeline reads.
/// Two calls with an equal key translate to identical programs — in *any*
/// process, which is what lets [`fingerprint`](CacheKey::fingerprint)
/// name artifacts on disk and on the wire.
///
/// `hosts` is kept private and **sorted** on construction: the host-FFI
/// registry reports keys in insertion order, and two environments that
/// register the same FFI set in a different order must still share cache
/// entries (the registry is keyed by name at call time, so order never
/// affects what translation emits).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub spec: EntrySpec,
    pub config: TransConfig,
    hosts: Vec<String>,
    /// Platform salt (see [`CacheKey::with_platform_salt`]). Zero means
    /// "portable artifact" and is what the legacy facade paths use.
    salt: u64,
    /// Source fingerprint (see [`CacheKey::with_source_fingerprint`]).
    /// Zero means "no source revisioning" — the legacy namespace.
    source: u64,
}

impl CacheKey {
    /// Build a key, canonicalizing the host-FFI key list (sorted,
    /// deduplicated).
    pub fn new(spec: EntrySpec, config: TransConfig, mut hosts: Vec<String>) -> Self {
        hosts.sort();
        hosts.dedup();
        CacheKey {
            spec,
            config,
            hosts,
            salt: 0,
            source: 0,
        }
    }

    /// Scope this key to one execution platform. Translated NIR is
    /// portable across the in-repo backends, but artifacts minted *for* a
    /// platform carry different run-time companions (most concretely the
    /// `<fingerprint>.wckpt` world checkpoint, whose topology is
    /// platform-shaped), so per-platform keys keep them from clobbering
    /// each other. Salt 0 is the unscoped/portable key and leaves the
    /// fingerprint exactly as before — existing stores stay warm.
    pub fn with_platform_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// The platform salt this key is scoped to (0 = portable).
    pub fn platform_salt(&self) -> u64 {
        self.salt
    }

    /// Scope this key to a source revision: the query database's stable
    /// fingerprint over every file's item trees and body hashes
    /// (whitespace- and comment-insensitive). Entry specs only capture
    /// shapes, so without this a `jit` after `edit` could serve code
    /// translated from the previous revision. Zero — the value used by
    /// every non-incremental environment — leaves the fingerprint
    /// byte-identical to the legacy encoding, so existing disk and
    /// shared stores stay warm across the upgrade.
    pub fn with_source_fingerprint(mut self, fp: u64) -> Self {
        self.source = fp;
        self
    }

    /// The source-revision fingerprint this key is scoped to (0 = none).
    pub fn source_fingerprint(&self) -> u64 {
        self.source
    }

    /// The canonicalized (sorted) host-FFI key list.
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// A stable string id for this key, usable as a filename or wire id.
    /// Derived from the canonical byte encoding of spec + config + hosts,
    /// digested twice with independent seeds (128 bits total), and
    /// prefixed with the artifact format version so stores never mix
    /// incompatible layouts. Equal keys fingerprint equally across
    /// processes; the encoding (not Rust's `Hash`) is the source of
    /// stability.
    pub fn fingerprint(&self) -> String {
        let mut w = Writer::new();
        write_spec(&mut w, &self.spec);
        write_config(&mut w, &self.config);
        w.len(self.hosts.len());
        for h in &self.hosts {
            w.str(h);
        }
        // Salt 0 stays out of the digest so unscoped fingerprints (and
        // the artifacts persisted under them) are unchanged.
        if self.salt != 0 {
            w.u64(self.salt);
        }
        // Likewise source revision 0. The tag byte keeps a salted key
        // from ever colliding with a source-fingerprinted one (the salt
        // extends the stream by 8 bytes, this by 9).
        if self.source != 0 {
            w.u8(2);
            w.u64(self.source);
        }
        let bytes = w.into_bytes();
        let a = codec::digest64(&bytes, 0x9E37_79B9_7F4A_7C15);
        let b = codec::digest64(&bytes, 0xC2B2_AE3D_27D4_EB4F);
        format!("wj{:02}-{a:016x}{b:016x}", codec::VERSION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opaque(class: u32, method: u32, arity: usize) -> EntrySpec {
        EntrySpec::Opaque {
            class: ClassId(class),
            method,
            arity,
        }
    }

    #[test]
    fn fingerprint_ignores_host_registration_order() {
        let a = CacheKey::new(
            opaque(1, 0, 2),
            TransConfig::full(),
            vec!["ffi.b".into(), "ffi.a".into(), "ffi.c".into()],
        );
        let b = CacheKey::new(
            opaque(1, 0, 2),
            TransConfig::full(),
            vec!["ffi.c".into(), "ffi.a".into(), "ffi.b".into()],
        );
        assert_eq!(a, b, "keys with reordered host sets must be equal");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_what_matters() {
        let base = CacheKey::new(opaque(1, 0, 2), TransConfig::full(), vec!["ffi.a".into()]);
        let other_spec = CacheKey::new(opaque(1, 1, 2), TransConfig::full(), vec!["ffi.a".into()]);
        let other_cfg = CacheKey::new(opaque(1, 0, 2), TransConfig::devirt(), vec!["ffi.a".into()]);
        let other_hosts = CacheKey::new(opaque(1, 0, 2), TransConfig::full(), vec!["ffi.b".into()]);
        let fp = base.fingerprint();
        assert_ne!(fp, other_spec.fingerprint());
        assert_ne!(fp, other_cfg.fingerprint());
        assert_ne!(fp, other_hosts.fingerprint());
        // Stable across calls and usable as a filename.
        assert_eq!(fp, base.fingerprint());
        assert!(fp.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'));
    }

    #[test]
    fn platform_salt_scopes_the_fingerprint_and_zero_is_identity() {
        let base = CacheKey::new(opaque(1, 0, 2), TransConfig::full(), vec!["ffi.a".into()]);
        let zero = base.clone().with_platform_salt(0);
        assert_eq!(base, zero, "salt 0 is the unscoped key");
        assert_eq!(base.fingerprint(), zero.fingerprint());

        let a = base.clone().with_platform_salt(0x1111);
        let b = base.clone().with_platform_salt(0x2222);
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), base.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same salt, same key: stable across calls.
        assert_eq!(
            a.fingerprint(),
            base.clone().with_platform_salt(0x1111).fingerprint()
        );
    }

    #[test]
    fn shaped_specs_roundtrip_through_the_key_encoding() {
        use jlang::types::PrimKind;
        let spec = EntrySpec::Shaped(SpecKey {
            class: ClassId(7),
            method: 3,
            recv: Some(Shape::Obj {
                class: ClassId(7),
                fields: vec![Shape::Prim(PrimKind::Float), Shape::Arr(nir::ElemTy::F32)],
            }),
            args: vec![Shape::Prim(PrimKind::Int)],
        });
        let mut w = Writer::new();
        write_spec(&mut w, &spec);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_spec(&mut r).unwrap();
        assert!(r.is_at_end());
        assert_eq!(back, spec);
    }

    #[test]
    fn configs_roundtrip_through_the_key_encoding() {
        for config in [
            TransConfig::full(),
            TransConfig::devirt(),
            TransConfig::virtual_dispatch(),
            TransConfig::template_no_virt(),
        ] {
            let mut w = Writer::new();
            write_config(&mut w, &config);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = read_config(&mut r).unwrap();
            assert!(r.is_at_end());
            assert_eq!(back, config);
        }
    }
}
