//! Code generation for the shape-specialized modes.
//!
//! * **Full** (the WootinJ pipeline): every dynamic dispatch is resolved
//!   from shapes (devirtualization), one function is generated per
//!   (method, receiver shape, argument shapes) tuple (specialization), and
//!   every object is erased into its primitive/array leaves (object
//!   inlining). Constructors are inlined at `new` sites.
//! * **Devirt** (the paper's *Template* baseline): identical shape
//!   analysis and direct calls, but objects stay on the heap and field
//!   accesses remain indirections — devirtualization *without* object
//!   inlining.
//!
//! Kernels (`@Global`) are always lowered flattened, whatever the host
//! mode: CUDA kernel arguments are by-value scalars and device-array
//! handles, mirroring both the paper's generated code (Listing 5) and the
//! real CUDA ABI.

use std::collections::HashMap;

use jlang::ast::{BinOp, UnOp};
use jlang::table::ClassTable;
use jlang::tast::{TBlock, TExpr, TExprKind, TStmt};
use jlang::types::{ClassId, PrimKind, Type};
use nir::{
    ConstVal, ElemTy, FuncBuilder, FuncId, FuncKind, Instr, IntrinOp, Label, Program, Reg, Ty,
};

use crate::incr;
use crate::shape::{elem_ty_of, Shape, TransError};
use crate::sheval::{field_shape, shape_from_decl, ShapeEval, SpecKey};
use crate::TResult;

/// Translation statistics (reported by Table 3 and the ablation benches).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct TransStats {
    pub specializations: u32,
    pub devirtualized_calls: u32,
    pub virtual_calls: u32,
    pub inlined_ctors: u32,
    pub inlined_calls: u32,
    pub kernels: u32,
    /// Per-pass wall time + instruction counts from the NIR optimizer —
    /// the pass-level decomposition of Table 3's compile-time column.
    pub passes: Vec<nir::PassProfile>,
    /// JIT-cache counters, filled in by the `wootinj` facade: how many
    /// times this specialization key was served from / inserted into the
    /// code cache at the time the stats were read.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Incremental-query counters, filled in by the `wootinj` facade
    /// from the query database for the jit call that produced these
    /// stats (zero when no database is attached). Like the cache
    /// counters these are observability fields — they are not encoded
    /// into sealed artifacts.
    pub queries_executed: u64,
    pub queries_reused: u64,
    pub early_cutoffs: u64,
}

/// How a specialization is made available to call sites.
#[derive(Debug, Clone)]
pub enum SpecResult {
    Func {
        id: FuncId,
        ret: Option<Shape>,
    },
    /// Flattened mode only: the return value has ≠1 leaves, so the callee
    /// is spliced into each call site instead of being a function.
    InlineOnly {
        ret: Option<Shape>,
    },
}

/// A lowering-time value: its exact shape plus its register
/// representation. In flattened contexts `regs` holds one register per
/// leaf; in heap contexts objects occupy a single `Ty::Obj` register.
#[derive(Debug, Clone)]
pub struct Opnd {
    pub shape: Shape,
    pub regs: Vec<Reg>,
}

impl Opnd {
    fn single(&self) -> TResult<Reg> {
        if self.regs.len() == 1 {
            Ok(self.regs[0])
        } else {
            Err(TransError::new(format!(
                "expected single-register value, found {} registers",
                self.regs.len()
            )))
        }
    }
}

/// Per-function lowering context.
pub struct FnCtx {
    pub fb: FuncBuilder,
    env: HashMap<u32, Opnd>,
    recv: Option<Opnd>,
    /// Innermost constructor field frame (absolute slot -> value), set
    /// while inlining a constructor body.
    ctor_fields: Option<Vec<Option<Opnd>>>,
    pub flatten: bool,
    device: bool,
    ret: RetMode,
    loops: Vec<(Label, Label)>,
}

enum RetMode {
    Function,
    Inline { dest: Vec<Reg>, end: Label },
}

pub struct Lowerer<'t> {
    pub table: &'t ClassTable,
    pub program: Program,
    pub sheval: ShapeEval<'t>,
    pub flatten_objects: bool,
    specs: HashMap<(SpecKey, bool), SpecResult>,
    kernel_specs: HashMap<SpecKey, FuncId>,
    spec_stack: Vec<(SpecKey, bool)>,
    inline_stack: Vec<SpecKey>,
    pub stats: TransStats,
    /// Dependency-trace collector for the incremental query layer
    /// (`None` in the classic whole-program path — zero overhead).
    pub trace: Option<incr::TraceState>,
    /// Validated memos to replay instead of re-lowering.
    pub replay: Option<incr::ReplayState>,
    replay_stack: Vec<(SpecKey, bool, bool)>,
}

impl<'t> Lowerer<'t> {
    pub fn new(table: &'t ClassTable, flatten_objects: bool) -> Self {
        let mut program = Program::default();
        // Class metadata mirrors the jlang table 1:1 so that `NewObj` in
        // heap mode can index by ClassId.
        for info in table.iter() {
            program.classes.push(nir::ClassMeta {
                name: info.name.clone(),
                field_count: info.instance_size(),
                vtable: Vec::new(),
            });
        }
        collect_globals(table, &mut program);
        Lowerer {
            table,
            program,
            sheval: ShapeEval::new(table),
            flatten_objects,
            specs: HashMap::new(),
            kernel_specs: HashMap::new(),
            spec_stack: Vec::new(),
            inline_stack: Vec::new(),
            stats: TransStats::default(),
            trace: None,
            replay: None,
            replay_stack: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Incremental trace & replay (see `crate::incr`)
    // ------------------------------------------------------------------

    fn stats6(&self) -> incr::StatsDelta {
        [
            self.stats.specializations,
            self.stats.devirtualized_calls,
            self.stats.virtual_calls,
            self.stats.inlined_ctors,
            self.stats.inlined_calls,
            self.stats.kernels,
        ]
    }

    fn add_stats6(&mut self, d: incr::StatsDelta) {
        self.stats.specializations += d[0];
        self.stats.devirtualized_calls += d[1];
        self.stats.virtual_calls += d[2];
        self.stats.inlined_ctors += d[3];
        self.stats.inlined_calls += d[4];
        self.stats.kernels += d[5];
    }

    fn trace_push(&mut self, key: &SpecKey, device: bool, kernel: bool) {
        let base = self.stats6();
        if let Some(tr) = &mut self.trace {
            tr.frames.push(incr::Frame {
                key: key.clone(),
                device,
                kernel,
                callees: Vec::new(),
                bodies: Vec::new(),
                base,
                child: [0; 6],
            });
        }
    }

    /// Complete the innermost frame into a harvestable record.
    fn trace_pop_fresh(&mut self, id: FuncId, ret: &Option<Shape>) {
        let now = self.stats6();
        if let Some(tr) = &mut self.trace {
            let fr = tr.frames.pop().expect("trace frame underflow");
            let incl = incr::sub6(now, fr.base);
            if let Some(p) = tr.frames.last_mut() {
                p.child = incr::add6(p.child, incl);
            }
            let excl = incr::sub6(incl, fr.child);
            tr.recs.push(incr::FnRec {
                key: fr.key,
                device: fr.device,
                kernel: fr.kernel,
                id,
                ret: ret.clone(),
                callees: fr.callees,
                bodies: fr.bodies,
                excl,
            });
        }
    }

    /// Drop the innermost frame (replayed or failed specialization),
    /// still propagating its inclusive delta to the parent so exclusive
    /// attribution stays exact.
    fn trace_pop_discard(&mut self) {
        let now = self.stats6();
        if let Some(tr) = &mut self.trace {
            let fr = tr.frames.pop().expect("trace frame underflow");
            let incl = incr::sub6(now, fr.base);
            if let Some(p) = tr.frames.last_mut() {
                p.child = incr::add6(p.child, incl);
            }
        }
    }

    /// Record a call edge into the innermost open frame.
    fn trace_edge(&mut self, key: &SpecKey, device: bool, kernel: bool, expect: FuncId) {
        if let Some(tr) = &mut self.trace {
            if let Some(fr) = tr.frames.last_mut() {
                fr.callees.push(incr::CalleeEdge {
                    key: key.clone(),
                    device,
                    kernel,
                    expect,
                });
            }
        }
    }

    /// Record a typed-body read into the innermost open frame.
    fn trace_body(&mut self, class: ClassId, member: incr::MemberRef) {
        if let Some(tr) = &mut self.trace {
            if let Some(fr) = tr.frames.last_mut() {
                let r = incr::BodyRef { class, member };
                if !fr.bodies.contains(&r) {
                    fr.bodies.push(r);
                }
            }
        }
    }

    /// Attempt to serve `key` from a validated memo. On success the
    /// memoized function is injected at its recorded id; on any drift
    /// the attempt unwinds and the caller lowers freshly. Children
    /// ensured during a failed attempt stay — they are canonical either
    /// way (replayed at verified ids or freshly lowered in DFS order).
    fn try_replay(
        &mut self,
        key: &SpecKey,
        device: bool,
        kernel: bool,
    ) -> TResult<Option<(FuncId, Option<Shape>)>> {
        let memo = match &self.replay {
            Some(rp) => match rp.memos.get(&(key.clone(), device, kernel)) {
                Some(m) => m.clone(),
                None => return Ok(None),
            },
            None => return Ok(None),
        };
        let frame_key = (key.clone(), device, kernel);
        if self.replay_stack.contains(&frame_key) {
            return Ok(None); // corrupt memo cycle; lower freshly
        }
        self.replay_stack.push(frame_key);
        self.trace_push(key, device, kernel);
        let ready = self.replay_children(&memo);
        self.replay_stack.pop();
        match ready {
            Err(e) => {
                self.trace_pop_discard();
                Err(e)
            }
            Ok(false) => {
                self.trace_pop_discard();
                Ok(None)
            }
            Ok(true) => {
                let id = self.program.add_func(memo.func.clone());
                debug_assert_eq!(id, memo.id, "replay id drift");
                self.add_stats6(memo.excl);
                if let Some(rp) = &mut self.replay {
                    rp.replayed.push(id);
                    rp.reused += 1;
                }
                self.trace_pop_discard();
                Ok(Some((id, memo.ret.clone())))
            }
        }
    }

    /// Ensure every recorded callee of `memo` exists at its recorded id.
    fn replay_children(&mut self, memo: &incr::FnMemo) -> TResult<bool> {
        for e in &memo.callees {
            let actual = if e.kernel {
                self.lower_kernel(&e.key)?
            } else {
                match self.lower_spec(&e.key, e.device)? {
                    SpecResult::Func { id, .. } => id,
                    SpecResult::InlineOnly { .. } => return Ok(false),
                }
            };
            if actual != e.expect {
                return Ok(false);
            }
        }
        Ok(self.program.funcs.len() == memo.id.0 as usize)
    }

    /// Lower (or fetch) the specialization of `key` for host or device.
    pub fn lower_spec(&mut self, key: &SpecKey, device: bool) -> TResult<SpecResult> {
        if let Some(r) = self.specs.get(&(key.clone(), device)) {
            let r = r.clone();
            if let SpecResult::Func { id, .. } = &r {
                self.trace_edge(key, device, false, *id);
            }
            return Ok(r);
        }
        if self.spec_stack.contains(&(key.clone(), device)) {
            return Err(TransError::new(format!(
                "recursive call chain reaches `{}::{}` (coding rule 6)",
                self.table.name(key.class),
                self.table.method(key.class, key.method).name
            )));
        }
        // Replay a still-valid memo from a previous revision, if any.
        // Memos exist only for `Func` results, so this happens before
        // the InlineOnly shortcut (whose recompute is cheap anyway).
        if let Some((id, ret)) = self.try_replay(key, device, false)? {
            let r = SpecResult::Func { id, ret };
            self.specs.insert((key.clone(), device), r.clone());
            self.trace_edge(key, device, false, id);
            return Ok(r);
        }
        let flatten = self.flatten_objects || device;
        let ret_shape = self.sheval.method_return(key)?;
        if flatten {
            if let Some(s) = &ret_shape {
                if s.leaf_count() != 1 {
                    let r = SpecResult::InlineOnly {
                        ret: ret_shape.clone(),
                    };
                    self.specs.insert((key.clone(), device), r.clone());
                    return Ok(r);
                }
            }
        }
        self.spec_stack.push((key.clone(), device));
        self.trace_push(key, device, false);
        let result = self.lower_spec_inner(key, device, flatten, ret_shape);
        self.spec_stack.pop();
        match &result {
            Ok(SpecResult::Func { id, ret }) => {
                let (id, ret) = (*id, ret.clone());
                self.trace_pop_fresh(id, &ret);
            }
            _ => self.trace_pop_discard(),
        }
        let r = result?;
        self.specs.insert((key.clone(), device), r.clone());
        if let SpecResult::Func { id, .. } = &r {
            self.trace_edge(key, device, false, *id);
        }
        Ok(r)
    }

    fn mangle(&self, key: &SpecKey, device: bool, kernel: bool) -> String {
        let m = self.table.method(key.class, key.method);
        let mut name = format!("{}_{}", self.table.name(key.class), m.name);
        if let Some(r) = &key.recv {
            name.push_str("__");
            name.push_str(&r.mangle(self.table));
        }
        for a in &key.args {
            name.push('_');
            name.push_str(&a.mangle(self.table));
        }
        if kernel {
            name.push_str("_krn");
        } else if device {
            name.push_str("_dev");
        }
        // Disambiguate collisions deterministically.
        let mut final_name = name.clone();
        let mut i = 2;
        while self.program.funcs.iter().any(|f| f.name == final_name) {
            final_name = format!("{name}_{i}");
            i += 1;
        }
        final_name
    }

    fn lower_spec_inner(
        &mut self,
        key: &SpecKey,
        device: bool,
        flatten: bool,
        ret_shape: Option<Shape>,
    ) -> TResult<SpecResult> {
        let m = self.table.method(key.class, key.method).clone();
        let Some(body) = &m.body else {
            return Err(TransError::new(format!(
                "cannot lower body-less method `{}::{}`",
                self.table.name(key.class),
                m.name
            )));
        };
        self.trace_body(key.class, incr::MemberRef::Method(key.method));
        let name = self.mangle(key, device, false);
        // Parameter layout.
        let mut params = Vec::new();
        if let Some(r) = &key.recv {
            if flatten {
                params.extend(r.leaf_tys());
            } else {
                params.push(Ty::Obj);
            }
        }
        for a in &key.args {
            if flatten {
                params.extend(a.leaf_tys());
            } else {
                params.push(heap_ty(a));
            }
        }
        let ret_ty = match &ret_shape {
            None => None,
            Some(s) if flatten => {
                debug_assert_eq!(s.leaf_count(), 1);
                Some(s.leaf_tys()[0])
            }
            Some(s) => Some(heap_ty(s)),
        };
        let kind = if device {
            FuncKind::Device
        } else {
            FuncKind::Host
        };
        let fb = FuncBuilder::new(name, params, ret_ty, kind);
        // Bind receiver and parameters to their registers.
        let mut next = 0u32;
        let recv = key.recv.as_ref().map(|r| {
            let n = if flatten { r.leaf_count() } else { 1 };
            let regs: Vec<Reg> = (next..next + n as u32).collect();
            next += n as u32;
            Opnd {
                shape: r.clone(),
                regs,
            }
        });
        let mut env = HashMap::new();
        for (i, a) in key.args.iter().enumerate() {
            let n = if flatten { a.leaf_count() } else { 1 };
            let regs: Vec<Reg> = (next..next + n as u32).collect();
            next += n as u32;
            env.insert(
                i as u32,
                Opnd {
                    shape: a.clone(),
                    regs,
                },
            );
        }
        // Guard: frame slots used by locals start after parameter count in
        // the typed AST; our env is keyed by slot so no adjustment needed.
        let _ = next;
        let mut fx = FnCtx {
            fb,
            env,
            recv,
            ctor_fields: None,
            flatten,
            device,
            ret: RetMode::Function,
            loops: Vec::new(),
        };
        self.block(&mut fx, body)?;
        let f = fx.fb.finish().map_err(TransError::new)?;
        let id = self.program.add_func(f);
        self.stats.specializations += 1;
        Ok(SpecResult::Func { id, ret: ret_shape })
    }

    /// Lower a `@Global` kernel specialization (always flattened).
    pub fn lower_kernel(&mut self, key: &SpecKey) -> TResult<FuncId> {
        if let Some(id) = self.kernel_specs.get(key) {
            let id = *id;
            self.trace_edge(key, true, true, id);
            return Ok(id);
        }
        if let Some((id, _)) = self.try_replay(key, true, true)? {
            self.kernel_specs.insert(key.clone(), id);
            self.trace_edge(key, true, true, id);
            return Ok(id);
        }
        let m = self.table.method(key.class, key.method).clone();
        if m.ret != Type::Void {
            return Err(TransError::new(format!(
                "@Global method `{}` must return void",
                m.name
            )));
        }
        let Some(body) = &m.body else {
            return Err(TransError::new("kernel has no body"));
        };
        let name = self.mangle(key, true, true);
        let mut params = Vec::new();
        if let Some(r) = &key.recv {
            params.extend(r.leaf_tys());
        }
        for a in &key.args {
            params.extend(a.leaf_tys());
        }
        let fb = FuncBuilder::new(name, params, None, FuncKind::Kernel);
        let mut next = 0u32;
        let recv = key.recv.as_ref().map(|r| {
            let n = r.leaf_count();
            let regs: Vec<Reg> = (next..next + n as u32).collect();
            next += n as u32;
            Opnd {
                shape: r.clone(),
                regs,
            }
        });
        let mut env = HashMap::new();
        for (i, a) in key.args.iter().enumerate() {
            let n = a.leaf_count();
            let regs: Vec<Reg> = (next..next + n as u32).collect();
            next += n as u32;
            env.insert(
                i as u32,
                Opnd {
                    shape: a.clone(),
                    regs,
                },
            );
        }
        let mut fx = FnCtx {
            fb,
            env,
            recv,
            ctor_fields: None,
            flatten: true,
            device: true,
            ret: RetMode::Function,
            loops: Vec::new(),
        };
        self.trace_push(key, true, true);
        self.trace_body(key.class, incr::MemberRef::Method(key.method));
        let finished = self
            .block(&mut fx, body)
            .and_then(|()| fx.fb.finish().map_err(TransError::new));
        let f = match finished {
            Ok(f) => f,
            Err(e) => {
                self.trace_pop_discard();
                return Err(e);
            }
        };
        let id = self.program.add_func(f);
        self.kernel_specs.insert(key.clone(), id);
        self.stats.kernels += 1;
        self.stats.specializations += 1;
        self.trace_pop_fresh(id, &None);
        self.trace_edge(key, true, true, id);
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    pub fn block(&mut self, fx: &mut FnCtx, b: &TBlock) -> TResult<()> {
        for s in &b.stmts {
            self.stmt(fx, s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, fx: &mut FnCtx, s: &TStmt) -> TResult<()> {
        match s {
            TStmt::Local { slot, ty, init, .. } => {
                let opnd = match init {
                    Some(e) => {
                        let v = self.expr(fx, e)?;
                        // Copy into fresh registers so reassignment works.
                        self.copy_opnd(fx, &v)
                    }
                    None => {
                        let shape = shape_from_decl(self.table, ty).ok_or_else(|| {
                            TransError::new(format!(
                                "object-typed local of type {} needs an initializer",
                                self.table.show_type(ty)
                            ))
                        })?;
                        self.default_opnd(fx, &shape)?
                    }
                };
                fx.env.insert(*slot, opnd);
                Ok(())
            }
            TStmt::AssignLocal { slot, value, .. } => {
                let v = self.expr(fx, value)?;
                let dst = fx.env.get(slot).cloned().ok_or_else(|| {
                    TransError::new(format!("assignment to undeclared slot {slot}"))
                })?;
                if dst.shape != v.shape {
                    return Err(TransError::new(format!(
                        "local changes shape from {} to {}",
                        dst.shape.show(self.table),
                        v.shape.show(self.table)
                    )));
                }
                for (d, s) in dst.regs.iter().zip(&v.regs) {
                    fx.fb.emit(Instr::Mov(*d, *s));
                }
                Ok(())
            }
            TStmt::AssignField {
                obj, field, value, ..
            } => {
                let v = self.expr(fx, value)?;
                // Constructor frame write?
                if matches!(obj.kind, TExprKind::This) && fx.ctor_fields.is_some() {
                    let copy = self.copy_opnd(fx, &v);
                    fx.ctor_fields.as_mut().unwrap()[field.slot as usize] = Some(copy);
                    return Ok(());
                }
                let o = self.expr(fx, obj)?;
                if fx.flatten {
                    let (off, fshape) = o
                        .shape
                        .field_leaf_range(field.slot)
                        .ok_or_else(|| TransError::new("field assignment out of shape range"))?;
                    if fshape != &v.shape {
                        return Err(TransError::new(format!(
                            "field changes shape from {} to {}",
                            fshape.show(self.table),
                            v.shape.show(self.table)
                        )));
                    }
                    let n = v.regs.len();
                    for i in 0..n {
                        fx.fb.emit(Instr::Mov(o.regs[off + i], v.regs[i]));
                    }
                } else {
                    let oreg = o.single()?;
                    let vreg = v.single()?;
                    fx.fb.emit(Instr::PutField {
                        obj: oreg,
                        slot: field.slot,
                        src: vreg,
                    });
                }
                Ok(())
            }
            TStmt::AssignStatic { .. } => Err(TransError::new(
                "assignment to a static field cannot be translated (coding rule 5)",
            )),
            TStmt::AssignIndex {
                arr, idx, value, ..
            } => {
                let a = self.expr(fx, arr)?;
                let i = self.expr(fx, idx)?;
                let v = self.expr(fx, value)?;
                fx.fb.emit(Instr::StArr {
                    arr: a.single()?,
                    idx: i.single()?,
                    src: v.single()?,
                });
                Ok(())
            }
            TStmt::Expr(e) => {
                self.expr_maybe_void(fx, e)?;
                Ok(())
            }
            TStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.expr(fx, cond)?;
                let tl = fx.fb.label();
                let el = fx.fb.label();
                let end = fx.fb.label();
                fx.fb.br(c.single()?, tl, el);
                fx.fb.bind(tl);
                self.block(fx, then_branch)?;
                fx.fb.jmp(end);
                fx.fb.bind(el);
                if let Some(e) = else_branch {
                    self.block(fx, e)?;
                }
                fx.fb.jmp(end);
                fx.fb.bind(end);
                Ok(())
            }
            TStmt::While { cond, body, .. } => {
                let head = fx.fb.label();
                let bodyl = fx.fb.label();
                let end = fx.fb.label();
                fx.fb.jmp(head);
                fx.fb.bind(head);
                let c = self.expr(fx, cond)?;
                fx.fb.br(c.single()?, bodyl, end);
                fx.fb.bind(bodyl);
                fx.loops.push((head, end));
                self.block(fx, body)?;
                fx.loops.pop();
                fx.fb.jmp(head);
                fx.fb.bind(end);
                Ok(())
            }
            TStmt::For {
                init,
                cond,
                update,
                body,
                ..
            } => {
                if let Some(i) = init {
                    self.stmt(fx, i)?;
                }
                let head = fx.fb.label();
                let bodyl = fx.fb.label();
                let cont = fx.fb.label();
                let end = fx.fb.label();
                fx.fb.jmp(head);
                fx.fb.bind(head);
                match cond {
                    Some(c) => {
                        let cv = self.expr(fx, c)?;
                        fx.fb.br(cv.single()?, bodyl, end);
                    }
                    None => fx.fb.jmp(bodyl),
                }
                fx.fb.bind(bodyl);
                fx.loops.push((cont, end));
                self.block(fx, body)?;
                fx.loops.pop();
                fx.fb.jmp(cont);
                fx.fb.bind(cont);
                if let Some(u) = update {
                    self.stmt(fx, u)?;
                }
                fx.fb.jmp(head);
                fx.fb.bind(end);
                Ok(())
            }
            TStmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => Some(self.expr(fx, e)?),
                    None => None,
                };
                match (&fx.ret, v) {
                    (RetMode::Function, Some(v)) => {
                        fx.fb.emit(Instr::Ret(Some(v.single()?)));
                    }
                    (RetMode::Function, None) => {
                        fx.fb.emit(Instr::Ret(None));
                    }
                    (RetMode::Inline { dest, end }, v) => {
                        let dest = dest.clone();
                        let end = *end;
                        if let Some(v) = v {
                            for (d, s) in dest.iter().zip(&v.regs) {
                                fx.fb.emit(Instr::Mov(*d, *s));
                            }
                        }
                        fx.fb.jmp(end);
                    }
                }
                Ok(())
            }
            TStmt::Break(_) => {
                let (_, brk) = *fx.loops.last().ok_or_else(|| {
                    TransError::new("break outside a loop reached the translator")
                })?;
                fx.fb.jmp(brk);
                Ok(())
            }
            TStmt::Continue(_) => {
                let (cont, _) = *fx.loops.last().ok_or_else(|| {
                    TransError::new("continue outside a loop reached the translator")
                })?;
                fx.fb.jmp(cont);
                Ok(())
            }
            TStmt::Block(b) => self.block(fx, b),
        }
    }

    /// Copy an operand into fresh registers (value semantics: objects are
    /// bundles of locals after inlining, exactly as §3.3 describes).
    fn copy_opnd(&mut self, fx: &mut FnCtx, v: &Opnd) -> Opnd {
        let tys: Vec<Ty> = if fx.flatten {
            v.shape.leaf_tys()
        } else {
            vec![heap_ty(&v.shape)]
        };
        let mut regs = Vec::with_capacity(v.regs.len());
        for (s, ty) in v.regs.iter().zip(tys) {
            let d = fx.fb.reg(ty);
            fx.fb.emit(Instr::Mov(d, *s));
            regs.push(d);
        }
        Opnd {
            shape: v.shape.clone(),
            regs,
        }
    }

    /// Default (zero) operand for primitives and arrays; arrays get an
    /// uninitialized register that traps at runtime if read before
    /// assignment.
    fn default_opnd(&mut self, fx: &mut FnCtx, shape: &Shape) -> TResult<Opnd> {
        match shape {
            Shape::Prim(k) => {
                let r = fx.fb.reg(Ty::of_prim(*k));
                fx.fb.emit(const_zero(*k, r));
                Ok(Opnd {
                    shape: shape.clone(),
                    regs: vec![r],
                })
            }
            Shape::Arr(e) => {
                let r = fx.fb.reg(Ty::Arr(*e));
                Ok(Opnd {
                    shape: shape.clone(),
                    regs: vec![r],
                })
            }
            Shape::Obj { .. } => Err(TransError::new("object local without initializer")),
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr_maybe_void(&mut self, fx: &mut FnCtx, e: &TExpr) -> TResult<Option<Opnd>> {
        match &e.kind {
            TExprKind::Call { recv, method, args } => {
                let r = self.expr(fx, recv)?;
                self.call_resolved(fx, Some(r), method.decl_class, method.index, args, true)
            }
            TExprKind::DirectCall { recv, method, args } => {
                let r = self.expr(fx, recv)?;
                self.call_resolved(fx, Some(r), method.decl_class, method.index, args, false)
            }
            TExprKind::StaticCall { class, index, args } => {
                self.call_resolved(fx, None, *class, *index, args, false)
            }
            _ => Ok(Some(self.expr(fx, e)?)),
        }
    }

    pub fn expr(&mut self, fx: &mut FnCtx, e: &TExpr) -> TResult<Opnd> {
        match &e.kind {
            TExprKind::Int(v) => {
                Ok(self.const_opnd(fx, Instr::ConstI32(0, *v), Ty::I32, PrimKind::Int))
            }
            TExprKind::Long(v) => {
                Ok(self.const_opnd(fx, Instr::ConstI64(0, *v), Ty::I64, PrimKind::Long))
            }
            TExprKind::Float(v) => {
                Ok(self.const_opnd(fx, Instr::ConstF32(0, *v), Ty::F32, PrimKind::Float))
            }
            TExprKind::Double(v) => {
                Ok(self.const_opnd(fx, Instr::ConstF64(0, *v), Ty::F64, PrimKind::Double))
            }
            TExprKind::Bool(v) => {
                Ok(self.const_opnd(fx, Instr::ConstBool(0, *v), Ty::Bool, PrimKind::Boolean))
            }
            TExprKind::Local(slot) => fx
                .env
                .get(slot)
                .cloned()
                .ok_or_else(|| TransError::new(format!("read of unassigned local slot {slot}"))),
            TExprKind::This => {
                if fx.ctor_fields.is_some() {
                    return Err(TransError::new(
                        "`this` used as a value inside a constructor (not semi-immutable)",
                    ));
                }
                fx.recv
                    .clone()
                    .ok_or_else(|| TransError::new("`this` in a static translation context"))
            }
            TExprKind::GetField { obj, field } => {
                if matches!(obj.kind, TExprKind::This) {
                    if let Some(frame) = &fx.ctor_fields {
                        return frame[field.slot as usize].clone().ok_or_else(|| {
                            TransError::new(format!(
                                "constructor reads field slot {} before assigning it",
                                field.slot
                            ))
                        });
                    }
                }
                let o = self.expr(fx, obj)?;
                if fx.flatten {
                    let (off, fshape) = o
                        .shape
                        .field_leaf_range(field.slot)
                        .ok_or_else(|| TransError::new("field read out of shape range"))?;
                    let n = fshape.leaf_count();
                    Ok(Opnd {
                        shape: fshape.clone(),
                        regs: o.regs[off..off + n].to_vec(),
                    })
                } else {
                    let fshape = field_shape(self.table, &o.shape, field.slot)?;
                    let dst = fx.fb.reg(heap_ty(&fshape));
                    fx.fb.emit(Instr::GetField {
                        obj: o.single()?,
                        slot: field.slot,
                        dst,
                    });
                    Ok(Opnd {
                        shape: fshape,
                        regs: vec![dst],
                    })
                }
            }
            TExprKind::GetStatic { class, index } => {
                let f = self.table.class(*class).statics[*index as usize].clone();
                let init = f.init.as_ref().ok_or_else(|| {
                    TransError::new(format!("static `{}` has no constant initializer", f.name))
                })?;
                let cv = const_eval(self.table, init)?;
                Ok(self.emit_const_val(fx, cv))
            }
            TExprKind::Call { recv, method, args } => {
                let r = self.expr(fx, recv)?;
                self.call_resolved(fx, Some(r), method.decl_class, method.index, args, true)?
                    .ok_or_else(|| TransError::new("void call used as a value"))
            }
            TExprKind::DirectCall { recv, method, args } => {
                let r = self.expr(fx, recv)?;
                self.call_resolved(fx, Some(r), method.decl_class, method.index, args, false)?
                    .ok_or_else(|| TransError::new("void super-call used as a value"))
            }
            TExprKind::StaticCall { class, index, args } => self
                .call_resolved(fx, None, *class, *index, args, false)?
                .ok_or_else(|| TransError::new("void static call used as a value")),
            TExprKind::New { class, args, .. } => {
                let mut arg_opnds = Vec::with_capacity(args.len());
                for a in args {
                    arg_opnds.push(self.expr(fx, a)?);
                }
                self.lower_new(fx, *class, arg_opnds)
            }
            TExprKind::NewArray { elem, len } => {
                let e_ty = elem_ty_of(elem)
                    .ok_or_else(|| TransError::new("only primitive arrays can be translated"))?;
                let l = self.expr(fx, len)?;
                let dst = fx.fb.reg(Ty::Arr(e_ty));
                fx.fb.emit(Instr::NewArr {
                    elem: e_ty,
                    len: l.single()?,
                    dst,
                });
                Ok(Opnd {
                    shape: Shape::Arr(e_ty),
                    regs: vec![dst],
                })
            }
            TExprKind::Index { arr, idx } => {
                let a = self.expr(fx, arr)?;
                let i = self.expr(fx, idx)?;
                let Shape::Arr(e_ty) = a.shape else {
                    return Err(TransError::new("indexing a non-array shape"));
                };
                let dst = fx.fb.reg(e_ty.ty());
                fx.fb.emit(Instr::LdArr {
                    arr: a.single()?,
                    idx: i.single()?,
                    dst,
                });
                Ok(Opnd {
                    shape: Shape::Prim(elem_prim(e_ty)),
                    regs: vec![dst],
                })
            }
            TExprKind::ArrayLen(a) => {
                let arr = self.expr(fx, a)?;
                let dst = fx.fb.reg(Ty::I32);
                fx.fb.emit(Instr::ArrLen {
                    arr: arr.single()?,
                    dst,
                });
                Ok(Opnd {
                    shape: Shape::Prim(PrimKind::Int),
                    regs: vec![dst],
                })
            }
            TExprKind::Unary { op, expr } => {
                let v = self.expr(fx, expr)?;
                let Shape::Prim(kind) = v.shape else {
                    return Err(TransError::new("unary operator on non-primitive"));
                };
                let dst = fx.fb.reg(Ty::of_prim(kind));
                match op {
                    UnOp::Neg => {
                        fx.fb.emit(Instr::Neg {
                            kind,
                            dst,
                            src: v.single()?,
                        });
                    }
                    UnOp::Not => {
                        fx.fb.emit(Instr::Not {
                            dst,
                            src: v.single()?,
                        });
                    }
                }
                Ok(Opnd {
                    shape: Shape::Prim(kind),
                    regs: vec![dst],
                })
            }
            TExprKind::Binary {
                op,
                operand_kind,
                lhs,
                rhs,
            } => {
                // Short-circuit logical operators become control flow.
                if matches!(op, BinOp::And | BinOp::Or) {
                    return self.short_circuit(fx, *op, lhs, rhs);
                }
                let l = self.expr(fx, lhs)?;
                let r = self.expr(fx, rhs)?;
                let out_kind = if op.is_comparison() {
                    PrimKind::Boolean
                } else {
                    *operand_kind
                };
                let dst = fx.fb.reg(Ty::of_prim(out_kind));
                fx.fb.emit(Instr::Bin {
                    op: *op,
                    kind: *operand_kind,
                    dst,
                    lhs: l.single()?,
                    rhs: r.single()?,
                });
                Ok(Opnd {
                    shape: Shape::Prim(out_kind),
                    regs: vec![dst],
                })
            }
            TExprKind::NumCast { to, expr } | TExprKind::Convert { to, expr } => {
                let v = self.expr(fx, expr)?;
                let Shape::Prim(from) = v.shape else {
                    return Err(TransError::new("numeric cast on non-primitive"));
                };
                if from == *to {
                    return Ok(v);
                }
                let dst = fx.fb.reg(Ty::of_prim(*to));
                fx.fb.emit(Instr::Cast {
                    to: *to,
                    from,
                    dst,
                    src: v.single()?,
                });
                Ok(Opnd {
                    shape: Shape::Prim(*to),
                    regs: vec![dst],
                })
            }
            TExprKind::RefCast { to, expr } => {
                let v = self.expr(fx, expr)?;
                if let (Some(c), Type::Object(want, _)) = (v.shape.class(), to) {
                    if !self.table.is_subclass_of(c, *want) {
                        return Err(TransError::new(format!(
                            "cast of `{}` to `{}` can never succeed",
                            self.table.name(c),
                            self.table.name(*want)
                        )));
                    }
                }
                Ok(v)
            }
            TExprKind::RefEq { .. } => Err(TransError::new(
                "reference equality cannot be translated (coding rule 7)",
            )),
            TExprKind::InstanceOf { .. } => Err(TransError::new(
                "`instanceof` cannot be translated (coding rule 8)",
            )),
            TExprKind::Null => Err(TransError::new(
                "`null` cannot be translated (coding rule 8)",
            )),
            TExprKind::Str(_) => Err(TransError::new("strings cannot be translated")),
            TExprKind::Ternary { .. } => Err(TransError::new(
                "the conditional operator cannot be translated (coding rule 7)",
            )),
        }
    }

    fn const_opnd(&mut self, fx: &mut FnCtx, template: Instr, ty: Ty, kind: PrimKind) -> Opnd {
        let r = fx.fb.reg(ty);
        let ins = match template {
            Instr::ConstI32(_, v) => Instr::ConstI32(r, v),
            Instr::ConstI64(_, v) => Instr::ConstI64(r, v),
            Instr::ConstF32(_, v) => Instr::ConstF32(r, v),
            Instr::ConstF64(_, v) => Instr::ConstF64(r, v),
            Instr::ConstBool(_, v) => Instr::ConstBool(r, v),
            other => other,
        };
        fx.fb.emit(ins);
        Opnd {
            shape: Shape::Prim(kind),
            regs: vec![r],
        }
    }

    fn emit_const_val(&mut self, fx: &mut FnCtx, cv: ConstVal) -> Opnd {
        match cv {
            ConstVal::I32(v) => self.const_opnd(fx, Instr::ConstI32(0, v), Ty::I32, PrimKind::Int),
            ConstVal::I64(v) => self.const_opnd(fx, Instr::ConstI64(0, v), Ty::I64, PrimKind::Long),
            ConstVal::F32(v) => {
                self.const_opnd(fx, Instr::ConstF32(0, v), Ty::F32, PrimKind::Float)
            }
            ConstVal::F64(v) => {
                self.const_opnd(fx, Instr::ConstF64(0, v), Ty::F64, PrimKind::Double)
            }
            ConstVal::Bool(v) => {
                self.const_opnd(fx, Instr::ConstBool(0, v), Ty::Bool, PrimKind::Boolean)
            }
        }
    }

    fn short_circuit(
        &mut self,
        fx: &mut FnCtx,
        op: BinOp,
        lhs: &TExpr,
        rhs: &TExpr,
    ) -> TResult<Opnd> {
        let dst = fx.fb.reg(Ty::Bool);
        let l = self.expr(fx, lhs)?;
        fx.fb.emit(Instr::Mov(dst, l.single()?));
        let eval_rhs = fx.fb.label();
        let end = fx.fb.label();
        match op {
            BinOp::And => fx.fb.br(dst, eval_rhs, end),
            BinOp::Or => fx.fb.br(dst, end, eval_rhs),
            _ => unreachable!(),
        }
        fx.fb.bind(eval_rhs);
        let r = self.expr(fx, rhs)?;
        fx.fb.emit(Instr::Mov(dst, r.single()?));
        fx.fb.jmp(end);
        fx.fb.bind(end);
        Ok(Opnd {
            shape: Shape::Prim(PrimKind::Boolean),
            regs: vec![dst],
        })
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    /// Devirtualize (if `is_virtual`), specialize, and emit a call — or
    /// inline the callee when its flattened return has ≠1 leaves.
    fn call_resolved(
        &mut self,
        fx: &mut FnCtx,
        recv: Option<Opnd>,
        decl_class: ClassId,
        index: u32,
        args: &[TExpr],
        is_virtual: bool,
    ) -> TResult<Option<Opnd>> {
        let decl = self.table.method(decl_class, index).clone();
        // Resolve the implementation from the receiver's exact shape.
        let (ic, im) = match (&recv, is_virtual) {
            (Some(r), true) => {
                let class = r
                    .shape
                    .class()
                    .ok_or_else(|| TransError::new("virtual call on non-object shape"))?;
                let target = self.table.resolve_impl(class, &decl.name).ok_or_else(|| {
                    TransError::new(format!(
                        "no implementation of `{}` on `{}`",
                        decl.name,
                        self.table.name(class)
                    ))
                })?;
                self.stats.devirtualized_calls += 1;
                target
            }
            _ => (decl_class, index),
        };
        let target = self.table.method(ic, im).clone();

        // Native intrinsic?
        if let Some(key) = &target.native {
            let mut arg_opnds = Vec::with_capacity(args.len());
            for a in args {
                arg_opnds.push(self.expr(fx, a)?);
            }
            return self.lower_native(fx, key, &target, arg_opnds);
        }

        let mut arg_opnds = Vec::with_capacity(args.len());
        for a in args {
            arg_opnds.push(self.expr(fx, a)?);
        }

        // Kernel launch?
        if target.is_global {
            if fx.device {
                return Err(TransError::new(
                    "a kernel cannot launch another kernel (@Global from device context)",
                ));
            }
            self.lower_launch(fx, recv, ic, im, arg_opnds)?;
            return Ok(None);
        }

        let key = SpecKey {
            class: ic,
            method: im,
            recv: recv.as_ref().map(|r| r.shape.clone()),
            args: arg_opnds.iter().map(|a| a.shape.clone()).collect(),
        };
        match self.lower_spec(&key, fx.device)? {
            SpecResult::Func { id, ret } => {
                let mut regs = Vec::new();
                if let Some(r) = &recv {
                    regs.extend(&r.regs);
                }
                for a in &arg_opnds {
                    regs.extend(&a.regs);
                }
                match ret {
                    None => {
                        fx.fb.emit(Instr::Call {
                            func: id,
                            args: regs,
                            dst: None,
                        });
                        Ok(None)
                    }
                    Some(shape) => {
                        if fx.flatten && shape.leaf_count() == 0 {
                            // Empty (zero-leaf) objects only lose their
                            // register in flattened mode; on the heap they
                            // are still a handle. (Flattened zero-leaf
                            // returns are normally routed to inlining, so
                            // this arm is a safety net.)
                            fx.fb.emit(Instr::Call {
                                func: id,
                                args: regs,
                                dst: None,
                            });
                            Ok(Some(Opnd {
                                shape,
                                regs: vec![],
                            }))
                        } else {
                            let ty = if fx.flatten {
                                shape.leaf_tys()[0]
                            } else {
                                heap_ty(&shape)
                            };
                            let dst = fx.fb.reg(ty);
                            fx.fb.emit(Instr::Call {
                                func: id,
                                args: regs,
                                dst: Some(dst),
                            });
                            Ok(Some(Opnd {
                                shape,
                                regs: vec![dst],
                            }))
                        }
                    }
                }
            }
            SpecResult::InlineOnly { ret } => {
                self.lower_inline_call(fx, &key, recv, arg_opnds, ret)
            }
        }
    }

    /// Splice a callee into the current function (used when a flattened
    /// return value has more than one leaf).
    fn lower_inline_call(
        &mut self,
        fx: &mut FnCtx,
        key: &SpecKey,
        recv: Option<Opnd>,
        args: Vec<Opnd>,
        ret: Option<Shape>,
    ) -> TResult<Option<Opnd>> {
        if self.inline_stack.contains(key) {
            return Err(TransError::new(
                "recursive call chain reached inlining (coding rule 6)",
            ));
        }
        let m = self.table.method(key.class, key.method).clone();
        let Some(body) = &m.body else {
            return Err(TransError::new("cannot inline a body-less method"));
        };
        self.trace_body(key.class, incr::MemberRef::Method(key.method));
        self.inline_stack.push(key.clone());
        self.stats.inlined_calls += 1;

        let dest: Vec<Reg> = match &ret {
            Some(s) => s.leaf_tys().iter().map(|t| fx.fb.reg(*t)).collect(),
            None => Vec::new(),
        };
        let end = fx.fb.label();

        // Save the frame, install the callee's.
        let saved_env = std::mem::take(&mut fx.env);
        let saved_recv = fx.recv.take();
        let saved_ret = std::mem::replace(
            &mut fx.ret,
            RetMode::Inline {
                dest: dest.clone(),
                end,
            },
        );
        let saved_loops = std::mem::take(&mut fx.loops);
        fx.recv = recv.map(|r| self.copy_opnd(fx, &r));
        for (i, a) in args.iter().enumerate() {
            let copy = self.copy_opnd(fx, a);
            fx.env.insert(i as u32, copy);
        }
        let result = self.block(fx, body);
        fx.fb.jmp(end); // void fall-through
        fx.fb.bind(end);
        fx.env = saved_env;
        fx.recv = saved_recv;
        fx.ret = saved_ret;
        fx.loops = saved_loops;
        self.inline_stack.pop();
        result?;
        Ok(ret.map(|shape| Opnd { shape, regs: dest }))
    }

    /// Map an `@Native` call onto a NIR intrinsic.
    fn lower_native(
        &mut self,
        fx: &mut FnCtx,
        key: &str,
        m: &jlang::MethodInfo,
        args: Vec<Opnd>,
    ) -> TResult<Option<Opnd>> {
        // Special forms first.
        if key == "cuda.sync" {
            fx.fb.emit(Instr::Sync);
            return Ok(None);
        }
        if key == "cuda.sharedF32" {
            // The reproduction's spelling of the paper's `@Shared` fields:
            // a per-block shared-memory allocation intrinsic.
            let len = args
                .first()
                .ok_or_else(|| TransError::new("cuda.sharedF32 needs a length"))?
                .single()?;
            let dst = fx.fb.reg(Ty::Arr(ElemTy::F32));
            fx.fb.emit(Instr::SharedAlloc {
                elem: ElemTy::F32,
                len,
                dst,
            });
            return Ok(Some(Opnd {
                shape: Shape::Arr(ElemTy::F32),
                regs: vec![dst],
            }));
        }
        let mut regs = Vec::with_capacity(args.len());
        for a in &args {
            regs.push(a.single()?);
        }
        let ret_shape = match &m.ret {
            Type::Void => None,
            t => Some(shape_from_decl(self.table, t).ok_or_else(|| {
                TransError::new(format!("native `{key}` returns an unsupported type"))
            })?),
        };
        // Built-in intrinsic, or a user-registered foreign function (the
        // paper's FFI mechanism): unknown keys become direct host calls.
        if let Some(op) = native_intrin(key) {
            return match ret_shape {
                None => {
                    fx.fb.emit(Instr::Intrin {
                        op,
                        args: regs,
                        dst: None,
                    });
                    Ok(None)
                }
                Some(shape) => {
                    let ty = shape.leaf_tys()[0];
                    let dst = fx.fb.reg(ty);
                    fx.fb.emit(Instr::Intrin {
                        op,
                        args: regs,
                        dst: Some(dst),
                    });
                    Ok(Some(Opnd {
                        shape,
                        regs: vec![dst],
                    }))
                }
            };
        }
        let host = self.host_fn_id(key, &args, &ret_shape, fx)?;
        match ret_shape {
            None => {
                fx.fb.emit(Instr::CallHost {
                    host,
                    args: regs,
                    dst: None,
                });
                Ok(None)
            }
            Some(shape) => {
                let ty = shape.leaf_tys()[0];
                let dst = fx.fb.reg(ty);
                fx.fb.emit(Instr::CallHost {
                    host,
                    args: regs,
                    dst: Some(dst),
                });
                Ok(Some(Opnd {
                    shape,
                    regs: vec![dst],
                }))
            }
        }
    }

    /// Find or register the host-function signature for `key`.
    fn host_fn_id(
        &mut self,
        key: &str,
        args: &[Opnd],
        ret: &Option<Shape>,
        fx: &FnCtx,
    ) -> TResult<u32> {
        if fx.device {
            return Err(TransError::new(format!(
                "foreign function `{key}` cannot be called from GPU code"
            )));
        }
        if let Some(i) = self.program.host_fns.iter().position(|h| h.name == key) {
            return Ok(i as u32);
        }
        let params: Vec<Ty> = args
            .iter()
            .map(|a| match &a.shape {
                Shape::Prim(k) => Ok(Ty::of_prim(*k)),
                Shape::Arr(e) => Ok(Ty::Arr(*e)),
                Shape::Obj { .. } => Err(TransError::new(format!(
                    "foreign function `{key}` cannot take object arguments"
                ))),
            })
            .collect::<TResult<_>>()?;
        let ret_ty = ret.as_ref().map(|s| s.leaf_tys()[0]);
        self.program.host_fns.push(nir::HostFnSig {
            name: key.to_string(),
            params,
            ret: ret_ty,
        });
        Ok(self.program.host_fns.len() as u32 - 1)
    }

    /// Lower a `@Global` call into a kernel launch. The first argument
    /// must be a `CudaConfig { dim3 grid; dim3 block; }` whose six int
    /// leaves become the launch dimensions.
    fn lower_launch(
        &mut self,
        fx: &mut FnCtx,
        recv: Option<Opnd>,
        class: ClassId,
        index: u32,
        args: Vec<Opnd>,
    ) -> TResult<()> {
        let conf = args.first().ok_or_else(|| {
            TransError::new("@Global method must take a CudaConfig as its first argument")
        })?;
        let conf_class = conf.shape.class().and_then(|c| {
            if self.table.name(c) == "CudaConfig" {
                Some(c)
            } else {
                None
            }
        });
        if conf_class.is_none() {
            return Err(TransError::new(
                "@Global method's first argument must be a CudaConfig",
            ));
        }
        let conf_leaves = self.flatten_opnd(fx, conf)?;
        if conf_leaves.len() != 6 {
            return Err(TransError::new(
                "CudaConfig must flatten to six int leaves (grid.xyz, block.xyz)",
            ));
        }
        let key = SpecKey {
            class,
            method: index,
            recv: recv.as_ref().map(|r| r.shape.clone()),
            args: args.iter().map(|a| a.shape.clone()).collect(),
        };
        let kernel = self.lower_kernel(&key)?;
        let mut launch_args = Vec::new();
        if let Some(r) = &recv {
            launch_args.extend(self.flatten_opnd(fx, r)?);
        }
        for a in &args {
            launch_args.extend(self.flatten_opnd(fx, a)?);
        }
        fx.fb.emit(Instr::Launch {
            kernel,
            grid: [conf_leaves[0], conf_leaves[1], conf_leaves[2]],
            block: [conf_leaves[3], conf_leaves[4], conf_leaves[5]],
            args: launch_args,
        });
        Ok(())
    }

    /// Produce the flattened leaf registers of an operand, emitting
    /// `GetField` chains when the operand lives on the heap.
    fn flatten_opnd(&mut self, fx: &mut FnCtx, v: &Opnd) -> TResult<Vec<Reg>> {
        if fx.flatten {
            return Ok(v.regs.clone());
        }
        match &v.shape {
            Shape::Prim(_) | Shape::Arr(_) => Ok(v.regs.clone()),
            Shape::Obj { fields, .. } => {
                let obj = v.single()?;
                let mut out = Vec::new();
                for (slot, fshape) in fields.iter().enumerate() {
                    let dst = fx.fb.reg(heap_ty(fshape));
                    fx.fb.emit(Instr::GetField {
                        obj,
                        slot: slot as u32,
                        dst,
                    });
                    let sub = Opnd {
                        shape: fshape.clone(),
                        regs: vec![dst],
                    };
                    out.extend(self.flatten_opnd(fx, &sub)?);
                }
                Ok(out)
            }
        }
    }

    // ------------------------------------------------------------------
    // Object construction (constructor inlining)
    // ------------------------------------------------------------------

    /// Lower `new class(args)` by inlining the entire constructor chain.
    fn lower_new(&mut self, fx: &mut FnCtx, class: ClassId, args: Vec<Opnd>) -> TResult<Opnd> {
        let size = self.table.class(class).instance_size() as usize;
        let mut fields: Vec<Option<Opnd>> = vec![None; size];
        self.run_ctor(fx, class, args, &mut fields)?;
        self.stats.inlined_ctors += 1;
        // Assemble the object value.
        let mut field_shapes = Vec::with_capacity(size);
        let mut all_regs = Vec::new();
        for (slot, f) in fields.iter().enumerate() {
            match f {
                Some(op) => {
                    field_shapes.push(op.shape.clone());
                    all_regs.extend(&op.regs);
                }
                None => {
                    // Default-initialize primitives like Java.
                    let decl = self.field_decl_shape(class, slot as u32)?;
                    match decl {
                        Shape::Prim(k) => {
                            let r = fx.fb.reg(Ty::of_prim(k));
                            fx.fb.emit(const_zero(k, r));
                            field_shapes.push(Shape::Prim(k));
                            all_regs.push(r);
                        }
                        other => {
                            return Err(TransError::new(format!(
                                "field slot {slot} of `{}` ({}) is never assigned by a constructor",
                                self.table.name(class),
                                other.show(self.table)
                            )))
                        }
                    }
                }
            }
        }
        let shape = Shape::Obj {
            class,
            fields: field_shapes,
        };
        if fx.flatten {
            Ok(Opnd {
                shape,
                regs: all_regs,
            })
        } else {
            // Heap mode: materialize with NewObj + PutField.
            let obj = fx.fb.reg(Ty::Obj);
            fx.fb.emit(Instr::NewObj {
                class: class.0,
                dst: obj,
            });
            let Shape::Obj { fields: fss, .. } = &shape else {
                unreachable!()
            };
            let mut reg_iter = all_regs.into_iter();
            for (slot, fs) in fss.iter().enumerate() {
                let n = 1; // heap mode: one register per field
                let _ = fs;
                for _ in 0..n {
                    let src = reg_iter.next().unwrap();
                    fx.fb.emit(Instr::PutField {
                        obj,
                        slot: slot as u32,
                        src,
                    });
                }
            }
            Ok(Opnd {
                shape,
                regs: vec![obj],
            })
        }
    }

    fn field_decl_shape(&self, class: ClassId, slot: u32) -> TResult<Shape> {
        for (cid, cargs) in self.table.super_chain(class) {
            let info = self.table.class(cid);
            let base = info.field_base;
            if slot >= base && slot < base + info.fields.len() as u32 {
                let ty = info.fields[(slot - base) as usize].ty.subst(&cargs);
                return shape_from_decl(self.table, &ty)
                    .ok_or_else(|| TransError::new("unassigned object field in constructor"));
            }
        }
        Err(TransError::new("field slot out of range"))
    }

    /// Execute a constructor chain at translation time, emitting code for
    /// field-value computations into the current function.
    fn run_ctor(
        &mut self,
        fx: &mut FnCtx,
        class: ClassId,
        args: Vec<Opnd>,
        fields: &mut Vec<Option<Opnd>>,
    ) -> TResult<()> {
        let info = self.table.class(class).clone();
        let Some(ctor) = &info.ctor else {
            return Err(TransError::new(format!(
                "`{}` has no constructor",
                info.name
            )));
        };
        self.trace_body(class, incr::MemberRef::Ctor);
        if ctor.params.len() != args.len() {
            return Err(TransError::new(format!(
                "constructor of `{}` arity mismatch",
                info.name
            )));
        }
        // Install the constructor frame.
        let saved_env = std::mem::take(&mut fx.env);
        let saved_recv = fx.recv.take();
        let saved_ctor = fx.ctor_fields.take();
        for (i, a) in args.into_iter().enumerate() {
            fx.env.insert(i as u32, a);
        }
        // `fields` is threaded explicitly: super constructors share it.
        let result = (|| -> TResult<()> {
            // 1. super constructor.
            if let Some((sid, _)) = &info.superclass {
                if *sid != jlang::OBJECT {
                    let mut sargs = Vec::new();
                    // Temporarily expose the shared field frame for
                    // GetField(this) inside super argument expressions.
                    fx.ctor_fields = Some(std::mem::take(fields));
                    for a in &ctor.super_args {
                        sargs.push(self.expr(fx, a)?);
                    }
                    *fields = fx.ctor_fields.take().unwrap();
                    // Recursive constructor run uses its own env.
                    let saved = std::mem::take(&mut fx.env);
                    self.run_ctor(fx, *sid, sargs, fields)?;
                    fx.env = saved;
                }
            }
            // 2. field initializers, 3. body — both with the frame visible.
            fx.ctor_fields = Some(std::mem::take(fields));
            for (i, f) in info.fields.iter().enumerate() {
                if let Some(init) = &f.init {
                    let v = self.expr(fx, init)?;
                    let v = self.copy_opnd(fx, &v);
                    fx.ctor_fields.as_mut().unwrap()[(info.field_base + i as u32) as usize] =
                        Some(v);
                }
            }
            if let Some(body) = &ctor.body {
                self.ctor_block(fx, body)?;
            }
            *fields = fx.ctor_fields.take().unwrap();
            Ok(())
        })();
        fx.env = saved_env;
        fx.recv = saved_recv;
        // Restore the outer ctor frame unconditionally: on success the
        // inner frame was already moved back into `fields`; on error any
        // leftover inner frame must be dropped.
        fx.ctor_fields = saved_ctor;
        result
    }

    /// Constructor bodies: assignments and locals only.
    fn ctor_block(&mut self, fx: &mut FnCtx, body: &TBlock) -> TResult<()> {
        for s in &body.stmts {
            match s {
                TStmt::Local { .. } | TStmt::AssignLocal { .. } => self.stmt(fx, s)?,
                TStmt::AssignField {
                    obj, field, value, ..
                } => {
                    if !matches!(obj.kind, TExprKind::This) {
                        return Err(TransError::new(
                            "constructor assigns a field of another object",
                        ));
                    }
                    let v = self.expr(fx, value)?;
                    let v = self.copy_opnd(fx, &v);
                    fx.ctor_fields.as_mut().unwrap()[field.slot as usize] = Some(v);
                }
                TStmt::Block(b) => self.ctor_block(fx, b)?,
                other => {
                    return Err(TransError::new(format!(
                        "constructor statement at line {} breaks semi-immutability",
                        other.span().line
                    )))
                }
            }
        }
        Ok(())
    }
}

/// Register type of a shape in heap (non-flattened) representation.
pub fn heap_ty(s: &Shape) -> Ty {
    match s {
        Shape::Prim(k) => Ty::of_prim(*k),
        Shape::Arr(e) => Ty::Arr(*e),
        Shape::Obj { .. } => Ty::Obj,
    }
}

fn elem_prim(e: ElemTy) -> PrimKind {
    match e {
        ElemTy::I32 => PrimKind::Int,
        ElemTy::I64 => PrimKind::Long,
        ElemTy::F32 => PrimKind::Float,
        ElemTy::F64 => PrimKind::Double,
        ElemTy::Bool => PrimKind::Boolean,
    }
}

fn const_zero(kind: PrimKind, r: Reg) -> Instr {
    match kind {
        PrimKind::Int => Instr::ConstI32(r, 0),
        PrimKind::Long => Instr::ConstI64(r, 0),
        PrimKind::Float => Instr::ConstF32(r, 0.0),
        PrimKind::Double => Instr::ConstF64(r, 0.0),
        PrimKind::Boolean => Instr::ConstBool(r, false),
    }
}

/// Map `@Native` keys onto NIR intrinsics.
pub fn native_intrin(key: &str) -> Option<IntrinOp> {
    Some(match key {
        "math.sqrt" => IntrinOp::SqrtF64,
        "math.sqrtf" => IntrinOp::SqrtF32,
        "math.pow" => IntrinOp::PowF64,
        "math.exp" => IntrinOp::ExpF64,
        "math.absf" => IntrinOp::AbsF32,
        "math.absd" => IntrinOp::AbsF64,
        "math.absi" => IntrinOp::AbsI32,
        "math.mini" => IntrinOp::MinI32,
        "math.maxi" => IntrinOp::MaxI32,
        "math.minf" => IntrinOp::MinF32,
        "math.maxf" => IntrinOp::MaxF32,
        "wj.printInt" => IntrinOp::PrintI32,
        "wj.printLong" => IntrinOp::PrintI64,
        "wj.printFloat" => IntrinOp::PrintF32,
        "wj.printDouble" => IntrinOp::PrintF64,
        "wj.printBool" => IntrinOp::PrintBool,
        "wj.arraycopyF" => IntrinOp::ArrayCopyF32,
        "cuda.threadIdxX" => IntrinOp::ThreadIdx(0),
        "cuda.threadIdxY" => IntrinOp::ThreadIdx(1),
        "cuda.threadIdxZ" => IntrinOp::ThreadIdx(2),
        "cuda.blockIdxX" => IntrinOp::BlockIdx(0),
        "cuda.blockIdxY" => IntrinOp::BlockIdx(1),
        "cuda.blockIdxZ" => IntrinOp::BlockIdx(2),
        "cuda.blockDimX" => IntrinOp::BlockDim(0),
        "cuda.blockDimY" => IntrinOp::BlockDim(1),
        "cuda.blockDimZ" => IntrinOp::BlockDim(2),
        "cuda.gridDimX" => IntrinOp::GridDim(0),
        "cuda.gridDimY" => IntrinOp::GridDim(1),
        "cuda.gridDimZ" => IntrinOp::GridDim(2),
        "cuda.copyToGPU" => IntrinOp::CopyToGpu,
        "cuda.copyInRange" => IntrinOp::CopyToGpuRange,
        "cuda.copyOutRange" => IntrinOp::CopyFromGpuRange,
        "cuda.copyFromGPU" => IntrinOp::CopyFromGpu,
        "cuda.allocF32" => IntrinOp::GpuAllocF32,
        "cuda.free" => IntrinOp::GpuFree,
        "mpi.rank" => IntrinOp::MpiRank,
        "mpi.size" => IntrinOp::MpiSize,
        "mpi.barrier" => IntrinOp::MpiBarrier,
        "mpi.sendF" => IntrinOp::MpiSendF32,
        "mpi.recvF" => IntrinOp::MpiRecvF32,
        "mpi.sendrecvF" => IntrinOp::MpiSendRecvF32,
        "mpi.bcastF" => IntrinOp::MpiBcastF32,
        "mpi.allreduceSumD" => IntrinOp::MpiAllreduceSumF64,
        "mpi.allreduceSumF" => IntrinOp::MpiAllreduceSumF32,
        "mpi.allreduceMaxD" => IntrinOp::MpiAllreduceMaxF64,
        _ => return None,
    })
}

/// Evaluate a typed expression as a compile-time constant (static final
/// initializers; coding rule 5 guarantees these are constants).
pub fn const_eval(table: &ClassTable, e: &TExpr) -> TResult<ConstVal> {
    match &e.kind {
        TExprKind::Int(v) => Ok(ConstVal::I32(*v)),
        TExprKind::Long(v) => Ok(ConstVal::I64(*v)),
        TExprKind::Float(v) => Ok(ConstVal::F32(*v)),
        TExprKind::Double(v) => Ok(ConstVal::F64(*v)),
        TExprKind::Bool(v) => Ok(ConstVal::Bool(*v)),
        TExprKind::GetStatic { class, index } => {
            let f = &table.class(*class).statics[*index as usize];
            let init = f.init.as_ref().ok_or_else(|| {
                TransError::new(format!("static `{}` has no constant initializer", f.name))
            })?;
            const_eval(table, init)
        }
        TExprKind::Unary {
            op: UnOp::Neg,
            expr,
        } => Ok(match const_eval(table, expr)? {
            ConstVal::I32(v) => ConstVal::I32(v.wrapping_neg()),
            ConstVal::I64(v) => ConstVal::I64(v.wrapping_neg()),
            ConstVal::F32(v) => ConstVal::F32(-v),
            ConstVal::F64(v) => ConstVal::F64(-v),
            ConstVal::Bool(_) => return Err(TransError::new("negating a boolean constant")),
        }),
        TExprKind::Unary {
            op: UnOp::Not,
            expr,
        } => match const_eval(table, expr)? {
            ConstVal::Bool(v) => Ok(ConstVal::Bool(!v)),
            _ => Err(TransError::new("`!` on a non-boolean constant")),
        },
        TExprKind::Binary {
            op,
            operand_kind,
            lhs,
            rhs,
        } => {
            let l = const_eval(table, lhs)?;
            let r = const_eval(table, rhs)?;
            const_bin(*op, *operand_kind, l, r)
        }
        TExprKind::NumCast { to, expr } | TExprKind::Convert { to, expr } => {
            let v = const_eval(table, expr)?;
            Ok(const_cast(*to, v))
        }
        _ => Err(TransError::new(
            "static final initializer is not a compile-time constant",
        )),
    }
}

fn const_cast(to: PrimKind, v: ConstVal) -> ConstVal {
    let as_f64 = match v {
        ConstVal::I32(x) => x as f64,
        ConstVal::I64(x) => x as f64,
        ConstVal::F32(x) => x as f64,
        ConstVal::F64(x) => x,
        ConstVal::Bool(b) => return ConstVal::Bool(b),
    };
    match to {
        PrimKind::Int => ConstVal::I32(match v {
            ConstVal::I64(x) => x as i32,
            ConstVal::I32(x) => x,
            _ => as_f64 as i32,
        }),
        PrimKind::Long => ConstVal::I64(match v {
            ConstVal::I32(x) => x as i64,
            ConstVal::I64(x) => x,
            _ => as_f64 as i64,
        }),
        PrimKind::Float => ConstVal::F32(as_f64 as f32),
        PrimKind::Double => ConstVal::F64(as_f64),
        PrimKind::Boolean => v,
    }
}

fn const_bin(op: BinOp, kind: PrimKind, l: ConstVal, r: ConstVal) -> TResult<ConstVal> {
    use BinOp::*;
    let err = || TransError::new("unsupported constant expression");
    Ok(match kind {
        PrimKind::Int => {
            let (ConstVal::I32(a), ConstVal::I32(b)) = (l, r) else {
                return Err(err());
            };
            match op {
                Add => ConstVal::I32(a.wrapping_add(b)),
                Sub => ConstVal::I32(a.wrapping_sub(b)),
                Mul => ConstVal::I32(a.wrapping_mul(b)),
                Div if b != 0 => ConstVal::I32(a.wrapping_div(b)),
                Rem if b != 0 => ConstVal::I32(a.wrapping_rem(b)),
                Shl => ConstVal::I32(a.wrapping_shl(b as u32 & 31)),
                Shr => ConstVal::I32(a.wrapping_shr(b as u32 & 31)),
                BitAnd => ConstVal::I32(a & b),
                BitOr => ConstVal::I32(a | b),
                BitXor => ConstVal::I32(a ^ b),
                Lt => ConstVal::Bool(a < b),
                Le => ConstVal::Bool(a <= b),
                Gt => ConstVal::Bool(a > b),
                Ge => ConstVal::Bool(a >= b),
                Eq => ConstVal::Bool(a == b),
                Ne => ConstVal::Bool(a != b),
                _ => return Err(err()),
            }
        }
        PrimKind::Long => {
            let (ConstVal::I64(a), ConstVal::I64(b)) = (l, r) else {
                return Err(err());
            };
            match op {
                Add => ConstVal::I64(a.wrapping_add(b)),
                Sub => ConstVal::I64(a.wrapping_sub(b)),
                Mul => ConstVal::I64(a.wrapping_mul(b)),
                _ => return Err(err()),
            }
        }
        PrimKind::Float => {
            let (ConstVal::F32(a), ConstVal::F32(b)) = (l, r) else {
                return Err(err());
            };
            match op {
                Add => ConstVal::F32(a + b),
                Sub => ConstVal::F32(a - b),
                Mul => ConstVal::F32(a * b),
                Div => ConstVal::F32(a / b),
                _ => return Err(err()),
            }
        }
        PrimKind::Double => {
            let (ConstVal::F64(a), ConstVal::F64(b)) = (l, r) else {
                return Err(err());
            };
            match op {
                Add => ConstVal::F64(a + b),
                Sub => ConstVal::F64(a - b),
                Mul => ConstVal::F64(a * b),
                Div => ConstVal::F64(a / b),
                _ => return Err(err()),
            }
        }
        PrimKind::Boolean => {
            let (ConstVal::Bool(a), ConstVal::Bool(b)) = (l, r) else {
                return Err(err());
            };
            match op {
                And => ConstVal::Bool(a && b),
                Or => ConstVal::Bool(a || b),
                Eq => ConstVal::Bool(a == b),
                Ne => ConstVal::Bool(a != b),
                _ => return Err(err()),
            }
        }
    })
}

/// Collect `static final` constants into the program's globals (for the C
/// emitter; code references are constant-folded at lowering time).
fn collect_globals(table: &ClassTable, program: &mut Program) {
    for info in table.iter() {
        for f in &info.statics {
            if let Some(init) = &f.init {
                if let Ok(cv) = const_eval(table, init) {
                    let ty = match &cv {
                        ConstVal::I32(_) => Ty::I32,
                        ConstVal::I64(_) => Ty::I64,
                        ConstVal::F32(_) => Ty::F32,
                        ConstVal::F64(_) => Ty::F64,
                        ConstVal::Bool(_) => Ty::Bool,
                    };
                    program.globals.push(nir::Global {
                        name: format!("{}_{}", info.name, f.name),
                        ty,
                        value: cv,
                    });
                }
            }
        }
    }
}
