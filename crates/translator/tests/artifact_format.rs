//! On-disk artifact format coverage: a committed golden fixture decodes
//! bit-identically, and every corruption mode (truncation, bit flips,
//! version skew, bad magic) is rejected with a typed error — never a
//! panic. The fixture pins the byte layout: if an encoding change breaks
//! decoding of existing stores, these tests fail until [`nir::codec::VERSION`]
//! is bumped and the fixture regenerated (see `regenerate_golden_fixture`).

use std::path::PathBuf;

use jlang::compile_str;
use jvm::{Jvm, Value};
use nir::codec::{CodecError, VERSION};
use translator::{translate, TransConfig, Translated};

const APP: &str = "
    @WootinJ interface Stepper { float step(float x, int i); }
    @WootinJ final class Axpy implements Stepper {
      float a; float b;
      Axpy(float a0, float b0) { a = a0; b = b0; }
      float step(float x, int i) { return a * x + b * i; }
    }
    @WootinJ final class Fix {
      Stepper s;
      Fix(Stepper s0) { s = s0; }
      float run(float[] data, int steps) {
        for (int t = 0; t < steps; t++) {
          for (int i = 0; i < data.length; i++) { data[i] = s.step(data[i], i); }
        }
        float acc = 0f;
        for (int i = 0; i < data.length; i++) { acc += data[i]; }
        return acc;
      }
    }";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden.wjar")
}

fn translate_sample() -> Translated {
    let table = compile_str(APP).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let stepper = jvm
        .new_instance("Axpy", &[Value::Float(0.5), Value::Float(0.25)])
        .unwrap();
    let fix = jvm.new_instance("Fix", &[stepper]).unwrap();
    let data = jvm.new_f32_array(&[1.0, 2.0, 3.0]);
    translate(
        &table,
        &jvm,
        &fix,
        "run",
        &[data, Value::Int(2)],
        TransConfig::full(),
    )
    .unwrap()
}

/// One-time fixture (re)generation — run with
/// `cargo test -p translator -- --ignored regenerate_golden_fixture`
/// after any intentional format change (and bump `VERSION`).
#[test]
#[ignore = "writes the committed fixture; run explicitly after format changes"]
fn regenerate_golden_fixture() {
    let bytes = translate_sample().encode();
    std::fs::create_dir_all(fixture_path().parent().unwrap()).unwrap();
    std::fs::write(fixture_path(), &bytes).unwrap();
}

#[test]
fn golden_fixture_decodes_bit_identically() {
    let bytes = std::fs::read(fixture_path()).expect(
        "missing golden fixture — run `cargo test -p translator -- --ignored regenerate_golden_fixture`",
    );
    let decoded = Translated::decode(&bytes).expect("golden artifact must decode");
    // decode → encode reproduces the committed bytes exactly; this is the
    // determinism the disk store and rank-0 broadcast rely on.
    assert_eq!(decoded.encode(), bytes, "re-encoded fixture differs");
    decoded
        .program
        .validate()
        .expect("decoded program is valid");
    // The decoded artifact is semantically the fixture workload: a fully
    // specialized entry with flattened bindings.
    let fresh = translate_sample();
    assert_eq!(decoded.mode, fresh.mode);
    assert_eq!(decoded.bindings, fresh.bindings);
    assert_eq!(decoded.program.funcs.len(), fresh.program.funcs.len());
    for (d, f) in decoded.program.funcs.iter().zip(&fresh.program.funcs) {
        assert_eq!(d.name, f.name);
        assert_eq!(d.code, f.code);
    }
    assert_eq!(decoded.entry, fresh.entry);
    assert_eq!(decoded.uses_mpi, fresh.uses_mpi);
    assert_eq!(decoded.uses_gpu, fresh.uses_gpu);
}

#[test]
fn truncated_artifacts_are_rejected_at_every_length() {
    let bytes = translate_sample().encode();
    for n in 0..bytes.len() {
        match Translated::decode(&bytes[..n]) {
            Err(CodecError::Truncated { .. }) | Err(CodecError::BadMagic) => {}
            other => panic!("prefix of {n} bytes decoded as {other:?}"),
        }
    }
}

#[test]
fn bit_flips_are_rejected_with_a_typed_error() {
    let bytes = translate_sample().encode();
    // Flip one bit in every 97th byte (cheap full-coverage sweep) — the
    // digest or a discriminant check must catch each, and none may panic.
    for i in (0..bytes.len()).step_by(97) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        match Translated::decode(&bad) {
            Ok(_) => panic!("bit flip at byte {i} decoded successfully"),
            Err(
                CodecError::Corrupt { .. }
                | CodecError::BadMagic
                | CodecError::VersionSkew { .. }
                | CodecError::Truncated { .. },
            ) => {}
        }
    }
}

#[test]
fn version_skew_is_rejected_with_found_and_expected() {
    let mut bytes = translate_sample().encode();
    bytes[4] = VERSION + 9;
    match Translated::decode(&bytes) {
        Err(CodecError::VersionSkew { found, expected }) => {
            assert_eq!(found, VERSION + 9);
            assert_eq!(expected, VERSION);
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
}

#[test]
fn arbitrary_garbage_is_rejected_as_bad_magic() {
    assert!(matches!(
        Translated::decode(b"definitely not an artifact"),
        Err(CodecError::BadMagic)
    ));
    assert!(matches!(
        Translated::decode(&[]),
        Err(CodecError::Truncated { .. })
    ));
}
