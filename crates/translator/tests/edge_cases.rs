//! Translator edge cases: zero-leaf objects, static-final constant
//! folding, reference casts, device-context specialization, and the
//! documented unsupported-construct errors.

use exec::{run_to_completion, Machine, Val};
use jlang::compile_str;
use jvm::{Jvm, Value};
use translator::{bind_entry_args, translate, Mode, TransConfig};

fn run_full(src: &str, class: &str, ctor: &[Value], method: &str, args: &[Value]) -> Val {
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let recv = jvm.new_instance(class, ctor).unwrap();
    let t = translate(&table, &jvm, &recv, method, args, TransConfig::full()).unwrap();
    let mut m = Machine::with_globals(&t.program);
    let vals = bind_entry_args(&jvm, &recv, args, &t.bindings, &mut m).unwrap();
    run_to_completion(&t.program, t.entry, vals, &mut m)
        .unwrap()
        .unwrap()
}

#[test]
fn zero_leaf_end_to_end() {
    let src = "
        @WootinJ final class Marker { Marker() { } }
        @WootinJ final class Wrap {
          Marker m;
          Wrap(Marker m0) { m = m0; }
          Marker get() { return m; }
          int use(Marker x, int v) { return v + 1; }
          int run(int v) {
            Marker local = get();
            return use(local, v);
          }
        }";
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let marker = jvm.new_instance("Marker", &[]).unwrap();
    let wrap = jvm.new_instance("Wrap", &[marker]).unwrap();
    for config in [
        TransConfig::full(),
        TransConfig::devirt(),
        TransConfig::virtual_dispatch(),
    ] {
        let t = translate(&table, &jvm, &wrap, "run", &[Value::Int(41)], config).unwrap();
        let mut m = Machine::with_globals(&t.program);
        let vals = bind_entry_args(&jvm, &wrap, &[Value::Int(41)], &t.bindings, &mut m).unwrap();
        let out = run_to_completion(&t.program, t.entry, vals, &mut m).unwrap();
        assert_eq!(out, Some(Val::I32(42)), "mode {:?}", config.mode);
    }
}

#[test]
fn static_finals_fold_to_constants() {
    let src = "
        @WootinJ final class K {
          static final int N = 6 * 7;
          static final float SCALE = 2.5f * 2f;
          K() { }
          float run() { return N * SCALE; }
        }";
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let k = jvm.new_instance("K", &[]).unwrap();
    let t = translate(&table, &jvm, &k, "run", &[], TransConfig::full()).unwrap();
    // The generated code carries no static-field reads — only constants.
    let src_c = t.c_source();
    assert!(src_c.contains("static const"), "{src_c}");
    let mut m = Machine::with_globals(&t.program);
    let vals = bind_entry_args(&jvm, &k, &[], &t.bindings, &mut m).unwrap();
    let out = run_to_completion(&t.program, t.entry, vals, &mut m).unwrap();
    assert_eq!(out, Some(Val::F32(42.0 * 5.0)));
}

#[test]
fn upcast_is_a_noop_and_impossible_downcast_is_rejected() {
    let ok = "
        @WootinJ interface Animal { int legs(); }
        @WootinJ final class Dog implements Animal { Dog() { } int legs() { return 4; } }
        @WootinJ final class Zoo {
          Dog d;
          Zoo(Dog d0) { d = d0; }
          int run() {
            Animal a = (Animal) d;
            return a.legs();
          }
        }";
    // `Animal a = ...` has a non-strict-final local type; rules reject it,
    // so translate unchecked to exercise the cast path itself.
    let table = compile_str(ok).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let dog = jvm.new_instance("Dog", &[]).unwrap();
    let zoo = jvm.new_instance("Zoo", &[dog]).unwrap();
    let mut config = TransConfig::full();
    config.check_rules = false;
    let t = translate(&table, &jvm, &zoo, "run", &[], config).unwrap();
    let mut m = Machine::with_globals(&t.program);
    let vals = bind_entry_args(&jvm, &zoo, &[], &t.bindings, &mut m).unwrap();
    assert_eq!(
        run_to_completion(&t.program, t.entry, vals, &mut m).unwrap(),
        Some(Val::I32(4))
    );
}

#[test]
fn impossible_cast_reported_at_translation_time() {
    let src = "
        @WootinJ interface Animal { int legs(); }
        @WootinJ final class Dog implements Animal { Dog() { } int legs() { return 4; } }
        @WootinJ final class Cat implements Animal { Cat() { } int legs() { return 4; } }
        @WootinJ final class Zoo {
          Animal a;
          Zoo(Animal a0) { a = a0; }
          int run() {
            Cat c = (Cat) a;
            return c.legs();
          }
        }";
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let dog = jvm.new_instance("Dog", &[]).unwrap();
    let zoo = jvm.new_instance("Zoo", &[dog]).unwrap();
    // The shape analysis knows `a` is a Dog, so `(Cat) a` can never
    // succeed — a translation-time error, unlike Java's runtime exception.
    let err = translate(&table, &jvm, &zoo, "run", &[], TransConfig::full()).unwrap_err();
    assert!(err.message.contains("never succeed"), "{err}");
}

#[test]
fn object_arrays_rejected_with_clear_message() {
    let src = "
        @WootinJ final class Cell { float v; Cell(float v0) { v = v0; } }
        @WootinJ final class Holder {
          Holder() { }
          int run(Cell[] cells) { return cells.length; }
        }";
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let holder = jvm.new_instance("Holder", &[]).unwrap();
    // Build an object array on the jvm side.
    let cell = jvm.new_instance("Cell", &[Value::Float(1.0)]).unwrap();
    let arr = {
        let h = jvm.heap.alloc_arr(jvm::ArrayData::Ref(vec![cell]));
        Value::Arr(h)
    };
    let err = translate(&table, &jvm, &holder, "run", &[arr], TransConfig::full()).unwrap_err();
    assert!(err.message.contains("object arrays"), "{err}");
}

#[test]
fn kernels_in_devirt_mode_are_flattened() {
    let src = "
        @WootinJ interface Op { float f(float x); }
        @WootinJ final class Triple implements Op { Triple() { } float f(float x) { return x * 3f; } }
        @WootinJ final class K {
          Op op;
          K(Op o) { op = o; }
          float run(float[] data) {
            float[] dev = CUDA.copyToGPU(data);
            CudaConfig conf = new CudaConfig(new dim3(1, 1, 1), new dim3(8, 1, 1));
            go(conf, dev);
            CUDA.copyFromGPU(data, dev);
            float s = 0f;
            for (int i = 0; i < data.length; i++) { s += data[i]; }
            return s;
          }
          @Global void go(CudaConfig conf, float[] a) {
            int x = CUDA.threadIdxX();
            if (x < a.length) { a[x] = op.f(a[x]); }
          }
        }";
    // Needs the prelude for CUDA/dim3; compile via wootinj's table builder.
    let table = wootinj::build_table(&[("k.jl", src)]).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let op = jvm.new_instance("Triple", &[]).unwrap();
    let k = jvm.new_instance("K", &[op]).unwrap();
    let data = jvm.new_f32_array(&[1.0; 8]);
    // Devirt (Template) mode still produces flattened kernels: no object
    // instructions inside FuncKind::Kernel functions.
    let t = translate(&table, &jvm, &k, "run", &[data], TransConfig::devirt()).unwrap();
    for f in &t.program.funcs {
        if f.kind == nir::FuncKind::Kernel {
            for ins in &f.code {
                assert!(
                    !matches!(
                        ins,
                        nir::Instr::GetField { .. }
                            | nir::Instr::NewObj { .. }
                            | nir::Instr::CallVirt { .. }
                    ),
                    "kernel must be object-free in Devirt mode: {ins:?}"
                );
            }
        }
    }
    assert!(t.uses_gpu);
}

#[test]
fn virtual_mode_reports_kernels_as_unsupported() {
    let src = "
        @WootinJ final class K {
          K() { }
          void run(float[] data) {
            float[] dev = CUDA.copyToGPU(data);
            CudaConfig conf = new CudaConfig(new dim3(1, 1, 1), new dim3(4, 1, 1));
            go(conf, dev);
          }
          @Global void go(CudaConfig conf, float[] a) {
            int x = CUDA.threadIdxX();
            a[x] = 1f;
          }
        }";
    let table = wootinj::build_table(&[("k.jl", src)]).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let k = jvm.new_instance("K", &[]).unwrap();
    let data = jvm.new_f32_array(&[0.0; 4]);
    let err = translate(
        &table,
        &jvm,
        &k,
        "run",
        &[data],
        TransConfig::virtual_dispatch(),
    )
    .unwrap_err();
    assert!(err.message.contains("virtual dispatch"), "{err}");
}

#[test]
fn shape_mismatch_on_local_reassignment_is_reported() {
    let src = "
        @WootinJ interface Op { int f(); }
        @WootinJ final class A implements Op { A() { } int f() { return 1; } }
        @WootinJ final class B implements Op { B() { } int f() { return 2; } }
        @WootinJ final class M {
          M() { }
          int run(boolean w) {
            A a = new A();
            int r = a.f();
            return r;
          }
        }";
    // This one is fine; now the mismatching variant must fail in any mode
    // with shape analysis.
    let bad = "
        @WootinJ interface Op { int f(); }
        @WootinJ final class A implements Op { A() { } int f() { return 1; } }
        @WootinJ final class B implements Op { B() { } int f() { return 2; } }
        @WootinJ final class M {
          M() { }
          int run(boolean w) {
            Op o = new A();
            if (w) { o = new B(); }
            return o.f();
          }
        }";
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let m = jvm.new_instance("M", &[]).unwrap();
    assert!(translate(
        &table,
        &jvm,
        &m,
        "run",
        &[Value::Bool(true)],
        TransConfig::full()
    )
    .is_ok());

    let table = compile_str(bad).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let m = jvm.new_instance("M", &[]).unwrap();
    let mut config = TransConfig::full();
    config.check_rules = false; // rule 2 already rejects the Op local
    let err = translate(&table, &jvm, &m, "run", &[Value::Bool(true)], config).unwrap_err();
    assert!(err.message.contains("shape"), "{err}");
}

#[test]
fn long_arithmetic_and_conversions_roundtrip() {
    let src = "
        @WootinJ final class L {
          L() { }
          long run(int n) {
            long acc = 1L;
            for (int i = 0; i < n; i++) {
              acc = acc * 3L + i;
            }
            return acc;
          }
        }";
    let v = run_full(src, "L", &[], "run", &[Value::Int(20)]);
    // Reference in Rust.
    let mut acc: i64 = 1;
    for i in 0..20i64 {
        acc = acc.wrapping_mul(3).wrapping_add(i);
    }
    assert_eq!(v, Val::I64(acc));
}

#[test]
fn deep_nesting_of_component_objects_flattens_fully() {
    let src = "
        @WootinJ final class Inner { float v; Inner(float v0) { v = v0; } }
        @WootinJ final class Mid { Inner a; Inner b; Mid(Inner x, Inner y) { a = x; b = y; } }
        @WootinJ final class Outer {
          Mid m;
          Outer(Mid m0) { m = m0; }
          float run() { return m.a.v + m.b.v; }
        }";
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let i1 = jvm.new_instance("Inner", &[Value::Float(1.5)]).unwrap();
    let i2 = jvm.new_instance("Inner", &[Value::Float(2.5)]).unwrap();
    let mid = jvm.new_instance("Mid", &[i1, i2]).unwrap();
    let outer = jvm.new_instance("Outer", &[mid]).unwrap();
    let t = translate(&table, &jvm, &outer, "run", &[], TransConfig::full()).unwrap();
    // Full mode: no object instructions anywhere.
    for f in &t.program.funcs {
        for ins in &f.code {
            assert!(!matches!(
                ins,
                nir::Instr::GetField { .. } | nir::Instr::NewObj { .. }
            ));
        }
    }
    let mut m = Machine::with_globals(&t.program);
    let vals = bind_entry_args(&jvm, &outer, &[], &t.bindings, &mut m).unwrap();
    assert_eq!(
        run_to_completion(&t.program, t.entry, vals, &mut m).unwrap(),
        Some(Val::F32(4.0))
    );
}

#[test]
fn mode_reports_match_requested_mode() {
    let src = "@WootinJ final class X { X() { } int run() { return 1; } }";
    let table = compile_str(src).unwrap();
    let mut jvm = Jvm::new(&table).unwrap();
    let x = jvm.new_instance("X", &[]).unwrap();
    for (config, mode) in [
        (TransConfig::full(), Mode::Full),
        (TransConfig::devirt(), Mode::Devirt),
        (TransConfig::virtual_dispatch(), Mode::Virtual),
    ] {
        let t = translate(&table, &jvm, &x, "run", &[], config).unwrap();
        assert_eq!(t.mode, mode);
    }
}
