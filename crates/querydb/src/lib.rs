//! # querydb — the incremental query pipeline
//!
//! A revision-counted [`Database`] of memoized compilation queries in the
//! demand-driven style of rust-analyzer's salsa: every query records the
//! inputs it read while executing, memos are re-validated against those
//! recorded dependencies, and a re-executed query whose output hash is
//! unchanged performs an *early cutoff* — its dependents stay valid and
//! are never re-run.
//!
//! The query graph, bottom to top:
//!
//! ```text
//! source_text(file)                 — input, set by set_source / edit
//!   └─ parse(file)                  — memo on the text hash
//!        └─ item_tree(class)        — declaration skeleton, bodies stripped
//!             ├─ typeck_body(body)  — one method / ctor / field initializer
//!             │    └─ lower_fn(spec)— one shape-specialized NIR function
//!             │         └─ program(entry) — assembled + optimized Translated
//!             └─ (early cutoff: a body edit re-parses the file, but the
//!                item tree hash is unchanged, so *other* bodies' typeck
//!                and lower memos revalidate without re-running)
//! ```
//!
//! **Determinism contract.** An incremental re-translate produces a
//! [`Translated`] artifact whose semantic encoding
//! ([`Translated::encode_semantic`]) is bit-identical to a from-scratch
//! translate of the same sources at the same revision. Function-id
//! assignment is DFS discovery order and the coding rules forbid
//! recursion, so replaying memoized functions in their recorded
//! callee-edge order reproduces the exact ids, names, and instruction
//! stream; any replay mismatch falls back to fresh lowering, which is
//! canonical by construction.
//!
//! All fingerprints are span-free (see [`fp`]): whitespace and comment
//! edits re-run the parser, early-cutoff at the item tree, and invalidate
//! nothing downstream.

#![forbid(unsafe_code)]

mod fp;

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use jlang::ast;
use jlang::span::{DiagResult, Diagnostic, Span};
use jlang::table::{self, ClassTable};
use jlang::tast::{TBlock, TExpr};
use jlang::typeck;
use jlang::types::ClassId;
use jvm::{Jvm, Value};
use nir::hash::Fingerprint;
use translator::lower::SpecResult;
use translator::{
    entry_class, scan_uses, shaped_bindings, EntrySpec, FnMemo, Lowerer, MemberRef, Mode,
    ReplayState, SpecKey, TResult, TraceState, TransConfig, TransError, Translated,
};

/// Cumulative query counters. Snapshot with [`Database::stats`] before
/// and after an operation and subtract ([`QueryStats::since`]) to get the
/// per-operation deltas the facade surfaces in `TransStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    pub parse_executed: u64,
    pub parse_reused: u64,
    pub typeck_executed: u64,
    pub typeck_reused: u64,
    pub rules_executed: u64,
    pub rules_reused: u64,
    pub lower_executed: u64,
    pub lower_reused: u64,
    /// `program(entry)` runs (never memoized here — the facade's
    /// artifact cache is the program-level memo).
    pub translates: u64,
    /// Re-executed queries whose output hash was unchanged, sparing all
    /// dependents.
    pub early_cutoffs: u64,
}

impl QueryStats {
    /// Total queries executed (cache misses).
    pub fn executed(&self) -> u64 {
        self.parse_executed
            + self.typeck_executed
            + self.rules_executed
            + self.lower_executed
            + self.translates
    }

    /// Total queries served from memos.
    pub fn reused(&self) -> u64 {
        self.parse_reused + self.typeck_reused + self.rules_reused + self.lower_reused
    }

    /// Field-wise `self - before` (counters are monotone).
    pub fn since(&self, before: &QueryStats) -> QueryStats {
        QueryStats {
            parse_executed: self.parse_executed - before.parse_executed,
            parse_reused: self.parse_reused - before.parse_reused,
            typeck_executed: self.typeck_executed - before.typeck_executed,
            typeck_reused: self.typeck_reused - before.typeck_reused,
            rules_executed: self.rules_executed - before.rules_executed,
            rules_reused: self.rules_reused - before.rules_reused,
            lower_executed: self.lower_executed - before.lower_executed,
            lower_reused: self.lower_reused - before.lower_reused,
            translates: self.translates - before.translates,
            early_cutoffs: self.early_cutoffs - before.early_cutoffs,
        }
    }
}

/// Which body of a class a `typeck_body` query covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Member {
    /// Method body, by index in the class's method list.
    Method(u32),
    /// Constructor (super args + body).
    Ctor,
    /// One field initializer.
    Init { is_static: bool, index: u32 },
}

/// Fingerprint of `Object` (class id 0): fixed, it has no declaration.
const OBJECT_FP: u64 = 0x4f42_4a45_4354_5f30;

// ---- internal memo structures ------------------------------------------

struct FileEntry {
    name: String,
    text: String,
    hash: u64,
}

struct ParseMemo {
    text_hash: u64,
    unit: ast::Unit,
}

/// Per-class source fingerprints at one revision, with the [`ClassId`]
/// the table assigns. Equality of two metas means: same skeleton, same
/// id, and byte-for-byte-equivalent (modulo spans) bodies.
#[derive(Clone, PartialEq)]
struct ClassMeta {
    name: String,
    id: ClassId,
    item: u64,
    /// Untyped body fp per method index (0 = no body).
    methods: Vec<u64>,
    /// Untyped ctor fp (0 = no ctor body).
    ctor: u64,
    /// Instance field initializer fps, by instance-field index (0 = none).
    inits: Vec<u64>,
    /// Static field initializer fps, by static index (0 = none).
    statics: Vec<u64>,
}

fn meta_of(c: &ast::ClassDecl, id: ClassId) -> ClassMeta {
    let mut methods = Vec::with_capacity(c.methods.len());
    for m in &c.methods {
        methods.push(m.body.as_ref().map_or(0, fp::body_fp));
    }
    let mut inits = Vec::new();
    let mut statics = Vec::new();
    for f in &c.fields {
        let v = f.init.as_ref().map_or(0, fp::init_fp);
        if f.modifiers.is_static {
            statics.push(v);
        } else {
            inits.push(v);
        }
    }
    ClassMeta {
        name: c.name.clone(),
        id,
        item: fp::item_fp(c, id),
        methods,
        ctor: if c.ctor.as_ref().is_some() {
            fp::ctor_src_fp(c)
        } else {
            0
        },
        inits,
        statics,
    }
}

/// A memoized `typeck_body` result.
struct TypeckMemo {
    /// Untyped source fingerprint of this body.
    src: u64,
    /// Item fingerprints of every class the body resolved against
    /// (hierarchy-closed), at execution time.
    deps: Vec<(ClassId, u64)>,
    /// Hash of the typed output — the early-cutoff value.
    thash: u64,
    payload: Payload,
}

#[derive(Clone)]
enum Payload {
    Method {
        body: TBlock,
        frame: u32,
    },
    Ctor {
        sargs: Vec<TExpr>,
        body: TBlock,
        frame: u32,
    },
    Init(TExpr),
}

/// A memoized `lower_fn` result plus its recorded dependency set.
struct StoredMemo {
    memo: Arc<FnMemo>,
    /// Item fingerprints of the classes whose shapes/signatures this
    /// function's lowering depends on (hierarchy-closed).
    class_deps: Vec<(ClassId, u64)>,
    /// Typed-body hashes of every body the lowering read.
    body_deps: Vec<(ClassId, MemberRef, u64)>,
    /// Devirtualization reads the subclass structure of the whole
    /// program (`is_leaf`), which no single item fp covers.
    hierarchy_fp: u64,
    /// Static-global layout and constant values.
    globals_fp: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct LowerKey {
    mode: Mode,
    opt: nir::OptConfig,
    key: SpecKey,
    device: bool,
    kernel: bool,
}

/// The derived state at one revision: the fully typed table plus the
/// fingerprint indexes memo validation reads.
struct Snapshot {
    table: ClassTable,
    sem_fp: u64,
    hierarchy_fp: u64,
    globals_fp: u64,
    /// Item fingerprint per class id.
    item_fp: Vec<u64>,
    /// Typed-output hash per body.
    thash: HashMap<(ClassId, Member), u64>,
    /// Combined ctor + instance-initializer typed hash per class (the
    /// bundle a `new`-site inlining reads).
    ctor_bundle: HashMap<ClassId, u64>,
}

// ---- the database -------------------------------------------------------

/// The incremental compilation database. Inputs are named source files
/// ([`Self::set_source`] / [`Self::edit`], each bumping the revision);
/// derived state is rebuilt eagerly through the memoized query pipeline,
/// and [`Self::translate`] replays still-valid per-function lowering
/// memos.
///
/// The environment (`wootinj::WootinJ`) borrows [`Self::table`] for the
/// lifetime of a revision; the borrow checker therefore enforces the
/// edit discipline — all live environments (and their heaps, whose
/// object layouts came from the old table) must be dropped before the
/// next `edit`.
#[derive(Default)]
pub struct Database {
    revision: u64,
    files: Vec<FileEntry>,
    parse: Vec<Option<ParseMemo>>,
    /// Per-file class metas of the last rebuild (early-cutoff baseline).
    metas: Vec<Vec<ClassMeta>>,
    typeck: HashMap<(ClassId, Member), TypeckMemo>,
    snapshot: Option<Snapshot>,
    lower: RefCell<HashMap<LowerKey, StoredMemo>>,
    /// Semantic fingerprints whose rules check passed. Failures are
    /// never cached, so fixing a violation always re-checks.
    rules_ok: RefCell<HashSet<u64>>,
    stats: RefCell<QueryStats>,
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current revision (0 until the first `set_source`).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Cumulative query counters.
    pub fn stats(&self) -> QueryStats {
        *self.stats.borrow()
    }

    /// The typed class table at the current revision (`None` if no
    /// sources are set or the last edit failed to compile).
    pub fn table(&self) -> Option<&ClassTable> {
        self.snapshot.as_ref().map(|s| &s.table)
    }

    /// Whitespace-insensitive fingerprint of the whole source set —
    /// stable across processes, so it scopes persisted artifact-store
    /// keys to program semantics. 0 when no snapshot exists.
    pub fn source_fingerprint(&self) -> u64 {
        self.snapshot.as_ref().map_or(0, |s| s.sem_fp)
    }

    /// Set (or add) a source file and rebuild through the query
    /// pipeline. Returns the new revision; `Err` carries front-end
    /// diagnostics and leaves the database without a valid snapshot
    /// (memos survive and revalidate on the next successful edit).
    pub fn set_source(&mut self, name: &str, text: &str) -> DiagResult<u64> {
        let hash = nir::fnv1a64(text.as_bytes());
        match self.files.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                f.text = text.to_string();
                f.hash = hash;
            }
            None => {
                self.files.push(FileEntry {
                    name: name.to_string(),
                    text: text.to_string(),
                    hash,
                });
                self.parse.push(None);
            }
        }
        self.revision += 1;
        self.rebuild()?;
        Ok(self.revision)
    }

    /// Edit an *existing* source file (typo-proof variant of
    /// [`Self::set_source`]).
    pub fn edit(&mut self, name: &str, text: &str) -> DiagResult<u64> {
        if !self.files.iter().any(|f| f.name == name) {
            return Err(vec![Diagnostic::error(
                "querydb",
                Span::default(),
                format!("edit of unknown source file `{name}`"),
            )]);
        }
        self.set_source(name, text)
    }

    // ---- snapshot rebuild (parse → item tree → typeck) ------------------

    fn rebuild(&mut self) -> DiagResult<()> {
        let mut diags: Vec<Diagnostic> = Vec::new();
        let mut reparsed = vec![false; self.files.len()];

        for (i, fe) in self.files.iter().enumerate() {
            if self.parse[i]
                .as_ref()
                .is_some_and(|m| m.text_hash == fe.hash)
            {
                self.stats.get_mut().parse_reused += 1;
                continue;
            }
            reparsed[i] = true;
            self.stats.get_mut().parse_executed += 1;
            match jlang::parser::parse_unit(i as u32, &fe.text) {
                Ok(unit) => {
                    self.parse[i] = Some(ParseMemo {
                        text_hash: fe.hash,
                        unit,
                    })
                }
                Err(ds) => {
                    self.parse[i] = None;
                    diags.extend(ds);
                }
            }
        }
        if !diags.is_empty() {
            self.snapshot = None;
            return Err(diags);
        }

        // Item-tree pass: per-class source fingerprints with predicted
        // class ids (Object = 0, then declaration order across files —
        // exactly `table::build`'s assignment).
        let mut metas: Vec<Vec<ClassMeta>> = Vec::with_capacity(self.files.len());
        let mut next = 1u32;
        for p in &self.parse {
            let unit = &p.as_ref().expect("parsed above").unit;
            let mut v = Vec::with_capacity(unit.classes.len());
            for c in &unit.classes {
                v.push(meta_of(c, ClassId(next)));
                next += 1;
            }
            metas.push(v);
        }

        // Early cutoff at the item tree: the file re-parsed but nothing
        // semantic changed (e.g. whitespace/comment edits).
        for (i, was) in reparsed.iter().enumerate() {
            if *was && self.metas.get(i).is_some_and(|old| *old == metas[i]) {
                self.stats.get_mut().early_cutoffs += 1;
            }
        }

        let mut sem = Fingerprint::seeded(0x7365_6d66); // "semf"
        for (fe, ms) in self.files.iter().zip(&metas) {
            sem.str(&fe.name).u32(ms.len() as u32);
            for m in ms {
                sem.str(&m.name).u64(m.item).u64(m.ctor);
                for v in m.methods.iter().chain(&m.inits).chain(&m.statics) {
                    sem.u64(*v);
                }
            }
        }
        let sem_fp = sem.finish();

        if self.snapshot.as_ref().is_some_and(|s| s.sem_fp == sem_fp) {
            // Nothing semantic changed: the entire derived state is
            // reused as-is.
            self.metas = metas;
            return Ok(());
        }
        self.metas = metas;

        let units: Vec<ast::Unit> = self
            .parse
            .iter()
            .map(|p| p.as_ref().expect("parsed above").unit.clone())
            .collect();
        let mut table = match table::build(units) {
            Ok(t) => t,
            Err(ds) => {
                self.snapshot = None;
                return Err(ds);
            }
        };

        // Item fingerprints by id (Object at 0 is constant).
        let mut item_fp = vec![0u64; table.classes.len()];
        item_fp[0] = OBJECT_FP;
        for m in self.metas.iter().flatten() {
            debug_assert_eq!(table.name(m.id), m.name, "class id prediction drifted");
            item_fp[m.id.0 as usize] = m.item;
        }
        let flat: HashMap<ClassId, &ClassMeta> =
            self.metas.iter().flatten().map(|m| (m.id, m)).collect();

        let hierarchy_fp = hierarchy_fp(&table);
        let globals_fp = globals_fp(&table, &flat);

        // typeck_body queries: validate memos, re-run invalid ones.
        let mut installs: Vec<(ClassId, Member, Payload, u64)> = Vec::new();
        let mut fresh: Vec<((ClassId, Member), TypeckMemo)> = Vec::new();
        let ids: Vec<ClassId> = table.iter().map(|c| c.id).skip(1).collect();
        for id in ids {
            let Some(meta) = flat.get(&id) else { continue };
            let info = table.class(id).clone();

            let mut bodies: Vec<(Member, u64)> = Vec::new();
            for (i, f) in info.fields.iter().enumerate() {
                if f.ast_init.is_some() {
                    bodies.push((
                        Member::Init {
                            is_static: false,
                            index: i as u32,
                        },
                        meta.inits[i],
                    ));
                }
            }
            for (i, f) in info.statics.iter().enumerate() {
                if f.ast_init.is_some() {
                    bodies.push((
                        Member::Init {
                            is_static: true,
                            index: i as u32,
                        },
                        meta.statics[i],
                    ));
                }
            }
            for (mi, m) in info.methods.iter().enumerate() {
                if m.ast_body.is_some() {
                    bodies.push((Member::Method(mi as u32), meta.methods[mi]));
                }
            }
            if info.ctor.as_ref().is_some_and(|c| c.ast_body.is_some()) {
                bodies.push((Member::Ctor, meta.ctor));
            }

            for (member, src) in bodies {
                let bid = (id, member);
                if let Some(m) = self.typeck.get(&bid) {
                    let valid = m.src == src
                        && m.deps
                            .iter()
                            .all(|(c, f)| item_fp.get(c.0 as usize) == Some(f));
                    if valid {
                        self.stats.get_mut().typeck_reused += 1;
                        installs.push((id, member, m.payload.clone(), m.thash));
                        continue;
                    }
                }
                self.stats.get_mut().typeck_executed += 1;
                let run = match member {
                    Member::Method(mi) => {
                        typeck::check_method_body(&table, id, mi as usize).map(|(body, frame)| {
                            let thash = fp::thash_block(&body, frame);
                            let mut refs = Vec::new();
                            fp::collect_refs(&body, &mut refs);
                            (Payload::Method { body, frame }, thash, refs)
                        })
                    }
                    Member::Ctor => typeck::check_ctor(&table, id).map(|(sargs, body, frame)| {
                        let mut h = Fingerprint::seeded(0x7463_7472); // "tctr"
                        h.u64(fp::thash_exprs(&sargs))
                            .u64(fp::thash_block(&body, frame));
                        let mut refs = Vec::new();
                        fp::collect_exprs_refs(&sargs, &mut refs);
                        fp::collect_refs(&body, &mut refs);
                        (Payload::Ctor { sargs, body, frame }, h.finish(), refs)
                    }),
                    Member::Init { is_static, index } => {
                        typeck::check_field_init(&table, id, is_static, index as usize).map(|e| {
                            let thash = fp::thash_exprs(std::slice::from_ref(&e));
                            let mut refs = Vec::new();
                            fp::collect_exprs_refs(std::slice::from_ref(&e), &mut refs);
                            (Payload::Init(e), thash, refs)
                        })
                    }
                };
                match run {
                    Ok((payload, thash, mut refs)) => {
                        if self.typeck.get(&bid).is_some_and(|old| old.thash == thash) {
                            // Re-ran, but the typed output is unchanged:
                            // lower memos over this body stay valid.
                            self.stats.get_mut().early_cutoffs += 1;
                        }
                        refs.push(id);
                        let deps = dep_fps(&table, &refs, &item_fp);
                        fresh.push((
                            bid,
                            TypeckMemo {
                                src,
                                deps,
                                thash,
                                payload: payload.clone(),
                            },
                        ));
                        installs.push((id, member, payload, thash));
                    }
                    Err(ds) => diags.extend(ds),
                }
            }
        }

        if !diags.is_empty() {
            self.snapshot = None;
            return Err(diags);
        }

        for (bid, memo) in fresh {
            self.typeck.insert(bid, memo);
        }
        let class_count = table.classes.len() as u32;
        self.typeck.retain(|(id, _), _| id.0 < class_count);

        // Write-back phase — identical to `typeck::check`'s driver.
        let mut thash: HashMap<(ClassId, Member), u64> = HashMap::new();
        for (id, member, payload, th) in installs {
            thash.insert((id, member), th);
            let c = table.class_mut(id);
            match (member, payload) {
                (Member::Method(mi), Payload::Method { body, frame }) => {
                    let m = &mut c.methods[mi as usize];
                    m.body = Some(body);
                    m.frame_size = frame;
                    m.ast_body = None;
                }
                (Member::Ctor, Payload::Ctor { sargs, body, frame }) => {
                    let ct = c.ctor.as_mut().expect("ctor body checked above");
                    ct.super_args = sargs;
                    ct.body = Some(body);
                    ct.frame_size = frame;
                    ct.ast_body = None;
                }
                (Member::Init { is_static, index }, Payload::Init(e)) => {
                    let f = if is_static {
                        &mut c.statics[index as usize]
                    } else {
                        &mut c.fields[index as usize]
                    };
                    f.init = Some(e);
                    f.ast_init = None;
                }
                _ => unreachable!("payload kind matches member kind"),
            }
        }

        // The typed ctor bundle per class: what a `new`-site inlining
        // reads (ctor + every instance initializer).
        let mut ctor_bundle = HashMap::new();
        for info in table.iter().skip(1) {
            let mut h = Fingerprint::seeded(0x6264_6c65); // "bdle"
            h.u64(*thash.get(&(info.id, Member::Ctor)).unwrap_or(&0));
            for i in 0..info.fields.len() {
                h.u64(
                    *thash
                        .get(&(
                            info.id,
                            Member::Init {
                                is_static: false,
                                index: i as u32,
                            },
                        ))
                        .unwrap_or(&0),
                );
            }
            ctor_bundle.insert(info.id, h.finish());
        }

        self.snapshot = Some(Snapshot {
            table,
            sem_fp,
            hierarchy_fp,
            globals_fp,
            item_fp,
            thash,
            ctor_bundle,
        });
        Ok(())
    }

    // ---- program query ---------------------------------------------------

    /// Translate `recv.method(args)` at the current revision — the
    /// incremental analogue of [`translator::translate`], replaying every
    /// still-valid `lower_fn` memo. `jvm` must have been built against
    /// [`Self::table`] at this revision.
    ///
    /// The determinism contract: the returned artifact's
    /// [`Translated::encode_semantic`] bytes are identical to a
    /// from-scratch translate of the same sources.
    pub fn translate(
        &self,
        jvm: &Jvm<'_>,
        recv: &Value,
        method: &str,
        args: &[Value],
        config: TransConfig,
    ) -> TResult<Translated> {
        let snap = self
            .snapshot
            .as_ref()
            .ok_or_else(|| TransError::new("query database has no compiled snapshot"))?;
        let table = &snap.table;
        self.stats.borrow_mut().translates += 1;

        if config.check_rules {
            let recv_class = entry_class(jvm, recv)?;
            let info = table.class(recv_class);
            if !info.has_annotation("WootinJ") {
                return Err(TransError::new(format!(
                    "entry class `{}` is not annotated @WootinJ",
                    info.name
                )));
            }
            // rules(program) memo: passing verdicts only, keyed by the
            // semantic fingerprint — a failure is always re-checked.
            if self.rules_ok.borrow().contains(&snap.sem_fp) {
                self.stats.borrow_mut().rules_reused += 1;
            } else {
                self.stats.borrow_mut().rules_executed += 1;
                let report = jrules::check_program(table);
                if !report.is_ok() {
                    return Err(TransError::new(format!(
                        "coding-rule violations:\n{}",
                        report.render()
                    )));
                }
                self.rules_ok.borrow_mut().insert(snap.sem_fp);
            }
        }

        let spec = translator::entry_spec(table, jvm, recv, method, args, config.mode)?;
        let EntrySpec::Shaped(key) = &spec else {
            // Virtual mode compiles the whole class closure in one
            // monolithic pass — there is no per-function query to memoize,
            // so it delegates to the classic path (rules already checked).
            let mut inner = config;
            inner.check_rules = false;
            return translator::translate(table, jvm, recv, method, args, inner);
        };

        let replay_memos = self.valid_lower_memos(snap, &config);
        let flatten = config.mode == Mode::Full;
        let mut lw = Lowerer::new(table, flatten);
        lw.trace = Some(TraceState::default());
        lw.replay = Some(ReplayState::new(replay_memos));

        let entry = match lw.lower_spec(key, false)? {
            SpecResult::Func { id, .. } => id,
            SpecResult::InlineOnly { .. } => {
                return Err(TransError::new(
                    "the entry method returns a composite object; return void or a scalar",
                ))
            }
        };

        let trace = lw.trace.take().expect("trace attached above");
        let replay = lw.replay.take().expect("replay attached above");
        let mut program = lw.program;
        let mut stats = lw.stats;
        program.entry = Some(entry);

        if config.opt.inline_limit == 0 {
            // Per-function optimization is exactly whole-program
            // optimization here, so replayed functions (stored
            // post-optimization) are final and only fresh ones run —
            // serially or fanned out per function when the config asks
            // for parallel lowering (bodies and memos are identical
            // either way; results come back in rec order).
            let indices: Vec<usize> = trace.recs.iter().map(|rec| rec.id.0 as usize).collect();
            stats.passes = translator::optimize_functions(&mut program, &indices, &config);
            self.harvest(snap, &config, &trace, &program);
        } else {
            // Cross-function inlining: memos hold *pre*-optimization
            // functions and the optimizer reruns over the whole program,
            // exactly like the from-scratch path.
            self.harvest(snap, &config, &trace, &program);
            stats.passes = translator::optimize_program(&mut program, &config);
        }

        program.validate().map_err(|m| {
            TransError::new(format!("internal error: generated program invalid: {m}"))
        })?;

        {
            let mut s = self.stats.borrow_mut();
            s.lower_executed += trace.recs.len() as u64;
            s.lower_reused += replay.reused;
        }

        let bindings = shaped_bindings(key, flatten, args.len());
        let (uses_mpi, uses_gpu) = scan_uses(&program);
        Ok(Translated {
            program,
            entry,
            bindings,
            mode: config.mode,
            stats,
            uses_mpi,
            uses_gpu,
            warnings: Vec::new(),
        })
    }

    /// Validate every stored `lower_fn` memo for this configuration
    /// against the current snapshot; invalid ones are dropped.
    fn valid_lower_memos(
        &self,
        snap: &Snapshot,
        config: &TransConfig,
    ) -> HashMap<(SpecKey, bool, bool), Arc<FnMemo>> {
        let mut valid = HashMap::new();
        let mut store = self.lower.borrow_mut();
        store.retain(|lk, sm| {
            if lk.mode != config.mode || lk.opt != config.opt {
                return true; // other configurations: keep, don't validate
            }
            let ok = sm.hierarchy_fp == snap.hierarchy_fp
                && sm.globals_fp == snap.globals_fp
                && sm
                    .class_deps
                    .iter()
                    .all(|(c, f)| snap.item_fp.get(c.0 as usize) == Some(f))
                && sm.body_deps.iter().all(|(c, m, th)| {
                    let cur = match m {
                        MemberRef::Method(mi) => snap.thash.get(&(*c, Member::Method(*mi))),
                        MemberRef::Ctor => snap.ctor_bundle.get(c),
                    };
                    cur == Some(th)
                });
            if ok {
                valid.insert((lk.key.clone(), lk.device, lk.kernel), Arc::clone(&sm.memo));
            }
            ok
        });
        valid
    }

    /// Harvest this translate's trace records into `lower_fn` memos.
    /// `program` holds post-optimization functions for non-inlining
    /// configurations and pre-optimization functions otherwise — the
    /// caller sequences the optimizer around this accordingly.
    fn harvest(
        &self,
        snap: &Snapshot,
        config: &TransConfig,
        trace: &TraceState,
        program: &nir::Program,
    ) {
        let mut store = self.lower.borrow_mut();
        for rec in &trace.recs {
            let mut classes: BTreeSet<ClassId> = BTreeSet::new();
            spec_classes(&rec.key, &mut classes);
            for e in &rec.callees {
                spec_classes(&e.key, &mut classes);
            }
            for b in &rec.bodies {
                classes.insert(b.class);
            }
            let closed = hier_close(&snap.table, classes);
            let class_deps = closed
                .into_iter()
                .map(|c| (c, *snap.item_fp.get(c.0 as usize).unwrap_or(&0)))
                .collect();
            let body_deps = rec
                .bodies
                .iter()
                .map(|b| {
                    let th = match b.member {
                        MemberRef::Method(mi) => snap
                            .thash
                            .get(&(b.class, Member::Method(mi)))
                            .copied()
                            .unwrap_or(0),
                        MemberRef::Ctor => snap.ctor_bundle.get(&b.class).copied().unwrap_or(0),
                    };
                    (b.class, b.member, th)
                })
                .collect();
            store.insert(
                LowerKey {
                    mode: config.mode,
                    opt: config.opt,
                    key: rec.key.clone(),
                    device: rec.device,
                    kernel: rec.kernel,
                },
                StoredMemo {
                    memo: Arc::new(FnMemo {
                        id: rec.id,
                        ret: rec.ret.clone(),
                        func: program.funcs[rec.id.0 as usize].clone(),
                        callees: rec.callees.clone(),
                        bodies: rec.bodies.clone(),
                        excl: rec.excl,
                    }),
                    class_deps,
                    body_deps,
                    hierarchy_fp: snap.hierarchy_fp,
                    globals_fp: snap.globals_fp,
                },
            );
        }
    }
}

// ---- dependency helpers --------------------------------------------------

/// Classes named by a specialization key: the receiver class plus every
/// class appearing in the receiver/argument shapes.
fn spec_classes(key: &SpecKey, out: &mut BTreeSet<ClassId>) {
    out.insert(key.class);
    if let Some(s) = &key.recv {
        shape_classes(s, out);
    }
    for s in &key.args {
        shape_classes(s, out);
    }
}

fn shape_classes(s: &translator::Shape, out: &mut BTreeSet<ClassId>) {
    if let translator::Shape::Obj { class, fields } = s {
        out.insert(*class);
        for f in fields {
            shape_classes(f, out);
        }
    }
}

/// Close a class set over superclasses and implemented interfaces:
/// name resolution and layout walk these chains, so a change anywhere up
/// the hierarchy must invalidate dependents.
fn hier_close(table: &ClassTable, seed: BTreeSet<ClassId>) -> BTreeSet<ClassId> {
    let mut out = BTreeSet::new();
    let mut work: Vec<ClassId> = seed.into_iter().collect();
    while let Some(id) = work.pop() {
        if !out.insert(id) || id.0 as usize >= table.classes.len() {
            continue;
        }
        let info = table.class(id);
        if let Some((sup, _)) = &info.superclass {
            work.push(*sup);
        }
        for (i, _) in &info.interfaces {
            work.push(*i);
        }
    }
    out
}

fn dep_fps(table: &ClassTable, refs: &[ClassId], item_fp: &[u64]) -> Vec<(ClassId, u64)> {
    let seed: BTreeSet<ClassId> = refs.iter().copied().collect();
    hier_close(table, seed)
        .into_iter()
        .map(|c| (c, *item_fp.get(c.0 as usize).unwrap_or(&0)))
        .collect()
}

/// Whole-program inheritance-structure fingerprint: devirtualization
/// (`is_leaf`, `resolve_impl`) reads subclass sets, which no per-class
/// item fingerprint captures.
fn hierarchy_fp(table: &ClassTable) -> u64 {
    let mut h = Fingerprint::seeded(0x6869_6572); // "hier"
    for info in table.iter() {
        h.u32(info.id.0)
            .str(&info.name)
            .bool(info.is_interface)
            .bool(info.is_final)
            .bool(info.is_abstract);
        match &info.superclass {
            Some((s, _)) => h.u8(1).u32(s.0),
            None => h.u8(0),
        };
        h.u32(info.interfaces.len() as u32);
        for (i, _) in &info.interfaces {
            h.u32(i.0);
        }
        h.u32(info.methods.len() as u32);
        for m in &info.methods {
            h.str(&m.name)
                .bool(m.is_static)
                .bool(m.is_abstract)
                .bool(m.is_global)
                .bool(m.native.is_some());
        }
    }
    h.finish()
}

/// Static-global surface: layout order plus initializer sources. The
/// lowerer assigns global slots by scanning the whole table, so every
/// `lower_fn` memo depends on this.
fn globals_fp(table: &ClassTable, metas: &HashMap<ClassId, &ClassMeta>) -> u64 {
    let mut h = Fingerprint::seeded(0x676c_6f62); // "glob"
    for info in table.iter() {
        h.u32(info.id.0).u32(info.statics.len() as u32);
        for (i, s) in info.statics.iter().enumerate() {
            h.str(&s.name);
            h.u64(metas.get(&info.id).map_or(0, |m| m.statics[i]));
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
        @WootinJ final class Scale {
          float k;
          Scale(float k0) { k = k0; }
          float apply(float x) { return k * x; }
        }
        @WootinJ final class App {
          Scale s;
          App(Scale s0) { s = s0; }
          float run(float x) { return s.apply(x) + 1.0f; }
        }";

    fn jit(db: &Database, config: TransConfig) -> Translated {
        let table = db.table().unwrap();
        let mut jvm = Jvm::new(table).unwrap();
        let s = jvm.new_instance("Scale", &[Value::Float(2.0)]).unwrap();
        let app = jvm.new_instance("App", &[s]).unwrap();
        db.translate(&jvm, &app, "run", &[Value::Float(3.0)], config)
            .unwrap()
    }

    #[test]
    fn matches_classic_translate_bit_for_bit() {
        let mut db = Database::new();
        db.set_source("app.jl", SRC).unwrap();
        for config in [
            TransConfig::full(),
            TransConfig::devirt(),
            TransConfig::template_no_virt(),
        ] {
            let t = jit(&db, config);
            let table = jlang::compile_str(SRC).unwrap();
            let mut jvm = Jvm::new(&table).unwrap();
            let s = jvm.new_instance("Scale", &[Value::Float(2.0)]).unwrap();
            let app = jvm.new_instance("App", &[s]).unwrap();
            let classic =
                translator::translate(&table, &jvm, &app, "run", &[Value::Float(3.0)], config)
                    .unwrap();
            assert_eq!(
                t.encode_semantic(),
                classic.encode_semantic(),
                "{config:?} diverged from classic translate"
            );
        }
    }

    #[test]
    fn value_edit_reuses_other_bodies_and_stays_bit_identical() {
        let mut db = Database::new();
        db.set_source("app.jl", SRC).unwrap();
        let cold = jit(&db, TransConfig::full());

        let edited = SRC.replace("k * x", "k * x + 0.5f");
        db.edit("app.jl", &edited).unwrap();
        let before = db.stats();
        let warm = jit(&db, TransConfig::full());
        let d = db.stats().since(&before);

        // Only `apply`'s function re-lowers; `run` and the ctor chain
        // replay. (run's spec calls apply, so run re-lowers too — exactly
        // the edited body's function plus its transitive callers.)
        assert!(d.lower_reused > 0, "no memo replayed: {d:?}");
        assert_ne!(cold.encode_semantic(), warm.encode_semantic());

        // Bit-identity vs a from-scratch database at the same revision.
        let mut fresh = Database::new();
        fresh.set_source("app.jl", &edited).unwrap();
        let scratch = jit(&fresh, TransConfig::full());
        assert_eq!(warm.encode_semantic(), scratch.encode_semantic());
    }

    #[test]
    fn whitespace_edit_early_cutoffs_everything() {
        let mut db = Database::new();
        db.set_source("app.jl", SRC).unwrap();
        jit(&db, TransConfig::full());
        let fp0 = db.source_fingerprint();

        let before = db.stats();
        db.edit("app.jl", &format!("{SRC}\n\n  // a trailing comment\n"))
            .unwrap();
        let d = db.stats().since(&before);
        assert_eq!(d.parse_executed, 1);
        assert_eq!(d.typeck_executed, 0, "{d:?}");
        assert!(d.early_cutoffs >= 1, "{d:?}");
        assert_eq!(db.source_fingerprint(), fp0);
    }

    #[test]
    fn parse_error_then_recovery_revalidates_memos() {
        let mut db = Database::new();
        db.set_source("app.jl", SRC).unwrap();
        jit(&db, TransConfig::full());
        assert!(db.edit("app.jl", "class {").is_err());
        assert!(db.table().is_none());
        db.edit("app.jl", SRC).unwrap();
        let before = db.stats();
        jit(&db, TransConfig::full());
        let d = db.stats().since(&before);
        assert_eq!(d.lower_executed, 0, "memos lost across error: {d:?}");
    }
}
