//! Span-free structural fingerprints over the untyped and typed ASTs.
//!
//! Every hash here deliberately ignores [`Span`]s: an edit that only
//! moves code around (whitespace, comments, reformatting) shifts every
//! span in the file but must leave all fingerprints unchanged — that is
//! the *early cutoff* that lets a re-parsed file invalidate nothing
//! downstream. Conversely everything with semantic weight — names,
//! modifiers, annotations, literal bit patterns, resolved ids and
//! slots — is absorbed.
//!
//! Two families:
//!
//! * **Item fingerprints** ([`item_fp`]) cover a class's declaration
//!   skeleton with bodies stripped: the "item tree" query. A body edit
//!   leaves it unchanged; adding/renaming members, changing signatures,
//!   supers or annotations changes it.
//! * **Body fingerprints** ([`body_fp`], [`ctor_src_fp`]) cover one
//!   untyped body; typed-body hashes ([`thash_block`]) cover the
//!   type checker's output and feed the `lower_fn` memo validation.
//!
//! [`Span`]: jlang::span::Span

use jlang::ast;
use jlang::tast::{FieldSel, MethodSel, TBlock, TExpr, TExprKind, TStmt};
use jlang::types::{ClassId, PrimKind, Type};
use nir::hash::Fingerprint;

// ---- untyped (parser output) -------------------------------------------

fn hash_typeref(f: &mut Fingerprint, t: &ast::TypeRef) {
    match t {
        ast::TypeRef::Void => f.u8(0),
        ast::TypeRef::Int => f.u8(1),
        ast::TypeRef::Long => f.u8(2),
        ast::TypeRef::Float => f.u8(3),
        ast::TypeRef::Double => f.u8(4),
        ast::TypeRef::Boolean => f.u8(5),
        ast::TypeRef::Named { name, args, .. } => {
            f.u8(6).str(name).u32(args.len() as u32);
            for a in args {
                hash_typeref(f, a);
            }
            f
        }
        ast::TypeRef::Array(e) => {
            f.u8(7);
            hash_typeref(f, e);
            f
        }
    };
}

fn hash_annotations(f: &mut Fingerprint, anns: &[ast::Annotation]) {
    f.u32(anns.len() as u32);
    for a in anns {
        f.str(&a.name);
        match &a.arg {
            Some(s) => f.u8(1).str(s),
            None => f.u8(0),
        };
    }
}

fn hash_modifiers(f: &mut Fingerprint, m: &ast::Modifiers) {
    f.bool(m.is_static).bool(m.is_final).bool(m.is_abstract);
}

fn hash_params(f: &mut Fingerprint, ps: &[ast::Param]) {
    f.u32(ps.len() as u32);
    for p in ps {
        // Parameter names bind body slots, so a rename is a signature
        // change for the declaring class (its own bodies re-check).
        f.str(&p.name).bool(p.is_final);
        hash_typeref(f, &p.ty);
    }
}

/// Fingerprint of one class's *item tree*: the declaration skeleton with
/// every body (method bodies, ctor body + super args, field
/// initializers) stripped. Includes the [`ClassId`] the table assigns at
/// this revision, so id drift (a class inserted before this one)
/// invalidates everything that resolved against the old id.
pub fn item_fp(c: &ast::ClassDecl, assigned: ClassId) -> u64 {
    let mut f = Fingerprint::seeded(0x6974_656d); // "item"
    f.u32(assigned.0).str(&c.name).bool(c.is_interface);
    hash_annotations(&mut f, &c.annotations);
    hash_modifiers(&mut f, &c.modifiers);
    f.u32(c.type_params.len() as u32);
    for tp in &c.type_params {
        f.str(&tp.name);
        match &tp.bound {
            Some(b) => {
                f.u8(1);
                hash_typeref(&mut f, b);
            }
            None => {
                f.u8(0);
            }
        }
    }
    match &c.superclass {
        Some(s) => {
            f.u8(1);
            hash_typeref(&mut f, s);
        }
        None => {
            f.u8(0);
        }
    }
    f.u32(c.interfaces.len() as u32);
    for i in &c.interfaces {
        hash_typeref(&mut f, i);
    }
    f.u32(c.fields.len() as u32);
    for fd in &c.fields {
        f.str(&fd.name);
        hash_typeref(&mut f, &fd.ty);
        hash_annotations(&mut f, &fd.annotations);
        hash_modifiers(&mut f, &fd.modifiers);
        // Presence of an initializer is part of the skeleton (it decides
        // whether the ctor bundle reads one); its value is body-level.
        f.bool(fd.init.is_some());
    }
    f.u32(c.methods.len() as u32);
    for m in &c.methods {
        f.str(&m.name);
        hash_annotations(&mut f, &m.annotations);
        hash_modifiers(&mut f, &m.modifiers);
        hash_params(&mut f, &m.params);
        hash_typeref(&mut f, &m.ret);
        f.bool(m.body.is_some());
    }
    match &c.ctor {
        Some(ct) => {
            f.u8(1);
            hash_params(&mut f, &ct.params);
        }
        None => {
            f.u8(0);
        }
    }
    f.finish()
}

/// Fingerprint of one untyped method body.
pub fn body_fp(b: &ast::Block) -> u64 {
    let mut f = Fingerprint::seeded(0x626f_6479); // "body"
    hash_block(&mut f, b);
    f.finish()
}

/// Fingerprint of the constructor source: super(...) args plus the ctor
/// body. Field initializers are separate bodies with their own memos;
/// the *typed* ctor bundle hash recombines them for lowering deps.
pub fn ctor_src_fp(c: &ast::ClassDecl) -> u64 {
    let mut f = Fingerprint::seeded(0x63746f72); // "ctor"
    match &c.ctor {
        Some(ct) => {
            f.u8(1);
            match &ct.super_args {
                Some(args) => {
                    f.u8(1).u32(args.len() as u32);
                    for a in args {
                        hash_expr(&mut f, a);
                    }
                }
                None => {
                    f.u8(0);
                }
            }
            hash_block(&mut f, &ct.body);
        }
        None => {
            f.u8(0);
        }
    }
    f.finish()
}

/// Fingerprint of one field initializer expression.
pub fn init_fp(e: &ast::Expr) -> u64 {
    let mut f = Fingerprint::seeded(0x696e_6974); // "init"
    hash_expr(&mut f, e);
    f.finish()
}

fn hash_block(f: &mut Fingerprint, b: &ast::Block) {
    f.u32(b.stmts.len() as u32);
    for s in &b.stmts {
        hash_stmt(f, s);
    }
}

fn hash_opt_expr(f: &mut Fingerprint, e: &Option<ast::Expr>) {
    match e {
        Some(e) => {
            f.u8(1);
            hash_expr(f, e);
        }
        None => {
            f.u8(0);
        }
    }
}

fn hash_lvalue(f: &mut Fingerprint, lv: &ast::LValue) {
    match lv {
        ast::LValue::Name(n, _) => {
            f.u8(0).str(n);
        }
        ast::LValue::Field { obj, name, .. } => {
            f.u8(1).str(name);
            hash_expr(f, obj);
        }
        ast::LValue::Index { arr, idx, .. } => {
            f.u8(2);
            hash_expr(f, arr);
            hash_expr(f, idx);
        }
    }
}

fn hash_stmt(f: &mut Fingerprint, s: &ast::Stmt) {
    match s {
        ast::Stmt::Local {
            name,
            ty,
            init,
            is_final,
            ..
        } => {
            f.u8(0).str(name).bool(*is_final);
            hash_typeref(f, ty);
            hash_opt_expr(f, init);
        }
        ast::Stmt::Assign {
            target, op, value, ..
        } => {
            f.u8(1).u8(op.map_or(0xff, |o| o as u8));
            hash_lvalue(f, target);
            hash_expr(f, value);
        }
        ast::Stmt::IncDec { target, inc, .. } => {
            f.u8(2).bool(*inc);
            hash_lvalue(f, target);
        }
        ast::Stmt::Expr(e) => {
            f.u8(3);
            hash_expr(f, e);
        }
        ast::Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            f.u8(4);
            hash_expr(f, cond);
            hash_block(f, then_branch);
            match else_branch {
                Some(b) => {
                    f.u8(1);
                    hash_block(f, b);
                }
                None => {
                    f.u8(0);
                }
            }
        }
        ast::Stmt::While { cond, body, .. } => {
            f.u8(5);
            hash_expr(f, cond);
            hash_block(f, body);
        }
        ast::Stmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            f.u8(6);
            match init {
                Some(s) => {
                    f.u8(1);
                    hash_stmt(f, s);
                }
                None => {
                    f.u8(0);
                }
            }
            hash_opt_expr(f, cond);
            match update {
                Some(s) => {
                    f.u8(1);
                    hash_stmt(f, s);
                }
                None => {
                    f.u8(0);
                }
            }
            hash_block(f, body);
        }
        ast::Stmt::Return { value, .. } => {
            f.u8(7);
            hash_opt_expr(f, value);
        }
        ast::Stmt::Break(_) => {
            f.u8(8);
        }
        ast::Stmt::Continue(_) => {
            f.u8(9);
        }
        ast::Stmt::Block(b) => {
            f.u8(10);
            hash_block(f, b);
        }
    }
}

fn hash_expr(f: &mut Fingerprint, e: &ast::Expr) {
    match e {
        ast::Expr::IntLit(v, _) => {
            f.u8(0).i64(*v);
        }
        ast::Expr::LongLit(v, _) => {
            f.u8(1).i64(*v);
        }
        ast::Expr::FloatLit(v, _) => {
            f.u8(2).u32(v.to_bits());
        }
        ast::Expr::DoubleLit(v, _) => {
            f.u8(3).f64_bits(*v);
        }
        ast::Expr::BoolLit(v, _) => {
            f.u8(4).bool(*v);
        }
        ast::Expr::NullLit(_) => {
            f.u8(5);
        }
        ast::Expr::StrLit(s, _) => {
            f.u8(6).str(s);
        }
        ast::Expr::Name(n, _) => {
            f.u8(7).str(n);
        }
        ast::Expr::This(_) => {
            f.u8(8);
        }
        ast::Expr::Field { obj, name, .. } => {
            f.u8(9).str(name);
            hash_expr(f, obj);
        }
        ast::Expr::Call {
            recv, name, args, ..
        } => {
            f.u8(10).str(name).u32(args.len() as u32);
            hash_expr(f, recv);
            for a in args {
                hash_expr(f, a);
            }
        }
        ast::Expr::SuperCall { name, args, .. } => {
            f.u8(11).str(name).u32(args.len() as u32);
            for a in args {
                hash_expr(f, a);
            }
        }
        ast::Expr::New { ty, args, .. } => {
            f.u8(12).u32(args.len() as u32);
            hash_typeref(f, ty);
            for a in args {
                hash_expr(f, a);
            }
        }
        ast::Expr::NewArray { elem, len, .. } => {
            f.u8(13);
            hash_typeref(f, elem);
            hash_expr(f, len);
        }
        ast::Expr::Index { arr, idx, .. } => {
            f.u8(14);
            hash_expr(f, arr);
            hash_expr(f, idx);
        }
        ast::Expr::Unary { op, expr, .. } => {
            f.u8(15).u8(*op as u8);
            hash_expr(f, expr);
        }
        ast::Expr::Binary { op, lhs, rhs, .. } => {
            f.u8(16).u8(*op as u8);
            hash_expr(f, lhs);
            hash_expr(f, rhs);
        }
        ast::Expr::Cast { ty, expr, .. } => {
            f.u8(17);
            hash_typeref(f, ty);
            hash_expr(f, expr);
        }
        ast::Expr::InstanceOf { expr, ty, .. } => {
            f.u8(18);
            hash_typeref(f, ty);
            hash_expr(f, expr);
        }
        ast::Expr::Ternary {
            cond,
            then_val,
            else_val,
            ..
        } => {
            f.u8(19);
            hash_expr(f, cond);
            hash_expr(f, then_val);
            hash_expr(f, else_val);
        }
    }
}

// ---- typed (checker output) --------------------------------------------

fn hash_type(f: &mut Fingerprint, t: &Type) {
    match t {
        Type::Void => {
            f.u8(0);
        }
        Type::Int => {
            f.u8(1);
        }
        Type::Long => {
            f.u8(2);
        }
        Type::Float => {
            f.u8(3);
        }
        Type::Double => {
            f.u8(4);
        }
        Type::Boolean => {
            f.u8(5);
        }
        Type::Object(id, args) => {
            f.u8(6).u32(id.0).u32(args.len() as u32);
            for a in args {
                hash_type(f, a);
            }
        }
        Type::Array(e) => {
            f.u8(7);
            hash_type(f, e);
        }
        Type::Var(v) => {
            f.u8(8).u32(*v);
        }
        Type::Null => {
            f.u8(9);
        }
        Type::Str => {
            f.u8(10);
        }
    }
}

fn prim_tag(p: PrimKind) -> u8 {
    match p {
        PrimKind::Int => 0,
        PrimKind::Long => 1,
        PrimKind::Float => 2,
        PrimKind::Double => 3,
        PrimKind::Boolean => 4,
    }
}

fn hash_field_sel(f: &mut Fingerprint, s: &FieldSel) {
    f.u32(s.owner.0).u32(s.slot);
    hash_type(f, &s.ty);
}

fn hash_method_sel(f: &mut Fingerprint, s: &MethodSel) {
    f.u32(s.decl_class.0).u32(s.index);
}

/// Fingerprint of one typed body (plus its frame size). This is what a
/// `lower_fn` memo records per body dependency: if the re-typechecked
/// body hashes identically, lowering it again would emit identical NIR.
pub fn thash_block(b: &TBlock, frame: u32) -> u64 {
    let mut f = Fingerprint::seeded(0x7462_6c6b); // "tblk"
    f.u32(frame);
    thash_blk(&mut f, b);
    f.finish()
}

/// Fingerprint of a typed expression list (super-ctor args etc.).
pub fn thash_exprs(es: &[TExpr]) -> u64 {
    let mut f = Fingerprint::seeded(0x7465_7873); // "texs"
    f.u32(es.len() as u32);
    for e in es {
        thash_expr(&mut f, e);
    }
    f.finish()
}

fn thash_blk(f: &mut Fingerprint, b: &TBlock) {
    f.u32(b.stmts.len() as u32);
    for s in &b.stmts {
        thash_stmt(f, s);
    }
}

fn thash_opt_expr(f: &mut Fingerprint, e: &Option<TExpr>) {
    match e {
        Some(e) => {
            f.u8(1);
            thash_expr(f, e);
        }
        None => {
            f.u8(0);
        }
    }
}

fn thash_stmt(f: &mut Fingerprint, s: &TStmt) {
    match s {
        TStmt::Local { slot, ty, init, .. } => {
            f.u8(0).u32(*slot);
            hash_type(f, ty);
            thash_opt_expr(f, init);
        }
        TStmt::AssignLocal { slot, value, .. } => {
            f.u8(1).u32(*slot);
            thash_expr(f, value);
        }
        TStmt::AssignField {
            obj, field, value, ..
        } => {
            f.u8(2);
            hash_field_sel(f, field);
            thash_expr(f, obj);
            thash_expr(f, value);
        }
        TStmt::AssignStatic {
            class,
            index,
            value,
            ..
        } => {
            f.u8(3).u32(class.0).u32(*index);
            thash_expr(f, value);
        }
        TStmt::AssignIndex {
            arr, idx, value, ..
        } => {
            f.u8(4);
            thash_expr(f, arr);
            thash_expr(f, idx);
            thash_expr(f, value);
        }
        TStmt::Expr(e) => {
            f.u8(5);
            thash_expr(f, e);
        }
        TStmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            f.u8(6);
            thash_expr(f, cond);
            thash_blk(f, then_branch);
            match else_branch {
                Some(b) => {
                    f.u8(1);
                    thash_blk(f, b);
                }
                None => {
                    f.u8(0);
                }
            }
        }
        TStmt::While { cond, body, .. } => {
            f.u8(7);
            thash_expr(f, cond);
            thash_blk(f, body);
        }
        TStmt::For {
            init,
            cond,
            update,
            body,
            ..
        } => {
            f.u8(8);
            match init {
                Some(s) => {
                    f.u8(1);
                    thash_stmt(f, s);
                }
                None => {
                    f.u8(0);
                }
            }
            thash_opt_expr(f, cond);
            match update {
                Some(s) => {
                    f.u8(1);
                    thash_stmt(f, s);
                }
                None => {
                    f.u8(0);
                }
            }
            thash_blk(f, body);
        }
        TStmt::Return { value, .. } => {
            f.u8(9);
            thash_opt_expr(f, value);
        }
        TStmt::Break(_) => {
            f.u8(10);
        }
        TStmt::Continue(_) => {
            f.u8(11);
        }
        TStmt::Block(b) => {
            f.u8(12);
            thash_blk(f, b);
        }
    }
}

fn thash_expr(f: &mut Fingerprint, e: &TExpr) {
    hash_type(f, &e.ty);
    match &e.kind {
        TExprKind::Int(v) => {
            f.u8(0).u32(*v as u32);
        }
        TExprKind::Long(v) => {
            f.u8(1).i64(*v);
        }
        TExprKind::Float(v) => {
            f.u8(2).u32(v.to_bits());
        }
        TExprKind::Double(v) => {
            f.u8(3).f64_bits(*v);
        }
        TExprKind::Bool(v) => {
            f.u8(4).bool(*v);
        }
        TExprKind::Null => {
            f.u8(5);
        }
        TExprKind::Str(s) => {
            f.u8(6).str(s);
        }
        TExprKind::Local(slot) => {
            f.u8(7).u32(*slot);
        }
        TExprKind::This => {
            f.u8(8);
        }
        TExprKind::GetField { obj, field } => {
            f.u8(9);
            hash_field_sel(f, field);
            thash_expr(f, obj);
        }
        TExprKind::GetStatic { class, index } => {
            f.u8(10).u32(class.0).u32(*index);
        }
        TExprKind::Call { recv, method, args } => {
            f.u8(11).u32(args.len() as u32);
            hash_method_sel(f, method);
            thash_expr(f, recv);
            for a in args {
                thash_expr(f, a);
            }
        }
        TExprKind::DirectCall { recv, method, args } => {
            f.u8(12).u32(args.len() as u32);
            hash_method_sel(f, method);
            thash_expr(f, recv);
            for a in args {
                thash_expr(f, a);
            }
        }
        TExprKind::StaticCall { class, index, args } => {
            f.u8(13).u32(class.0).u32(*index).u32(args.len() as u32);
            for a in args {
                thash_expr(f, a);
            }
        }
        TExprKind::New { class, targs, args } => {
            f.u8(14).u32(class.0).u32(targs.len() as u32);
            for t in targs {
                hash_type(f, t);
            }
            f.u32(args.len() as u32);
            for a in args {
                thash_expr(f, a);
            }
        }
        TExprKind::NewArray { elem, len } => {
            f.u8(15);
            hash_type(f, elem);
            thash_expr(f, len);
        }
        TExprKind::Index { arr, idx } => {
            f.u8(16);
            thash_expr(f, arr);
            thash_expr(f, idx);
        }
        TExprKind::ArrayLen(a) => {
            f.u8(17);
            thash_expr(f, a);
        }
        TExprKind::Unary { op, expr } => {
            f.u8(18).u8(*op as u8);
            thash_expr(f, expr);
        }
        TExprKind::Binary {
            op,
            operand_kind,
            lhs,
            rhs,
        } => {
            f.u8(19).u8(*op as u8).u8(prim_tag(*operand_kind));
            thash_expr(f, lhs);
            thash_expr(f, rhs);
        }
        TExprKind::RefEq { negated, lhs, rhs } => {
            f.u8(20).bool(*negated);
            thash_expr(f, lhs);
            thash_expr(f, rhs);
        }
        TExprKind::NumCast { to, expr } => {
            f.u8(21).u8(prim_tag(*to));
            thash_expr(f, expr);
        }
        TExprKind::RefCast { to, expr } => {
            f.u8(22);
            hash_type(f, to);
            thash_expr(f, expr);
        }
        TExprKind::Convert { to, expr } => {
            f.u8(23).u8(prim_tag(*to));
            thash_expr(f, expr);
        }
        TExprKind::InstanceOf { expr, ty } => {
            f.u8(24);
            hash_type(f, ty);
            thash_expr(f, expr);
        }
        TExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            f.u8(25);
            thash_expr(f, cond);
            thash_expr(f, then_val);
            thash_expr(f, else_val);
        }
    }
}

// ---- class-reference extraction ----------------------------------------

fn refs_in_type(t: &Type, out: &mut Vec<ClassId>) {
    match t {
        Type::Object(id, args) => {
            out.push(*id);
            for a in args {
                refs_in_type(a, out);
            }
        }
        Type::Array(e) => refs_in_type(e, out),
        _ => {}
    }
}

/// Every class a typed body resolves against: types of all expressions
/// and locals, field owners, method declaration classes, static and
/// `new` targets. The typeck memo of the body is valid only while all
/// these classes' item trees are unchanged.
pub fn collect_refs(b: &TBlock, out: &mut Vec<ClassId>) {
    b.walk_stmts(&mut |s| match s {
        TStmt::Local { ty, .. } => refs_in_type(ty, out),
        TStmt::AssignField { field, .. } => {
            out.push(field.owner);
            refs_in_type(&field.ty, out);
        }
        TStmt::AssignStatic { class, .. } => out.push(*class),
        _ => {}
    });
    b.walk_exprs(&mut |e| collect_expr_refs(e, out));
}

/// Class references of a typed expression tree (non-recursive contribution;
/// use with `TExpr::walk` or via [`collect_refs`]).
fn collect_expr_refs(e: &TExpr, out: &mut Vec<ClassId>) {
    refs_in_type(&e.ty, out);
    match &e.kind {
        TExprKind::GetField { field, .. } => {
            out.push(field.owner);
            refs_in_type(&field.ty, out);
        }
        TExprKind::GetStatic { class, .. } => out.push(*class),
        TExprKind::Call { method, .. } | TExprKind::DirectCall { method, .. } => {
            out.push(method.decl_class)
        }
        TExprKind::StaticCall { class, .. } => out.push(*class),
        TExprKind::New { class, targs, .. } => {
            out.push(*class);
            for t in targs {
                refs_in_type(t, out);
            }
        }
        TExprKind::NewArray { elem, .. } => refs_in_type(elem, out),
        TExprKind::RefCast { to, .. } => refs_in_type(to, out),
        TExprKind::InstanceOf { ty, .. } => refs_in_type(ty, out),
        _ => {}
    }
}

/// Refs of a typed expression list (super-ctor args, field inits).
pub fn collect_exprs_refs(es: &[TExpr], out: &mut Vec<ClassId>) {
    for e in es {
        e.walk(&mut |e| collect_expr_refs(e, out));
    }
}
